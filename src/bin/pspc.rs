//! `pspc` — the PSP command-line compiler driver.
//!
//! Compiles a kernel written in the mini loop DSL, pipelines it with the
//! predicated-software-pipelining technique, and optionally executes the
//! result on synthetic data with full equivalence checking against the
//! reference interpreter.
//!
//! ```text
//! pspc compile <file.psp> [--emit schedule|cfg|dot|all] [machine opts]
//! pspc run     <file.psp> [--n LEN] [--seed S] [--set name=val]... [--profile]
//! pspc compare <file.psp> [--n LEN] [--unroll U] [machine opts]
//! pspc kernels                       # list the built-in kernel suite
//! pspc help
//! ```
//!
//! Machine options (all commands): `--machine ALU,MEM,BR`,
//! `--load-latency N`, `--cmp-latency N`, `--alu-latency N`,
//! `--no-spec-loads`; technique options: `--depth N`, `--no-split`,
//! `--no-rename`, `--probs p1,p2,...`.

use std::process::ExitCode;

use psp::baselines::{compile_local, compile_sequential, compile_unrolled, modulo_schedule};
use psp::core::{pipeline_loop, PspConfig, PspResult};
use psp::ir::{LoopSpec, RegRef};
use psp::machine::{to_dot, MachineConfig, VliwLoop};
use psp::sim::{check_equivalence, run_reference, trace_vliw, BranchProfile, MachineState};

/// Everything parsed from the command line.
struct Args {
    command: String,
    file: Option<String>,
    emit: String,
    n: usize,
    seed: u64,
    unroll: u32,
    sets: Vec<(String, i64)>,
    profile: bool,
    trace: usize,
    machine: MachineConfig,
    depth: usize,
    split: bool,
    rename: bool,
    probs: Option<Vec<f64>>,
}

fn usage() -> &'static str {
    "pspc — predicated software pipelining compiler driver

USAGE:
  pspc compile <file.psp> [--emit schedule|cfg|dot|all]
  pspc run     <file.psp> [--n LEN] [--seed S] [--set name=val]... [--profile]
               [--trace N]
  pspc compare <file.psp> [--n LEN] [--seed S] [--unroll U] [--set name=val]...
  pspc kernels
  pspc help

MACHINE OPTIONS (all commands):
  --machine A,M,B     issue slots per tree instruction (default 8,4,4)
  --load-latency N    cycles from LOAD to consumer      (default 1)
  --cmp-latency N     cycles from compare to consumer   (default 1)
  --alu-latency N     cycles from ALU op to consumer    (default 1)
  --no-spec-loads     forbid moving LOADs above their controlling IF

TECHNIQUE OPTIONS:
  --depth N           maximum pipelining depth           (default 4)
  --no-split          disable the split transformation
  --no-rename         disable renaming during compaction
  --probs p1,p2,...   branch-taken probabilities for the profile-guided
                      objective (paper section 4); `run --profile` measures
                      them from the reference execution instead

DATA OPTIONS (run/compare):
  --n LEN             array length / trip count          (default 1024)
  --seed S            RNG seed for array contents        (default 42)
  --set name=val      preset a named scalar register; the register named
                      `n` defaults to LEN when not set
  --trace N           (run) print the first N executed cycles, marking
                      guard-squashed operations

The input file holds one kernel in the mini DSL, e.g.:

  kernel vecmin(n, k, m; x[]) -> m {
      xk = x[k]; xm = x[m];
      if (xk < xm) { m = k; }
      k = k + 1;
      break if (k >= n);
  }
"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut a = Args {
        command: argv.first().cloned().unwrap_or_else(|| "help".into()),
        file: None,
        emit: "all".into(),
        n: 1024,
        seed: 42,
        unroll: 4,
        sets: Vec::new(),
        profile: false,
        trace: 0,
        machine: MachineConfig::paper_default(),
        depth: 4,
        split: true,
        rename: true,
        probs: None,
    };
    let rest = argv.get(1..).unwrap_or_default();
    let mut it = rest.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--emit" => a.emit = value(&mut it, arg)?,
            "--n" => {
                a.n = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?
            }
            "--seed" => {
                a.seed = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--unroll" => {
                a.unroll = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("--unroll: {e}"))?
            }
            "--set" => {
                let v = value(&mut it, arg)?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects name=value, got `{v}`"))?;
                let val: i64 = val.parse().map_err(|e| format!("--set {name}: {e}"))?;
                a.sets.push((name.to_string(), val));
            }
            "--profile" => a.profile = true,
            "--trace" => {
                a.trace = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("--trace: {e}"))?
            }
            "--machine" => {
                let v = value(&mut it, arg)?;
                let parts: Vec<u32> = v
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("--machine: {e}")))
                    .collect::<Result<_, _>>()?;
                let [alu, mem, br] = parts[..] else {
                    return Err("--machine expects ALU,MEM,BR".into());
                };
                a.machine.n_alu = alu;
                a.machine.n_mem = mem;
                a.machine.n_branch = br;
            }
            "--load-latency" => {
                a.machine.load_latency = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--cmp-latency" => {
                a.machine.cmp_latency = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--alu-latency" => {
                a.machine.alu_latency = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?
            }
            "--no-spec-loads" => a.machine.speculative_loads = false,
            "--depth" => {
                a.depth = value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--no-split" => a.split = false,
            "--no-rename" => a.rename = false,
            "--probs" => {
                let v = value(&mut it, arg)?;
                let ps: Vec<f64> = v
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("--probs: {e}")))
                    .collect::<Result<_, _>>()?;
                a.probs = Some(ps);
            }
            _ if a.file.is_none() && !arg.starts_with("--") => a.file = Some(arg.clone()),
            _ => return Err(format!("unknown argument `{arg}` (try `pspc help`)")),
        }
    }
    Ok(a)
}

impl Args {
    fn psp_config(&self) -> PspConfig {
        PspConfig {
            machine: self.machine.clone(),
            max_depth: self.depth,
            enable_split: self.split,
            enable_rename: self.rename,
            probs: self.probs.clone(),
            ..PspConfig::default()
        }
    }

    fn load_spec(&self) -> Result<LoopSpec, String> {
        let path = self.file.as_deref().ok_or("missing input file")?;
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let spec = psp::lang::compile(&src).map_err(|e| format!("{path}: {e}"))?;
        spec.validate()
            .map_err(|e| format!("{path}: invalid loop: {e}"))?;
        Ok(spec)
    }
}

/// Deterministic synthetic array contents (range chosen so comparisons
/// against small `--set` thresholds are meaningful).
fn synth_array(seed: u64, which: u64, len: usize) -> Vec<i64> {
    // SplitMix64 — self-contained, stable across platforms.
    let mut s = seed.wrapping_add(which.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z % 201) as i64 - 100
        })
        .collect()
}

/// Build the initial machine state for a compiled DSL kernel: arrays filled
/// with synthetic data, named registers preset from `--set`, and `n`
/// defaulting to the array length.
fn initial_state(spec: &LoopSpec, args: &Args) -> Result<MachineState, String> {
    let mut st = MachineState::new(spec.n_regs, spec.n_ccs);
    for (i, _name) in spec.arrays.iter().enumerate() {
        st.push_array(synth_array(args.seed, i as u64, args.n));
    }
    let reg_of = |name: &str| -> Option<u32> {
        spec.reg_names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(r, _)| *r)
    };
    let mut n_set = false;
    for (name, val) in &args.sets {
        let r = reg_of(name).ok_or_else(|| format!("--set {name}: no such scalar"))?;
        st.regs[r as usize] = *val;
        n_set |= name == "n";
    }
    if !n_set {
        if let Some(r) = reg_of("n") {
            st.regs[r as usize] = args.n as i64;
        }
    }
    Ok(st)
}

fn reg_name(spec: &LoopSpec, r: RegRef) -> String {
    match r {
        RegRef::Gpr(g) => spec
            .reg_names
            .get(&g.0)
            .cloned()
            .unwrap_or_else(|| format!("R{}", g.0)),
        RegRef::Cc(c) => format!("CC{}", c.0),
    }
}

fn ii_str(prog: &VliwLoop) -> String {
    match prog.ii_range() {
        Some((a, b)) if a == b => format!("{a}"),
        Some((a, b)) => format!("{a}..{b}"),
        None => "-".into(),
    }
}

fn print_pipeline_summary(spec: &LoopSpec, res: &PspResult, m: &MachineConfig) {
    let u = res.program.utilization(m);
    println!(
        "pipelined `{}`: II {}  depth {}  rows {}  instances {}",
        spec.name,
        ii_str(&res.program),
        res.schedule.max_index(),
        res.schedule.rows.len(),
        res.schedule.rows.iter().map(Vec::len).sum::<usize>(),
    );
    println!(
        "cost: {} moves, {} wraps, {} splits, {} candidates, {} rounds",
        res.stats.moves, res.stats.wraps, res.stats.splits, res.stats.candidates, res.stats.rounds,
    );
    println!(
        "issue density: {:.2} ops/cycle ({:.0}% ALU, {:.0}% MEM, {:.0}% BR slots)",
        u.ops_per_cycle,
        u.alu * 100.0,
        u.mem * 100.0,
        u.branch * 100.0,
    );
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    let spec = args.load_spec()?;
    let res = pipeline_loop(&spec, &args.psp_config()).map_err(|e| e.to_string())?;
    print_pipeline_summary(&spec, &res, &args.machine);
    match args.emit.as_str() {
        "schedule" => println!("\n{}", res.schedule.render()),
        "cfg" => println!("\n{}", res.program),
        "dot" => println!("\n{}", to_dot(&res.program)),
        "all" => {
            println!(
                "\n== schedule (paper Figure 2 style) ==\n{}",
                res.schedule.render()
            );
            println!(
                "== generated loop (paper Figure 3 style) ==\n{}",
                res.program
            );
        }
        other => return Err(format!("--emit {other}: expected schedule|cfg|dot|all")),
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = args.load_spec()?;
    let init = initial_state(&spec, args)?;
    let sim_before = psp::sim::stats::snapshot();

    let mut cfg = args.psp_config();
    if args.profile {
        let golden = run_reference(&spec, init.clone(), 1_000_000_000)
            .map_err(|e| format!("reference run: {e}"))?;
        let profile = BranchProfile::from_run(&golden, spec.n_ifs);
        let probs: Vec<f64> = (0..spec.n_ifs).map(|i| profile.prob(i)).collect();
        println!(
            "measured branch profile: {:?}",
            probs.iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>()
        );
        cfg.probs = Some(probs);
    }

    let res = pipeline_loop(&spec, &cfg).map_err(|e| e.to_string())?;
    print_pipeline_summary(&spec, &res, &args.machine);

    if args.trace > 0 {
        let mut traced = init.clone();
        let (regs, ccs) = res.program.register_demand();
        traced.grow(regs.max(spec.n_regs), ccs.max(spec.n_ccs));
        let (_, events) = trace_vliw(&res.program, traced, 1_000_000_000, args.trace)
            .map_err(|e| format!("trace: {e}"))?;
        println!("\nfirst {} cycles (~~op~~ = guard-squashed):", events.len());
        for ev in &events {
            println!("  {ev}");
        }
    }

    let (golden, run) = check_equivalence(&spec, &res.program, &init, 1_000_000_000)
        .map_err(|e| format!("EQUIVALENCE FAILURE: {e}"))?;
    println!(
        "\nexecuted {} iterations: {} body cycles ({:.2} cycles/iter), reference {} cycles — speedup {:.2}x",
        run.iterations,
        run.body_cycles,
        run.cycles_per_iteration(),
        golden.cycles,
        golden.cycles as f64 / run.body_cycles.max(1) as f64,
    );
    println!("verified: live-outs and array memory match the reference interpreter ✓");
    let sim = psp::sim::stats::snapshot().delta(&sim_before);
    let rate = sim.decoded_cycles_per_sec() + sim.interp_cycles_per_sec();
    println!(
        "simulator: {} engine, {} trials, {} cycles simulated ({:.1}M cycles/sec)",
        sim.engine(),
        sim.trials,
        sim.decoded_cycles + sim.interp_cycles,
        rate / 1e6,
    );
    for r in &spec.live_out {
        let v = match r {
            RegRef::Gpr(g) => run.state.regs[g.0 as usize],
            RegRef::Cc(c) => i64::from(run.state.ccs[c.0 as usize]),
        };
        println!("  {} = {}", reg_name(&spec, *r), v);
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let spec = args.load_spec()?;
    let init = initial_state(&spec, args)?;
    let golden = run_reference(&spec, init.clone(), 1_000_000_000)
        .map_err(|e| format!("reference run: {e}"))?;

    println!(
        "{:<22} {:>8} {:>12} {:>9}",
        "technique", "II", "cycles/iter", "speedup"
    );
    let show = |label: &str, prog: &VliwLoop| -> Result<(), String> {
        let (_, run) = check_equivalence(&spec, prog, &init, 1_000_000_000)
            .map_err(|e| format!("{label}: EQUIVALENCE FAILURE: {e}"))?;
        println!(
            "{:<22} {:>8} {:>12.2} {:>8.2}x",
            label,
            ii_str(prog),
            run.cycles_per_iteration(),
            golden.cycles as f64 / run.body_cycles.max(1) as f64,
        );
        Ok(())
    };
    show("sequential", &compile_sequential(&spec))?;
    show("local scheduling", &compile_local(&spec, &args.machine))?;
    show(
        &format!("unroll x{}", args.unroll),
        &compile_unrolled(&spec, args.unroll, &args.machine),
    )?;
    let ems = modulo_schedule(&spec, &args.machine);
    ems.verify(&args.machine).map_err(|e| format!("EMS: {e}"))?;
    let ems_cycles = ems.estimated_cycles(golden.iterations);
    println!(
        "{:<22} {:>8} {:>12.2} {:>8.2}x   (idealized cycle model)",
        "EMS modulo",
        ems.ii,
        ems_cycles as f64 / golden.iterations.max(1) as f64,
        golden.cycles as f64 / ems_cycles.max(1) as f64,
    );
    let res = pipeline_loop(&spec, &args.psp_config()).map_err(|e| e.to_string())?;
    show("PSP (this paper)", &res.program)?;
    println!("\nall compiled loops verified against the reference interpreter ✓");
    Ok(())
}

fn cmd_kernels() {
    println!(
        "{:<18} {:>6} {:>5} {:>4}  description",
        "name", "ops", "ifs", "regs"
    );
    for k in psp::kernels::all_kernels() {
        println!(
            "{:<18} {:>6} {:>5} {:>4}  {}",
            k.name,
            k.spec.op_count(),
            k.spec.n_ifs,
            k.spec.n_regs,
            k.description,
        );
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pspc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args.command.as_str() {
        "compile" => cmd_compile(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "kernels" => {
            cmd_kernels();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `pspc help`)")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pspc: {e}");
            ExitCode::FAILURE
        }
    }
}
