//! # psp — Predicated Software Pipelining
//!
//! A full reproduction of Milicev & Jovanovic, *"Predicated Software
//! Pipelining Technique for Loops with Conditions"* (IPPS 1998): the
//! predicate-matrix framework, the iterative scheduling technique with its
//! four elementary transformations, data-dependence-driven (and
//! profile-driven) heuristics, loop code generation with variable per-path
//! II, plus every substrate the paper assumes — a tree-VLIW machine model,
//! a cycle-accurate simulator, baseline compilers, a kernel suite, and a
//! small loop DSL.
//!
//! ## Quickstart
//!
//! ```
//! use psp::prelude::*;
//!
//! // The paper's running example, written in the mini DSL.
//! let spec = psp::lang::compile(
//!     "kernel vecmin(n, k, m; x[]) -> m {
//!         xk = x[k]; xm = x[m];
//!         if (xk < xm) { m = k; }
//!         k = k + 1;
//!         break if (k >= n);
//!     }",
//! ).unwrap();
//!
//! // Pipeline it with the PSP technique…
//! let cfg = PspConfig::default();
//! let result = pipeline_loop(&spec, &cfg).unwrap();
//! let (_min_ii, max_ii) = result.program.ii_range().unwrap();
//! assert!(max_ii <= 2, "paper Fig. 1c: II = 2");
//!
//! // …and prove it equivalent to the source loop on real data.
//! let mut state = MachineState::new(spec.n_regs, spec.n_ccs);
//! state.regs[0] = 6;                        // n
//! state.push_array(vec![5, 3, 8, 1, 9, 1]); // x
//! let (_, run) = check_equivalence(&spec, &result.program, &state, 1_000_000).unwrap();
//! assert_eq!(run.state.regs[2], 3);         // m = index of the minimum
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ir`] | `psp-ir` | registers, operations, loops, flattening |
//! | [`predicate`] | `psp-predicate` | predicate matrices, path sets, IFLog |
//! | [`machine`] | `psp-machine` | tree-VLIW machine model, compiled loops |
//! | [`core`] | `psp-core` | the PSP schedule, transformations, driver, codegen |
//! | [`sim`] | `psp-sim` | reference & VLIW interpreters, equivalence, profiling |
//! | [`baselines`] | `psp-baselines` | sequential, local, unrolled, EMS modulo |
//! | [`opt`] | `psp-opt` | II lower bounds, exact branch-and-bound certifier, kernel codegen |
//! | [`kernels`] | `psp-kernels` | benchmark kernels + input generators |
//! | [`lang`] | `psp-lang` | the mini loop DSL |
//! | [`verify`] | `psp-verify` | independent validators, fuzzer, reducer |

pub use psp_baselines as baselines;
pub use psp_core as core;
pub use psp_ir as ir;
pub use psp_kernels as kernels;
pub use psp_lang as lang;
pub use psp_machine as machine;
pub use psp_opt as opt;
pub use psp_predicate as predicate;
pub use psp_sim as sim;
pub use psp_verify as verify;

/// The most common imports in one place.
pub mod prelude {
    pub use psp_baselines::{compile_local, compile_sequential, compile_unrolled, modulo_schedule};
    pub use psp_core::{generate, pipeline_loop, PspConfig, PspResult, Schedule};
    pub use psp_ir::{LoopBuilder, LoopSpec};
    pub use psp_kernels::{all_kernels, by_name, Kernel, KernelData};
    pub use psp_machine::{MachineConfig, VliwLoop};
    pub use psp_opt::{
        certify, mii_lower_bound, modulo_to_vliw, Certification, ExactConfig, ExactResult,
    };
    pub use psp_predicate::{PathSet, PredicateMatrix};
    pub use psp_sim::{
        check_equivalence, check_equivalence_batch, run_reference, run_vliw, BranchProfile,
        EngineKind, EquivConfig, MachineState, SimStats,
    };
    pub use psp_verify::{validate_modulo, validate_schedule, validate_vliw, Violation};
}
