//! Compare every compiler in the workspace — sequential, local scheduling,
//! unroll-and-schedule, EMS-style single-II modulo scheduling, and PSP —
//! on one kernel, with verified execution.
//!
//! ```sh
//! cargo run --example compare_baselines --release [kernel] [len]
//! ```

use psp::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "vecmin".into());
    let len: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);

    let kernel = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`; available:");
        for k in all_kernels() {
            eprintln!("  {:<16} {}", k.name, k.description);
        }
        std::process::exit(1);
    });
    let machine = MachineConfig::paper_default();
    let data = KernelData::random(7, len);
    let init = kernel.initial_state(&data);

    println!(
        "kernel: {} ({}), n = {len}",
        kernel.name, kernel.description
    );
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>9}",
        "compiler", "II", "body cycles", "cycles/iter", "speedup"
    );

    let golden = run_reference(&kernel.spec, init.clone(), 100_000_000).expect("reference runs");
    let base = golden.cycles as f64;
    println!(
        "{:<14} {:>9} {:>12} {:>12.2} {:>8.2}x",
        "sequential*",
        "-",
        golden.cycles,
        golden.cycles_per_iteration(),
        1.0
    );

    let report = |label: &str, prog: &VliwLoop| {
        let (_, run) = check_equivalence(&kernel.spec, prog, &init, 100_000_000)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        kernel.check(&run.state, &data).expect("golden result");
        let ii = prog
            .ii_range()
            .map(|(a, b)| {
                if a == b {
                    format!("{a}")
                } else {
                    format!("{a}..{b}")
                }
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>9} {:>12} {:>12.2} {:>8.2}x",
            label,
            ii,
            run.body_cycles,
            run.cycles_per_iteration(),
            base / run.body_cycles as f64
        );
    };

    report("sequential", &compile_sequential(&kernel.spec));
    report("local", &compile_local(&kernel.spec, &machine));
    report("unroll x4", &compile_unrolled(&kernel.spec, 4, &machine));

    // EMS: verified schedule + idealized cycle model (see DESIGN.md §4).
    let ems = modulo_schedule(&kernel.spec, &machine);
    ems.verify(&machine).expect("modulo schedule verifies");
    println!(
        "{:<14} {:>9} {:>12} {:>12.2} {:>8.2}x   (idealized)",
        "ems (1 II)",
        ems.ii,
        ems.estimated_cycles(golden.iterations),
        ems.estimated_cycles(golden.iterations) as f64 / golden.iterations as f64,
        base / ems.estimated_cycles(golden.iterations) as f64
    );

    let psp = pipeline_loop(&kernel.spec, &PspConfig::with_machine(machine.clone()))
        .expect("psp pipelines");
    report("psp", &psp.program);
}
