//! Quickstart: write a loop in the mini DSL, pipeline it with PSP, inspect
//! the schedule and generated code, and verify it against the reference
//! interpreter.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use psp::prelude::*;

fn main() {
    // The paper's §1.1 running example: index of the vector minimum.
    let src = "kernel vecmin(n, k, m; x[]) -> m {
        xk = x[k];
        xm = x[m];
        if (xk < xm) { m = k; }
        k = k + 1;
        break if (k >= n);
    }";
    let spec = psp::lang::compile(src).expect("kernel compiles");
    println!("source loop:\n{spec}\n");

    // Pipeline with the PSP technique on the paper's wide tree-VLIW target.
    let cfg = PspConfig::default();
    let result = pipeline_loop(&spec, &cfg).expect("pipelining succeeds");

    println!("final schedule (paper Fig. 2 notation):");
    println!("{}", result.schedule);
    println!("generated loop (paper Fig. 3 reconstruction):");
    println!("{}", result.program);

    let (min_ii, max_ii) = result.program.ii_range().unwrap();
    println!("initiation interval: {min_ii}..{max_ii} cycles per iteration");
    println!(
        "cost: {} candidate evaluations, {} moveups, {} wraps, {} splits\n",
        result.stats.candidates, result.stats.moves, result.stats.wraps, result.stats.splits
    );

    // Execute both the source loop and the pipelined loop on real data and
    // compare results and cycle counts.
    let data = vec![42, 17, 63, 5, 99, 5, 28, 3, 77, 3];
    let mut state = MachineState::new(spec.n_regs, spec.n_ccs);
    state.regs[0] = data.len() as i64; // n
    state.push_array(data);

    let (golden, run) =
        check_equivalence(&spec, &result.program, &state, 1_000_000).expect("equivalent");
    println!(
        "reference: minimum at index {}, {} sequential cycles ({:.2}/iter)",
        golden.state.regs[2],
        golden.cycles,
        golden.cycles_per_iteration()
    );
    println!(
        "pipelined: minimum at index {}, {} body cycles ({:.2}/iter), speedup {:.2}x",
        run.state.regs[2],
        run.body_cycles,
        run.cycles_per_iteration(),
        golden.cycles as f64 / run.body_cycles as f64
    );
}
