//! A gallery of kernels written in the mini DSL, each compiled, pipelined,
//! executed, and verified — the "loops with conditions" zoo from the
//! paper's introduction, as a user would actually write them.
//!
//! ```sh
//! cargo run --example dsl_gallery --release
//! ```

use psp::prelude::*;

struct Entry {
    name: &'static str,
    src: &'static str,
    /// Registers to preset (index, value-from-len closure result).
    setup: fn(&mut MachineState, usize),
    uses_y: bool,
}

fn gallery() -> Vec<Entry> {
    vec![
        Entry {
            name: "last positive index",
            src: "kernel lastpos(n, k, idx; x[]) -> idx {
                v = x[k];
                if (v > 0) { idx = k; }
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, n| {
                st.regs[0] = n as i64;
                st.regs[2] = -1;
            },
            uses_y: false,
        },
        Entry {
            name: "delta encode (conditional)",
            src: "kernel delta(n, k, prev; x[], y[]) {
                v = x[k];
                d = v - prev;
                if (d < 0) { d = 0 - d; }
                y[k] = d;
                prev = v;
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, n| st.regs[0] = n as i64,
            uses_y: true,
        },
        Entry {
            name: "saturating doubler",
            src: "kernel satdouble(n, k, cap; x[], y[]) {
                v = x[k] + x[k];
                if (v > cap) { v = cap; }
                else if (v < 0 - cap) { v = 0 - cap; }
                y[k] = v;
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, n| {
                st.regs[0] = n as i64;
                st.regs[2] = 50;
            },
            uses_y: true,
        },
        Entry {
            name: "range histogram (3 bins via counters)",
            src: "kernel bins(n, k, lo_cnt, hi_cnt; x[]) -> lo_cnt, hi_cnt {
                v = x[k];
                if (v < 0) { lo_cnt = lo_cnt + 1; }
                if (v > 0) { hi_cnt = hi_cnt + 1; }
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, n| st.regs[0] = n as i64,
            uses_y: false,
        },
        Entry {
            name: "alternating sum",
            src: "kernel altsum(n, k, acc, sign; x[]) -> acc {
                v = x[k] * sign;
                acc = acc + v;
                sign = 0 - sign;
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, n| {
                st.regs[0] = n as i64;
                st.regs[3] = 1;
            },
            uses_y: false,
        },
        Entry {
            name: "bounded search (first > threshold, cap 100)",
            src: "kernel boundfind(n, k, found, t; x[]) -> found {
                v = x[k];
                if (v > t) { found = k; }
                break if (v > t);
                k = k + 1;
                break if (k >= n);
            }",
            setup: |st, n| {
                st.regs[0] = n as i64;
                st.regs[2] = -1;
                st.regs[3] = 90;
            },
            uses_y: false,
        },
    ]
}

fn main() {
    let len = 256;
    println!(
        "{:<42} {:>8} {:>8} {:>12} {:>9}",
        "kernel", "seq II", "psp II", "cycles/iter", "speedup"
    );
    for e in gallery() {
        let spec = psp::lang::compile(e.src).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        spec.validate().expect("valid spec");

        let data = KernelData::random(17, len);
        let mut init = MachineState::new(spec.n_regs, spec.n_ccs);
        init.push_array(data.x.clone());
        if e.uses_y {
            init.push_array(data.y.clone());
        }
        (e.setup)(&mut init, len);

        let seq = compile_sequential(&spec);
        let res = pipeline_loop(&spec, &PspConfig::default()).expect("pipelines");
        let (golden, run) =
            check_equivalence(&spec, &res.program, &init, 100_000_000).expect("equivalent");
        let seq_ii = seq
            .ii_range()
            .map(|(a, b)| format!("{a}..{b}"))
            .unwrap_or_default();
        let psp_ii = res
            .program
            .ii_range()
            .map(|(a, b)| {
                if a == b {
                    format!("{a}")
                } else {
                    format!("{a}..{b}")
                }
            })
            .unwrap_or_default();
        println!(
            "{:<42} {:>8} {:>8} {:>12.2} {:>8.2}x",
            e.name,
            seq_ii,
            psp_ii,
            run.cycles_per_iteration(),
            golden.cycles as f64 / run.body_cycles as f64
        );
    }
    println!("\nall kernels verified against the reference interpreter ✓");
}
