//! The paper's §4 extension: probability-driven heuristics.
//!
//! Profiles a skewed-branch kernel with the reference interpreter, feeds
//! the branch probabilities into the PSP scorer (which then minimizes the
//! *expected mean dynamic II* over path sets instead of the worst-case II),
//! and compares static vs profile-guided pipelining across branch biases.
//!
//! ```sh
//! cargo run --example profile_guided --release
//! ```

use psp::prelude::*;

fn main() {
    let kernel = by_name("skewed").expect("skewed kernel exists");
    // A narrow machine (2 ALUs, 1 memory port, 1 branch) creates the
    // resource pressure that makes path-weighted choices matter: on the
    // paper's wide default everything fits and both objectives coincide.
    let machine = MachineConfig::narrow(2, 1, 1);
    let len = 2000;

    println!(
        "kernel: {} — if (x[k] > t) {{ acc += x[k]; cnt += 1; }}",
        kernel.name
    );
    println!(
        "{:>6} {:>10} {:>16} {:>16} {:>16}",
        "p", "profiled", "static cyc/iter", "guided cyc/iter", "E[II] (guided)"
    );

    for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
        let data = KernelData::random(11, len).with_taken_fraction(q);
        let init = kernel.initial_state(&data);

        // Profile with the reference interpreter.
        let golden = run_reference(&kernel.spec, init.clone(), 100_000_000).unwrap();
        let profile = BranchProfile::from_run(&golden, kernel.spec.n_ifs);

        // Static PSP (worst-path objective).
        let s = pipeline_loop(&kernel.spec, &PspConfig::with_machine(machine.clone())).unwrap();
        let (_, run_s) = check_equivalence(&kernel.spec, &s.program, &init, 100_000_000).unwrap();

        // Profile-guided PSP (expected-II objective, paper §4).
        let cfg = PspConfig {
            probs: Some(profile.p_true.clone()),
            ..PspConfig::with_machine(machine.clone())
        };
        let g = pipeline_loop(&kernel.spec, &cfg).unwrap();
        let (_, run_g) = check_equivalence(&kernel.spec, &g.program, &init, 100_000_000).unwrap();
        kernel
            .check(&run_g.state, &data)
            .expect("guided result correct");

        println!(
            "{:>6.2} {:>10.3} {:>16.3} {:>16.3} {:>16.3}",
            q,
            profile.prob(0),
            run_s.cycles_per_iteration(),
            run_g.cycles_per_iteration(),
            g.score.primary,
        );
    }

    println!("\nThe guided scorer weights each reconstructed path by its measured");
    println!("probability (PathSet::probability under the profile), so transformations");
    println!("that shorten the hot path win even when they lengthen the cold one.");
}
