//! A tour of the formal framework: predicate matrices, path sets, and the
//! IFLog — the paper's §1.2/§2 machinery, standalone.
//!
//! ```sh
//! cargo run --example predicate_algebra --release
//! ```

use psp::predicate::{IfLog, IfLogEntry, PathSet, PredicateMatrix};

fn main() {
    // The paper's example matrix: first IF = True for previous and current
    // iterations, False for the next; second IF = False current, True next.
    let m = PredicateMatrix::from_entries([
        (0, -1, true),
        (0, 0, true),
        (0, 1, false),
        (1, 0, false),
        (1, 1, true),
    ]);
    println!("paper §1.2 example matrix (column 0 underlined):");
    println!("  {}\n", m.display(2, -1, 1));

    // Formal vs actual path sets (§2): an operation control-dependent on
    // the current IF but scheduled before it is speculative; its actual
    // set needs a union of matrices.
    let formal = PathSet::from_matrix(PredicateMatrix::single(0, 0, true));
    let actual = PathSet::from_matrices([
        PredicateMatrix::single(0, -1, true),
        PredicateMatrix::from_entries([(0, -1, false), (0, 0, true)]),
    ]);
    println!("formal paths: {formal}");
    println!("actual paths: {actual}");
    println!("actual ⊇ formal: {}\n", actual.subsumes(&formal));

    // Disjointness is what exempts operations from dependence testing.
    let then_branch = PredicateMatrix::single(0, 0, true);
    let else_branch = PredicateMatrix::single(0, 0, false);
    println!(
        "then {} vs else {}: disjoint = {}",
        then_branch,
        else_branch,
        then_branch.is_disjoint(&else_branch)
    );

    // Split and unify — two of the four elementary transformations, at the
    // matrix level.
    let (f, t) = PredicateMatrix::universe().split(0, 0).unwrap();
    println!("split [b] at (0,0): {f} and {t}");
    println!("unify back: {}\n", f.unify(&t).unwrap());

    // Path probabilities (§4): measure a set under a branch profile.
    let set = PathSet::from_matrices([
        PredicateMatrix::single(0, 0, true),
        PredicateMatrix::single(0, 1, true),
    ]);
    for p in [0.1, 0.5, 0.9] {
        println!(
            "P({set}) with p(True) = {p}: {:.3}",
            set.probability(|_, _| p)
        );
    }
    println!();

    // The IFLog links predicates to the IF instances that compute them.
    let mut log = IfLog::new();
    log.record(IfLogEntry {
        if_row: 0,
        index: 1,
        cycle: 7,
        matrix: PredicateMatrix::universe(),
    });
    println!("IFLog with IF(+1) at cycle 7 (paper Fig. 2):");
    for col in [0, 1, 2] {
        println!("  p(0,{col}) availability: {:?}", log.availability(0, col));
    }
}
