//! Per-phase cost probe for one batched equivalence check: where does a
//! decoded-engine trial actually spend its time? A development aid for
//! the E11 benchmark; run with
//! `cargo run --release --example density_probe [kernel]`.

use psp::prelude::*;
use psp::sim::{EngineKind, EquivConfig, EquivEngine};
use std::time::Instant;

const LENS: [usize; 3] = [257, 1024, 4096];
const TRIALS: usize = 6;
const REPS: usize = 7;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cond_sum".into());
    let kernel = by_name(&name).unwrap();
    let cfg = PspConfig::default();
    let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
    let prog = &res.program;

    let ecfg = EquivConfig::fixed(TRIALS, 5).with_lens(&LENS);
    let inputs: Vec<(u64, usize, MachineState)> = ecfg
        .trial_inputs()
        .into_iter()
        .map(|(seed, len)| {
            let data = KernelData::random(seed, len);
            (seed, len, kernel.initial_state(&data))
        })
        .collect();

    // Whole-batch wall time, both engines (full per-call path with trace).
    for engine in [EngineKind::Interpreter, EngineKind::Decoded] {
        let mut best = f64::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            for (_, _, init) in &inputs {
                psp::sim::check_equivalence_with(&kernel.spec, prog, init, 10_000_000, engine)
                    .unwrap();
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!("batch {:<12} {:>9.1}us", engine.label(), best * 1e6);
    }

    // Decoded engine, batch path: reused engine, no trace.
    let mut eng = EquivEngine::new(&kernel.spec, prog);
    let mut t_check = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        for (_, _, init) in &inputs {
            eng.check(init, 10_000_000).unwrap();
        }
        t_check = t_check.min(t.elapsed().as_secs_f64());
    }
    println!(
        "batch check()     {:>9.1}us (reused engine, no trace)",
        t_check * 1e6
    );

    // Clone cost of mk_init (what table_simbench's closure pays).
    let mut t_clone = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        for (_, _, init) in &inputs {
            std::hint::black_box(init.clone());
        }
        t_clone = t_clone.min(t.elapsed().as_secs_f64());
    }
    println!("mk_init clones    {:>9.1}us", t_clone * 1e6);

    // Ref-only and vliw-only runs through the reusable engine pieces.
    let dref = psp::sim::DecodedRef::decode(&kernel.spec);
    let dvliw = psp::sim::DecodedVliw::decode(prog);
    let mut scr = psp::sim::Scratch::default();
    let (regs, ccs) = prog.register_demand();
    let mut t_ref = f64::MAX;
    let mut t_vliw = f64::MAX;
    let mut ref_cycles = 0u64;
    let mut vliw_cycles = 0u64;
    for _ in 0..REPS {
        let t = Instant::now();
        ref_cycles = 0;
        for (_, _, init) in &inputs {
            let mut st = init.clone();
            ref_cycles += dref
                .run(&mut st, &mut scr, 10_000_000, None)
                .unwrap()
                .cycles;
        }
        t_ref = t_ref.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        vliw_cycles = 0;
        for (_, _, init) in &inputs {
            let mut st = init.clone();
            st.grow(regs.max(kernel.spec.n_regs), ccs.max(kernel.spec.n_ccs));
            vliw_cycles += dvliw
                .run(&mut st, &mut scr, 10_000_000)
                .unwrap()
                .total_cycles;
        }
        t_vliw = t_vliw.min(t.elapsed().as_secs_f64());
    }
    println!(
        "ref runs (+clone) {:>9.1}us  {:>8} cycles = {:>6.1}M c/s",
        t_ref * 1e6,
        ref_cycles,
        ref_cycles as f64 / t_ref / 1e6
    );
    println!(
        "vliw runs (+clone){:>9.1}us  {:>8} cycles = {:>6.1}M c/s",
        t_vliw * 1e6,
        vliw_cycles,
        vliw_cycles as f64 / t_vliw / 1e6
    );
}
