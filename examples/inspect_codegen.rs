//! Inspect a pipelined loop in depth: dump the reconstructed CFG as
//! Graphviz DOT and trace the first machine cycles of its execution
//! (squashed guarded operations are struck through).
//!
//! ```sh
//! cargo run --example inspect_codegen --release [kernel] > loop.dot
//! dot -Tsvg loop.dot -o loop.svg   # if graphviz is installed
//! ```
//! The trace is printed to stderr so the DOT on stdout stays clean.

use psp::machine::to_dot;
use psp::prelude::*;
use psp::sim::trace_vliw;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vecmin".into());
    let kernel = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(1);
    });

    let res = pipeline_loop(&kernel.spec, &PspConfig::default()).expect("pipelines");
    eprintln!("schedule:\n{}", res.schedule);

    // DOT on stdout.
    print!("{}", to_dot(&res.program));

    // Trace the first 24 cycles on a small input.
    let data = KernelData::random(5, 8);
    let mut init = kernel.initial_state(&data);
    init.grow(64, 16);
    let (run, events) = trace_vliw(&res.program, init, 1_000_000, 24).expect("runs");
    eprintln!("\nfirst {} cycles of execution:", events.len());
    for e in &events {
        eprintln!("  {e}");
    }
    eprintln!(
        "\ntotal: {} cycles for {} iterations ({:.2}/iter)",
        run.total_cycles,
        run.iterations,
        run.cycles_per_iteration()
    );
}
