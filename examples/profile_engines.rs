//! Engine throughput probe: steady-state simulated-cycles-per-second of
//! the interpreter vs the pre-decoded engine, on a long-running input.
//! A development aid for the E11 benchmark; run with
//! `cargo run --release --example profile_engines`.

use psp::prelude::*;
use psp::sim::{DecodedRef, EngineKind, Scratch};
use std::time::Instant;

const REPS: usize = 5;

fn best<F: FnMut() -> u64>(mut f: F) -> (u64, f64) {
    let mut cycles = 0;
    let mut dt = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        cycles = f();
        dt = dt.min(t.elapsed().as_secs_f64());
    }
    (cycles, dt)
}

fn report(label: &str, cycles: u64, dt: f64) {
    println!(
        "{label:<22} {cycles:>9} cycles {:>7.1}ms = {:>6.1}M c/s",
        dt * 1e3,
        cycles as f64 / dt / 1e6
    );
}

fn main() {
    let kernel = by_name(&std::env::args().nth(1).unwrap_or_else(|| "vecmin".into())).unwrap();
    let len = 200_000usize;
    let data = KernelData::random(7, len);
    let mk = || kernel.initial_state(&data);

    let (c, dt) = best(|| {
        psp::sim::run_reference(&kernel.spec, mk(), u64::MAX)
            .unwrap()
            .cycles
    });
    report("interp ref", c, dt);

    let dref = DecodedRef::decode(&kernel.spec);
    let mut scr = Scratch::default();
    let (c, dt) = best(|| {
        let mut st = mk();
        let mut trace = Vec::new();
        dref.run(&mut st, &mut scr, u64::MAX, Some(&mut trace))
            .unwrap()
            .cycles
    });
    report("decoded ref (trace)", c, dt);
    let (c, dt) = best(|| {
        let mut st = mk();
        dref.run(&mut st, &mut scr, u64::MAX, None).unwrap().cycles
    });
    report("decoded ref", c, dt);

    let cfg = PspConfig::default();
    let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
    for (label, prog) in [
        ("psp", res.program.clone()),
        ("local", compile_local(&kernel.spec, &cfg.machine)),
    ] {
        let (regs, ccs) = prog.register_demand();
        let grown = |mut s: MachineState| {
            s.grow(regs.max(kernel.spec.n_regs), ccs.max(kernel.spec.n_ccs));
            s
        };
        let (c, dt) = best(|| {
            psp::sim::run_vliw(&prog, grown(mk()), u64::MAX)
                .unwrap()
                .total_cycles
        });
        report(&format!("interp  vliw {label}"), c, dt);
        let dvliw = psp::sim::DecodedVliw::decode(&prog);
        let (c, dt) = best(|| {
            let mut st = grown(mk());
            dvliw.run(&mut st, &mut scr, u64::MAX).unwrap().total_cycles
        });
        report(&format!("decoded vliw {label}"), c, dt);
    }

    for engine in [EngineKind::Interpreter, EngineKind::Decoded] {
        let (c, dt) = best(|| {
            let (g, v) = psp::sim::check_equivalence_with(
                &kernel.spec,
                &res.program,
                &mk(),
                u64::MAX,
                engine,
            )
            .unwrap();
            g.cycles + v.total_cycles
        });
        report(&format!("equiv {}", engine.label()), c, dt);
    }
}
