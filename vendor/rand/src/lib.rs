//! Vendored offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small API surface it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and [`Rng::gen_range`] over integer ranges. The generator is SplitMix64 —
//! statistically fine for test data, **not** cryptographic, and its stream
//! differs from upstream `StdRng` (callers only rely on seed-reproducibility,
//! never on the exact upstream stream).

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64), seeded from a `u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling (subset: `gen_range`, `gen_bool`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a value can be drawn from uniformly (with negligible modulo bias
/// for the small spans this workspace uses).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-100..=100);
            assert!((-100..=100).contains(&v));
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
