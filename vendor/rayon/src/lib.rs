//! Vendored offline stand-in for the `rayon` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the data-parallel surface it uses: `vec.into_par_iter().map(f).collect()`
//! plus a `with_threads(n)` cap. Work is distributed over `std::thread`
//! scoped workers via an atomic work-stealing cursor; results are returned
//! **in input order**, so a parallel map is a drop-in replacement for the
//! sequential one (determinism does not depend on the thread count).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParMap};
}

/// Number of worker threads used by default (the machine's available
/// parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator (subset: owned `Vec`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            threads: 0,
        }
    }
}

/// A not-yet-mapped parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
    threads: usize,
}

impl<T: Send> ParIter<T> {
    /// Cap the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            threads: self.threads,
            f,
        }
    }
}

/// A mapped parallel iterator; `collect` runs the map.
pub struct ParMap<T, F> {
    items: Vec<T>,
    threads: usize,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Cap the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n_items = self.items.len();
        let threads = match self.threads {
            0 => current_num_threads(),
            n => n,
        }
        .min(n_items.max(1));
        if threads <= 1 || n_items <= 1 {
            return self.items.into_iter().map(self.f).collect();
        }

        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|x| Mutex::new(Some(x)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let out: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_items));
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("slot lock poisoned")
                            .take()
                            .expect("each slot is taken exactly once");
                        local.push((i, f(item)));
                    }
                    out.lock().expect("result lock poisoned").append(&mut local);
                });
            }
        });
        let mut pairs = out.into_inner().expect("result lock poisoned");
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_cap_matches_sequential() {
        let v: Vec<i64> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<i64> = v
                .clone()
                .into_par_iter()
                .with_threads(threads)
                .map(|x| x * x - 1)
                .collect();
            assert_eq!(got, v.iter().map(|x| x * x - 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let got: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(got.is_empty());
        let one: Vec<u8> = vec![7];
        let got: Vec<u8> = one.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(got, vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still return in order.
        let v: Vec<u64> = (0..64).collect();
        let got: Vec<u64> = v
            .into_par_iter()
            .map(|x| {
                let mut acc = x;
                for _ in 0..(x % 7) * 10_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                x
            })
            .collect();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }
}
