//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the benching surface it uses: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a simple adaptive timer (warm-up iteration, then repeat
//! until ~200 ms or 1000 iterations) reporting the mean per-iteration time.
//! Like upstream, when the binary is not invoked with `--bench` (e.g. under
//! `cargo test`, which runs `harness = false` bench targets directly) each
//! benchmark body executes exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Whether a full measurement was requested (`--bench` on the command line,
/// which `cargo bench` passes and `cargo test` does not).
fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Benchmark label: `name` or `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Declared throughput of a benchmark (accepted, reported alongside time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-benchmark timing driver.
pub struct Bencher {
    label: String,
    throughput: Option<Throughput>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !full_measurement() {
            black_box(f());
            println!(
                "bench {:<40} smoke-tested (pass --bench to measure)",
                self.label
            );
            return;
        }
        // Warm-up.
        black_box(f());
        let budget = Duration::from_millis(200);
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget && iters < 1000 {
            black_box(f());
            iters += 1;
        }
        let mean = start.elapsed() / iters.max(1) as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MB/s)", n as f64 / mean.as_secs_f64() / 1e6)
            }
            None => String::new(),
        };
        println!(
            "bench {:<40} {:>12.3?}/iter over {iters} iters{rate}",
            self.label, mean
        );
    }
}

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            label: name.to_string(),
            throughput: None,
        };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkIdOrStr>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.into().0),
            throughput: self.throughput,
        };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.0),
            throughput: self.throughput,
        };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

/// Accepts either a `&str` or a [`BenchmarkId`] as a benchmark label.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        Self(id.0)
    }
}

/// Define a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_smoke() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter("p"), &3u64, |b, &x| {
            b.iter(|| total += x)
        });
        g.finish();
        assert!(total >= 3);
    }
}
