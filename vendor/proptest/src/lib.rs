//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the API subset its property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], [`strategy::Just`], the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] family of macros, and
//! a [`test_runner::Config`] honoring `PROPTEST_CASES`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (stable across runs), there is **no shrinking**, and
//! `*.proptest-regressions` files are not replayed (pin important cases as
//! explicit `#[test]`s instead). Set `PSP_PROPTEST_SEED=<u64>` to perturb
//! every test's generator stream (the seed is XORed into the per-test-name
//! state, so `0` — the default — reproduces the unseeded stream), and to
//! replay the exact stream a CI failure reports in its panic message.

pub mod test_runner {
    /// Runner configuration (subset of upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Extra seed XORed into each test's name-derived generator state
        /// (`0` = the unperturbed deterministic stream). Defaults to
        /// `PSP_PROPTEST_SEED` from the environment.
        pub seed: u64,
        /// Accepted for upstream compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for upstream compatibility; unused (no rejections).
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            let seed = std::env::var("PSP_PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            Self {
                cases,
                seed,
                max_shrink_iters: 1024,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's fully qualified name.
        pub fn from_name(name: &str) -> Self {
            Self::from_name_seeded(name, 0)
        }

        /// Like [`from_name`](Self::from_name) but XORs `seed` into the
        /// name-derived state; `seed == 0` reproduces `from_name` exactly.
        pub fn from_name_seeded(name: &str, seed: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h ^ seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of test values (subset: generation only, no value trees
    /// or shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `depth` levels of `recurse` over the
        /// leaf, choosing leaf vs. recursion uniformly at each level. The
        /// upstream `desired_size` / `expected_branch_size` tuning knobs are
        /// accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf: BoxedStrategy<Self::Value> = BoxedStrategy::new(self);
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = BoxedStrategy::new(Union::new(vec![
                    leaf.clone(),
                    BoxedStrategy::new(recurse(cur)),
                ]));
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> BoxedStrategy<T> {
        pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> Self {
            BoxedStrategy(Arc::new(s))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident)+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A B);
    tuple_strategy!(A B C);
    tuple_strategy!(A B C D);
    tuple_strategy!(A B C D E);
    tuple_strategy!(A B C D E F);
    tuple_strategy!(A B C D E F G);
    tuple_strategy!(A B C D E F G H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a range or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty)*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion: fails the current case (with a message) rather than
/// panicking, so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `Config::cases` generated cases; `prop_assert*`
/// failures report the case number. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = $crate::test_runner::Config::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name_seeded(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.seed,
                );
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let closure = || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = closure() {
                        panic!(
                            "proptest case {case} of {} failed (seed {}): {e}\n\
                             replay with PSP_PROPTEST_SEED={}\n\
                             (vendored proptest: deterministic stream, no shrinking)",
                            stringify!($name),
                            config.seed,
                            config.seed
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(3i32..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(-2i64..=2), &mut rng);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn seed_zero_matches_unseeded_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name_seeded("x", 0);
        let mut c = TestRng::from_name_seeded("x", 1);
        let mut diverged = false;
        for _ in 0..50 {
            let va = a.next_u64();
            assert_eq!(va, b.next_u64());
            diverged |= va != c.next_u64();
        }
        assert!(diverged, "nonzero seed must perturb the stream");
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = crate::collection::vec(0u32..100, 0..10);
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(any::<u8>(), 0..8), x in 0usize..5) {
            prop_assert!(v.len() < 8);
            prop_assert!(x < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), (2u8..9).prop_map(|x| x)]) {
            prop_assert!(v == 1 || (2..9).contains(&v));
        }
    }
}
