//! Exact II certification by branch and bound.
//!
//! [`certify`] searches, for each candidate II ascending from the
//! [`crate::bounds::mii_lower_bound`] floor, for *any* assignment of issue
//! times satisfying every dependence edge modulo II and the modulo resource
//! table — the same constraint system the greedy EMS baseline schedules
//! against, so a certified II is a true optimum for that system and
//! `exact ≤ heuristic` holds by construction.
//!
//! ## Completeness of the bounded horizon
//!
//! The search restricts times to `[0, n·(II + L))` with `L` the largest
//! edge latency. This loses nothing: take any feasible schedule minimizing
//! `Σtᵢ`. If the sorted times had a gap `> II + L`, shifting everything
//! above the gap down by II would preserve all residues (the resource
//! table is untouched), all constraints inside and out of the shifted set
//! (a gap `> II + L` leaves slack for every incoming edge), and decrease
//! the sum — contradiction. The same shift applied to all ops bounds the
//! minimum below II. Hence every op fits under `(II−1) + (n−1)(II+L)`,
//! and an exhausted search is a sound infeasibility certificate.
//!
//! ## Pruning
//!
//! * **Instant recurrence check** — Floyd–Warshall longest paths `D` under
//!   `lat − II·dist`; a positive diagonal kills the II without search.
//! * **Window propagation** — placing op `k` at `t` tightens every
//!   unplaced `j` to `[max(est_j, t + D[k][j]), min(lst_j, t − D[j][k])]`;
//!   an empty window backtracks immediately. Because `D` is transitively
//!   closed, pairwise consistency among placed ops is implied.
//! * **Most-constrained-first** — the op with the smallest window is
//!   branched on next (deterministic index tiebreak).
//! * **Failed-state memoization** — the pair (windows of unplaced ops,
//!   modulo resource table) is a *sufficient* summary of a partial state:
//!   placed ops influence the future only through those two. Failed
//!   summaries are stored (full keys, no hash truncation) and re-entered
//!   subtrees are cut.
//! * **Anytime node budget** — the search is abandoned (soundly: outcome
//!   [`Certification::Bounded`]) when the budget runs out.

use crate::bounds::{longest_paths, res_mii, NEG_INF};
use crate::ifconv::if_convert;
use crate::rename::rename_inductions;
use crate::sched::{all_edges, ModEdge, ModuloSchedule};
use psp_ir::LoopSpec;
use psp_machine::{MachineConfig, ResourceUse};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration of the exact certifier.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Search-node budget shared across all candidate IIs (a node = one
    /// attempted placement). Exhaustion yields a sound interval instead of
    /// a certificate.
    pub max_nodes: u64,
    /// Hard cap on the candidate II (safety net for hint-less runs; the
    /// default `None` caps at `4·n + 16`, where a schedule always exists).
    pub max_ii: Option<u32>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            max_ii: None,
        }
    }
}

/// Outcome of a certification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// The optimal fixed II of the constraint system is exactly this.
    Certified(u32),
    /// Budget ran out: the optimum lies in `[lb, ub]` (`ub` is `None` when
    /// no feasible II is known yet — no hint was given and none was found).
    Bounded {
        /// Greatest II proven infeasible, plus one.
        lb: u32,
        /// Smallest II known feasible, if any.
        ub: Option<u32>,
    },
}

impl Certification {
    /// The certified lower bound (`lb` of the interval, or the certified
    /// value itself).
    pub fn lb(&self) -> u32 {
        match *self {
            Certification::Certified(ii) => ii,
            Certification::Bounded { lb, .. } => lb,
        }
    }

    /// The known upper bound, if any.
    pub fn ub(&self) -> Option<u32> {
        match *self {
            Certification::Certified(ii) => Some(ii),
            Certification::Bounded { ub, .. } => ub,
        }
    }

    /// Display form: `"3"` or `"[3,5]"` / `"[3,?]"`.
    pub fn display(&self) -> String {
        match *self {
            Certification::Certified(ii) => format!("{ii}"),
            Certification::Bounded { lb, ub: Some(ub) } => format!("[{lb},{ub}]"),
            Certification::Bounded { lb, ub: None } => format!("[{lb},?]"),
        }
    }
}

/// Result of [`certify`].
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Certificate or sound interval.
    pub outcome: Certification,
    /// A verified schedule at the best feasible II the search itself found
    /// (`None` when certification closed via the caller's hint or the
    /// budget expired before any feasible placement).
    pub schedule: Option<ModuloSchedule>,
    /// The analytic floor `max(res_mii, rec_mii)` the search started from.
    pub mii: u32,
    /// Branch-and-bound nodes expended.
    pub nodes: u64,
    /// Wall-clock spent certifying.
    pub elapsed: Duration,
}

/// Certify the optimal fixed II for `spec` on `m`, optionally seeded with
/// a known-feasible `ub_hint` (e.g. the greedy EMS II): with a hint the
/// solver only needs infeasibility proofs below it, and certification
/// closes as soon as the proven floor meets the hint.
pub fn certify(
    spec: &LoopSpec,
    m: &MachineConfig,
    cfg: &ExactConfig,
    ub_hint: Option<u32>,
) -> ExactResult {
    let t0 = Instant::now();
    let mut ic = if_convert(spec);
    rename_inductions(&mut ic.ops, &mut ic.spec);
    let ops = ic.ops;
    let live_out = ic.spec.live_out.clone();
    let edges = all_edges(&ops, &live_out, m);
    let n = ops.len();

    let mii = res_mii(&ops, m).max(crate::bounds::rec_mii(n, &edges));
    let cap = cfg.max_ii.unwrap_or(4 * n as u32 + 16);
    let mut nodes_left = cfg.max_nodes;
    let mut nodes_used = 0u64;
    let mut lb = mii;
    let mut ub = ub_hint;

    let finish = |outcome, schedule, nodes, elapsed| ExactResult {
        outcome,
        schedule,
        mii,
        nodes,
        elapsed,
    };

    loop {
        if let Some(u) = ub {
            if lb >= u {
                // Everything below the known-feasible ub is proven
                // infeasible: ub is the optimum. Spend remaining budget on
                // a witness schedule of our own (useful for code
                // generation); the hint certifies either way — unless the
                // search *disproves* the hint, in which case it was bogus
                // and is dropped.
                let before = nodes_left;
                let attempt = search_ii(&ops, &edges, u, m, &mut nodes_left);
                nodes_used += before - nodes_left;
                match attempt {
                    SearchOutcome::Feasible(time) => {
                        let stages = time.iter().map(|&t| t as u32 / u).max().unwrap_or(0) + 1;
                        let sched = ModuloSchedule {
                            ii: u,
                            time,
                            stages,
                            ops,
                            edges,
                        };
                        debug_assert!(sched.verify(m).is_ok());
                        crate::hook::check("certify (ub witness)", &live_out, m, &sched);
                        return finish(
                            Certification::Certified(u),
                            Some(sched),
                            nodes_used,
                            t0.elapsed(),
                        );
                    }
                    SearchOutcome::Budget => {
                        return finish(Certification::Certified(u), None, nodes_used, t0.elapsed());
                    }
                    SearchOutcome::Infeasible => {
                        debug_assert!(false, "ub hint {u} proven infeasible");
                        ub = None;
                        lb = u + 1;
                        continue;
                    }
                }
            }
        }
        if lb > cap {
            return finish(
                Certification::Bounded { lb, ub },
                None,
                nodes_used,
                t0.elapsed(),
            );
        }
        let before = nodes_left;
        match search_ii(&ops, &edges, lb, m, &mut nodes_left) {
            SearchOutcome::Feasible(time) => {
                nodes_used += before - nodes_left;
                let stages = time.iter().map(|&t| t as u32 / lb).max().unwrap_or(0) + 1;
                let sched = ModuloSchedule {
                    ii: lb,
                    time,
                    stages,
                    ops,
                    edges,
                };
                debug_assert!(sched.verify(m).is_ok());
                crate::hook::check("certify", &live_out, m, &sched);
                return finish(
                    Certification::Certified(lb),
                    Some(sched),
                    nodes_used,
                    t0.elapsed(),
                );
            }
            SearchOutcome::Infeasible => {
                nodes_used += before - nodes_left;
                lb += 1;
            }
            SearchOutcome::Budget => {
                nodes_used += before - nodes_left;
                return finish(
                    Certification::Bounded { lb, ub },
                    None,
                    nodes_used,
                    t0.elapsed(),
                );
            }
        }
    }
}

enum SearchOutcome {
    Feasible(Vec<usize>),
    Infeasible,
    Budget,
}

/// Exhaustive (up to the node budget) search for a feasible schedule at a
/// fixed `ii`.
fn search_ii(
    ops: &[(psp_ir::Operation, psp_predicate::PredicateMatrix)],
    edges: &[ModEdge],
    ii: u32,
    m: &MachineConfig,
    nodes_left: &mut u64,
) -> SearchOutcome {
    let n = ops.len();
    if n == 0 {
        return SearchOutcome::Feasible(Vec::new());
    }
    let Some(d) = longest_paths(n, edges, ii) else {
        return SearchOutcome::Infeasible; // positive recurrence cycle
    };
    let max_lat = edges.iter().map(|e| e.lat as i64).max().unwrap_or(0).max(1);
    let horizon = n as i64 * (ii as i64 + max_lat); // exclusive

    // Initial windows from the closure: t_j ≥ 0 + D[i][j], t_j ≤ (T−1) − D[j][i].
    let mut est = vec![0i64; n];
    let mut lst = vec![horizon - 1; n];
    for j in 0..n {
        for i in 0..n {
            if d[i * n + j] > est[j] {
                est[j] = d[i * n + j].max(est[j]);
            }
            if d[j * n + i] != NEG_INF {
                lst[j] = lst[j].min(horizon - 1 - d[j * n + i]);
            }
        }
        if est[j] > lst[j] {
            return SearchOutcome::Infeasible;
        }
    }

    let mut st = Search {
        n,
        ii: ii as usize,
        m,
        ops,
        d: &d,
        placed: vec![None; n],
        table: vec![ResourceUse::empty(); ii as usize],
        failed: HashSet::new(),
        nodes_left,
    };
    match st.dfs(&est, &lst, 0) {
        Dfs::Found => SearchOutcome::Feasible(
            st.placed
                .iter()
                .map(|t| t.expect("all ops placed") as usize)
                .collect(),
        ),
        Dfs::Exhausted => SearchOutcome::Infeasible,
        Dfs::Budget => SearchOutcome::Budget,
    }
}

enum Dfs {
    Found,
    Exhausted,
    Budget,
}

/// Memo key: which ops remain, their windows, and the residual resource
/// table — a sufficient summary of a partial state (see module docs).
/// Stored in full; a truncated hash could collide and unsoundly prune a
/// feasible subtree.
type StateKey = (Vec<(u32, i64, i64)>, Vec<(u32, u32, u32)>);

struct Search<'a> {
    n: usize,
    ii: usize,
    m: &'a MachineConfig,
    ops: &'a [(psp_ir::Operation, psp_predicate::PredicateMatrix)],
    d: &'a [i64],
    placed: Vec<Option<i64>>,
    table: Vec<ResourceUse>,
    failed: HashSet<StateKey>,
    nodes_left: &'a mut u64,
}

impl Search<'_> {
    fn state_key(&self, est: &[i64], lst: &[i64]) -> StateKey {
        let windows = (0..self.n)
            .filter(|&j| self.placed[j].is_none())
            .map(|j| (j as u32, est[j], lst[j]))
            .collect();
        let table = self
            .table
            .iter()
            .map(|u| (u.alu, u.mem, u.branch))
            .collect();
        (windows, table)
    }

    fn dfs(&mut self, est: &[i64], lst: &[i64], depth: usize) -> Dfs {
        if depth == self.n {
            return Dfs::Found;
        }
        let key = self.state_key(est, lst);
        if self.failed.contains(&key) {
            return Dfs::Exhausted;
        }
        // Most constrained first: smallest window, lowest index breaks ties.
        let pick = (0..self.n)
            .filter(|&j| self.placed[j].is_none())
            .min_by_key(|&j| (lst[j] - est[j], j))
            .expect("unplaced op exists below depth n");

        for t in est[pick]..=lst[pick] {
            if *self.nodes_left == 0 {
                return Dfs::Budget;
            }
            *self.nodes_left -= 1;
            let slot = (t as usize) % self.ii;
            if !self.table[slot].can_accept(self.ops[pick].0.res_class(), self.m) {
                continue;
            }
            // Tighten the remaining windows through the closure.
            let mut est2 = est.to_vec();
            let mut lst2 = lst.to_vec();
            let mut empty = false;
            for j in 0..self.n {
                if self.placed[j].is_some() || j == pick {
                    continue;
                }
                let fwd = self.d[pick * self.n + j];
                if fwd != NEG_INF {
                    est2[j] = est2[j].max(t + fwd);
                }
                let back = self.d[j * self.n + pick];
                if back != NEG_INF {
                    lst2[j] = lst2[j].min(t - back);
                }
                if est2[j] > lst2[j] {
                    empty = true;
                    break;
                }
            }
            if empty {
                continue;
            }
            self.placed[pick] = Some(t);
            self.table[slot].add(&self.ops[pick].0);
            est2[pick] = t;
            lst2[pick] = t;
            match self.dfs(&est2, &lst2, depth + 1) {
                Dfs::Found => return Dfs::Found,
                Dfs::Budget => return Dfs::Budget,
                Dfs::Exhausted => {}
            }
            self.table[slot].sub(&self.ops[pick].0);
            self.placed[pick] = None;
        }
        self.failed.insert(key);
        Dfs::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name};

    #[test]
    fn vecmin_certifies_at_three_wide() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let res = certify(&kernel.spec, &m, &ExactConfig::default(), None);
        assert_eq!(res.outcome, Certification::Certified(3), "{:?}", res);
        let sched = res.schedule.expect("witness schedule");
        sched.verify(&m).unwrap();
        assert_eq!(sched.ii, 3);
        assert_eq!(res.mii, 3, "floor met: zero search needed beyond it");
    }

    #[test]
    fn hint_closes_certification_at_the_floor() {
        // With ub_hint equal to the analytic floor no infeasibility proofs
        // are needed; only the witness search at the certified II runs.
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let res = certify(&kernel.spec, &m, &ExactConfig::default(), Some(3));
        assert_eq!(res.outcome, Certification::Certified(3));
        let sched = res.schedule.expect("witness at the certified II");
        sched.verify(&m).unwrap();
    }

    #[test]
    fn budget_exhaustion_is_a_sound_interval() {
        let kernel = by_name("vecmin").unwrap();
        let m = MachineConfig::paper_default();
        let cfg = ExactConfig {
            max_nodes: 0,
            ..ExactConfig::default()
        };
        let res = certify(&kernel.spec, &m, &cfg, Some(9));
        match res.outcome {
            Certification::Bounded { lb, ub } => {
                assert_eq!(lb, 3, "the analytic floor survives a zero budget");
                assert_eq!(ub, Some(9));
            }
            other => panic!("expected interval, got {other:?}"),
        }
    }

    #[test]
    fn all_kernels_certify_within_default_budget() {
        // The acceptance bar: the default budget certifies (not merely
        // bounds) the paper kernels.
        let m = MachineConfig::paper_default();
        let mut certified = 0usize;
        let total = all_kernels().len();
        for kernel in all_kernels() {
            let res = certify(&kernel.spec, &m, &ExactConfig::default(), None);
            match res.outcome {
                Certification::Certified(ii) => {
                    certified += 1;
                    assert!(ii >= res.mii, "{}", kernel.name);
                    let sched = res.schedule.expect("search found its own witness");
                    sched
                        .verify(&m)
                        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                }
                Certification::Bounded { lb, ub } => {
                    assert!(ub.is_none_or(|u| lb <= u), "{}", kernel.name);
                }
            }
        }
        assert!(
            certified * 4 >= total * 3,
            "only {certified}/{total} kernels certified"
        );
    }

    #[test]
    fn narrow_machine_raises_the_certified_ii() {
        let kernel = by_name("vecmin").unwrap();
        let wide = certify(
            &kernel.spec,
            &MachineConfig::paper_default(),
            &ExactConfig::default(),
            None,
        );
        let narrow = certify(
            &kernel.spec,
            &MachineConfig::narrow(1, 1, 1),
            &ExactConfig::default(),
            None,
        );
        let (Some(w), Some(n)) = (wide.outcome.ub(), narrow.outcome.ub()) else {
            panic!("both should certify");
        };
        assert!(n > w, "narrow {n} vs wide {w}");
    }
}
