//! Dependence graph over a straight-line list of (guarded) operations.
//!
//! Edge latencies follow the tree-VLIW parallel-cycle semantics:
//!
//! * flow (def → use): the producer's latency (consumer strictly later for
//!   unit latency);
//! * anti (use → def): 0 — reads see pre-cycle state, so writer and reader
//!   may share a cycle but the writer may not come earlier;
//! * output (def → def): 1 — two same-cycle writes to one register are a
//!   conflict (unless the writers' path matrices are disjoint, in which
//!   case at most one commits and *no* edge is needed);
//! * memory: store→load 1, load→store 0, store→store 1, pruned by
//!   [`psp_ir::MemAccess::may_alias`] with induction-stride knowledge;
//! * `BREAK` protocol: observable operations (stores, live-out defs)
//!   textually before a BREAK must not sink past it (edge, latency 0);
//!   observable operations after a BREAK must come strictly later (edge,
//!   latency 1); BREAKs keep their relative order (latency 0).
//!
//! Operations whose control matrices are disjoint lie on different paths
//! and never interfere — no edges at all, the PSP insight reused here.

use psp_ir::{mem_access, AluOp, OpKind, Operand, Operation, Reg, RegRef};
use psp_machine::MachineConfig;
use psp_predicate::intern::cached_disjoint;
use psp_predicate::PredicateMatrix;
use std::collections::BTreeMap;

/// A dependence DAG in adjacency-list form.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Number of operations.
    pub n: usize,
    /// `succs[i]` = `(j, latency)` edges.
    pub succs: Vec<Vec<(usize, u32)>>,
    /// `preds[j]` = `(i, latency)` edges.
    pub preds: Vec<Vec<(usize, u32)>>,
}

impl DepGraph {
    fn new(n: usize) -> Self {
        Self {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    fn add(&mut self, i: usize, j: usize, lat: u32) {
        debug_assert!(i < j, "edges follow program order");
        if let Some(e) = self.succs[i].iter_mut().find(|(t, _)| *t == j) {
            e.1 = e.1.max(lat);
            if let Some(p) = self.preds[j].iter_mut().find(|(s, _)| *s == i) {
                p.1 = p.1.max(lat);
            }
            return;
        }
        self.succs[i].push((j, lat));
        self.preds[j].push((i, lat));
    }

    /// Longest-path height of each node to any sink (sum of latencies,
    /// counting each node's own unit slot) — the list-scheduling priority.
    pub fn heights(&self) -> Vec<u32> {
        let mut h = vec![0u32; self.n];
        for i in (0..self.n).rev() {
            let mut best = 0;
            for &(j, lat) in &self.succs[i] {
                best = best.max(lat + h[j]);
            }
            h[i] = best;
        }
        h
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

/// Per-iteration stride of unit-induction registers: a register with
/// exactly one unguarded definition of the form `r = r ± imm`.
pub fn induction_strides(ops: &[(Operation, PredicateMatrix)]) -> BTreeMap<Reg, i64> {
    let mut defs: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
    for (i, (op, _)) in ops.iter().enumerate() {
        for d in op.defs() {
            if let RegRef::Gpr(r) = d {
                defs.entry(r).or_default().push(i);
            }
        }
    }
    let mut out = BTreeMap::new();
    for (r, sites) in defs {
        if sites.len() != 1 {
            continue;
        }
        let (op, ctrl) = &ops[sites[0]];
        if op.guard.is_some() || !ctrl.is_universe() {
            continue;
        }
        if let OpKind::Alu { op: alu, dst, a, b } = op.kind {
            if dst != r {
                continue;
            }
            let stride = match (alu, a, b) {
                (AluOp::Add, Operand::Reg(x), Operand::Imm(c)) if x == r => Some(c),
                (AluOp::Add, Operand::Imm(c), Operand::Reg(x)) if x == r => Some(c),
                (AluOp::Sub, Operand::Reg(x), Operand::Imm(c)) if x == r => Some(-c),
                _ => None,
            };
            if let Some(s) = stride {
                out.insert(r, s);
            }
        }
    }
    out
}

/// Whether `op` must stay ordered relative to BREAKs: it has an observable
/// side effect if the loop exits (store or definition of a live-out
/// register).
fn is_observable(op: &Operation, live_out: &[RegRef]) -> bool {
    if op.is_store() {
        return true;
    }
    op.defs().iter().any(|d| live_out.contains(d))
}

/// Build the dependence graph for one straight-line iteration.
pub fn build_deps(
    ops: &[(Operation, PredicateMatrix)],
    live_out: &[RegRef],
    m: &MachineConfig,
) -> DepGraph {
    let strides = induction_strides(ops);
    let stride_of = |r: Reg| strides.get(&r).copied();
    let mut g = DepGraph::new(ops.len());

    #[allow(clippy::needless_range_loop)]
    for j in 0..ops.len() {
        let (opj, mj) = &ops[j];
        for i in 0..j {
            let (opi, mi) = &ops[i];
            if cached_disjoint(mi, mj) {
                continue; // different paths never co-execute
            }
            let defs_i = opi.defs();
            let uses_i = opi.uses();
            let defs_j = opj.defs();
            let uses_j = opj.uses();
            // Flow: i defines something j reads.
            if defs_i.iter().any(|d| uses_j.contains(d)) {
                g.add(i, j, m.latency(opi));
            }
            // Anti: i reads something j overwrites.
            if uses_i.iter().any(|u| defs_j.contains(u)) {
                g.add(i, j, 0);
            }
            // Output: both write the same register.
            if defs_i.iter().any(|d| defs_j.contains(d)) {
                g.add(i, j, 1);
            }
            // Memory.
            if let (Some(ai), Some(aj)) = (mem_access(opi), mem_access(opj)) {
                if ai.interferes(&aj) && ai.may_alias(&aj, 0, stride_of) {
                    let lat = match (ai.kind, aj.kind) {
                        (psp_ir::AccessKind::Write, psp_ir::AccessKind::Read) => 1,
                        (psp_ir::AccessKind::Read, psp_ir::AccessKind::Write) => 0,
                        _ => 1, // write-write
                    };
                    g.add(i, j, lat);
                }
            }
            // BREAK protocol.
            match (opi.is_break(), opj.is_break()) {
                (false, true) if is_observable(opi, live_out) => g.add(i, j, 0),
                (true, false) if is_observable(opj, live_out) => g.add(i, j, 1),
                (true, true) => g.add(i, j, 0),
                _ => {}
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifconv::if_convert;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp};

    fn u() -> PredicateMatrix {
        PredicateMatrix::universe()
    }

    #[test]
    fn flow_anti_output_edges() {
        let m = MachineConfig::paper_default();
        let ops = vec![
            (add(Reg(0), Reg(1), 1i64), u()), // 0: def R0
            (add(Reg(2), Reg(0), 1i64), u()), // 1: use R0 (flow from 0)
            (add(Reg(0), Reg(3), 1i64), u()), // 2: redef R0 (anti from 1, output from 0)
        ];
        let g = build_deps(&ops, &[], &m);
        assert!(g.succs[0].contains(&(1, 1)), "flow lat 1");
        assert!(g.succs[1].contains(&(2, 0)), "anti lat 0");
        assert!(g.succs[0].contains(&(2, 1)), "output lat 1");
    }

    #[test]
    fn disjoint_paths_have_no_edges() {
        let m = MachineConfig::paper_default();
        let t = PredicateMatrix::single(0, 0, true);
        let f = PredicateMatrix::single(0, 0, false);
        let ops = vec![
            (copy(Reg(0), 1i64), t),
            (copy(Reg(0), 2i64), f), // same destination, opposite path
        ];
        let g = build_deps(&ops, &[], &m);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn memory_edges_respect_strides() {
        let m = MachineConfig::paper_default();
        let x = ArrayId(0);
        // k is a unit induction register here.
        let ops = vec![
            (store(x, Reg(0), Reg(1)), u()),
            (load(Reg(2), x, Reg(0)), u()), // same address: flow lat 1
            (add(Reg(0), Reg(0), 1i64), u()),
        ];
        let g = build_deps(&ops, &[], &m);
        assert!(g.succs[0].contains(&(1, 1)));
        // load -> induction add: anti on R0? no — add reads/writes R0, load
        // reads R0: anti edge exists from store/load to add (use->def).
        assert!(g.succs[1].contains(&(2, 0)));
    }

    #[test]
    fn break_protocol_edges() {
        let m = MachineConfig::paper_default();
        let x = ArrayId(0);
        let live_out = vec![RegRef::Gpr(Reg(5))];
        let ops = vec![
            (store(x, Reg(0), Reg(1)), u()), // 0: observable
            (break_(CcReg(0)), u()),         // 1
            (copy(Reg(5), Reg(2)), u()),     // 2: live-out def
            (copy(Reg(6), Reg(2)), u()),     // 3: scratch
        ];
        let g = build_deps(&ops, &live_out, &m);
        assert!(g.succs[0].contains(&(1, 0)), "store before break, lat 0");
        assert!(g.succs[1].contains(&(2, 1)), "live-out after break, lat 1");
        assert!(
            !g.succs[1].iter().any(|&(t, _)| t == 3),
            "scratch may float above the break"
        );
    }

    #[test]
    fn induction_stride_detection() {
        let ops = vec![
            (add(Reg(0), Reg(0), 1i64), u()),
            (sub(Reg(1), Reg(1), 2i64), u()),
            (add(Reg(2), Reg(3), 1i64), u()), // not self-increment
            (
                add(Reg(4), Reg(4), 1i64),
                PredicateMatrix::single(0, 0, true),
            ), // conditional
        ];
        let s = induction_strides(&ops);
        assert_eq!(s.get(&Reg(0)), Some(&1));
        assert_eq!(s.get(&Reg(1)), Some(&-2));
        assert_eq!(s.get(&Reg(2)), None);
        assert_eq!(s.get(&Reg(4)), None);
    }

    #[test]
    fn heights_accumulate_latencies() {
        let m = MachineConfig::paper_default();
        let ops = vec![
            (load(Reg(0), ArrayId(0), Reg(1)), u()),
            (cmp(CmpOp::Lt, CcReg(0), Reg(0), Reg(2)), u()),
            (break_(CcReg(0)), u()),
        ];
        let g = build_deps(&ops, &[], &m);
        let h = g.heights();
        assert_eq!(h, vec![2, 1, 0]);
    }

    #[test]
    fn vecmin_ifconverted_graph_has_expected_chains() {
        // Without renaming, the anti-dependence COPY m,k → ADD k,k,1 chains
        // the exit test behind the compare: LOAD → LT → COPY → ADD → GE →
        // BREAK gives the loads height 4.
        let spec = psp_kernels::by_name("vecmin").unwrap().spec;
        let ic = if_convert(&spec);
        let g = build_deps(&ic.ops, &ic.spec.live_out, &MachineConfig::paper_default());
        let h = g.heights();
        assert_eq!(h[0], 4);
        assert_eq!(h[1], 4);
        // Renaming breaks the anti-dependence and shortens the chain to 2.
        let mut ic = if_convert(&spec);
        let mut spec2 = ic.spec.clone();
        crate::rename::rename_inductions(&mut ic.ops, &mut spec2);
        let g = build_deps(&ic.ops, &spec2.live_out, &MachineConfig::paper_default());
        let h = g.heights();
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 2);
    }
}
