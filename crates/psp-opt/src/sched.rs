//! The fixed-II modulo-scheduling constraint system: dependence edges with
//! iteration distances over the if-converted, induction-renamed body, and
//! the verified [`ModuloSchedule`] container.
//!
//! Both the greedy EMS baseline (`psp-baselines::ems`) and the exact
//! branch-and-bound certifier ([`crate::exact`]) schedule against *this*
//! constraint system, so their IIs are directly comparable: the greedy
//! solution is a feasible point of the exact solver's search space, which
//! makes `exact II ≤ heuristic II` structural rather than empirical.
//!
//! The edge set is strong enough to make any satisfying assignment
//! *executable*: [`crate::kernelgen::modulo_to_vliw`] turns a verified
//! schedule into kernel code without modulo variable expansion, because the
//! distance-1 anti edges over all register pairs bound every value's
//! lifetime to one II (under the simulator's pre-cycle-read /
//! end-of-cycle-write semantics the equality case is safe).

use crate::depgraph::{build_deps, induction_strides};
use psp_ir::{mem_access, Operation, RegRef};
use psp_machine::{MachineConfig, ResourceUse};
use psp_predicate::PredicateMatrix;

/// A dependence edge with iteration distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModEdge {
    /// Source operation index.
    pub from: usize,
    /// Target operation index.
    pub to: usize,
    /// Latency.
    pub lat: u32,
    /// Iteration distance (0 = same iteration).
    pub dist: u32,
}

/// A verified modulo schedule.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// The initiation interval.
    pub ii: u32,
    /// Absolute issue slot of each operation within one iteration's
    /// schedule (slot / ii = stage).
    pub time: Vec<usize>,
    /// Number of overlapped stages.
    pub stages: u32,
    /// The scheduled operations (if-converted, renamed).
    pub ops: Vec<(Operation, PredicateMatrix)>,
    /// All dependence edges used.
    pub edges: Vec<ModEdge>,
}

impl ModuloSchedule {
    /// Check every dependence (`t_to + II·dist ≥ t_from + lat`) and the
    /// modulo resource table.
    pub fn verify(&self, m: &MachineConfig) -> Result<(), String> {
        for e in &self.edges {
            let lhs = self.time[e.to] as i64 + (self.ii as i64) * e.dist as i64;
            let rhs = self.time[e.from] as i64 + e.lat as i64;
            if lhs < rhs {
                return Err(format!(
                    "edge {}→{} (lat {}, dist {}) violated: {} < {}",
                    e.from, e.to, e.lat, e.dist, lhs, rhs
                ));
            }
        }
        let mut table = vec![ResourceUse::empty(); self.ii as usize];
        for (i, &t) in self.time.iter().enumerate() {
            table[t % self.ii as usize].add(&self.ops[i].0);
        }
        for (slot, u) in table.iter().enumerate() {
            if !u.fits(m) {
                return Err(format!("modulo slot {slot} over-subscribed"));
            }
        }
        Ok(())
    }

    /// Idealized dynamic cycles for `iterations` iterations: fill the
    /// pipeline once, then one II per iteration.
    pub fn estimated_cycles(&self, iterations: u64) -> u64 {
        (self.stages.saturating_sub(1) as u64) * self.ii as u64 + iterations * self.ii as u64
    }

    /// Resource-constrained lower bound on II for these ops (kept as a
    /// method for API compatibility; the bound itself lives in
    /// [`crate::bounds::res_mii`]).
    pub fn res_mii(ops: &[(Operation, PredicateMatrix)], m: &MachineConfig) -> u32 {
        crate::bounds::res_mii(ops, m)
    }
}

/// Is this operation observable after a loop exit (store / live-out def)?
fn is_observable(op: &Operation, live_out: &[RegRef]) -> bool {
    op.is_store() || op.defs().iter().any(|d| live_out.contains(d))
}

/// All edges: intra-iteration (from [`build_deps`]) plus distance-1
/// cross-iteration register, memory, and BREAK-speculation edges.
pub fn all_edges(
    ops: &[(Operation, PredicateMatrix)],
    live_out: &[RegRef],
    m: &MachineConfig,
) -> Vec<ModEdge> {
    let intra = build_deps(ops, live_out, m);
    let mut edges: Vec<ModEdge> = Vec::new();
    for (i, succ) in intra.succs.iter().enumerate() {
        for &(j, lat) in succ {
            edges.push(ModEdge {
                from: i,
                to: j,
                lat,
                dist: 0,
            });
        }
    }
    let strides = induction_strides(ops);
    let stride_of = |r: psp_ir::Reg| strides.get(&r).copied();
    // Cross-iteration edges (distance 1). No disjointness pruning: the
    // predicates of different iterations are distinct instances.
    for i in 0..ops.len() {
        for j in 0..ops.len() {
            let (a, _) = &ops[i];
            let (b, _) = &ops[j];
            // Flow: def in iteration k, use in iteration k+1 that reads it
            // (uses at positions ≤ i read the previous iteration's value).
            if j <= i && a.defs().iter().any(|d| b.uses().contains(d)) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: m.latency(a),
                    dist: 1,
                });
            }
            // Anti and output, distance 1 (usually slack, kept for rigor).
            if a.uses().iter().any(|u| b.defs().contains(u)) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 0,
                    dist: 1,
                });
            }
            if a.defs().iter().any(|d| b.defs().contains(d)) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 1,
                    dist: 1,
                });
            }
            // Memory at distance 1 (kernel addresses are unit-stride
            // affine with zero displacement, so distance ≥ 2 cannot alias
            // when distance 1 does not).
            if let (Some(ma), Some(mb)) = (mem_access(a), mem_access(b)) {
                if ma.interferes(&mb) && ma.may_alias(&mb, 1, stride_of) {
                    let lat = match (ma.kind, mb.kind) {
                        (psp_ir::AccessKind::Write, psp_ir::AccessKind::Read) => 1,
                        (psp_ir::AccessKind::Read, psp_ir::AccessKind::Write) => 0,
                        _ => 1,
                    };
                    edges.push(ModEdge {
                        from: i,
                        to: j,
                        lat,
                        dist: 1,
                    });
                }
            }
            // No speculation across the exit: observables of iteration k+1
            // wait for iteration k's BREAKs.
            if a.is_break() && (is_observable(b, live_out) || b.is_break()) {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 1,
                    dist: 1,
                });
            }
            // A BREAK of iteration k+1 only fires after iteration k ran to
            // completion, so every observable of iteration k must already
            // have committed (same cycle is fine: a fired BREAK still
            // commits its own cycle). Without this edge a schedule could
            // place an observable of iteration k *after* the next
            // iteration's exit and silently lose its effect in generated
            // kernel code.
            if is_observable(a, live_out) && b.is_break() {
                edges.push(ModEdge {
                    from: i,
                    to: j,
                    lat: 0,
                    dist: 1,
                });
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifconv::if_convert;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, Reg};

    fn u() -> PredicateMatrix {
        PredicateMatrix::universe()
    }

    #[test]
    fn observable_to_break_edge_present() {
        let x = ArrayId(0);
        let live_out = vec![RegRef::Gpr(Reg(5))];
        let ops = vec![
            (store(x, Reg(0), Reg(1)), u()), // 0: observable
            (copy(Reg(6), Reg(2)), u()),     // 1: scratch
            (break_(CcReg(0)), u()),         // 2
        ];
        let edges = all_edges(&ops, &live_out, &MachineConfig::paper_default());
        let has = |from, to, lat, dist| {
            edges.contains(&ModEdge {
                from,
                to,
                lat,
                dist,
            })
        };
        assert!(has(0, 2, 0, 1), "store must commit before the next break");
        assert!(
            !has(1, 2, 0, 1),
            "scratch defs owe the next break nothing (only an anti/flow edge could)"
        );
    }

    #[test]
    fn verified_schedule_respects_obs_break_edge() {
        // A source-after-break store must land within one II of the break:
        // the next iteration's BREAK may only fire once it has committed.
        // Placing it two cycles down at II=1 satisfies every older edge
        // (break→store intra lat 1, break→observable dist 1) but not the
        // new store→break distance-1 edge.
        let x = ArrayId(0);
        let ops = vec![(break_(CcReg(0)), u()), (store(x, Reg(0), Reg(1)), u())];
        let edges = all_edges(&ops, &[], &MachineConfig::paper_default());
        let bad = ModuloSchedule {
            ii: 1,
            time: vec![0, 2],
            stages: 3,
            ops: ops.clone(),
            edges: edges.clone(),
        };
        assert!(bad.verify(&MachineConfig::paper_default()).is_err());
        let good = ModuloSchedule {
            ii: 1,
            time: vec![0, 1],
            stages: 2,
            ops,
            edges,
        };
        good.verify(&MachineConfig::paper_default()).unwrap();
    }

    #[test]
    fn vecmin_edges_cover_the_renamed_body() {
        let spec = psp_kernels::by_name("vecmin").unwrap().spec;
        let mut ic = if_convert(&spec);
        crate::rename::rename_inductions(&mut ic.ops, &mut ic.spec);
        let edges = all_edges(&ic.ops, &ic.spec.live_out, &MachineConfig::paper_default());
        // The recurrence m → load x[m] → cmp → copy m must appear: a
        // distance-1 flow edge from the guarded COPY back to the load.
        let copy_idx = ic
            .ops
            .iter()
            .position(|(o, _)| o.guard.is_some())
            .expect("guarded copy");
        assert!(edges
            .iter()
            .any(|e| e.from == copy_idx && e.dist == 1 && e.lat >= 1));
    }
}
