//! Kernel code generation for verified modulo schedules.
//!
//! DESIGN.md §4 originally scoped EMS out of executable code ("modulo
//! variable expansion is out of scope") and scored it with an idealized
//! cycle model. The constraint system of [`crate::sched::all_edges`] makes
//! expansion unnecessary: the distance-1 anti edges over *all* register
//! pairs force every write of a register to land no earlier than one II
//! after each of the previous iteration's reads, so a value's lifetime
//! never exceeds one II and no rotating copies are needed. (The equality
//! case — write and last read in the same cycle — is safe under the
//! simulator's pre-cycle-read / end-of-cycle-commit semantics.)
//!
//! The layout is the textbook one. With `P = (stages − 1) · II` prologue
//! cycles, absolute cycle `c` executes operation `i` of source iteration
//! `j` whenever `time[i] + j·II = c`:
//!
//! * **prologue** — absolute cycles `0 .. P`, filling the pipeline;
//! * **kernel** — a single block of `II` cycles (cycle `s` holds every op
//!   with `time[i] mod II = s`) ending in an unconditional back edge; each
//!   pass retires exactly one source iteration;
//! * **epilogue** — empty: a fired BREAK's cycle still commits, and the
//!   edge system guarantees every observable of completed iterations has
//!   committed by then while no observable of a later iteration has
//!   issued (see the observable↔BREAK distance-1 edges in `all_edges`).
//!
//! Short trip counts exit from inside the prologue; the simulator
//! ([`psp-sim`]'s `run_vliw`) handles that uniformly.

use crate::sched::ModuloSchedule;
use psp_machine::{Succ, VliwBlock, VliwLoop, VliwTerm};
use psp_predicate::PredicateMatrix;

/// Compile a verified modulo schedule into an executable [`VliwLoop`].
///
/// The caller is expected to have checked [`ModuloSchedule::verify`]; the
/// construction here preserves exactly the properties that check
/// establishes (per-slot resource fit, all dependence inequalities).
pub fn modulo_to_vliw(sched: &ModuloSchedule, name: impl Into<String>) -> VliwLoop {
    let ii = sched.ii as usize;
    let prologue_cycles = (sched.stages.saturating_sub(1) as usize) * ii;

    // Prologue: cycle c holds op i of iteration j = (c − time[i]) / II for
    // every i with time[i] ≤ c and time[i] ≡ c (mod II).
    let mut prologue = vec![Vec::new(); prologue_cycles];
    #[allow(clippy::needless_range_loop)]
    for c in 0..prologue_cycles {
        for (i, &t) in sched.time.iter().enumerate() {
            if t <= c && (c - t) % ii == 0 {
                prologue[c].push(sched.ops[i].0);
            }
        }
    }

    // Kernel: one block of II cycles; slot s holds every op with
    // time[i] mod II = s. The first pass already runs each op with a
    // non-negative iteration index because time[i] < stages · II.
    let mut cycles = vec![Vec::new(); ii];
    for (i, &t) in sched.time.iter().enumerate() {
        cycles[t % ii].push(sched.ops[i].0);
    }

    VliwLoop {
        name: name.into(),
        prologue,
        blocks: vec![VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles,
            term: VliwTerm::Jump(Succ::back(0)),
        }],
        entry: 0,
        epilogue: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{certify, Certification, ExactConfig};
    use psp_kernels::{all_kernels, by_name, KernelData};
    use psp_machine::MachineConfig;
    use psp_sim::{check_equivalence, EquivConfig};

    fn exact_program(name: &str, m: &MachineConfig) -> (psp_ir::LoopSpec, VliwLoop) {
        let kernel = by_name(name).unwrap();
        let res = certify(&kernel.spec, m, &ExactConfig::default(), None);
        let sched = res.schedule.expect("kernel certifies with a witness");
        sched.verify(m).unwrap();
        (kernel.spec.clone(), modulo_to_vliw(&sched, name))
    }

    #[test]
    fn vecmin_exact_kernel_structure() {
        let m = MachineConfig::paper_default();
        let (_, prog) = exact_program("vecmin", &m);
        prog.validate(&m).unwrap();
        assert_eq!(prog.blocks.len(), 1);
        assert_eq!(prog.blocks[0].cycles.len(), 3, "II = 3 kernel");
        assert_eq!(prog.ii_range(), Some((3, 3)));
        assert!(prog.epilogue.is_empty());
    }

    #[test]
    fn exact_kernels_are_equivalent_to_the_reference() {
        let m = MachineConfig::paper_default();
        for kernel in all_kernels() {
            let res = certify(&kernel.spec, &m, &ExactConfig::default(), None);
            let Certification::Certified(_) = res.outcome else {
                continue; // interval-only outcomes carry no witness
            };
            let sched = res.schedule.expect("certified search keeps its witness");
            let prog = modulo_to_vliw(&sched, kernel.name);
            prog.validate(&m)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for (seed, len) in EquivConfig::new(4, 21).trial_inputs() {
                let data = KernelData::random(seed, len);
                let init = kernel.initial_state(&data);
                let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 10_000_000)
                    .unwrap_or_else(|e| panic!("{} len {len}: {e}\n{prog}", kernel.name));
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }

    #[test]
    fn narrow_machine_exact_kernels_stay_equivalent() {
        let m = MachineConfig::narrow(2, 1, 1);
        for name in ["vecmin", "cond_sum", "sign_store"] {
            let (spec, prog) = exact_program(name, &m);
            prog.validate(&m).unwrap();
            let kernel = by_name(name).unwrap();
            for (seed, len) in EquivConfig::new(3, 31).trial_inputs() {
                let data = KernelData::random(seed, len);
                let init = kernel.initial_state(&data);
                let (_, run) = check_equivalence(&spec, &prog, &init, 10_000_000)
                    .unwrap_or_else(|e| panic!("{name} len {len}: {e}\n{prog}"));
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }
}
