//! If-conversion: flatten a structured loop body into guarded straight-line
//! code.
//!
//! Every operation nested under IFs receives an execution [`psp_ir::Guard`].
//! Single-level nesting guards directly on the IF's condition register;
//! deeper nesting materializes compound predicates with `CCAND` operations
//! (inserted where the inner IF used to sit). The IF operations themselves
//! disappear — in a fully if-converted block nothing branches.
//!
//! Each emitted operation keeps its control-dependence predicate matrix so
//! the dependence builder can prune edges between operations on disjoint
//! paths.

use psp_ir::{flatten, op::build, Guard, LoopSpec, Operation};
use psp_predicate::PredicateMatrix;
use std::collections::BTreeMap;

/// Result of if-conversion.
#[derive(Debug, Clone)]
pub struct IfConverted {
    /// Guarded operations in source order, with their control matrices.
    pub ops: Vec<(Operation, PredicateMatrix)>,
    /// Spec clone with the condition registers added for compound guards.
    pub spec: LoopSpec,
}

/// If-convert the body of `spec`.
pub fn if_convert(spec: &LoopSpec) -> IfConverted {
    let mut spec = spec.clone();
    let flat = flatten(&spec);

    // Which condition register each IF row tests.
    let mut cc_of_row: BTreeMap<u32, psp_ir::CcReg> = BTreeMap::new();
    for f in &flat {
        if let (Some(row), psp_ir::OpKind::If { cc }) = (f.computes_if, f.op.kind) {
            cc_of_row.insert(row, cc);
        }
    }

    // Compound guards materialized so far: matrix -> condition register
    // that is true exactly on the matrix's paths.
    let mut compound: BTreeMap<PredicateMatrix, psp_ir::CcReg> = BTreeMap::new();
    let mut out: Vec<(Operation, PredicateMatrix)> = Vec::new();

    for f in &flat {
        if f.op.is_if() {
            continue; // IFs vanish under if-conversion
        }
        let guard = guard_for(&f.ctrl, &cc_of_row, &mut compound, &mut spec, &mut out);
        let mut op = f.op;
        op.guard = guard;
        out.push((op, f.ctrl.clone()));
    }

    IfConverted { ops: out, spec }
}

/// The guard implementing control matrix `ctrl`, materializing `CCAND`
/// chains on demand (appended to `out` right before the requesting op).
fn guard_for(
    ctrl: &PredicateMatrix,
    cc_of_row: &BTreeMap<u32, psp_ir::CcReg>,
    compound: &mut BTreeMap<PredicateMatrix, psp_ir::CcReg>,
    spec: &mut LoopSpec,
    out: &mut Vec<(Operation, PredicateMatrix)>,
) -> Option<Guard> {
    let entries: Vec<(u32, i32, bool)> = ctrl.constrained().collect();
    match entries.len() {
        0 => None,
        1 => {
            let (row, _col, val) = entries[0];
            let cc = *cc_of_row
                .get(&row)
                .unwrap_or_else(|| panic!("no IF computes predicate row {row}"));
            Some(Guard { cc, on_true: val })
        }
        _ => {
            let cc = compound_cc(ctrl, cc_of_row, compound, spec, out);
            Some(Guard { cc, on_true: true })
        }
    }
}

/// Condition register equal to the conjunction of all entries of `ctrl`
/// (`ctrl` has ≥ 2 constrained entries).
fn compound_cc(
    ctrl: &PredicateMatrix,
    cc_of_row: &BTreeMap<u32, psp_ir::CcReg>,
    compound: &mut BTreeMap<PredicateMatrix, psp_ir::CcReg>,
    spec: &mut LoopSpec,
    out: &mut Vec<(Operation, PredicateMatrix)>,
) -> psp_ir::CcReg {
    if let Some(&cc) = compound.get(ctrl) {
        return cc;
    }
    let entries: Vec<(u32, i32, bool)> = ctrl.constrained().collect();
    // Peel the highest row: inner IFs have higher ids than the IFs they
    // nest under, so its condition register is computed last.
    let &(last_row, last_col, last_val) = entries.last().expect("compound needs entries");
    let rest = ctrl.with(last_row, last_col, psp_predicate::PredElem::Both);
    let (a, a_val) = if rest.constrained_len() == 1 {
        let (row, _c, val) = rest.constrained().next().unwrap();
        (cc_of_row[&row], val)
    } else {
        (compound_cc(&rest, cc_of_row, compound, spec, out), true)
    };
    let b = cc_of_row[&last_row];
    let dst = spec.fresh_cc();
    // The CCAND runs unconditionally (its sources are scratch condition
    // registers), so it carries the universe matrix.
    out.push((
        build::cc_and(dst, a, a_val, b, last_val),
        PredicateMatrix::universe(),
    ));
    compound.insert(ctrl.clone(), dst);
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::OpKind;

    #[test]
    fn vecmin_ifconversion_shape() {
        let spec = psp_kernels::by_name("vecmin").unwrap().spec;
        let ic = if_convert(&spec);
        // 8 source ops - 1 IF = 7, no compound guards needed.
        assert_eq!(ic.ops.len(), 7);
        assert!(ic.ops.iter().all(|(o, _)| !o.is_if()));
        let copy = ic
            .ops
            .iter()
            .find(|(o, _)| matches!(o.kind, OpKind::Copy { .. }))
            .unwrap();
        let g = copy.0.guard.unwrap();
        assert!(g.on_true);
        assert_eq!(g.cc.0, 0);
        // Everything else unguarded.
        assert_eq!(ic.ops.iter().filter(|(o, _)| o.guard.is_some()).count(), 1);
    }

    #[test]
    fn nested_ifs_materialize_ccand() {
        let spec = psp_kernels::by_name("clamp_store").unwrap().spec;
        let ic = if_convert(&spec);
        let ccands: Vec<_> = ic
            .ops
            .iter()
            .filter(|(o, _)| matches!(o.kind, OpKind::CcAnd { .. }))
            .collect();
        assert_eq!(ccands.len(), 1, "inner clamp arm needs one CCAND");
        // The COPY v,hi must be guarded by the fresh compound register.
        let guarded: Vec<_> = ic.ops.iter().filter(|(o, _)| o.guard.is_some()).collect();
        assert!(guarded.len() >= 3); // copy lo, cmp hi?, copy hi…
        let compound_cc = match ccands[0].0.kind {
            OpKind::CcAnd { dst, .. } => dst,
            _ => unreachable!(),
        };
        assert!(compound_cc.0 >= spec.n_ccs, "fresh register allocated");
        assert!(ic
            .ops
            .iter()
            .any(|(o, _)| o.guard.map(|g| g.cc) == Some(compound_cc)));
        // The CCAND appears before its consumer.
        let and_pos = ic
            .ops
            .iter()
            .position(|(o, _)| matches!(o.kind, OpKind::CcAnd { .. }))
            .unwrap();
        let use_pos = ic
            .ops
            .iter()
            .position(|(o, _)| o.guard.map(|g| g.cc) == Some(compound_cc))
            .unwrap();
        assert!(and_pos < use_pos);
    }

    #[test]
    fn two_cond_compound_guard_semantics() {
        // Guards must implement (cc0 == 1) && (cc1 == 1) for the inner add.
        let spec = psp_kernels::by_name("two_cond").unwrap().spec;
        let ic = if_convert(&spec);
        let add_acc = ic
            .ops
            .iter()
            .find(|(o, m)| {
                matches!(
                    o.kind,
                    OpKind::Alu {
                        op: psp_ir::AluOp::Add,
                        ..
                    }
                ) && m.constrained_len() == 2
            })
            .expect("nested add present");
        assert!(add_acc.0.guard.is_some());
    }

    #[test]
    fn compound_guards_are_shared() {
        // Two ops under the same nested branch share one CCAND (runmax has
        // two ops under a single IF — single guard, no CCAND; use a custom
        // spec with two ops under nested IFs).
        use psp_ir::op::build::*;
        use psp_ir::{CmpOp, LoopBuilder};
        let mut b = LoopBuilder::new("shared");
        let r = b.reg();
        let s = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        let ccb = b.cc();
        b.op(cmp(CmpOp::Gt, cc0, r, 0i64));
        b.if_else(
            cc0,
            |b| {
                b.op(cmp(CmpOp::Lt, cc1, r, 9i64));
                b.if_else(
                    cc1,
                    |b| {
                        b.op(add(r, r, 1i64));
                        b.op(add(s, s, 2i64));
                    },
                    |_| {},
                );
            },
            |_| {},
        );
        b.op(cmp(CmpOp::Ge, ccb, r, 100i64));
        b.break_(ccb);
        let spec = b.finish([r, s], [r, s]);
        let ic = if_convert(&spec);
        let n_ccand = ic
            .ops
            .iter()
            .filter(|(o, _)| matches!(o.kind, OpKind::CcAnd { .. }))
            .count();
        assert_eq!(n_ccand, 1);
    }
}
