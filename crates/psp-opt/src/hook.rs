//! Registry for an externally installed modulo-schedule validator.
//!
//! Same pattern as `psp_machine::hook`: `psp_verify::install()` registers
//! an independent checker for [`ModuloSchedule`] witnesses (from the exact
//! certifier and from the EMS baseline); until then [`check`] is a no-op.
//! Gated to debug builds unless `PSP_VALIDATE` is set.

use crate::ModuloSchedule;
use psp_ir::RegRef;
use psp_machine::MachineConfig;
use std::sync::OnceLock;

/// An independent validator over a claimed modulo schedule. The first
/// argument is the live-out set the producer scheduled against (the
/// observable-vs-BREAK protocol depends on it; [`ModuloSchedule`] itself
/// does not carry it).
pub type ModuloValidator = fn(&[RegRef], &MachineConfig, &ModuloSchedule) -> Vec<String>;

static HOOK: OnceLock<ModuloValidator> = OnceLock::new();

/// Install the validator (first caller wins; later calls are ignored).
pub fn install(f: ModuloValidator) {
    let _ = HOOK.set(f);
}

/// Validate a modulo-schedule witness; panics with every violation on
/// rejection.
pub fn check(producer: &str, live_out: &[RegRef], machine: &MachineConfig, sched: &ModuloSchedule) {
    if !psp_machine::hook::enabled() {
        return;
    }
    if let Some(f) = HOOK.get() {
        let violations = f(live_out, machine, sched);
        assert!(
            violations.is_empty(),
            "independent validator rejected the modulo schedule from {producer} (II {}):\n  {}",
            sched.ii,
            violations.join("\n  ")
        );
    }
}
