//! Lower bounds on the initiation interval of a fixed-II modulo schedule.
//!
//! * [`res_mii`] — the resource bound: each resource class must fit its
//!   per-iteration demand into II cycles of machine width (previously
//!   private to the EMS baseline; now the single owner).
//! * [`rec_mii`] — the recurrence bound: the smallest II at which no
//!   dependence cycle has positive weight under `lat − II·dist` (the
//!   classic max-cycle-ratio bound, computed by monotone binary search
//!   with a Floyd–Warshall positive-cycle oracle).
//! * [`mii_lower_bound`] — `max` of both over the if-converted,
//!   induction-renamed body: the search floor shared by the greedy EMS
//!   scheduler and the exact certifier.
//!
//! Both bounds are sound for *any* scheduler of the same constraint system
//! ([`crate::sched::all_edges`]); they say nothing about the PSP driver's
//! variable per-path II, which may legitimately dip below `rec_mii` on some
//! paths (that asymmetry is the paper's central claim, and exactly what
//! `table_gap` measures).

use crate::ifconv::if_convert;
use crate::rename::rename_inductions;
use crate::sched::{all_edges, ModEdge};
use psp_ir::{LoopSpec, Operation};
use psp_machine::MachineConfig;
use psp_predicate::PredicateMatrix;

/// Sentinel for "no path" in longest-path matrices. Chosen so that adding
/// edge weights can never overflow back into the representable range.
pub(crate) const NEG_INF: i64 = i64::MIN / 4;

/// Resource-constrained lower bound on II for these ops.
pub fn res_mii(ops: &[(Operation, PredicateMatrix)], m: &MachineConfig) -> u32 {
    let mut u = psp_machine::ResourceUse::empty();
    for (op, _) in ops {
        u.add(op);
    }
    let ceil = |a: u32, b: u32| a.div_ceil(b.max(1));
    ceil(u.alu, m.n_alu)
        .max(ceil(u.mem, m.n_mem))
        .max(ceil(u.branch, m.n_branch))
        .max(1)
}

/// All-pairs longest paths under weights `lat − II·dist`, or `None` if the
/// graph has a positive-weight cycle (II is recurrence-infeasible).
///
/// Returns the row-major `n×n` matrix `D` with `D[i·n+j]` the longest path
/// weight from `i` to `j` (`NEG_INF` when unreachable). Any feasible
/// schedule satisfies `t_j − t_i ≥ D[i·n+j]`, which is what both the
/// certifier's window propagation and its instant infeasibility test use.
pub(crate) fn longest_paths(n: usize, edges: &[ModEdge], ii: u32) -> Option<Vec<i64>> {
    let mut d = vec![NEG_INF; n * n];
    for i in 0..n {
        d[i * n + i] = 0;
    }
    for e in edges {
        let w = e.lat as i64 - ii as i64 * e.dist as i64;
        let cell = &mut d[e.from * n + e.to];
        *cell = (*cell).max(w);
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == NEG_INF {
                continue;
            }
            for j in 0..n {
                let dkj = d[k * n + j];
                if dkj != NEG_INF && dik + dkj > d[i * n + j] {
                    d[i * n + j] = dik + dkj;
                }
            }
        }
        // Early out: a positive self-loop means a positive cycle.
        if (0..n).any(|i| d[i * n + i] > 0) {
            return None;
        }
    }
    Some(d)
}

/// Recurrence-constrained lower bound on II: the smallest II under which no
/// dependence cycle needs more than `II·dist` cycles of slack.
///
/// Every cycle of the dependence graph contains at least one distance-1
/// edge (the distance-0 subgraph follows program order), so cycle weights
/// are strictly decreasing in II and the feasibility predicate is monotone:
/// binary search applies.
pub fn rec_mii(n_ops: usize, edges: &[ModEdge]) -> u32 {
    if n_ops == 0 {
        return 1;
    }
    let mut lo: u32 = 1;
    let mut hi: u32 = edges
        .iter()
        .map(|e| e.lat as u64)
        .sum::<u64>()
        .max(1)
        .min(u32::MAX as u64) as u32;
    if longest_paths(n_ops, edges, lo).is_some() {
        return lo;
    }
    // Invariant: lo infeasible, hi feasible (at II = Σlat every cycle has
    // weight Σ_cycle lat − II·dist ≤ Σlat − II ≤ 0).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if longest_paths(n_ops, edges, mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// The certified search floor for fixed-II scheduling of `spec` on `m`:
/// `max(res_mii, rec_mii)` over the if-converted, induction-renamed body.
pub fn mii_lower_bound(spec: &LoopSpec, m: &MachineConfig) -> u32 {
    let mut ic = if_convert(spec);
    rename_inductions(&mut ic.ops, &mut ic.spec);
    let edges = all_edges(&ic.ops, &ic.spec.live_out, m);
    res_mii(&ic.ops, m).max(rec_mii(ic.ops.len(), &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{CcReg, CmpOp, Reg};
    use psp_kernels::{all_kernels, by_name};

    fn u() -> PredicateMatrix {
        PredicateMatrix::universe()
    }

    #[test]
    fn res_mii_counts_classes() {
        let m = MachineConfig::narrow(2, 1, 1);
        let ops = vec![
            (add(Reg(0), Reg(1), 1i64), u()),
            (add(Reg(2), Reg(3), 1i64), u()),
            (add(Reg(4), Reg(5), 1i64), u()),
            (load(Reg(6), psp_ir::ArrayId(0), Reg(1)), u()),
        ];
        // 3 ALU ops / 2 ALUs = 2; 1 mem / 1 = 1.
        assert_eq!(res_mii(&ops, &m), 2);
    }

    #[test]
    fn rec_mii_of_simple_recurrence() {
        // r = r + 1 every iteration with ALU latency 1: the self-cycle
        // needs II ≥ 1. A two-op chain r → s → r of unit latencies with a
        // distance-1 back edge needs II ≥ 2.
        let m = MachineConfig::paper_default();
        let ops = vec![
            (add(Reg(0), Reg(1), 1i64), u()), // r0 = r1 + 1
            (add(Reg(1), Reg(0), 1i64), u()), // r1 = r0 + 1
        ];
        let edges = all_edges(&ops, &[], &m);
        assert_eq!(rec_mii(ops.len(), &edges), 2);
    }

    #[test]
    fn vecmin_rec_mii_is_three() {
        // The true recurrence of vecmin after renaming: COPY m (guarded) →
        // LOAD x[m] → CMP → COPY m, three unit latencies per iteration.
        let m = MachineConfig::paper_default();
        assert_eq!(mii_lower_bound(&by_name("vecmin").unwrap().spec, &m), 3);
    }

    #[test]
    fn lower_bound_never_exceeds_a_feasible_schedule_length() {
        // Degenerate sanity: a loop with a single break has floor 1.
        let m = MachineConfig::paper_default();
        let ops = vec![
            (cmp(CmpOp::Ge, CcReg(0), Reg(0), Reg(1)), u()),
            (break_(CcReg(0)), u()),
        ];
        let edges = all_edges(&ops, &[], &m);
        assert_eq!(rec_mii(ops.len(), &edges), 1);
        assert_eq!(res_mii(&ops, &m), 1);
    }

    #[test]
    fn bounds_are_positive_on_all_kernels() {
        let m = MachineConfig::paper_default();
        let narrow = MachineConfig::narrow(1, 1, 1);
        for kernel in all_kernels() {
            let wide = mii_lower_bound(&kernel.spec, &m);
            let tight = mii_lower_bound(&kernel.spec, &narrow);
            assert!(wide >= 1, "{}", kernel.name);
            assert!(
                tight >= wide,
                "{}: narrowing resources cannot lower the floor",
                kernel.name
            );
        }
    }
}
