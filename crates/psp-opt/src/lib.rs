//! Exact initiation-interval certification for predicated loops.
//!
//! The PSP driver (`psp-core`) and the baselines (`psp-baselines`) are
//! heuristics: they produce *some* schedule and a score, but nothing says
//! how far that score sits from the optimum. This crate closes that gap
//! for the fixed-II modulo-scheduling model:
//!
//! * [`bounds`] — the shared lower bounds [`res_mii`] (resource) and
//!   [`rec_mii`] (recurrence, max-cycle-ratio by binary search), combined
//!   in [`mii_lower_bound`]. Both the greedy EMS baseline and the exact
//!   solver start from this floor.
//! * [`exact`] — a branch-and-bound modulo scheduler over exactly the
//!   same constraint system EMS uses ([`sched::all_edges`]), with
//!   longest-path window pruning, failed-state memoization, and an
//!   anytime node budget. [`certify`] returns either a proven-optimal
//!   `Certified(ii)` with a witness schedule or a sound interval
//!   `Bounded { lb, ub }` when the budget runs out.
//! * [`kernelgen`] — [`modulo_to_vliw`] compiles a verified
//!   [`ModuloSchedule`] into an executable `VliwLoop` (prologue + single
//!   kernel block), so exact schedules face the same differential
//!   equivalence check as every other technique in the repo.
//!
//! The if-conversion, induction-renaming, and dependence-graph passes
//! ([`ifconv`], [`rename`], [`depgraph`]) live here (moved from
//! `psp-baselines`, which re-exports them) because the constraint system
//! is now shared infrastructure rather than a baseline implementation
//! detail.
//!
//! A certified fixed-II optimum is a *floor for fixed-II schedulers
//! only*: PSP's variable per-path II can legitimately beat it on loops
//! with conditions — quantifying exactly that is experiment E8
//! (`psp-bench --bin table_gap`).

pub mod bounds;
pub mod depgraph;
pub mod exact;
pub mod hook;
pub mod ifconv;
pub mod kernelgen;
pub mod rename;
pub mod sched;

pub use bounds::{mii_lower_bound, rec_mii, res_mii};
pub use exact::{certify, Certification, ExactConfig, ExactResult};
pub use ifconv::{if_convert, IfConverted};
pub use kernelgen::modulo_to_vliw;
pub use rename::rename_inductions;
pub use sched::{all_edges, ModEdge, ModuloSchedule};
