//! Induction-variable renaming (the "renaming" of the paper's Fig. 1b).
//!
//! An anti-dependence from a late use of an induction register (e.g. the
//! guarded `COPY m, k` reading `k`) to its update (`k = k + 1`) would force
//! the update — and the exit-test chain behind it — to wait. Renaming the
//! update's destination to a fresh register and rewriting *later* uses
//! breaks the anti-dependence; a `COPY k, k'` appended at the end restores
//! the architectural value for the next iteration.

use psp_ir::{op::build, OpKind, Operand, Operation, Reg, RegRef};
use psp_predicate::PredicateMatrix;
use std::collections::BTreeMap;

/// Rename profitable induction updates in `ops`, allocating fresh registers
/// from `spec`. Returns the number of renames applied.
pub fn rename_inductions(
    ops: &mut Vec<(Operation, PredicateMatrix)>,
    spec: &mut psp_ir::LoopSpec,
) -> usize {
    // Registers defined anywhere in the body (for invariance tests).
    let mut def_sites: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
    for (i, (op, _)) in ops.iter().enumerate() {
        for d in op.defs() {
            if let RegRef::Gpr(r) = d {
                def_sites.entry(r).or_default().push(i);
            }
        }
    }
    let defined: Vec<Reg> = def_sites.keys().copied().collect();
    let is_invariant = |o: Operand| match o {
        Operand::Imm(_) => true,
        Operand::Reg(r) => !defined.contains(&r),
    };

    let mut renames = 0;
    let candidates: Vec<(Reg, usize)> = def_sites
        .iter()
        .filter(|(_, sites)| sites.len() == 1)
        .map(|(&r, sites)| (r, sites[0]))
        .collect();

    for (r, d) in candidates {
        if spec.live_out.contains(&RegRef::Gpr(r)) {
            // A stale architectural value after an early BREAK would be
            // observable.
            continue;
        }
        let (def_op, ctrl) = &ops[d];
        if def_op.guard.is_some() || !ctrl.is_universe() {
            continue; // conditional update: the copy-back could clobber
        }
        let renameable = match def_op.kind {
            OpKind::Alu { dst, a, b, .. } if dst == r => {
                let self_or_inv = |o: Operand| o == Operand::Reg(r) || is_invariant(o);
                self_or_inv(a) && self_or_inv(b)
            }
            OpKind::Copy { dst, src } if dst == r => is_invariant(src),
            _ => false,
        };
        if !renameable {
            continue;
        }
        // Profitable only when a later operation still reads the old name.
        let has_later_use = ops[d + 1..]
            .iter()
            .any(|(o, _)| o.uses().contains(&RegRef::Gpr(r)));
        if !has_later_use {
            continue;
        }
        let fresh = spec.fresh_reg();
        ops[d].0 = ops[d].0.with_dst_gpr(fresh);
        for (op, _) in ops[d + 1..].iter_mut() {
            *op = op.renamed_gpr(r, fresh);
        }
        ops.push((build::copy(r, fresh), PredicateMatrix::universe()));
        renames += 1;
    }
    renames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifconv::if_convert;
    use psp_ir::op::build::*;
    use psp_ir::{CcReg, CmpOp, Guard};

    #[test]
    fn vecmin_k_is_renamed() {
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut ic = if_convert(&kernel.spec);
        let n_before = ic.ops.len();
        let renames = rename_inductions(&mut ic.ops, &mut ic.spec);
        assert_eq!(renames, 1);
        assert_eq!(ic.ops.len(), n_before + 1);
        // The update writes a fresh register; GE reads it; the guarded COPY
        // (which reads the *old* k) is untouched.
        let add = ic
            .ops
            .iter()
            .find(|(o, _)| matches!(o.kind, OpKind::Alu { .. }))
            .unwrap();
        let fresh = match add.0.kind {
            OpKind::Alu { dst, .. } => dst,
            _ => unreachable!(),
        };
        assert!(fresh.0 >= kernel.spec.n_regs);
        let ge = ic
            .ops
            .iter()
            .find(|(o, _)| matches!(o.kind, OpKind::Cmp { op: CmpOp::Ge, .. }))
            .unwrap();
        assert!(ge.0.uses().contains(&RegRef::Gpr(fresh)));
        let copy_m = ic
            .ops
            .iter()
            .find(|(o, _)| o.guard == Some(Guard::when(CcReg(0))))
            .unwrap();
        // COPY m, k still reads the architectural k (it precedes the
        // update in source order).
        assert!(!copy_m.0.uses().contains(&RegRef::Gpr(fresh)));
        // Copy-back appended.
        let last = ic.ops.last().unwrap();
        assert!(matches!(last.0.kind, OpKind::Copy { .. }));
    }

    #[test]
    fn live_out_registers_not_renamed() {
        // acc in cond_sum is live-out but also fails the operand test; use
        // a synthetic case: r = r + 1 with r live-out.
        use psp_ir::LoopBuilder;
        let mut b = LoopBuilder::new("lo");
        let r = b.reg();
        let cc = b.cc();
        b.op(add(r, r, 1i64));
        b.op(cmp(CmpOp::Ge, cc, r, 10i64));
        b.break_(cc);
        let spec = b.finish([r], [r]);
        let mut ic = if_convert(&spec);
        assert_eq!(rename_inductions(&mut ic.ops, &mut ic.spec), 0);
    }

    #[test]
    fn conditional_updates_not_renamed() {
        use psp_ir::LoopBuilder;
        let mut b = LoopBuilder::new("cond");
        let r = b.reg();
        let k = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(cmp(CmpOp::Gt, cc0, k, 0i64));
        b.if_else(
            cc0,
            |b| {
                b.op(add(r, r, 1i64));
            },
            |_| {},
        );
        b.op(copy(k, r)); // later use of r
        b.op(cmp(CmpOp::Ge, cc1, k, 10i64));
        b.break_(cc1);
        let spec = b.finish([r, k], Vec::<Reg>::new());
        let mut ic = if_convert(&spec);
        assert_eq!(rename_inductions(&mut ic.ops, &mut ic.spec), 0);
    }

    #[test]
    fn no_later_use_no_rename() {
        use psp_ir::LoopBuilder;
        let mut b = LoopBuilder::new("nouse");
        let r = b.reg();
        let s = b.reg();
        let cc = b.cc();
        b.op(copy(s, r));
        b.op(add(r, r, 1i64)); // nothing reads r afterwards
        b.op(cmp(CmpOp::Ge, cc, s, 10i64));
        b.break_(cc);
        let spec = b.finish([r, s], Vec::<Reg>::new());
        let mut ic = if_convert(&spec);
        assert_eq!(rename_inductions(&mut ic.ops, &mut ic.spec), 0);
    }
}
