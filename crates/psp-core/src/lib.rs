//! Predicated Software Pipelining (PSP) — the paper's primary contribution.
//!
//! The crate separates the three concepts the paper names in §3:
//!
//! * **the framework** ([`instance`], [`schedule`], [`deps`], [`codegen`]):
//!   operations of the loop body live in a single flat schedule as
//!   *operation instances* — `(operation, index, formal predicate matrix)` —
//!   with control flow encoded implicitly in the matrices. The framework
//!   defines dependence testing modulo disjoint matrices, the IFLog link
//!   between predicates and the IF instances computing them, and the loop
//!   code generation algorithm that reconstructs a control-flow graph
//!   (with variable per-path II) from an encoded schedule;
//! * **the technique** ([`transform`], [`compact`], [`driver`]): iterative
//!   application of the four elementary transformations — *split*, *unify*,
//!   *moveup* (including wrapping across the loop boundary, which is what
//!   produces software pipelining and the preloop), and *movedown* — with
//!   candidate generation directed at shortening the II and no backtracking;
//! * **the heuristics** ([`heuristics`]): candidate scoring driven by data
//!   dependencies, plus the paper's §4 extension — scoring by the expected
//!   mean dynamic II under profiled path probabilities.

pub mod codegen;
pub mod compact;
pub mod deps;
pub mod driver;
pub mod heuristics;
pub mod hook;
pub mod instance;
pub mod preloop;
pub mod schedule;
pub mod transform;

pub use codegen::{generate, CodegenError};
pub use driver::{pipeline_loop, PhaseTimes, PspConfig, PspResult, PspStats};
pub use instance::{InstId, Instance};
pub use schedule::Schedule;
pub use transform::{MoveError, Transformation};
