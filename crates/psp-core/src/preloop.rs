//! Preloop (startup) generation by reaching-definition analysis.
//!
//! The steady-state body assumes, at entry of every transformed iteration,
//! that registers carry the values a *previous* transformed iteration
//! committed. At loop entry no previous iteration exists, so the preloop
//! must establish the same contract from the architectural initial state.
//!
//! The contract is computed, not replayed from schedule snapshots:
//!
//! 1. **Entry-live registers** — those the body reads (pre-cycle, in row
//!    order) before writing;
//! 2. for each, its **writers** in the body: an instance with operation
//!    index `i` supplies, across the back edge, the value of its *original
//!    source operation* for original iteration `i - 1` (index-0 writers
//!    supply the architectural initial value — the fictitious iteration
//!    `-1` never ran);
//! 3. the preloop **emulates** the original flattened program for the
//!    required startup iterations into fresh temporaries — loads read the
//!    pristine memory, conditional operations carry guards, stores and
//!    exits are skipped — and materializes each required `(source
//!    operation, iteration)` value into the contract register, in original
//!    program order so later writers override earlier ones exactly like
//!    the fictitious iteration would have.
//!
//! Shapes the emulation cannot reproduce are *refused* (a
//! [`CodegenError::PreloopUnsupported`]), which makes the scheduling driver
//! discard the candidate transformation rather than miscompile: loads that
//! would observe skipped stores, operations under multiple nested
//! predicates, guarded compares (no conditional-move for condition
//! registers), and non-architectural contract registers with no
//! unconditional writer.

use crate::codegen::CodegenError;
use crate::schedule::Schedule;

/// Preloop cycles plus the dispatch map (see [`build_preloop`]).
pub type PreloopResult = (Vec<Vec<Operation>>, BTreeMap<(u32, i32), psp_ir::CcReg>);
use psp_ir::{flatten, op::build, FlatOp, Guard, OpKind, Operand, Operation, Reg, RegRef};
use std::collections::{BTreeMap, BTreeSet};

/// Value location of an original register during emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Still the architectural register itself (never written).
    Arch,
    /// Current holder.
    At(RegRef),
    /// Unknown (skipped producer); any emitted reader must refuse.
    Poisoned,
}

/// Build the preloop cycles for a schedule, plus the *dispatch map*: for
/// every incoming predicate `(row, col)` the steady state branches on at
/// entry, the (possibly temporary) condition register that holds its
/// startup value — the architectural register may have been retargeted to
/// a deeper level by the instance contract.
pub fn build_preloop(
    sched: &Schedule,
    incoming: &[(u32, i32)],
) -> Result<PreloopResult, CodegenError> {
    let body: Vec<&crate::instance::Instance> = sched.instances().collect();

    // --- entry-live registers (pre-cycle read semantics per row) --------
    // Only *unconditional* definitions kill: a conditional writer leaves
    // the entry value observable on its untaken paths.
    let mut written: BTreeSet<RegRef> = BTreeSet::new();
    let mut entry_live: BTreeSet<RegRef> = BTreeSet::new();
    for row in &sched.rows {
        for inst in row {
            for u in inst.op.uses() {
                if !written.contains(&u) {
                    entry_live.insert(u);
                }
            }
        }
        for inst in row {
            if inst.formal.is_universe() {
                for d in inst.op.defs() {
                    written.insert(d);
                }
            }
        }
    }

    let is_arch = |r: RegRef| match r {
        RegRef::Gpr(g) => g.0 < sched.orig_n_regs,
        RegRef::Cc(c) => c.0 < sched.orig_n_ccs,
    };

    // --- required (origin, level) → contract targets ---------------------
    // level = writer.index - 1; level -1 contributes the architectural
    // initial value (no emission).
    let mut needed: BTreeMap<(i32, usize), Vec<RegRef>> = BTreeMap::new();
    for &r in &entry_live {
        let writers: Vec<_> = body.iter().filter(|i| i.op.defs().contains(&r)).collect();
        if writers.is_empty() {
            continue; // pure live-in: architectural initial value
        }
        let mut has_emitted_writer = false;
        let mut has_unconditional = false;
        for w in &writers {
            let level = w.index - 1;
            if level < 0 {
                // Fictitious iteration -1 never ran: base value = initial.
                continue;
            }
            has_emitted_writer = true;
            if w.formal.is_universe() {
                has_unconditional = true;
            }
            let targets = needed.entry((level, w.origin)).or_default();
            if !targets.contains(&r) {
                targets.push(r);
            }
        }
        if !is_arch(r) {
            if !has_emitted_writer {
                return Err(CodegenError::PreloopUnsupported(
                    "temporary register is entry-live with only index-0 writers",
                ));
            }
            if !has_unconditional {
                return Err(CodegenError::PreloopUnsupported(
                    "temporary contract register has no unconditional writer",
                ));
            }
        }
        // Live-out contract registers would make the startup observable on
        // very short trips where a BREAK skips the body's writer.
        if sched.spec.live_out.contains(&r) && has_emitted_writer {
            return Err(CodegenError::PreloopUnsupported(
                "live-out register would be written by the preloop",
            ));
        }
    }

    // The entry dispatch needs predicate (r, c)'s value for the *first*
    // body iteration, i.e. original iteration c → emulation level c.
    let dispatch_levels = incoming.iter().map(|&(_, c)| c + 1).max().unwrap_or(0);
    let levels = needed
        .keys()
        .map(|&(l, _)| l + 1)
        .max()
        .unwrap_or(0)
        .max(dispatch_levels);
    let mut dispatch_map: BTreeMap<(u32, i32), psp_ir::CcReg> = BTreeMap::new();
    if levels == 0 {
        return Ok((Vec::new(), dispatch_map));
    }

    // --- emulation --------------------------------------------------------
    let flat: Vec<FlatOp> = flatten(&sched.spec);
    // Arrays that the loop stores into: loads from them can observe skipped
    // stores and must be refused past the first store in fictitious order.
    let stored_arrays: BTreeSet<_> = flat
        .iter()
        .filter_map(|f| match f.op.kind {
            OpKind::Store { addr, .. } => Some(addr.array),
            _ => None,
        })
        .collect();

    let mut env: BTreeMap<RegRef, Loc> = BTreeMap::new();
    let mut next_reg = sched.spec.n_regs;
    let mut next_cc = sched.spec.n_ccs;
    let mut out: Vec<Operation> = Vec::new();

    let loc_of = |env: &BTreeMap<RegRef, Loc>, r: RegRef| *env.get(&r).unwrap_or(&Loc::Arch);
    let gpr_operand = |env: &BTreeMap<RegRef, Loc>, o: Operand| -> Result<Operand, ()> {
        match o {
            Operand::Imm(_) => Ok(o),
            Operand::Reg(g) => match loc_of(env, RegRef::Gpr(g)) {
                Loc::Arch => Ok(o),
                Loc::At(RegRef::Gpr(t)) => Ok(Operand::Reg(t)),
                _ => Err(()),
            },
        }
    };
    let gpr_reg = |env: &BTreeMap<RegRef, Loc>, g: Reg| -> Result<Reg, ()> {
        match loc_of(env, RegRef::Gpr(g)) {
            Loc::Arch => Ok(g),
            Loc::At(RegRef::Gpr(t)) => Ok(t),
            _ => Err(()),
        }
    };

    for level in 0..levels {
        // Guard base per IF row at this level (the compare's current cc).
        let mut guard_cc: BTreeMap<u32, psp_ir::CcReg> = BTreeMap::new();
        let mut store_seen: BTreeSet<psp_ir::ArrayId> = BTreeSet::new();
        for f in &flat {
            let orig_dst = f.op.defs().first().copied();
            let needed_targets = needed.get(&(level, f.pos)).cloned().unwrap_or_default();

            // Resolve this op's guard from its control matrix.
            let ctrl: Vec<(u32, i32, bool)> = f.ctrl.constrained().collect();
            let guard: Option<Guard> = match ctrl.len() {
                0 => None,
                1 => {
                    let (row, _c, v) = ctrl[0];
                    match guard_cc.get(&row) {
                        Some(&cc) => Some(Guard { cc, on_true: v }),
                        None => {
                            // Controlling compare was poisoned.
                            poison(&mut env, orig_dst);
                            refuse_if_needed(&needed_targets, "guard unavailable")?;
                            continue;
                        }
                    }
                }
                _ => {
                    poison(&mut env, orig_dst);
                    refuse_if_needed(&needed_targets, "nested predicates")?;
                    continue;
                }
            };

            match f.op.kind {
                OpKind::If { cc } => {
                    // Record the guard base for this predicate row, and the
                    // dispatch location of this level's predicate value.
                    let row = f.computes_if.ok_or(CodegenError::Internal(
                        "IF instance computes no predicate row",
                    ))?;
                    match loc_of(&env, RegRef::Cc(cc)) {
                        Loc::At(RegRef::Cc(t)) => {
                            guard_cc.insert(row, t);
                            dispatch_map.insert((row, level), t);
                        }
                        Loc::Arch => {
                            guard_cc.insert(row, cc);
                            dispatch_map.insert((row, level), cc);
                        }
                        _ => {}
                    }
                    continue;
                }
                OpKind::Break { .. } => continue,
                OpKind::Store { addr, .. } => {
                    store_seen.insert(addr.array);
                    continue;
                }
                OpKind::Load { addr, .. } => {
                    let unsafe_load = (level > 0 && stored_arrays.contains(&addr.array))
                        || store_seen.contains(&addr.array);
                    if unsafe_load {
                        poison(&mut env, orig_dst);
                        refuse_if_needed(&needed_targets, "load would observe a skipped store")?;
                        continue;
                    }
                }
                OpKind::Cmp { .. } if guard.is_some() => {
                    // No conditional move for condition registers.
                    poison(&mut env, orig_dst);
                    refuse_if_needed(&needed_targets, "guarded compare")?;
                    continue;
                }
                _ => {}
            }

            // Remap the operation's uses through the environment.
            let remapped: Result<Operation, ()> = (|| {
                let kind = match f.op.kind {
                    OpKind::Alu { op, dst, a, b } => OpKind::Alu {
                        op,
                        dst,
                        a: gpr_operand(&env, a)?,
                        b: gpr_operand(&env, b)?,
                    },
                    OpKind::Copy { dst, src } => OpKind::Copy {
                        dst,
                        src: gpr_operand(&env, src)?,
                    },
                    OpKind::Select {
                        dst,
                        cc,
                        on_true,
                        on_false,
                    } => {
                        let cc = match loc_of(&env, RegRef::Cc(cc)) {
                            Loc::Arch => cc,
                            Loc::At(RegRef::Cc(t)) => t,
                            _ => return Err(()),
                        };
                        OpKind::Select {
                            dst,
                            cc,
                            on_true: gpr_operand(&env, on_true)?,
                            on_false: gpr_operand(&env, on_false)?,
                        }
                    }
                    OpKind::Cmp { op, dst, a, b } => OpKind::Cmp {
                        op,
                        dst,
                        a: gpr_operand(&env, a)?,
                        b: gpr_operand(&env, b)?,
                    },
                    OpKind::CcAnd {
                        dst,
                        a,
                        a_val,
                        b,
                        b_val,
                    } => {
                        let ra = match loc_of(&env, RegRef::Cc(a)) {
                            Loc::Arch => a,
                            Loc::At(RegRef::Cc(t)) => t,
                            _ => return Err(()),
                        };
                        let rb = match loc_of(&env, RegRef::Cc(b)) {
                            Loc::Arch => b,
                            Loc::At(RegRef::Cc(t)) => t,
                            _ => return Err(()),
                        };
                        OpKind::CcAnd {
                            dst,
                            a: ra,
                            a_val,
                            b: rb,
                            b_val,
                        }
                    }
                    OpKind::Load { dst, addr } => OpKind::Load {
                        dst,
                        addr: match addr.index {
                            Some(ix) => psp_ir::Address {
                                index: Some(gpr_reg(&env, ix)?),
                                ..addr
                            },
                            None => addr,
                        },
                    },
                    OpKind::Store { .. } | OpKind::If { .. } | OpKind::Break { .. } => {
                        // Handled (and `continue`d) before remapping; if one
                        // slips through anyway, refuse via the poison path
                        // instead of unwinding through the public API.
                        debug_assert!(false, "stores/IFs/breaks are handled before remapping");
                        return Err(());
                    }
                };
                Ok(Operation { kind, guard: None })
            })();
            let Ok(mut op) = remapped else {
                poison(&mut env, orig_dst);
                refuse_if_needed(&needed_targets, "operand depends on an unavailable value")?;
                continue;
            };

            // Choose the destination: a contract register when required at
            // this (level, origin), otherwise a fresh temporary.
            let Some(orig_dst) = orig_dst else { continue };
            let (primary, extra): (RegRef, Vec<RegRef>) = match needed_targets.split_first() {
                Some((&first, rest)) => (first, rest.to_vec()),
                None => {
                    let t = match orig_dst {
                        RegRef::Gpr(_) => {
                            let t = RegRef::Gpr(Reg(next_reg));
                            next_reg += 1;
                            t
                        }
                        RegRef::Cc(_) => {
                            let t = RegRef::Cc(psp_ir::CcReg(next_cc));
                            next_cc += 1;
                            t
                        }
                    };
                    (t, Vec::new())
                }
            };

            // Conditional definitions preserve the prior value when the
            // guard fails: seed the destination with it first.
            if let Some(g) = guard {
                match (primary, loc_of(&env, orig_dst)) {
                    (RegRef::Gpr(p), prior) => {
                        let prior_operand = match (prior, orig_dst) {
                            (Loc::Arch, RegRef::Gpr(o)) => Operand::Reg(o),
                            (Loc::At(RegRef::Gpr(t)), _) => Operand::Reg(t),
                            _ => {
                                // Covers poisoned priors and — should the
                                // destination class ever disagree with the
                                // contract register class (a transform bug)
                                // — refuses rather than panics.
                                debug_assert!(
                                    !matches!(prior, Loc::Arch),
                                    "GPR contract register for a non-GPR destination"
                                );
                                poison(&mut env, Some(orig_dst));
                                refuse_if_needed(&needed_targets, "prior value unavailable")?;
                                continue;
                            }
                        };
                        if prior_operand != Operand::Reg(p) {
                            out.push(build::copy(p, prior_operand));
                        }
                    }
                    _ => {
                        poison(&mut env, Some(orig_dst));
                        refuse_if_needed(&needed_targets, "guarded compare")?;
                        continue;
                    }
                }
                op.guard = Some(g);
            }

            // Retarget the destination.
            op = match (primary, op.kind) {
                (RegRef::Gpr(p), _) => op.with_dst_gpr(p),
                (RegRef::Cc(p), OpKind::Cmp { op: c, a, b, .. }) => Operation {
                    kind: OpKind::Cmp {
                        op: c,
                        dst: p,
                        a,
                        b,
                    },
                    guard: op.guard,
                },
                (
                    RegRef::Cc(p),
                    OpKind::CcAnd {
                        a, a_val, b, b_val, ..
                    },
                ) => Operation {
                    kind: OpKind::CcAnd {
                        dst: p,
                        a,
                        a_val,
                        b,
                        b_val,
                    },
                    guard: op.guard,
                },
                _ => {
                    refuse_if_needed(&needed_targets, "destination kind mismatch")?;
                    continue;
                }
            };
            out.push(op);
            // Extra contract targets receive copies of the same value.
            for e in extra {
                match (e, primary) {
                    (RegRef::Gpr(t), RegRef::Gpr(p)) => out.push(build::copy(t, p)),
                    _ => {
                        return Err(CodegenError::PreloopUnsupported(
                            "condition register needed in two places",
                        ))
                    }
                }
            }
            env.insert(orig_dst, Loc::At(primary));
        }
    }

    // Every incoming predicate must have resolved to a live register.
    for key in incoming {
        if !dispatch_map.contains_key(key) {
            return Err(CodegenError::PreloopUnsupported(
                "incoming predicate has no startup value",
            ));
        }
    }

    // Dead-code elimination: the emulation computed every chain value; keep
    // only the backward slice of the contract targets and dispatch
    // registers (standard reverse liveness over the straight-line list;
    // guarded definitions do not kill).
    let mut live: BTreeSet<RegRef> = needed.values().flatten().copied().collect();
    for (&(r, c), &cc) in &dispatch_map {
        if incoming.contains(&(r, c)) {
            live.insert(RegRef::Cc(cc));
        }
    }
    let mut keep = vec![false; out.len()];
    for (i, op) in out.iter().enumerate().rev() {
        let defines_live = op.defs().iter().any(|d| live.contains(d));
        if !defines_live {
            continue;
        }
        keep[i] = true;
        if op.guard.is_none() {
            for d in op.defs() {
                live.remove(&d);
            }
        }
        for u in op.uses() {
            live.insert(u);
        }
    }
    let out: Vec<Operation> = out
        .into_iter()
        .zip(keep)
        .filter_map(|(op, k)| k.then_some(op))
        .collect();

    // One operation per startup cycle: trivially correct issue order; the
    // cost is a one-time constant.
    Ok((out.into_iter().map(|op| vec![op]).collect(), dispatch_map))
}

fn poison(env: &mut BTreeMap<RegRef, Loc>, dst: Option<RegRef>) {
    if let Some(d) = dst {
        env.insert(d, Loc::Poisoned);
    }
}

fn refuse_if_needed(targets: &[RegRef], why: &'static str) -> Result<(), CodegenError> {
    if targets.is_empty() {
        Ok(())
    } else {
        Err(CodegenError::PreloopUnsupported(why))
    }
}
