//! The iterative PSP technique (paper §3).
//!
//! Each step generates a set of candidate transformations directed at
//! shortening the II (wraps of row-0 instances, splits that disjoin blocked
//! movers), evaluates each candidate on a clone of the schedule (apply +
//! compact + code generation + score), applies the best strictly-improving
//! one, and repeats. There is no backtracking: a candidate that fails to
//! improve — or whose code generation fails — is simply discarded.

use crate::codegen::{generate, CodegenError};
use crate::compact::compact_ext;
use crate::heuristics::{score, BranchProbs, Score};
use crate::instance::InstId;
use crate::schedule::Schedule;
use crate::transform::{self, split_candidates, Transformation};
use psp_ir::LoopSpec;
use psp_machine::{MachineConfig, VliwLoop};

/// Configuration of the PSP pipeliner.
#[derive(Debug, Clone)]
pub struct PspConfig {
    /// Target machine.
    pub machine: MachineConfig,
    /// Maximum pipelining depth: rounds of wrapping the whole first row
    /// across the loop boundary (each round can add one level of overlap).
    pub max_depth: usize,
    /// Maximum number of strictly improving refinement steps afterwards, a
    /// safeguard against pathological growth.
    pub max_steps: usize,
    /// Whether split candidates are generated.
    pub enable_split: bool,
    /// Whether compaction may rename (ablation of "local scheduling with
    /// renaming"; wrapping still renames where correctness demands it).
    pub enable_rename: bool,
    /// Optional branch profile for the §4 probability-driven heuristics;
    /// `None` selects the static (worst-path) objective.
    pub probs: Option<BranchProbs>,
}

impl Default for PspConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            max_depth: 4,
            max_steps: 32,
            enable_split: true,
            enable_rename: true,
            probs: None,
        }
    }
}

impl PspConfig {
    /// Config with a specific machine.
    pub fn with_machine(machine: MachineConfig) -> Self {
        Self {
            machine,
            ..Self::default()
        }
    }
}

/// Statistics of one pipelining run (the paper's "acceptable cost" claim is
/// measured from these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PspStats {
    /// Moveups applied by compaction.
    pub moves: usize,
    /// Cross-boundary wraps applied.
    pub wraps: usize,
    /// Splits applied.
    pub splits: usize,
    /// Candidates evaluated (each evaluation = clone + compact + codegen).
    pub candidates: usize,
    /// Improvement rounds taken.
    pub rounds: usize,
}

/// Result of pipelining one loop.
#[derive(Debug, Clone)]
pub struct PspResult {
    /// The final schedule (for display à la Figure 2).
    pub schedule: Schedule,
    /// The generated loop (paper Figure 3 / Figure 1c).
    pub program: VliwLoop,
    /// Cost counters.
    pub stats: PspStats,
    /// Final score.
    pub score: Score,
}

/// Pipeline a loop with the PSP technique.
///
/// Phase A compacts the initial schedule (reproducing local scheduling
/// with renaming). Phase B performs pipelining rounds: each round wraps
/// every wrappable row-0 instance across the loop boundary and recompacts;
/// the best schedule seen (by [`Score`]) is retained — a single wrap is
/// rarely an immediate win, so rounds are speculative up to
/// [`PspConfig::max_depth`]. Phase C greedily applies strictly improving
/// split / wrap candidates until fixpoint.
pub fn pipeline_loop(spec: &LoopSpec, cfg: &PspConfig) -> Result<PspResult, CodegenError> {
    let mut stats = PspStats::default();
    let mut sched = Schedule::initial(spec);
    stats.moves += compact_ext(&mut sched, &cfg.machine, cfg.enable_rename);

    let (s0, p0) = match score(&sched, &cfg.machine, cfg.probs.as_ref()) {
        Some(x) => x,
        None => {
            // The compacted schedule should always be generatable; fall
            // back to the raw initial schedule if a corner case breaks it.
            sched = Schedule::initial(spec);
            let prog = generate(&sched, &cfg.machine)?;
            let primary = prog.ii_range().map(|(_, m)| m as f64).unwrap_or(0.0);
            (
                Score {
                    primary,
                    rows: sched.n_rows(),
                    instances: sched.n_instances(),
                },
                prog,
            )
        }
    };
    let mut best: (Score, Schedule, VliwLoop) = (s0.clone(), sched.clone(), p0);
    // Score of the schedule currently being extended (may transiently be
    // worse than the best seen — a wrap round alone rarely pays off until
    // the following refinement).
    let mut cur_score = Some(s0);

    for _depth in 0..cfg.max_depth {
        // Refinement: strictly improving split/wrap steps on the current
        // schedule.
        for _step in 0..cfg.max_steps {
            let candidates = generate_candidates(&sched, cfg);
            let mut round_best: Option<(Transformation, Score, Schedule, VliwLoop, usize)> =
                None;
            for t in candidates {
                stats.candidates += 1;
                let mut trial = sched.clone();
                if transform::apply(&mut trial, &t, &cfg.machine).is_err() {
                    continue;
                }
                let moves = compact_ext(&mut trial, &cfg.machine, cfg.enable_rename);
                let Some((s, prog)) = score(&trial, &cfg.machine, cfg.probs.as_ref()) else {
                    continue;
                };
                let improves_current = match &cur_score {
                    Some(c) => s.better_than(c),
                    None => true,
                };
                if improves_current
                    && round_best
                        .as_ref()
                        .map(|(_, bs, ..)| s.better_than(bs))
                        .unwrap_or(true)
                {
                    round_best = Some((t, s, trial, prog, moves));
                }
            }
            match round_best {
                Some((t, s, trial, prog, moves)) => {
                    match &t {
                        Transformation::WrapUp { .. } => stats.wraps += 1,
                        Transformation::Split { .. } => stats.splits += 1,
                        _ => {}
                    }
                    stats.moves += moves;
                    stats.rounds += 1;
                    sched = trial.clone();
                    if s.better_than(&best.0) {
                        best = (s.clone(), trial, prog);
                    }
                    cur_score = Some(s);
                }
                None => break, // local fixpoint
            }
        }

        // Deepen the pipeline: wrap the whole first row.
        let row0: Vec<InstId> = sched
            .rows
            .first()
            .map(|r| r.iter().map(|i| i.id).collect())
            .unwrap_or_default();
        let mut wrapped = 0;
        for id in row0 {
            if transform::wrap_up(&mut sched, id, &cfg.machine).is_ok() {
                wrapped += 1;
            }
        }
        if wrapped == 0 {
            break;
        }
        stats.wraps += wrapped;
        stats.rounds += 1;
        stats.moves += compact_ext(&mut sched, &cfg.machine, cfg.enable_rename);
        match score(&sched, &cfg.machine, cfg.probs.as_ref()) {
            Some((s, prog)) => {
                stats.candidates += 1;
                if s.better_than(&best.0) {
                    best = (s.clone(), sched.clone(), prog);
                }
                cur_score = Some(s);
            }
            None => {
                cur_score = None; // keep refining; codegen may recover
            }
        }
    }

    Ok(PspResult {
        schedule: best.1,
        program: best.2,
        stats,
        score: best.0,
    })
}

/// Candidate transformations directed at shortening the II.
fn generate_candidates(sched: &Schedule, cfg: &PspConfig) -> Vec<Transformation> {
    let mut out = Vec::new();
    // Wraps: every row-0 instance is a pipelining candidate.
    if let Some(row0) = sched.rows.first() {
        for inst in row0 {
            out.push(Transformation::WrapUp { id: inst.id });
        }
    }
    // Unifies: clone pairs that ended up side by side merge back,
    // shrinking code (strictly better via the tertiary score component
    // when the II and row count hold).
    for row in &sched.rows {
        for i in 0..row.len() {
            for j in (i + 1)..row.len() {
                let (a, b) = (&row[i], &row[j]);
                if a.op == b.op
                    && a.index == b.index
                    && a.origin == b.origin
                    && a.formal.unify(&b.formal).is_some()
                {
                    out.push(Transformation::Unify { a: a.id, b: b.id });
                }
            }
        }
    }
    // Splits: instances blocked from moving up by a constrained instance
    // may become movable once disjoined from it.
    if cfg.enable_split {
        let ids: Vec<InstId> = sched.instances().map(|i| i.id).collect();
        for id in ids {
            let Some((cur, pos)) = sched.find(id) else {
                continue;
            };
            if cur == 0 {
                continue;
            }
            let x = &sched.rows[cur][pos];
            // Blockers anywhere above with constrained matrices.
            for row in &sched.rows[..cur] {
                for y in row {
                    for (r, c) in split_candidates(x, y) {
                        let t = Transformation::Split { id, row: r, col: c };
                        if !out.contains(&t) {
                            out.push(t);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name, KernelData};
    use psp_sim::check_equivalence;

    #[test]
    fn vecmin_pipelines_to_ii_2() {
        // The paper's headline result (Fig. 1c): II = 2 on both paths.
        let kernel = by_name("vecmin").unwrap();
        let cfg = PspConfig::default();
        let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
        let (min, max) = res.program.ii_range().unwrap();
        assert!(
            max <= 2,
            "expected II ≤ 2, got ({min},{max})\n{}\n{}",
            res.schedule,
            res.program
        );
        assert!(res.stats.wraps >= 1);
    }

    #[test]
    fn vecmin_pipelined_is_equivalent() {
        let kernel = by_name("vecmin").unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        for (seed, len) in [(1u64, 1usize), (2, 2), (3, 7), (4, 64), (5, 257)] {
            let data = KernelData::random(seed, len);
            let init = kernel.initial_state(&data);
            let (_, run) =
                check_equivalence(&kernel.spec, &res.program, &init, 10_000_000)
                    .unwrap_or_else(|e| panic!("len {len}: {e}\n{}", res.program));
            kernel.check(&run.state, &data).unwrap();
        }
    }

    #[test]
    fn all_kernels_pipeline_correctly() {
        let cfg = PspConfig::default();
        for kernel in all_kernels() {
            let res = pipeline_loop(&kernel.spec, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for (seed, len) in [(11u64, 1usize), (12, 5), (13, 33)] {
                let data = KernelData::random(seed, len);
                let init = kernel.initial_state(&data);
                let (_, run) =
                    check_equivalence(&kernel.spec, &res.program, &init, 10_000_000)
                        .unwrap_or_else(|e| {
                            panic!("{} len {len}: {e}\n{}", kernel.name, res.program)
                        });
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }

    #[test]
    fn pipelining_beats_or_matches_local_schedule() {
        let cfg = PspConfig::default();
        for kernel in all_kernels() {
            let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
            let local =
                psp_baselines::compile_local(&kernel.spec, &cfg.machine);
            let data = KernelData::random(42, 128);
            let init = kernel.initial_state(&data);
            let (_, psp_run) =
                check_equivalence(&kernel.spec, &res.program, &init, 10_000_000).unwrap();
            let (_, loc_run) =
                check_equivalence(&kernel.spec, &local, &init, 10_000_000).unwrap();
            assert!(
                psp_run.body_cycles <= loc_run.body_cycles + loc_run.iterations / 8,
                "{}: psp {} vs local {}",
                kernel.name,
                psp_run.body_cycles,
                loc_run.body_cycles
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let kernel = by_name("vecmin").unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        assert!(res.stats.moves > 0);
        assert!(res.stats.candidates > 0);
        assert!(res.stats.rounds > 0);
    }

    #[test]
    fn probability_mode_runs() {
        let kernel = by_name("skewed").unwrap();
        let cfg = PspConfig {
            probs: Some(vec![0.1]),
            ..PspConfig::default()
        };
        let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
        let data = KernelData::random(7, 50).with_taken_fraction(0.1);
        let init = kernel.initial_state(&data);
        let (_, run) =
            check_equivalence(&kernel.spec, &res.program, &init, 10_000_000).unwrap();
        kernel.check(&run.state, &data).unwrap();
    }
}
