//! The iterative PSP technique (paper §3).
//!
//! Each step generates a set of candidate transformations directed at
//! shortening the II (wraps of row-0 instances, splits that disjoin blocked
//! movers), evaluates each candidate on a clone of the schedule (apply +
//! compact + code generation + score), applies the best strictly-improving
//! one, and repeats. There is no backtracking: a candidate that fails to
//! improve — or whose code generation fails — is simply discarded.
//!
//! Candidate trials within a step are independent, so they are evaluated
//! **in parallel** (see [`PspConfig::threads`]) with a deterministic
//! index-ordered reduction: transformation counts, final IIs, and generated
//! code are bit-identical to the sequential driver regardless of thread
//! count. Because candidate evaluation is dominated by code generation —
//! whose block count is exponential in the number of live IFs — repeated
//! identical trials are also **memoized** by a schedule fingerprint
//! ([`PspConfig::enable_memo`]), and every phase is **instrumented**
//! ([`PspStats`]: per-phase wall-clock, transformation counters, cache
//! hit/miss counters, JSON dump).

use crate::codegen::{generate, CodegenError};
use crate::compact::compact_ext;
use crate::heuristics::{score_program, BranchProbs, Score};
use crate::instance::InstId;
use crate::schedule::Schedule;
use crate::transform::{self, split_candidates, Transformation};
use psp_ir::LoopSpec;
use psp_machine::{MachineConfig, VliwLoop};
use psp_predicate::{PredOpStats, PredicateMatrix};
use psp_sim::SimStats;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of the PSP pipeliner.
#[derive(Debug, Clone)]
pub struct PspConfig {
    /// Target machine.
    pub machine: MachineConfig,
    /// Maximum pipelining depth: rounds of wrapping the whole first row
    /// across the loop boundary (each round can add one level of overlap).
    pub max_depth: usize,
    /// Maximum number of strictly improving refinement steps afterwards, a
    /// safeguard against pathological growth.
    pub max_steps: usize,
    /// Whether split candidates are generated.
    pub enable_split: bool,
    /// Whether compaction may rename (ablation of "local scheduling with
    /// renaming"; wrapping still renames where correctness demands it).
    pub enable_rename: bool,
    /// Optional branch profile for the §4 probability-driven heuristics;
    /// `None` selects the static (worst-path) objective.
    pub probs: Option<BranchProbs>,
    /// Worker threads for candidate evaluation: `1` forces the sequential
    /// path, `0` uses all available parallelism, any other value caps the
    /// pool. The reduction is deterministic (best score, ties broken by
    /// candidate index), so results are bit-identical for every setting.
    pub threads: usize,
    /// Memoize code generation + scoring by schedule fingerprint
    /// ([`Schedule::fingerprint`]). Candidate trials that reproduce an
    /// already-evaluated schedule skip the exponential code-generation
    /// step; hit/miss telemetry lands in [`PspStats`]. Never changes
    /// results — only how often codegen actually runs.
    pub enable_memo: bool,
    /// Discard candidate trials by a sound score lower bound before code
    /// generation (branch-and-bound admission). A trial's `rows` and
    /// `instances` are exact after compaction, and under the static
    /// objective the maximal II itself is computed exactly from the
    /// schedule without generating code (`max_steady_path_cycles`; the
    /// expected-II objective falls back to a universe-row lower bound).
    /// Trials that cannot strictly beat the current score are discarded
    /// before codegen; trials with an exactly-known score defer codegen
    /// until the reduction picks them as the step winner. The chosen
    /// candidate is provably identical to the exhaustive scan
    /// ([`PspStats::counters`] stays bit-identical; only wall-clock and
    /// the `pruned` counter change).
    pub enable_prune: bool,
    /// Stop refining as soon as the primary score (maximal or expected II)
    /// reaches this floor — typically a certified fixed-II optimum from
    /// `psp_opt::certify`. Opt-in speed/quality trade, **not** a sound
    /// bound on PSP itself: variable per-path II can legitimately beat the
    /// best *fixed* II on loops with conditions (vecmin: certified fixed
    /// floor 3, PSP reaches max II 2), so a floor equal to the fixed-II
    /// optimum may stop the search early with a worse result than the
    /// unrestricted run. [`PspStats::floor_hit`] records whether the stop
    /// triggered.
    pub exact_floor: Option<f64>,
}

impl Default for PspConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            max_depth: 4,
            max_steps: 32,
            enable_split: true,
            enable_rename: true,
            probs: None,
            threads: 0,
            enable_memo: true,
            enable_prune: true,
            exact_floor: None,
        }
    }
}

impl PspConfig {
    /// Config with a specific machine.
    pub fn with_machine(machine: MachineConfig) -> Self {
        Self {
            machine,
            ..Self::default()
        }
    }

    /// The reference configuration for cross-checking: single-threaded,
    /// no memo, no pruning — the exact shape of the original sequential
    /// driver, which exhaustively code-generates every candidate trial.
    pub fn sequential(mut self) -> Self {
        self.threads = 1;
        self.enable_memo = false;
        self.enable_prune = false;
        self
    }
}

/// Cumulative wall-clock spent in each phase of the pipeliner. In parallel
/// runs the per-trial phases (apply, compact, codegen, score) are summed
/// across worker threads, so they measure aggregate work and can exceed
/// `total` (which is elapsed wall-clock of the whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Candidate generation (wraps, unifies, split discovery).
    pub candidate_gen: Duration,
    /// Schedule cloning + transformation application.
    pub apply: Duration,
    /// Compaction (moveup to fixpoint).
    pub compact: Duration,
    /// Loop code generation (the exponential phase).
    pub codegen: Duration,
    /// Scoring of generated programs (II extraction / expected II).
    pub score: Duration,
    /// Whole-run elapsed wall-clock.
    pub total: Duration,
}

impl PhaseTimes {
    fn absorb(&mut self, other: &PhaseTimes) {
        self.candidate_gen += other.candidate_gen;
        self.apply += other.apply;
        self.compact += other.compact;
        self.codegen += other.codegen;
        self.score += other.score;
        // `total` is set once by the driver, not summed.
    }
}

/// Statistics of one pipelining run (the paper's "acceptable cost" claim is
/// measured from these). Counters are deterministic; timers and — under
/// parallel evaluation — cache telemetry vary run to run, so cross-run
/// comparisons should use [`PspStats::counters`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PspStats {
    /// Moveups applied by compaction.
    pub moves: usize,
    /// Cross-boundary wraps applied.
    pub wraps: usize,
    /// Splits applied.
    pub splits: usize,
    /// Candidates evaluated (each evaluation = clone + compact + codegen,
    /// unless the memo short-circuits the codegen).
    pub candidates: usize,
    /// Improvement rounds taken.
    pub rounds: usize,
    /// Candidate trials answered from the codegen/score memo.
    pub cache_hits: usize,
    /// Candidate trials that ran code generation and populated the memo.
    pub cache_misses: usize,
    /// Candidate trials that never ran code generation: rejected by the
    /// score lower bound, or exactly scored from the schedule but out-ranked
    /// by the step winner (see [`PspConfig::enable_prune`]). Deterministic,
    /// but configuration-dependent: the exhaustive reference prunes nothing.
    pub pruned: usize,
    /// Whether refinement stopped early because the score reached
    /// [`PspConfig::exact_floor`].
    pub floor_hit: bool,
    /// Predicate-algebra work done by this run (conjoins, disjoint/subsume
    /// tests, interner memo hit rate). Process-global counters sampled
    /// around the run, so like the cache telemetry they are excluded from
    /// [`counters`](Self::counters) — concurrent runs in the same process
    /// bleed into each other's deltas.
    pub pred: PredOpStats,
    /// Simulator throughput observed during this run (process-global
    /// counters sampled around the run, like [`pred`](Self::pred)). The
    /// pipeliner itself does not simulate, so this is zero unless a
    /// simulation hook ran; callers that follow the run with equivalence
    /// checking (e.g. `pspc`) widen the sampling window to cover it.
    pub sim: SimStats,
    /// Per-phase wall-clock.
    pub times: PhaseTimes,
}

impl PspStats {
    /// The deterministic counters: `[moves, wraps, splits, candidates,
    /// rounds]`. Bit-identical across thread counts and memo settings;
    /// excludes timers and cache telemetry (two concurrent identical
    /// trials may both miss, so hit counts can vary under parallelism).
    pub fn counters(&self) -> [usize; 5] {
        [
            self.moves,
            self.wraps,
            self.splits,
            self.candidates,
            self.rounds,
        ]
    }

    /// Machine-readable dump (hand-rolled JSON; the build container has no
    /// crates.io access, so `serde` is unavailable — the format is stable
    /// and documented in README.md). Times are microseconds.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"moves\":{},\"wraps\":{},\"splits\":{},\"candidates\":{},",
                "\"rounds\":{},\"cache_hits\":{},\"cache_misses\":{},\"pruned\":{},",
                "\"floor_hit\":{},\"pred\":{},\"sim\":{},",
                "\"times_us\":{{\"candidate_gen\":{},",
                "\"apply\":{},\"compact\":{},\"codegen\":{},\"score\":{},",
                "\"total\":{}}}}}"
            ),
            self.moves,
            self.wraps,
            self.splits,
            self.candidates,
            self.rounds,
            self.cache_hits,
            self.cache_misses,
            self.pruned,
            self.floor_hit,
            self.pred.to_json(),
            self.sim.to_json(),
            self.times.candidate_gen.as_micros(),
            self.times.apply.as_micros(),
            self.times.compact.as_micros(),
            self.times.codegen.as_micros(),
            self.times.score.as_micros(),
            self.times.total.as_micros(),
        )
    }
}

/// Result of pipelining one loop.
#[derive(Debug, Clone)]
pub struct PspResult {
    /// The final schedule (for display à la Figure 2).
    pub schedule: Schedule,
    /// The generated loop (paper Figure 3 / Figure 1c).
    pub program: VliwLoop,
    /// Cost counters.
    pub stats: PspStats,
    /// Final score.
    pub score: Score,
}

/// The codegen/score memo: schedule fingerprint → scoring outcome (`None`
/// records a codegen failure, which is just as expensive to rediscover).
type Memo = Mutex<HashMap<String, Option<(Score, VliwLoop)>>>;

/// Outcome of one candidate trial.
struct Trial {
    t: Transformation,
    /// Moveups compaction applied to this trial (counted into stats only
    /// if the trial is chosen, matching the sequential driver).
    moves: usize,
    /// The compacted trial schedule; `None` when `apply` rejected it.
    sched: Option<Schedule>,
    scored: Option<(Score, VliwLoop)>,
    /// The exact score of this trial, known without generating code (see
    /// [`max_steady_path_cycles`]). Code generation is deferred until the
    /// reduction picks this trial as the step winner.
    bound: Option<Score>,
    times: PhaseTimes,
    cache_hit: bool,
    cache_miss: bool,
    /// Discarded by the score lower bound without running codegen.
    pruned: bool,
}

impl Trial {
    /// The score this trial competes with in the reduction: the generated
    /// program's when available, the (exact) deferred bound otherwise.
    fn competing_score(&self) -> Option<&Score> {
        self.scored.as_ref().map(|(s, _)| s).or(self.bound.as_ref())
    }
}

/// Abort the path enumeration in [`max_steady_path_cycles`] past this many
/// concurrent chains; the caller falls back to a weaker bound. Code
/// generation enumerates exactly the same chains as blocks but does an
/// order of magnitude more work per block (instance placement, conflict
/// validation, per-child deep clones), so the cap can sit well above any
/// block count codegen itself could digest.
const MAX_BOUND_CHAINS: usize = 1 << 18;

/// The maximal steady-state-path II of any successful code generation of
/// `sched`, computed without generating code.
///
/// Replays exactly the generator's block-matrix evolution — the universe
/// split on every incoming predicate at entry, one cycle per row holding a
/// compatible instance, a fan-out on every compatible IF of a row, a back
/// edge resolved by matching the `shifted(-1)` final matrix against the
/// entry matrices — but tracks only (matrix, cycle count) per chain:
/// no instance placement, guard assignment, or conflict validation. The
/// generator enumerates every *syntactic* outcome combination and wires
/// every entry block from the first-iteration dispatch, so each enumerated
/// chain exists verbatim in the generated program; a chain is a steady-state
/// path iff its entry receives some back edge, so the maximum over those
/// chains is exactly `ii_range().1` (empty-block cleanup only rewires
/// zero-cycle blocks and cannot change any chain's cycle count).
///
/// `None` when code generation would fail before the walk diverges from it
/// (unresolved or colliding incoming predicates, a constrained entry split,
/// an IF computing no predicate row, a chain with no back-edge target) or
/// when the enumeration exceeds [`MAX_BOUND_CHAINS`].
fn max_steady_path_cycles(sched: &Schedule) -> Option<usize> {
    let incoming = crate::codegen::incoming_predicates(sched).ok()?;
    let mut entries = vec![PredicateMatrix::universe()];
    for &(r, c) in &incoming {
        let mut next = Vec::with_capacity(entries.len() * 2);
        for m in entries {
            let (f, t) = m.split(r, c)?;
            next.push(f);
            next.push(t);
        }
        entries = next;
    }

    // (entry index, current matrix, non-empty cycles so far) per open chain.
    let mut chains: Vec<(usize, PredicateMatrix, usize)> = entries
        .iter()
        .enumerate()
        .map(|(e, m)| (e, m.clone(), 0))
        .collect();
    for row in &sched.rows {
        let mut next = Vec::with_capacity(chains.len());
        for (e, m, mut cycles) in chains {
            if row.iter().any(|i| !i.formal.is_disjoint(&m)) {
                cycles += 1;
            }
            let mut splits = Vec::new();
            for i in row {
                if i.op.is_if() && !i.formal.is_disjoint(&m) {
                    splits.push((i.computes_if?, i.index));
                }
            }
            let mut mats = vec![m];
            for &(r, c) in &splits {
                let mut nx = Vec::with_capacity(mats.len() * 2);
                for mm in mats {
                    match mm.split(r, c) {
                        Some((f, t)) => {
                            nx.push(f);
                            nx.push(t);
                        }
                        // Outcome already known on these paths: one child.
                        None => nx.push(mm),
                    }
                }
                mats = nx;
            }
            for mm in mats {
                next.push((e, mm, cycles));
            }
        }
        if next.len() > MAX_BOUND_CHAINS {
            return None;
        }
        chains = next;
    }

    // A chain is a steady-state path iff its entry is some chain's
    // back-edge target.
    let mut is_steady = vec![false; entries.len()];
    let mut finals = Vec::with_capacity(chains.len());
    for (e, m, cycles) in chains {
        let shifted = m.shifted(-1);
        let target = entries.iter().position(|x| x.subsumes(&shifted))?;
        is_steady[target] = true;
        finals.push((e, cycles));
    }
    finals
        .into_iter()
        .filter(|&(e, _)| is_steady[e])
        .map(|(_, cycles)| cycles)
        .max()
}

/// A lower bound on the primary score that holds for *every* objective: a
/// row holding a universe-predicate instance emits a non-empty cycle on
/// every steady-state path, so the count of such rows bounds each path's
/// II — and hence both the maximal and the expected II — from below.
fn universe_row_bound(sched: &Schedule) -> usize {
    sched
        .rows
        .iter()
        .filter(|row| row.iter().any(|i| i.formal.is_universe()))
        .count()
}

/// Generate + score `sched`, consulting the memo when enabled.
fn score_cached(
    sched: &Schedule,
    cfg: &PspConfig,
    memo: Option<&Memo>,
    times: &mut PhaseTimes,
) -> (Option<(Score, VliwLoop)>, bool, bool) {
    let key = memo.map(|_| sched.fingerprint());
    if let (Some(memo), Some(key)) = (memo, key.as_ref()) {
        if let Some(cached) = memo.lock().expect("memo lock").get(key) {
            return (cached.clone(), true, false);
        }
    }
    let t0 = Instant::now();
    let prog = generate(sched, &cfg.machine).ok();
    times.codegen += t0.elapsed();
    let t1 = Instant::now();
    let scored = prog.map(|p| (score_program(&p, sched, cfg.probs.as_ref()), p));
    times.score += t1.elapsed();
    let miss = if let (Some(memo), Some(key)) = (memo, key) {
        memo.lock().expect("memo lock").insert(key, scored.clone());
        true
    } else {
        false
    };
    (scored, false, miss)
}

/// Evaluate one candidate transformation on a clone of `sched`. `cur` is
/// the score a chosen candidate must strictly beat; when pruning is on, a
/// trial whose best-possible score cannot beat it is discarded before the
/// exponential code-generation step.
fn eval_candidate(
    sched: &Schedule,
    t: Transformation,
    cfg: &PspConfig,
    memo: Option<&Memo>,
    cur: Option<&Score>,
) -> Trial {
    let mut times = PhaseTimes::default();
    let t0 = Instant::now();
    let mut trial = sched.clone();
    let applied = transform::apply(&mut trial, &t, &cfg.machine).is_ok();
    times.apply += t0.elapsed();
    if !applied {
        return Trial {
            t,
            moves: 0,
            sched: None,
            scored: None,
            bound: None,
            times,
            cache_hit: false,
            cache_miss: false,
            pruned: false,
        };
    }
    let t1 = Instant::now();
    let moves = compact_ext(&mut trial, &cfg.machine, cfg.enable_rename);
    times.compact += t1.elapsed();
    if cfg.enable_prune {
        let t2 = Instant::now();
        let exact = if cfg.probs.is_none() {
            max_steady_path_cycles(&trial)
        } else {
            None
        };
        times.score += t2.elapsed();
        let primary = exact.unwrap_or_else(|| universe_row_bound(&trial)) as f64;
        let potential = Score {
            primary,
            rows: trial.n_rows(),
            instances: trial.n_instances(),
        };
        // The bound only depends on the step-entry score, never on the
        // other trials, so pruning is order-independent (deterministic
        // under any thread count).
        if let Some(cur) = cur {
            if !potential.better_than(cur) {
                return Trial {
                    t,
                    moves,
                    sched: Some(trial),
                    scored: None,
                    bound: None,
                    times,
                    cache_hit: false,
                    cache_miss: false,
                    pruned: true,
                };
            }
        }
        if exact.is_some() {
            // The exact score is known without generating code: defer the
            // exponential codegen to the reduction, which runs it only for
            // the trial that wins the step.
            return Trial {
                t,
                moves,
                sched: Some(trial),
                scored: None,
                bound: Some(potential),
                times,
                cache_hit: false,
                cache_miss: false,
                pruned: false,
            };
        }
    }
    let (scored, cache_hit, cache_miss) = score_cached(&trial, cfg, memo, &mut times);
    Trial {
        t,
        moves,
        sched: Some(trial),
        scored,
        bound: None,
        times,
        cache_hit,
        cache_miss,
        pruned: false,
    }
}

/// Evaluate all candidates of one step — concurrently unless
/// [`PspConfig::threads`] is `1`. Trials return in candidate order either
/// way, so the reduction below is deterministic.
fn evaluate_candidates(
    sched: &Schedule,
    candidates: Vec<Transformation>,
    cfg: &PspConfig,
    memo: Option<&Memo>,
    cur: Option<&Score>,
) -> Vec<Trial> {
    if cfg.threads == 1 || candidates.len() <= 1 {
        candidates
            .into_iter()
            .map(|t| eval_candidate(sched, t, cfg, memo, cur))
            .collect()
    } else {
        candidates
            .into_par_iter()
            .with_threads(cfg.threads)
            .map(|t| eval_candidate(sched, t, cfg, memo, cur))
            .collect()
    }
}

/// Pipeline a loop with the PSP technique.
///
/// Phase A compacts the initial schedule (reproducing local scheduling
/// with renaming). Phase B performs pipelining rounds: each round wraps
/// every wrappable row-0 instance across the loop boundary and recompacts;
/// the best schedule seen (by [`Score`]) is retained — a single wrap is
/// rarely an immediate win, so rounds are speculative up to
/// [`PspConfig::max_depth`]. Phase C greedily applies strictly improving
/// split / wrap candidates until fixpoint.
pub fn pipeline_loop(spec: &LoopSpec, cfg: &PspConfig) -> Result<PspResult, CodegenError> {
    let t_total = Instant::now();
    let pred_before = psp_predicate::stats::snapshot();
    let sim_before = psp_sim::stats::snapshot();
    let mut stats = PspStats::default();
    let memo: Option<Memo> = if cfg.enable_memo {
        Some(Mutex::new(HashMap::new()))
    } else {
        None
    };
    let memo = memo.as_ref();

    let mut sched = Schedule::initial(spec);
    let t0 = Instant::now();
    stats.moves += compact_ext(&mut sched, &cfg.machine, cfg.enable_rename);
    stats.times.compact += t0.elapsed();

    let (initial_scored, hit, miss) = score_cached(&sched, cfg, memo, &mut stats.times);
    stats.cache_hits += hit as usize;
    stats.cache_misses += miss as usize;
    let (s0, p0) = match initial_scored {
        Some(x) => x,
        None => {
            // The compacted schedule should always be generatable; fall
            // back to the raw initial schedule if a corner case breaks it.
            sched = Schedule::initial(spec);
            let t1 = Instant::now();
            let prog = generate(&sched, &cfg.machine)?;
            stats.times.codegen += t1.elapsed();
            let primary = prog.ii_range().map(|(_, m)| m as f64).unwrap_or(0.0);
            (
                Score {
                    primary,
                    rows: sched.n_rows(),
                    instances: sched.n_instances(),
                },
                prog,
            )
        }
    };
    let mut best: (Score, Schedule, VliwLoop) = (s0.clone(), sched.clone(), p0);
    // Score of the schedule currently being extended (may transiently be
    // worse than the best seen — a wrap round alone rarely pays off until
    // the following refinement).
    let mut cur_score = Some(s0);

    'depth: for _depth in 0..cfg.max_depth {
        // Covers the initial score and the post-deepening score of the
        // previous round.
        if let (Some(f), Some(c)) = (cfg.exact_floor, cur_score.as_ref()) {
            if c.primary <= f {
                stats.floor_hit = true;
                break 'depth;
            }
        }
        // Refinement: strictly improving split/wrap steps on the current
        // schedule, each step's trials evaluated in parallel.
        for _step in 0..cfg.max_steps {
            let t1 = Instant::now();
            let candidates = generate_candidates(&sched, cfg);
            stats.times.candidate_gen += t1.elapsed();
            stats.candidates += candidates.len();

            let mut trials = evaluate_candidates(&sched, candidates, cfg, memo, cur_score.as_ref());
            for trial in &trials {
                stats.times.absorb(&trial.times);
                stats.cache_hits += trial.cache_hit as usize;
                stats.cache_misses += trial.cache_miss as usize;
                stats.pruned += trial.pruned as usize;
            }

            // Deterministic reduction: first strict improvement in
            // candidate order wins ties, exactly like the sequential scan.
            // Deferred trials compete with their bound score — which equals
            // the score their generated program would get — so the scan
            // picks the same winner as the exhaustive sequential pass. The
            // winner's code is then generated; if that fails (a placement-
            // level failure the bound cannot rule out), the trial is
            // discarded exactly as the sequential scan would have
            // discarded it, and the scan repeats without it.
            let round_best: Option<(Transformation, Score, Schedule, VliwLoop, usize)> = loop {
                let mut best: Option<usize> = None;
                for (i, trial) in trials.iter().enumerate() {
                    let Some(s) = trial.competing_score() else {
                        continue;
                    };
                    let improves_current = match &cur_score {
                        Some(c) => s.better_than(c),
                        None => true,
                    };
                    if improves_current
                        && best
                            .map(|b| s.better_than(trials[b].competing_score().unwrap()))
                            .unwrap_or(true)
                    {
                        best = Some(i);
                    }
                }
                let Some(i) = best else { break None };
                if trials[i].scored.is_none() {
                    let (scored, hit, miss) = score_cached(
                        trials[i].sched.as_ref().expect("deferred trial applied"),
                        cfg,
                        memo,
                        &mut stats.times,
                    );
                    stats.cache_hits += hit as usize;
                    stats.cache_misses += miss as usize;
                    match scored {
                        Some(sp) => trials[i].scored = Some(sp),
                        None => {
                            trials[i].bound = None;
                            continue;
                        }
                    }
                }
                let trial = trials.swap_remove(i);
                // Deferred losers never ran the exponential codegen either.
                stats.pruned += trials
                    .iter()
                    .filter(|t| t.bound.is_some() && t.scored.is_none())
                    .count();
                let (Some((s, prog)), Some(trial_sched)) = (trial.scored, trial.sched) else {
                    unreachable!("winner was scored above");
                };
                break Some((trial.t, s, trial_sched, prog, trial.moves));
            };
            match round_best {
                Some((t, s, trial, prog, moves)) => {
                    match &t {
                        Transformation::WrapUp { .. } => stats.wraps += 1,
                        Transformation::Split { .. } => stats.splits += 1,
                        _ => {}
                    }
                    stats.moves += moves;
                    stats.rounds += 1;
                    sched = trial.clone();
                    if s.better_than(&best.0) {
                        best = (s.clone(), trial, prog);
                    }
                    let hit = cfg.exact_floor.is_some_and(|f| s.primary <= f);
                    cur_score = Some(s);
                    if hit {
                        stats.floor_hit = true;
                        break 'depth;
                    }
                }
                None => break, // local fixpoint
            }
        }

        // Deepen the pipeline: wrap the whole first row.
        let row0: Vec<InstId> = sched
            .rows
            .first()
            .map(|r| r.iter().map(|i| i.id).collect())
            .unwrap_or_default();
        let mut wrapped = 0;
        let t2 = Instant::now();
        for id in row0 {
            if transform::wrap_up(&mut sched, id, &cfg.machine).is_ok() {
                wrapped += 1;
            }
        }
        stats.times.apply += t2.elapsed();
        if wrapped == 0 {
            break;
        }
        stats.wraps += wrapped;
        stats.rounds += 1;
        let t3 = Instant::now();
        stats.moves += compact_ext(&mut sched, &cfg.machine, cfg.enable_rename);
        stats.times.compact += t3.elapsed();
        let (scored, hit, miss) = score_cached(&sched, cfg, memo, &mut stats.times);
        stats.cache_hits += hit as usize;
        stats.cache_misses += miss as usize;
        match scored {
            Some((s, prog)) => {
                stats.candidates += 1;
                if s.better_than(&best.0) {
                    best = (s.clone(), sched.clone(), prog);
                }
                cur_score = Some(s);
            }
            None => {
                cur_score = None; // keep refining; codegen may recover
            }
        }
    }

    stats.pred = psp_predicate::stats::snapshot().delta(&pred_before);
    stats.times.total = t_total.elapsed();
    crate::hook::check(spec, &cfg.machine, &best.1, &best.2);
    stats.sim = psp_sim::stats::snapshot().delta(&sim_before);
    Ok(PspResult {
        schedule: best.1,
        program: best.2,
        stats,
        score: best.0,
    })
}

/// Candidate transformations directed at shortening the II.
fn generate_candidates(sched: &Schedule, cfg: &PspConfig) -> Vec<Transformation> {
    let mut out = Vec::new();
    // Wraps: every row-0 instance is a pipelining candidate.
    if let Some(row0) = sched.rows.first() {
        for inst in row0 {
            out.push(Transformation::WrapUp { id: inst.id });
        }
    }
    // Unifies: clone pairs that ended up side by side merge back,
    // shrinking code (strictly better via the tertiary score component
    // when the II and row count hold).
    for row in &sched.rows {
        for i in 0..row.len() {
            for j in (i + 1)..row.len() {
                let (a, b) = (&row[i], &row[j]);
                if a.op == b.op
                    && a.index == b.index
                    && a.origin == b.origin
                    && a.formal.unify(&b.formal).is_some()
                {
                    out.push(Transformation::Unify { a: a.id, b: b.id });
                }
            }
        }
    }
    // Splits: instances blocked from moving up by a constrained instance
    // may become movable once disjoined from it.
    if cfg.enable_split {
        let ids: Vec<InstId> = sched.instances().map(|i| i.id).collect();
        for id in ids {
            let Some((cur, pos)) = sched.find(id) else {
                continue;
            };
            if cur == 0 {
                continue;
            }
            let x = &sched.rows[cur][pos];
            // Blockers anywhere above with constrained matrices.
            for row in &sched.rows[..cur] {
                for y in row {
                    for (r, c) in split_candidates(x, y) {
                        let t = Transformation::Split { id, row: r, col: c };
                        if !out.contains(&t) {
                            out.push(t);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{all_kernels, by_name, KernelData};
    use psp_sim::{check_equivalence, EquivConfig};

    #[test]
    fn vecmin_pipelines_to_ii_2() {
        // The paper's headline result (Fig. 1c): II = 2 on both paths.
        let kernel = by_name("vecmin").unwrap();
        let cfg = PspConfig::default();
        let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
        let (min, max) = res.program.ii_range().unwrap();
        assert!(
            max <= 2,
            "expected II ≤ 2, got ({min},{max})\n{}\n{}",
            res.schedule,
            res.program
        );
        assert!(res.stats.wraps >= 1);
    }

    #[test]
    fn vecmin_pipelined_is_equivalent() {
        let kernel = by_name("vecmin").unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        for (seed, len) in EquivConfig::new(5, 1).trial_inputs() {
            let data = KernelData::random(seed, len);
            let init = kernel.initial_state(&data);
            let (_, run) = check_equivalence(&kernel.spec, &res.program, &init, 10_000_000)
                .unwrap_or_else(|e| panic!("len {len}: {e}\n{}", res.program));
            kernel.check(&run.state, &data).unwrap();
        }
    }

    #[test]
    fn all_kernels_pipeline_correctly() {
        let cfg = PspConfig::default();
        for kernel in all_kernels() {
            let res = pipeline_loop(&kernel.spec, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for (seed, len) in EquivConfig::new(3, 11).trial_inputs() {
                let data = KernelData::random(seed, len);
                let init = kernel.initial_state(&data);
                let (_, run) = check_equivalence(&kernel.spec, &res.program, &init, 10_000_000)
                    .unwrap_or_else(|e| panic!("{} len {len}: {e}\n{}", kernel.name, res.program));
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }

    #[test]
    fn pipelining_beats_or_matches_local_schedule() {
        let cfg = PspConfig::default();
        for kernel in all_kernels() {
            let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
            let local = psp_baselines::compile_local(&kernel.spec, &cfg.machine);
            let data = KernelData::random(42, 128);
            let init = kernel.initial_state(&data);
            let (_, psp_run) =
                check_equivalence(&kernel.spec, &res.program, &init, 10_000_000).unwrap();
            let (_, loc_run) = check_equivalence(&kernel.spec, &local, &init, 10_000_000).unwrap();
            assert!(
                psp_run.body_cycles <= loc_run.body_cycles + loc_run.iterations / 8,
                "{}: psp {} vs local {}",
                kernel.name,
                psp_run.body_cycles,
                loc_run.body_cycles
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let kernel = by_name("vecmin").unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        assert!(res.stats.moves > 0);
        assert!(res.stats.candidates > 0);
        assert!(res.stats.rounds > 0);
        assert!(res.stats.times.total > Duration::ZERO);
        assert!(res.stats.times.codegen > Duration::ZERO);
    }

    #[test]
    fn stats_json_is_machine_readable() {
        let kernel = by_name("vecmin").unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        let json = res.stats.to_json();
        // Shape checks (no JSON parser in the offline container): balanced
        // braces, all keys present, numeric values.
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"moves\":",
            "\"wraps\":",
            "\"splits\":",
            "\"candidates\":",
            "\"rounds\":",
            "\"cache_hits\":",
            "\"cache_misses\":",
            "\"floor_hit\":",
            "\"pred\":",
            "\"conjoins\":",
            "\"disjoint_tests\":",
            "\"memo_hit_rate\":",
            "\"sim\":",
            "\"engine\":",
            "\"decoded_cycles\":",
            "\"times_us\":",
            "\"candidate_gen\":",
            "\"codegen\":",
            "\"total\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The run must have done (and counted) real predicate work.
        assert!(res.stats.pred.disjoint_tests > 0);
        assert!(res.stats.pred.subsume_tests > 0);
    }

    #[test]
    fn memo_hits_on_repeated_trials() {
        let kernel = by_name("vecmin").unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        assert!(
            res.stats.cache_hits + res.stats.cache_misses > 0,
            "memo telemetry not populated"
        );
        let seq = pipeline_loop(&kernel.spec, &PspConfig::default().sequential()).unwrap();
        assert_eq!(seq.stats.cache_hits, 0, "memo disabled must never hit");
        assert_eq!(seq.stats.cache_misses, 0);
    }

    #[test]
    fn exact_floor_stops_refinement_early() {
        let kernel = by_name("vecmin").unwrap();
        // The certified optimal *fixed* II of vecmin on the paper machine
        // is 3; PSP's variable II reaches max 2 when unrestricted. With the
        // certified floor installed the driver must stop at 3 and say so.
        let floor = psp_opt::mii_lower_bound(&kernel.spec, &MachineConfig::paper_default());
        assert_eq!(floor, 3);
        let cfg = PspConfig {
            exact_floor: Some(floor as f64),
            ..PspConfig::default()
        };
        let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
        assert!(res.stats.floor_hit, "floor 3 is reachable, must trigger");
        let (_, max) = res.program.ii_range().unwrap();
        assert!(max <= 3);
        // The early stop trades quality for time but never correctness.
        let data = KernelData::random(9, 41);
        let init = kernel.initial_state(&data);
        let (_, run) = check_equivalence(&kernel.spec, &res.program, &init, 10_000_000).unwrap();
        kernel.check(&run.state, &data).unwrap();

        let unrestricted = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        assert!(!unrestricted.stats.floor_hit);
        assert!(unrestricted.score.primary <= 2.0, "paper Fig. 1c: II = 2");
    }

    #[test]
    fn probability_mode_runs() {
        let kernel = by_name("skewed").unwrap();
        let cfg = PspConfig {
            probs: Some(vec![0.1]),
            ..PspConfig::default()
        };
        let res = pipeline_loop(&kernel.spec, &cfg).unwrap();
        let data = KernelData::random(7, 50).with_taken_fraction(0.1);
        let init = kernel.initial_state(&data);
        let (_, run) = check_equivalence(&kernel.spec, &res.program, &init, 10_000_000).unwrap();
        kernel.check(&run.state, &data).unwrap();
    }
}
