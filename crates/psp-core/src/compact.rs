//! Compaction: repeated moveup to the earliest feasible row.
//!
//! This is the intra-body percolation pass. Run on the initial schedule it
//! reproduces the effect of local scheduling with renaming (paper Fig. 1b);
//! run after each wrap it re-packs the freed rows, which is where the
//! pipelining payoff appears.
//!
//! Renaming is powerful but produces a leftover `COPY` each time, so it is
//! applied judiciously: every round first exhausts rename-free moves
//! (including combining and copy substitution), then allows renames. A
//! renamed `COPY`'s consumers later substitute through it, so the rename is
//! effectively consumer-rewriting without a second traversal.

use crate::instance::InstId;
use crate::schedule::Schedule;
use crate::transform::{moveup_earliest, prune_stalls, MovePolicy};
use psp_machine::MachineConfig;

/// One sweep over all instances, moving each to the earliest feasible row
/// (one incremental plan per instance rather than a re-plan per candidate
/// target). Returns the number of moves.
fn sweep(sched: &mut Schedule, machine: &MachineConfig, policy: MovePolicy) -> usize {
    let mut moves = 0;
    let ids: Vec<InstId> = sched.instances().map(|i| i.id).collect();
    for id in ids {
        if moveup_earliest(sched, id, machine, policy).is_ok() {
            moves += 1;
        }
    }
    moves
}

/// Move every instance as early as dependences, speculation rules, and
/// resources allow; prune stall rows. Returns the number of moves applied.
pub fn compact(sched: &mut Schedule, machine: &MachineConfig) -> usize {
    compact_ext(sched, machine, true)
}

/// [`compact`] with renaming optionally disabled (the ablation of the
/// paper's "local scheduling *with renaming*").
pub fn compact_ext(sched: &mut Schedule, machine: &MachineConfig, allow_rename: bool) -> usize {
    let cap = 16 * sched.n_instances().max(8) * sched.n_rows().max(1);
    let mut total = 0usize;
    loop {
        // Exhaust rename-free motion first.
        loop {
            let n = sweep(sched, machine, MovePolicy::FREE);
            total += n;
            prune_stalls(sched, machine);
            if n == 0 || total >= cap {
                break;
            }
        }
        if total >= cap || !allow_rename {
            return total;
        }
        // One rename-allowed sweep; if it finds nothing, we are done.
        let n = sweep(sched, machine, MovePolicy::RENAME);
        total += n;
        prune_stalls(sched, machine);
        if n == 0 || total >= cap {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    #[test]
    fn compacting_vecmin_reaches_three_rows() {
        // Fig. 1b: local scheduling with renaming reaches II = 3.
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut s = Schedule::initial(&kernel.spec);
        let moves = compact(&mut s, &m());
        assert!(moves > 0);
        assert_eq!(s.n_rows(), 3, "\n{s}");
    }

    #[test]
    fn compaction_is_idempotent() {
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut s = Schedule::initial(&kernel.spec);
        compact(&mut s, &m());
        let snapshot = s.render();
        let more = compact(&mut s, &m());
        assert_eq!(more, 0);
        assert_eq!(s.render(), snapshot);
    }

    #[test]
    fn narrow_machine_limits_compaction() {
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut wide = Schedule::initial(&kernel.spec);
        compact(&mut wide, &m());
        let mut narrow = Schedule::initial(&kernel.spec);
        compact(&mut narrow, &MachineConfig::narrow(1, 1, 1));
        assert!(narrow.n_rows() > wide.n_rows());
        narrow
            .validate_resources(&MachineConfig::narrow(1, 1, 1))
            .unwrap();
    }

    #[test]
    fn all_kernels_compact_and_stay_valid() {
        for kernel in psp_kernels::all_kernels() {
            let mut s = Schedule::initial(&kernel.spec);
            let initial_rows = s.n_rows();
            compact(&mut s, &m());
            assert!(s.n_rows() <= initial_rows, "{}", kernel.name);
            s.validate_resources(&m())
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            crate::transform::validate_latencies(&s, &m())
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        }
    }
}
