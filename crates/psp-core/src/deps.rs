//! Pairwise legality of instance reorderings.
//!
//! [`check_pair`] answers, for a moving instance `x` and a stationary
//! instance `y` *expressed in the same iteration frame*: may `x` be placed
//! strictly above `y`, and may it share `y`'s cycle? Possible answers are
//! yes, yes-with-fix (renaming the moved definition, or combining an
//! induction update into a memory displacement), or no.
//!
//! The paper's central efficiency rule comes first: instances with
//! *disjoined* predicate matrices lie on different formal paths and are
//! never tested for data or control dependence at all.
//!
//! Cycle-sharing semantics follow the tree-VLIW model: reads see pre-cycle
//! state (so anti-dependences allow cycle sharing), an operation may share
//! a cycle with the IF resolving its control dependence (executing on the
//! matching subtree), and a `BREAK` exits only at end of cycle (so
//! observable operations ordered before it may share its cycle).

use crate::instance::Instance;
use psp_ir::{mem_access, AccessKind, AluOp, OpKind, Operand, Reg, RegRef};
use psp_machine::MachineConfig;
use psp_predicate::intern::{cached_disjoint, cached_subsumes};

/// A fix that makes an otherwise illegal reordering legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fix {
    /// Rename the moved instance's destination register and leave a copy
    /// at its original slot (Moon & Ebcioglu-style renaming).
    Rename,
    /// Add the induction update's stride to the moved memory operation's
    /// address displacement (the paper's "combining").
    CombineDisp(i64),
    /// Copy-propagation combining: the mover crosses `COPY from, to`'s
    /// definition and reads `to` directly instead (legal when the copy
    /// executes on every formal path of the mover).
    Subst {
        /// Register the mover currently reads (the copy's destination).
        from: Reg,
        /// Register it reads after the substitution (the copy's source).
        to: Reg,
    },
    /// Like [`Fix::Rename`], but required because the mover crosses the IF
    /// computing one of its controlling predicates — it becomes
    /// *speculative*. Kept distinct so policies can allow data renaming
    /// while refusing speculation.
    SpeculateRename,
}

/// Verdict for one placement question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Permission {
    /// Legal as is.
    Yes,
    /// Legal if the fixes are applied to the moving instance.
    WithFixes(Vec<Fix>),
    /// Illegal.
    No(&'static str),
}

impl Permission {
    /// Merge two independent requirements.
    fn and(self, other: Permission) -> Permission {
        match (self, other) {
            (Permission::No(r), _) | (_, Permission::No(r)) => Permission::No(r),
            (Permission::Yes, b) => b,
            (a, Permission::Yes) => a,
            (Permission::WithFixes(mut a), Permission::WithFixes(b)) => {
                for f in b {
                    match f {
                        // Combines and substitutions accumulate (crossing
                        // several producers); renames collapse to one.
                        Fix::CombineDisp(_) | Fix::Subst { .. } => a.push(f),
                        Fix::Rename | Fix::SpeculateRename if !a.contains(&f) => a.push(f),
                        _ => {}
                    }
                }
                Permission::WithFixes(a)
            }
        }
    }

    /// Whether the placement is possible at all.
    pub fn allowed(&self) -> bool {
        !matches!(self, Permission::No(_))
    }
}

/// Answers for "x above y" and "x in the same cycle as y".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCheck {
    /// x strictly above y.
    pub above: Permission,
    /// x in y's cycle.
    pub same: Permission,
}

impl PairCheck {
    fn free() -> Self {
        Self {
            above: Permission::Yes,
            same: Permission::Yes,
        }
    }

    fn and(self, other: PairCheck) -> Self {
        Self {
            above: self.above.and(other.above),
            same: self.same.and(other.same),
        }
    }
}

/// Whether `y` is an induction update `r = r ± imm` whose stride can be
/// folded into `x`'s address displacement when `x` moves above it.
fn combine_stride(y: &Instance, x: &Instance) -> Option<i64> {
    let (r, stride) = match y.op.kind {
        OpKind::Alu {
            op: AluOp::Add,
            dst,
            a: Operand::Reg(s),
            b: Operand::Imm(c),
        } if dst == s => (dst, c),
        OpKind::Alu {
            op: AluOp::Add,
            dst,
            a: Operand::Imm(c),
            b: Operand::Reg(s),
        } if dst == s => (dst, c),
        OpKind::Alu {
            op: AluOp::Sub,
            dst,
            a: Operand::Reg(s),
            b: Operand::Imm(c),
        } if dst == s => (dst, -c),
        _ => return None,
    };
    // x must use r exclusively as a memory index.
    match x.op.kind {
        OpKind::Load { addr, dst } if addr.index == Some(r) && dst != r => Some(stride),
        OpKind::Store { addr, src } if addr.index == Some(r) && src != Operand::Reg(r) => {
            Some(stride)
        }
        _ => None,
    }
}

/// Whether `y` is a register-to-register copy whose destination `x` reads,
/// such that `x` may read the source directly after crossing above `y`.
///
/// Legality requires the copy to execute on every formal path of the mover
/// (`y.formal ⊇ x.formal`): on exactly those paths the copied value *is*
/// the source's value at the copy's cycle, and crossing rows is handled
/// compositionally by the mover's planning loop (any redefinition of the
/// source between the new and old position is itself crossed and fixed or
/// refused).
fn copy_subst(y: &Instance, x: &Instance) -> Option<(Reg, Reg)> {
    if let OpKind::Copy {
        dst,
        src: Operand::Reg(s),
    } = y.op.kind
    {
        if x.op.uses().contains(&RegRef::Gpr(dst)) && cached_subsumes(&y.formal, &x.formal) {
            return Some((dst, s));
        }
    }
    None
}

/// Full pair check; `x` is the mover.
pub fn check_pair(
    x: &Instance,
    y: &Instance,
    live_out: &[RegRef],
    machine: &MachineConfig,
) -> PairCheck {
    // Disjoined matrices: no dependence testing at all (paper §2). The
    // same formal pairs recur across every candidate trial, so the test is
    // memoized for expensive (sparse/spilled) matrices.
    if cached_disjoint(&x.formal, &y.formal) {
        return PairCheck::free();
    }

    let mut check = PairCheck::free();
    let x_defs = x.op.defs();
    let x_uses = x.op.uses();
    let y_defs = y.op.defs();
    let y_uses = y.op.uses();
    // Original program order decides the *kind* of each register relation:
    // the same def/use overlap is a true dependence one way and an
    // anti-dependence the other. Leftover copies from renaming inherit
    // their origin, so program-later definitions never masquerade as
    // producers for program-earlier readers.
    let x_first = x.prog_order() < y.prog_order();

    // y defines a register x reads.
    if y_defs.iter().any(|d| x_uses.contains(d)) {
        if x_first {
            // Program anti x → y: x reads before y overwrites. Moving x
            // above (or beside — reads see pre-cycle state) restores
            // program order. Free.
        } else {
            // Program flow y → x: x consumes y's value. Combining and copy
            // substitution legalize both crossing *and* cycle sharing: the
            // rewritten operand reads pre-cycle state, which holds exactly
            // the value the producer sees/copies in that cycle.
            let (above, same) = if let Some(c) = combine_stride(y, x) {
                (
                    Permission::WithFixes(vec![Fix::CombineDisp(c)]),
                    Permission::WithFixes(vec![Fix::CombineDisp(c)]),
                )
            } else if let Some((from, to)) = copy_subst(y, x) {
                (
                    Permission::WithFixes(vec![Fix::Subst { from, to }]),
                    Permission::WithFixes(vec![Fix::Subst { from, to }]),
                )
            } else {
                (
                    Permission::No("true dependence"),
                    Permission::No("producer latency"),
                )
            };
            check = check.and(PairCheck { above, same });
        }
    }

    // y reads a register x defines.
    if y_uses.iter().any(|u| x_defs.contains(u)) {
        // Program anti y → x (x later): renaming the moved definition
        // legalizes going above; sharing a cycle is free (pre-cycle reads).
        // Program flow x → y (x earlier): y is consuming x's
        // previous-iteration value through this register; moving x above
        // would change that to the same-iteration value — renaming with a
        // leftover copy preserves the old reaching definition. Same fix,
        // same cycle-sharing freedom, in both directions.
        let fix = rename_permission(x, live_out);
        check = check.and(PairCheck {
            above: fix,
            same: Permission::Yes,
        });
    }

    // Both define the same register.
    if y_defs.iter().any(|d| x_defs.contains(d)) {
        let fix = rename_permission(x, live_out);
        let above = if x_first {
            // Moving x above restores program write order.
            Permission::Yes
        } else {
            fix.clone()
        };
        check = check.and(PairCheck {
            above,
            // Same-cycle double writes conflict regardless of order.
            same: fix,
        });
    }

    // Control: y computes a predicate x's formal matrix constrains.
    if let Some(if_row) = y.computes_if {
        if x.formal.get(if_row, y.index).is_constrained() {
            let above = if !x.op.is_speculable() {
                Permission::No("operation may not execute speculatively")
            } else if matches!(x.op.kind, OpKind::Load { .. }) && !machine.speculative_loads {
                Permission::No("speculative loads disabled")
            } else {
                // Speculative execution writes x's destination on paths
                // outside its formal set; renaming confines the effect.
                match rename_permission(x, live_out) {
                    Permission::WithFixes(_) => Permission::WithFixes(vec![Fix::SpeculateRename]),
                    Permission::Yes => Permission::WithFixes(vec![Fix::SpeculateRename]),
                    no => no,
                }
            };
            check = check.and(PairCheck {
                above,
                // Same cycle: x sits on the matching subtree of the tree
                // instruction (a guard at code generation).
                same: Permission::Yes,
            });
        }
    }
    // x is an IF: it may never become speculative with respect to its own
    // controlling predicates (paper §2) — handled above since IFs are not
    // speculable. Nothing extra here.

    // Memory.
    if let (Some(ax), Some(ay)) = (mem_access(&x.op), mem_access(&y.op)) {
        if ax.interferes(&ay) {
            let delta = (x.index - y.index) as i64;
            // Strides: the only registers appearing as indices in scheduled
            // code are unit inductions (the scheduler folds everything else
            // conservatively); derive from y/x themselves is impossible
            // here, so use the conservative "unknown" unless the addresses
            // match syntactically.
            let alias = ax.may_alias(&ay, delta, |_| None) || ax.may_alias(&ay, delta, |_| Some(0));
            if alias {
                let perm = match (ay.kind, ax.kind) {
                    (AccessKind::Write, AccessKind::Read) if !x_first => PairCheck {
                        above: Permission::No("load may not pass aliasing store"),
                        same: Permission::No("load may not share a cycle with aliasing store"),
                    },
                    // Program-earlier load moving back above a later store:
                    // restores order (same cycle reads pre-cycle memory).
                    (AccessKind::Write, AccessKind::Read) => PairCheck::free(),
                    (AccessKind::Read, AccessKind::Write) if !x_first => PairCheck {
                        above: Permission::No("store may not pass aliasing load"),
                        same: Permission::Yes, // load reads pre-cycle memory
                    },
                    // Program-earlier store under a later load: the load is
                    // consuming the previous-iteration store; moving the
                    // store above would redirect it to this iteration's.
                    (AccessKind::Read, AccessKind::Write) => PairCheck {
                        above: Permission::No("store may not pass its cross-iteration consumer"),
                        same: Permission::Yes,
                    },
                    (AccessKind::Write, AccessKind::Write) => PairCheck {
                        above: Permission::No("stores to aliasing addresses keep order"),
                        same: Permission::No("aliasing stores may not share a cycle"),
                    },
                    (AccessKind::Read, AccessKind::Read) => PairCheck::free(),
                };
                check = check.and(perm);
            }
        }
    }

    // BREAK protocol, in original program order.
    let x_first = x.prog_order() < y.prog_order();
    if y.op.is_break() && !x_first {
        if x.is_observable(live_out) {
            // Program: BREAK, then x. x must stay strictly below.
            check = check.and(PairCheck {
                above: Permission::No("observable op may not pass a loop exit"),
                same: Permission::No("observable op may not share the exit's cycle"),
            });
        }
        if x.op.is_break() {
            check = check.and(PairCheck {
                above: Permission::No("loop exits keep their order"),
                same: Permission::Yes,
            });
        }
    }
    if x.op.is_break() && x_first {
        // Program: x (BREAK), then y. Moving the BREAK above y is a
        // reordering *towards* program order — but y observable must not
        // end up in or after the exit's cycle… y is stationary below, so
        // the exit would fire before y executes, which is exactly the
        // original semantics. Fine.
    }
    if x.op.is_break() && !x_first && y.is_observable(live_out) {
        // Program: y (observable), then x (BREAK). y must have executed by
        // the time the exit fires: same cycle is fine (exit at end of
        // cycle), above is not.
        check = check.and(PairCheck {
            above: Permission::No("loop exit may not pass an observable op"),
            same: Permission::Yes,
        });
    }
    if !x.op.is_break() && x_first && y.op.is_break() && x.is_observable(live_out) {
        // Program: x (observable), then y (BREAK); x currently below is
        // already wrong-side — moving it above or into y's cycle restores
        // order.
        // (No constraint: both placements are legal.)
    }

    check
}

/// Renaming permission for the mover: only single-GPR definitions can be
/// renamed (there is no condition-register copy operation). Renaming a
/// `COPY` is refused — it merely replaces one copy by another at the
/// original slot, seeding unbounded copy chains; consumers reach through
/// copies via substitution instead. The leftover copy preserves the
/// architectural value at the original program point, so live-out
/// destinations are safe to rename.
fn rename_permission(x: &Instance, live_out: &[RegRef]) -> Permission {
    let _ = live_out;
    if matches!(x.op.kind, OpKind::Copy { .. }) {
        return Permission::No("copies are never renamed");
    }
    match x.op.defs().as_slice() {
        [RegRef::Gpr(_)] => Permission::WithFixes(vec![Fix::Rename]),
        [RegRef::Cc(_)] => Permission::No("condition-register definitions cannot be renamed"),
        [] => Permission::Yes,
        _ => Permission::No("multi-definition operations cannot be renamed"),
    }
}

/// Producer latency check helper: the earliest row `x` may occupy given a
/// flow producer `y` at `row_y` (same iteration frame).
pub fn flow_latency(y: &Instance, machine: &MachineConfig) -> usize {
    machine.latency(&y.op) as usize
}

/// Whether `y` produces a register value that `x` consumes *in program
/// order* (y precedes x and their path sets overlap).
pub fn is_flow(y: &Instance, x: &Instance) -> bool {
    if cached_disjoint(&x.formal, &y.formal) {
        return false;
    }
    if y.prog_order() >= x.prog_order() {
        return false;
    }
    let x_uses = x.op.uses();
    y.op.defs().iter().any(|d| x_uses.contains(d))
}

/// Whether `y` defines a register that `x` reads, regardless of program
/// order — the conservative relation used for latency accounting (a
/// consumer must issue at least the producer's latency after *any* write
/// that may reach it, including cross-iteration supplies).
pub fn writes_read_by(y: &Instance, x: &Instance) -> bool {
    let x_uses = x.op.uses();
    y.op.defs().iter().any(|d| x_uses.contains(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstId;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp};
    use psp_predicate::PredicateMatrix;

    fn inst(op: psp_ir::Operation, origin: usize) -> Instance {
        Instance {
            id: InstId(origin as u64),
            op,
            index: 0,
            formal: PredicateMatrix::universe(),
            computes_if: None,
            origin,
            late: 0,
            snapshots: Vec::new(),
        }
    }

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    #[test]
    fn disjoint_instances_are_free() {
        let mut a = inst(copy(Reg(0), 1i64), 0);
        a.formal = PredicateMatrix::single(0, 0, true);
        let mut b = inst(copy(Reg(0), 2i64), 1);
        b.formal = PredicateMatrix::single(0, 0, false);
        let c = check_pair(&b, &a, &[], &m());
        assert_eq!(c, PairCheck::free());
    }

    #[test]
    fn flow_blocks_above_and_same() {
        let y = inst(add(Reg(0), Reg(1), 1i64), 0);
        let x = inst(copy(Reg(2), Reg(0)), 1);
        let c = check_pair(&x, &y, &[], &m());
        assert!(!c.above.allowed());
        assert!(!c.same.allowed());
    }

    #[test]
    fn combining_legalizes_crossing_an_induction_update() {
        let y = inst(add(Reg(0), Reg(0), 1i64), 5); // k = k + 1
        let x = inst(load(Reg(2), ArrayId(0), Reg(0)), 6);
        let c = check_pair(&x, &y, &[], &m());
        assert_eq!(c.above, Permission::WithFixes(vec![Fix::CombineDisp(1)]));
        // A non-memory consumer cannot combine.
        let x2 = inst(cmp(CmpOp::Ge, CcReg(1), Reg(0), Reg(3)), 6);
        let c2 = check_pair(&x2, &y, &[], &m());
        assert!(!c2.above.allowed());
    }

    #[test]
    fn anti_allows_same_cycle_and_rename_above() {
        let y = inst(copy(Reg(2), Reg(0)), 0); // reads R0
        let x = inst(add(Reg(0), Reg(3), 1i64), 1); // writes R0
        let c = check_pair(&x, &y, &[], &m());
        assert_eq!(c.same, Permission::Yes);
        assert_eq!(c.above, Permission::WithFixes(vec![Fix::Rename]));
    }

    #[test]
    fn output_requires_rename_even_same_cycle() {
        let y = inst(copy(Reg(0), 1i64), 0);
        let x = inst(add(Reg(0), Reg(1), 2i64), 1);
        let c = check_pair(&x, &y, &[], &m());
        assert_eq!(c.above, Permission::WithFixes(vec![Fix::Rename]));
        assert_eq!(c.same, Permission::WithFixes(vec![Fix::Rename]));
    }

    #[test]
    fn copies_are_never_renamed() {
        // Renaming a copy only spawns another copy: refused.
        let y = inst(copy(Reg(0), 1i64), 0);
        let x = inst(copy(Reg(0), 2i64), 1);
        let c = check_pair(&x, &y, &[], &m());
        assert!(!c.above.allowed());
        assert!(!c.same.allowed());
        // But a program-earlier copy moving back above is free on the
        // output side (restores write order).
        let c = check_pair(&y.clone(), &x, &[], &m());
        let _ = c;
    }

    #[test]
    fn cc_defs_cannot_rename() {
        let y = inst(if_(CcReg(0)), 0); // uses CC0
        let x = inst(cmp(CmpOp::Lt, CcReg(0), Reg(0), Reg(1)), 1); // writes CC0
        let c = check_pair(&x, &y, &[], &m());
        assert!(!c.above.allowed());
        assert_eq!(c.same, Permission::Yes); // anti: IF reads pre-cycle CC
    }

    #[test]
    fn control_dependence_speculation() {
        let mut y = inst(if_(CcReg(0)), 3);
        y.computes_if = Some(0);
        // Speculable consumer constrained on the predicate.
        let mut x = inst(add(Reg(3), Reg(2), 0i64), 4);
        x.formal = PredicateMatrix::single(0, 0, true);
        let c = check_pair(&x, &y, &[], &m());
        assert_eq!(c.above, Permission::WithFixes(vec![Fix::SpeculateRename]));
        assert_eq!(c.same, Permission::Yes, "tree instruction subtree");
        // A store on the predicate may not speculate.
        let mut st = inst(store(ArrayId(0), Reg(1), Reg(2)), 4);
        st.formal = PredicateMatrix::single(0, 0, true);
        let c = check_pair(&st, &y, &[], &m());
        assert!(!c.above.allowed());
        assert_eq!(c.same, Permission::Yes);
        // Speculative loads can be disabled.
        let mut ld = inst(load(Reg(3), ArrayId(0), Reg(1)), 4);
        ld.formal = PredicateMatrix::single(0, 0, true);
        let no_spec = MachineConfig {
            speculative_loads: false,
            ..m()
        };
        assert!(!check_pair(&ld, &y, &[], &no_spec).above.allowed());
        assert!(check_pair(&ld, &y, &[], &m()).above.allowed());
    }

    #[test]
    fn ifs_never_speculative() {
        let mut y = inst(if_(CcReg(0)), 3);
        y.computes_if = Some(0);
        let mut x = inst(if_(CcReg(1)), 5);
        x.computes_if = Some(1);
        x.formal = PredicateMatrix::single(0, 0, false);
        let c = check_pair(&x, &y, &[], &m());
        assert!(!c.above.allowed());
        assert_eq!(c.same, Permission::Yes);
    }

    #[test]
    fn unrelated_if_crossing_is_free() {
        // "This does not mean that we prohibit moving IFs across unrelated
        // IFs" (paper §2).
        let mut y = inst(if_(CcReg(0)), 3);
        y.computes_if = Some(0);
        let mut x = inst(if_(CcReg(1)), 5);
        x.computes_if = Some(1);
        let c = check_pair(&x, &y, &[], &m());
        assert_eq!(c, PairCheck::free());
    }

    #[test]
    fn memory_ordering() {
        let st = inst(store(ArrayId(0), Reg(0), Reg(1)), 0);
        let ld = inst(load(Reg(2), ArrayId(0), Reg(0)), 1);
        // Load moving above aliasing store: never.
        let c = check_pair(&ld, &st, &[], &m());
        assert!(!c.above.allowed());
        assert!(!c.same.allowed());
        // Store moving above aliasing load: same cycle fine.
        let c = check_pair(&st, &ld, &[], &m());
        assert!(!c.above.allowed());
        assert_eq!(c.same, Permission::Yes);
        // Different arrays: free.
        let ld2 = inst(load(Reg(2), ArrayId(1), Reg(0)), 1);
        assert_eq!(check_pair(&ld2, &st, &[], &m()), PairCheck::free());
    }

    #[test]
    fn break_protocol() {
        let live_out = vec![RegRef::Gpr(Reg(5))];
        let brk = inst(break_(CcReg(1)), 3);
        // Observable after the break in program order.
        let obs = inst(copy(Reg(5), Reg(1)), 4);
        let c = check_pair(&obs, &brk, &live_out, &m());
        assert!(!c.above.allowed());
        assert!(!c.same.allowed());
        // Scratch op passes freely.
        let scratch = inst(copy(Reg(6), Reg(1)), 4);
        assert_eq!(
            check_pair(&scratch, &brk, &live_out, &m()),
            PairCheck::free()
        );
        // Break moving up to an observable that precedes it in program
        // order: same cycle ok, above not.
        let obs_before = inst(store(ArrayId(0), Reg(0), Reg(1)), 2);
        let c = check_pair(&brk, &obs_before, &live_out, &m());
        assert!(!c.above.allowed());
        assert_eq!(c.same, Permission::Yes);
    }

    #[test]
    fn break_order_between_iterations() {
        // BREAK(0) precedes a wrapped observable with index 1.
        let live_out = vec![RegRef::Gpr(Reg(5))];
        let brk = inst(break_(CcReg(1)), 7);
        let mut obs = inst(copy(Reg(5), Reg(1)), 2);
        obs.index = 1; // next original iteration: later in program order
        let c = check_pair(&obs, &brk, &live_out, &m());
        assert!(!c.above.allowed(), "wrap of a live-out def past the exit");
    }

    #[test]
    fn is_flow_helper() {
        let y = inst(add(Reg(0), Reg(1), 1i64), 0);
        let x = inst(copy(Reg(2), Reg(0)), 1);
        assert!(is_flow(&y, &x));
        assert!(!is_flow(&x, &y));
    }
}
