//! The four elementary transformations: moveup (including wrapping across
//! the loop boundary), movedown, split, and unify.
//!
//! All transformations are checked: they refuse to produce an incorrect
//! schedule. `moveup` applies the fixes demanded by the pair checks —
//! renaming (fresh destination plus a `COPY` left at the original slot) and
//! combining (folding crossed induction updates into memory displacements).
//!
//! Wrapping (`WrapUp`) is restricted to instances in row 0: the instance
//! leaves through the top of the schedule and re-enters at a fresh bottom
//! row with its operation index incremented and its predicate matrix
//! shifted one column right (paper §2), jumping over no other instance in
//! the unrolled timeline. Pipelining arises from alternating wraps and
//! compaction.

use crate::deps::{check_pair, flow_latency, is_flow, Fix, Permission};
use crate::instance::{InstId, Instance};
use crate::schedule::Schedule;
use psp_ir::op::build;
use psp_ir::OpKind;
use psp_machine::MachineConfig;
use psp_predicate::PredElem;
use std::fmt;

/// Why a transformation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveError {
    /// Unknown instance id.
    NotFound,
    /// Ill-formed request (e.g. moveup to a later row).
    BadTarget,
    /// A pair check failed.
    Blocked {
        /// The instance in the way.
        by: InstId,
        /// The failing rule.
        reason: &'static str,
    },
    /// The target row cannot accept the instance's resource class.
    Resource,
    /// A producer latency would be violated.
    Latency,
    /// Split preconditions not met (element constrained, or predicate not
    /// yet computed at the instance's cycle).
    BadSplit,
    /// Unify preconditions not met.
    BadUnify,
}

impl fmt::Display for MoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveError::NotFound => write!(f, "instance not found"),
            MoveError::BadTarget => write!(f, "bad target row"),
            MoveError::Blocked { by, reason } => {
                write!(f, "blocked by instance {}: {reason}", by.0)
            }
            MoveError::Resource => write!(f, "target row out of resources"),
            MoveError::Latency => write!(f, "producer latency violated"),
            MoveError::BadSplit => write!(f, "split preconditions not met"),
            MoveError::BadUnify => write!(f, "unify preconditions not met"),
        }
    }
}

/// A transformation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transformation {
    /// Move an instance to an earlier row.
    MoveUp {
        /// The instance.
        id: InstId,
        /// Target row (must be earlier than the current row).
        target: usize,
    },
    /// Move an instance from row 0 across the loop boundary into the
    /// previous transformed iteration (index + 1, matrix shifted right,
    /// re-inserted at a fresh bottom row).
    WrapUp {
        /// The instance (must sit in row 0).
        id: InstId,
    },
    /// Move an instance to a later row.
    MoveDown {
        /// The instance.
        id: InstId,
        /// Target row (must be later than the current row).
        target: usize,
    },
    /// Split one `b` element of an instance's matrix into two clones.
    Split {
        /// The instance.
        id: InstId,
        /// Predicate row.
        row: u32,
        /// Predicate column.
        col: i32,
    },
    /// Merge two clones whose matrices differ in one complementary element.
    Unify {
        /// First clone.
        a: InstId,
        /// Second clone.
        b: InstId,
    },
}

/// Apply a transformation, mutating the schedule on success.
pub fn apply(
    sched: &mut Schedule,
    t: &Transformation,
    machine: &MachineConfig,
) -> Result<(), MoveError> {
    match *t {
        Transformation::MoveUp { id, target } => moveup(sched, id, target, machine),
        Transformation::WrapUp { id } => wrap_up(sched, id, machine),
        Transformation::MoveDown { id, target } => movedown(sched, id, target, machine),
        Transformation::Split { id, row, col } => split(sched, id, row, col),
        Transformation::Unify { a, b } => unify(sched, a, b),
    }
}

/// Plan an upward crossing: process the jumped rows bottom-up, one row at a
/// time, accumulating and applying fixes compositionally. Within a row, all
/// pair checks are evaluated against the mover's state *at row entry* (the
/// row's operations read pre-cycle state simultaneously) and the row's
/// fixes are applied together afterwards.
///
/// Returns the rewritten mover and, when a rename was needed, the `COPY`
/// to leave behind at the original slot.
/// What fixes a motion pass may apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovePolicy {
    /// Allow data renaming (anti/output/cross-iteration flow).
    pub rename: bool,
    /// Allow speculation renaming (crossing the mover's own computing IF).
    pub speculate: bool,
}

impl MovePolicy {
    /// Everything allowed.
    pub const FULL: MovePolicy = MovePolicy {
        rename: true,
        speculate: true,
    };
    /// Only free / combining / substitution fixes.
    pub const FREE: MovePolicy = MovePolicy {
        rename: false,
        speculate: false,
    };
    /// Data renaming but no speculation.
    pub const RENAME: MovePolicy = MovePolicy {
        rename: true,
        speculate: false,
    };
}

/// The evolving state of an upward plan: the rewritten mover, the `COPY`
/// demanded by a rename (if any), and the combining keys already folded in.
/// Complementary clones of one original operation (same origin and index)
/// execute on disjoint paths: crossing several of them must apply their
/// positional compensation exactly once, which is what `combined_from`
/// tracks.
#[derive(Clone)]
struct PlanState {
    work: Instance,
    leftover: Option<Instance>,
    combined_from: Vec<(usize, i32)>,
}

fn apply_row_fixes(
    state: &mut PlanState,
    fixes: Vec<(InstId, (usize, i32), Fix)>,
    x: &Instance,
    sched: &mut Schedule,
    policy: MovePolicy,
) -> Result<(), MoveError> {
    // Substitutions in one row must not disagree on a source register.
    let mut substs: Vec<(psp_ir::Reg, psp_ir::Reg)> = Vec::new();
    let mut disp: i64 = 0;
    let mut rename = false;
    for (by, blocker, f) in fixes {
        match f {
            Fix::CombineDisp(d) => {
                if !state.combined_from.contains(&blocker) {
                    state.combined_from.push(blocker);
                    disp += d;
                }
            }
            Fix::Subst { from, to } => {
                if substs.iter().any(|&(f2, t2)| f2 == from && t2 != to) {
                    return Err(MoveError::Blocked {
                        by,
                        reason: "ambiguous copy substitution",
                    });
                }
                if !substs.contains(&(from, to)) {
                    substs.push((from, to));
                }
            }
            Fix::Rename => {
                if !policy.rename {
                    return Err(MoveError::Blocked {
                        by,
                        reason: "rename disabled in this pass",
                    });
                }
                rename = true;
            }
            Fix::SpeculateRename => {
                if !policy.speculate {
                    return Err(MoveError::Blocked {
                        by,
                        reason: "speculation disabled in this pass",
                    });
                }
                rename = true;
            }
        }
    }
    for (from, to) in substs {
        state.work.op = state.work.op.with_uses_renamed(from, to);
    }
    if disp != 0 {
        state.work.op.kind = match state.work.op.kind {
            OpKind::Load { dst, addr } => OpKind::Load {
                dst,
                addr: addr.displaced(disp),
            },
            OpKind::Store { src, addr } => OpKind::Store {
                src,
                addr: addr.displaced(disp),
            },
            _ => return Err(MoveError::BadTarget),
        };
    }
    if rename && state.leftover.is_none() {
        let old = match state.work.op.defs().as_slice() {
            [psp_ir::RegRef::Gpr(r)] => *r,
            _ => return Err(MoveError::BadTarget),
        };
        let fresh = sched.spec.fresh_reg();
        state.work.op = state.work.op.with_dst_gpr(fresh);
        state.leftover = Some(Instance {
            id: sched.fresh_id(),
            op: build::copy(old, fresh),
            index: x.index,
            formal: x.formal.clone(),
            computes_if: None,
            origin: x.origin,
            late: x.late + 1,
            // Leftover copies are steady-state plumbing only; the
            // preloop's snapshot ops write the architectural registers
            // directly.
            snapshots: Vec::new(),
        });
    }
    Ok(())
}

/// Partners of the mover's own row: leaving a shared cycle upward preserves
/// pre-cycle read semantics, so positional fixes (combining, substitution)
/// demanded by the pair check are *already incorporated* in the mover's
/// operation and must not be re-applied; only renames (a same-row reader
/// that would start seeing the write) are genuinely new. The
/// already-incorporated combines are recorded so jumped clones of the same
/// update are not double-counted.
fn plan_own_row(
    sched: &mut Schedule,
    x: &Instance,
    own_row: &[Instance],
    live_out: &[psp_ir::RegRef],
    policy: MovePolicy,
    machine: &MachineConfig,
) -> Result<PlanState, MoveError> {
    let mut state = PlanState {
        work: x.clone(),
        leftover: None,
        combined_from: Vec::new(),
    };
    let mut fixes: Vec<(InstId, (usize, i32), Fix)> = Vec::new();
    for y in own_row {
        if y.id == x.id {
            continue;
        }
        let c = check_pair(&state.work, y, live_out, machine);
        match c.above {
            Permission::Yes => {}
            Permission::WithFixes(fs) => {
                for f in fs {
                    match f {
                        Fix::Rename | Fix::SpeculateRename => {
                            fixes.push((y.id, (y.origin, y.index), f))
                        }
                        Fix::CombineDisp(_) => {
                            let key = (y.origin, y.index);
                            if !state.combined_from.contains(&key) {
                                state.combined_from.push(key);
                            }
                        }
                        Fix::Subst { .. } => {}
                    }
                }
            }
            Permission::No(reason) => return Err(MoveError::Blocked { by: y.id, reason }),
        }
    }
    apply_row_fixes(&mut state, fixes, x, sched, policy)?;
    Ok(state)
}

/// Cross one jumped row (full `above` permissions).
fn plan_cross_row(
    state: &mut PlanState,
    row: &[Instance],
    x: &Instance,
    sched: &mut Schedule,
    live_out: &[psp_ir::RegRef],
    policy: MovePolicy,
    machine: &MachineConfig,
) -> Result<(), MoveError> {
    let mut fixes: Vec<(InstId, (usize, i32), Fix)> = Vec::new();
    for y in row {
        if y.id == x.id {
            continue;
        }
        let c = check_pair(&state.work, y, live_out, machine);
        match c.above {
            Permission::Yes => {}
            Permission::WithFixes(fs) => {
                fixes.extend(fs.into_iter().map(|f| (y.id, (y.origin, y.index), f)));
            }
            Permission::No(reason) => return Err(MoveError::Blocked { by: y.id, reason }),
        }
    }
    apply_row_fixes(state, fixes, x, sched, policy)
}

/// Land in the target row (cycle-sharing `same` permissions).
fn plan_into_row(
    state: &mut PlanState,
    row: &[Instance],
    x: &Instance,
    sched: &mut Schedule,
    live_out: &[psp_ir::RegRef],
    policy: MovePolicy,
    machine: &MachineConfig,
) -> Result<(), MoveError> {
    let mut fixes: Vec<(InstId, (usize, i32), Fix)> = Vec::new();
    for y in row {
        if y.id == x.id {
            continue;
        }
        let c = check_pair(&state.work, y, live_out, machine);
        match c.same {
            Permission::Yes => {}
            Permission::WithFixes(fs) => {
                fixes.extend(fs.into_iter().map(|f| (y.id, (y.origin, y.index), f)))
            }
            Permission::No(reason) => return Err(MoveError::Blocked { by: y.id, reason }),
        }
    }
    apply_row_fixes(state, fixes, x, sched, policy)
}

fn plan_upward(
    sched: &mut Schedule,
    x: &Instance,
    own_row: &[Instance],
    jumped_rows: &[Vec<Instance>],
    same_row: &[Instance],
    policy: MovePolicy,
    machine: &MachineConfig,
) -> Result<(Instance, Option<Instance>), MoveError> {
    let live_out = sched.spec.live_out.clone();
    let mut state = plan_own_row(sched, x, own_row, &live_out, policy, machine)?;
    // Jumped rows, nearest first (bottom-up).
    for row in jumped_rows.iter().rev() {
        plan_cross_row(&mut state, row, x, sched, &live_out, policy, machine)?;
    }
    // Target row (cycle sharing).
    plan_into_row(&mut state, same_row, x, sched, &live_out, policy, machine)?;
    Ok((state.work, state.leftover))
}

/// Latency feasibility of `x` sitting at `row`, for every producer in the
/// schedule: program-order producers above supply within the iteration;
/// writers at or below supply across the back edge (previous transformed
/// iteration), including program-later writers whose previous instance
/// reaches `x`.
fn latency_ok(sched: &Schedule, x: &Instance, row: usize, machine: &MachineConfig) -> bool {
    let n_rows = sched.n_rows().max(row + 1);
    for (ry, r) in sched.rows.iter().enumerate() {
        for y in r {
            if y.id == x.id || !crate::deps::writes_read_by(y, x) {
                continue;
            }
            let lat = flow_latency(y, machine);
            if ry < row {
                // Same-iteration supply exists only for program-order
                // producers on overlapping paths.
                if is_flow(y, x) && row - ry < lat {
                    return false;
                }
            } else if ry > row {
                // The value crosses the back edge.
                if row + n_rows - ry < lat {
                    return false;
                }
            }
            // Same row: either forbidden by the pair checks (true flow) or
            // a pre-cycle read (no latency applies).
        }
    }
    true
}

/// Resource feasibility of adding `x` to `row`.
fn resource_ok(sched: &mut Schedule, x: &Instance, row: usize, machine: &MachineConfig) -> bool {
    if sched.rows.len() <= row {
        return true;
    }
    sched.rows[row].push(x.clone());
    let ok = sched.row_resource_ok(row, machine);
    sched.rows[row].pop();
    ok
}

/// Move an instance to an earlier row (all fixes allowed).
pub fn moveup(
    sched: &mut Schedule,
    id: InstId,
    target: usize,
    machine: &MachineConfig,
) -> Result<(), MoveError> {
    moveup_ext(sched, id, target, machine, MovePolicy::FULL)
}

/// Move an instance to an earlier row under a fix policy (compaction runs
/// a fix-free pass before allowing renames, and never speculates).
pub fn moveup_ext(
    sched: &mut Schedule,
    id: InstId,
    target: usize,
    machine: &MachineConfig,
    policy: MovePolicy,
) -> Result<(), MoveError> {
    let (cur, pos) = sched.find(id).ok_or(MoveError::NotFound)?;
    if target >= cur {
        return Err(MoveError::BadTarget);
    }
    let x = sched.rows[cur][pos].clone();

    // Jumped rows (target, cur), nearest processed first inside the plan;
    // the mover's own row is handled separately (fixes for those pairs are
    // already incorporated).
    let own_row: Vec<Instance> = sched.rows[cur].clone();
    let jumped_rows: Vec<Vec<Instance>> = sched.rows[target + 1..cur].to_vec();
    let same_row: Vec<Instance> = sched.rows[target].clone();
    let (moved, leftover) = plan_upward(
        sched,
        &x,
        &own_row,
        &jumped_rows,
        &same_row,
        policy,
        machine,
    )?;

    if !resource_ok(sched, &moved, target, machine) {
        return Err(MoveError::Resource);
    }
    if !latency_ok(sched, &moved, target, machine) {
        return Err(MoveError::Latency);
    }
    if let Some(copy) = &leftover {
        // The leftover copy consumes the renamed value at the original row.
        if cur - target < flow_latency(&moved, machine) {
            return Err(MoveError::Latency);
        }
        // It also needs a slot there.
        if !resource_ok(sched, copy, cur, machine) {
            return Err(MoveError::Resource);
        }
    }

    sched.remove(id);
    sched.insert(target, moved);
    if let Some(copy) = leftover {
        sched.insert(cur, copy);
    }
    Ok(())
}

/// Move an instance to the *earliest* feasible row, equivalent to trying
/// `moveup_ext` at targets `0..cur` in order and taking the first success —
/// but in one pass instead of a quadratic re-plan per target.
///
/// The plan state for target `t` is the own-row state extended by crossing
/// rows `cur-1, cur-2, …, t+1`: a shared suffix across targets. One
/// descending sweep builds every per-target state incrementally (a crossing
/// failure at row `k` blocks all targets below `k`, exactly as each
/// individual plan would fail at that same row); an ascending scan then
/// branches each state through the target row's cycle-sharing checks and
/// the placement checks, returning on the first success.
///
/// Returns the chosen target row.
pub(crate) fn moveup_earliest(
    sched: &mut Schedule,
    id: InstId,
    machine: &MachineConfig,
    policy: MovePolicy,
) -> Result<usize, MoveError> {
    let (cur, pos) = sched.find(id).ok_or(MoveError::NotFound)?;
    if cur == 0 {
        return Err(MoveError::BadTarget);
    }
    let x = sched.rows[cur][pos].clone();
    let own_row: Vec<Instance> = sched.rows[cur].clone();
    let rows_below: Vec<Vec<Instance>> = sched.rows[..cur].to_vec();
    let live_out = sched.spec.live_out.clone();

    let mut state = plan_own_row(sched, &x, &own_row, &live_out, policy, machine)?;
    // states[t] = plan state after crossing rows (t, cur), i.e. ready to
    // land in row t. Built top state first (t = cur-1 crosses nothing).
    let mut states: Vec<Option<PlanState>> = vec![None; cur];
    states[cur - 1] = Some(state.clone());
    for k in (1..cur).rev() {
        match plan_cross_row(
            &mut state,
            &rows_below[k],
            &x,
            sched,
            &live_out,
            policy,
            machine,
        ) {
            Ok(()) => states[k - 1] = Some(state.clone()),
            Err(_) => break, // every target below row k is blocked by row k
        }
    }

    for (target, slot) in states.iter().enumerate() {
        let Some(st) = slot else { continue };
        let mut st = st.clone();
        if plan_into_row(
            &mut st,
            &rows_below[target],
            &x,
            sched,
            &live_out,
            policy,
            machine,
        )
        .is_err()
        {
            continue;
        }
        let PlanState {
            work: moved,
            leftover,
            ..
        } = st;
        if !resource_ok(sched, &moved, target, machine)
            || !latency_ok(sched, &moved, target, machine)
        {
            continue;
        }
        if let Some(copy) = &leftover {
            if cur - target < flow_latency(&moved, machine)
                || !resource_ok(sched, copy, cur, machine)
            {
                continue;
            }
        }
        sched.remove(id);
        sched.insert(target, moved);
        if let Some(copy) = leftover {
            sched.insert(cur, copy);
        }
        return Ok(target);
    }
    Err(MoveError::BadTarget)
}

/// Move an instance from row 0 across the loop boundary.
pub fn wrap_up(sched: &mut Schedule, id: InstId, machine: &MachineConfig) -> Result<(), MoveError> {
    let (cur, pos) = sched.find(id).ok_or(MoveError::NotFound)?;
    if cur != 0 {
        return Err(MoveError::BadTarget);
    }
    let x = sched.rows[cur][pos].clone();

    // Memory and exit effects cannot be replayed by the preloop, so a
    // wrapped store/BREAK would silently lose original iteration 0's
    // effect.
    if x.op.is_store() || x.op.is_break() {
        return Err(MoveError::Blocked {
            by: id,
            reason: "stores and exits do not wrap",
        });
    }

    // Preloop contract: the wrapped instance's snapshot will execute once
    // before the loop, writing its (possibly renamed) destination. Any
    // *program-earlier* reader left in the body expects the pre-update
    // value of an architectural destination, so such a destination must be
    // renamed away (or the wrap refused for un-renamable definitions).
    let has_earlier_reader = sched.instances().any(|y| {
        y.id != id
            && y.prog_order() < x.prog_order()
            && x.op.defs().iter().any(|d| y.op.uses().contains(d))
    });
    if has_earlier_reader {
        let renameable = matches!(x.op.defs().as_slice(), [psp_ir::RegRef::Gpr(_)])
            && !matches!(x.op.kind, OpKind::Copy { .. });
        if !renameable {
            return Err(MoveError::Blocked {
                by: id,
                reason: "wrap would expose an un-renamable definition to earlier readers",
            });
        }
    }

    // The wrapped instance ends up strictly earlier than its former row-0
    // partners (checked in the pre-wrap frame).
    let partners: Vec<Instance> = sched.rows[0]
        .iter()
        .filter(|y| y.id != id)
        .cloned()
        .collect();
    let (mut moved, mut leftover) =
        plan_upward(sched, &x, &partners, &[], &[], MovePolicy::FULL, machine)?;
    if has_earlier_reader && leftover.is_none() {
        // Force the rename the partners did not demand.
        let old = match moved.op.defs().as_slice() {
            [psp_ir::RegRef::Gpr(r)] => *r,
            _ => return Err(MoveError::BadTarget),
        };
        let fresh = sched.spec.fresh_reg();
        moved.op = moved.op.with_dst_gpr(fresh);
        leftover = Some(Instance {
            id: sched.fresh_id(),
            op: build::copy(old, fresh),
            index: x.index,
            formal: x.formal.clone(),
            computes_if: None,
            origin: x.origin,
            late: x.late + 1,
            snapshots: Vec::new(),
        });
    }

    // Record the pre-wrap operation (with the renamed destination, which is
    // the steady-state contract) for preloop generation. Positional
    // rewrites from crossing the partners (combining/substitution) are
    // excluded: at startup the instance reads architectural state directly.
    let mut snapshot = x.op;
    if leftover.is_some() {
        if let [psp_ir::RegRef::Gpr(new_dst)] = moved.op.defs().as_slice() {
            snapshot = snapshot.with_dst_gpr(*new_dst);
        }
    }
    moved.snapshots.push(snapshot);
    moved.index += 1;
    moved.formal = moved.formal.shifted(1);

    let bottom = sched.n_rows();
    if !latency_ok(sched, &moved, bottom, machine) {
        return Err(MoveError::Latency);
    }
    if let Some(copy) = &leftover {
        // The copy would sit in row 0 consuming a value produced at the
        // very bottom of the same iteration — one full loop behind, which
        // is exactly what renaming preserves; latency is n_rows ≥ 1.
        if sched.n_rows() < flow_latency(&moved, machine) {
            return Err(MoveError::Latency);
        }
        // And it needs a free slot there.
        if !resource_ok(sched, copy, 0, machine) {
            return Err(MoveError::Resource);
        }
    }

    sched.remove(id);
    let bottom = sched.n_rows(); // recompute: row 0 may still hold others
    sched.insert(bottom, moved);
    if let Some(copy) = leftover {
        sched.insert(0, copy);
    }
    Ok(())
}

/// Move an instance to a later row. Conservative: only applied when every
/// jumped instance may legally sit above the mover without fixes.
pub fn movedown(
    sched: &mut Schedule,
    id: InstId,
    target: usize,
    machine: &MachineConfig,
) -> Result<(), MoveError> {
    let (cur, pos) = sched.find(id).ok_or(MoveError::NotFound)?;
    if target <= cur || target >= sched.n_rows() {
        return Err(MoveError::BadTarget);
    }
    let x = sched.rows[cur][pos].clone();
    let live_out = sched.spec.live_out.clone();

    for y in sched.rows[cur..target].iter().flatten() {
        if y.id == id {
            continue;
        }
        // y ends up above x: ask whether y-above-x is legal with no fixes
        // (fixes would have to rewrite the stationary instance).
        let c = check_pair(y, &x, &live_out, machine);
        if c.above != Permission::Yes {
            return Err(MoveError::Blocked {
                by: y.id,
                reason: "movedown would need to rewrite a stationary instance",
            });
        }
        // A consumer of x must not end up above it.
        if is_flow(&x, y) {
            return Err(MoveError::Blocked {
                by: y.id,
                reason: "movedown past a consumer",
            });
        }
    }
    for y in sched.rows[target].iter() {
        let c = check_pair(&x, y, &live_out, machine);
        if c.same != Permission::Yes {
            return Err(MoveError::Blocked {
                by: y.id,
                reason: "movedown same-cycle conflict",
            });
        }
        // Sharing a cycle with a same-iteration consumer would redirect its
        // pre-cycle read to the previous iteration's value.
        if is_flow(&x, y) {
            return Err(MoveError::Blocked {
                by: y.id,
                reason: "movedown into a consumer's cycle",
            });
        }
    }
    // Consumers strictly below the new position keep their latency.
    for (rz, r) in sched.rows.iter().enumerate() {
        for z in r {
            if z.id != id && is_flow(&x, z) {
                let lat = flow_latency(&x, machine);
                if rz > target {
                    if rz - target < lat {
                        return Err(MoveError::Latency);
                    }
                } else if rz + sched.n_rows() - target < lat {
                    return Err(MoveError::Latency);
                }
            }
        }
    }
    if !resource_ok(sched, &x, target, machine) {
        return Err(MoveError::Resource);
    }
    sched.remove(id);
    sched.insert(target, x);
    Ok(())
}

/// Split one `b` element of an instance into two complementary clones.
///
/// The predicate must already be computed when the instance issues (in an
/// earlier cycle or a previous iteration); otherwise the clones would
/// co-execute speculatively and conflict.
pub fn split(sched: &mut Schedule, id: InstId, row: u32, col: i32) -> Result<(), MoveError> {
    let (cur, pos) = sched.find(id).ok_or(MoveError::NotFound)?;
    let x = sched.rows[cur][pos].clone();
    if x.formal.get(row, col).is_constrained() {
        return Err(MoveError::BadSplit);
    }
    if !sched.iflog().available_before(row, col, cur) {
        return Err(MoveError::BadSplit);
    }
    let (f, t) = x.formal.split(row, col).ok_or(MoveError::BadSplit)?;
    let id_f = sched.fresh_id();
    let id_t = sched.fresh_id();
    let mk = |id: InstId, formal| Instance {
        id,
        op: x.op,
        index: x.index,
        formal,
        computes_if: x.computes_if,
        origin: x.origin,
        late: x.late,
        snapshots: x.snapshots.clone(),
    };
    sched.rows[cur][pos] = mk(id_f, f);
    sched.rows[cur].insert(pos + 1, mk(id_t, t));
    Ok(())
}

/// Merge two clones back (inverse of split). Requires the same operation,
/// index, origin and row, and matrices differing in exactly one
/// complementary element.
pub fn unify(sched: &mut Schedule, a: InstId, b: InstId) -> Result<(), MoveError> {
    let (ra, pa) = sched.find(a).ok_or(MoveError::NotFound)?;
    let (rb, pb) = sched.find(b).ok_or(MoveError::NotFound)?;
    if ra != rb {
        return Err(MoveError::BadUnify);
    }
    let (ia, ib) = (&sched.rows[ra][pa], &sched.rows[rb][pb]);
    if ia.op != ib.op || ia.index != ib.index || ia.origin != ib.origin {
        return Err(MoveError::BadUnify);
    }
    let merged = ia.formal.unify(&ib.formal).ok_or(MoveError::BadUnify)?;
    let keep = a.min(b);
    sched.rows[ra][pa.min(pb)] = Instance {
        id: keep,
        op: ia.op,
        index: ia.index,
        formal: merged,
        computes_if: ia.computes_if,
        origin: ia.origin,
        late: ia.late,
        snapshots: ia.snapshots.clone(),
    };
    sched.rows[ra].remove(pa.max(pb));
    Ok(())
}

/// Try to remove empty rows; an empty row is only removable when no flow
/// latency depends on the stall it provides.
pub fn prune_stalls(sched: &mut Schedule, machine: &MachineConfig) {
    loop {
        let empty = match sched.rows.iter().position(Vec::is_empty) {
            Some(r) => r,
            None => return,
        };
        let mut trial = sched.clone();
        trial.rows.remove(empty);
        let ok = trial.instances().all(|x| {
            let (row, _) = trial.find(x.id).expect("instance present");
            latency_ok(&trial, x, row, machine)
        });
        if ok {
            *sched = trial;
        } else {
            return; // keep remaining stalls
        }
    }
}

/// Check every flow latency in the schedule (used by tests and debugging).
pub fn validate_latencies(sched: &Schedule, machine: &MachineConfig) -> Result<(), String> {
    for x in sched.instances() {
        let (row, _) = sched.find(x.id).expect("instance present");
        if !latency_ok(sched, x, row, machine) {
            return Err(format!("latency violated at instance {}", x.id.0));
        }
    }
    Ok(())
}

/// Split helper: candidate `(row, col)` positions that could disjoin `x`
/// from `blocker` (constrained in the blocker, `b` in `x`).
pub fn split_candidates(x: &Instance, blocker: &Instance) -> Vec<(u32, i32)> {
    blocker
        .formal
        .constrained()
        .filter(|&(r, c, _)| x.formal.get(r, c) == PredElem::Both)
        .map(|(r, c, _)| (r, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::{CcReg, OpKind, Reg};
    use psp_predicate::PredicateMatrix;

    fn vecmin_sched() -> Schedule {
        Schedule::initial(&psp_kernels::by_name("vecmin").unwrap().spec)
    }

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn id_at(s: &Schedule, row: usize) -> InstId {
        s.rows[row][0].id
    }

    #[test]
    fn moveup_packs_independent_loads() {
        // LOAD xm (row 1) can join LOAD xk (row 0).
        let mut s = vecmin_sched();
        let id = id_at(&s, 1);
        moveup(&mut s, id, 0, &m()).unwrap();
        assert_eq!(s.rows[0].len(), 2);
        assert!(s.rows[1].is_empty());
    }

    #[test]
    fn moveup_respects_true_dependence() {
        // LT (row 2) reads both loads: cannot reach row 0 or row 1.
        let mut s = vecmin_sched();
        let lt = id_at(&s, 2);
        assert!(matches!(
            moveup(&mut s, lt, 0, &m()),
            Err(MoveError::Blocked { .. })
        ));
        assert!(matches!(
            moveup(&mut s, lt, 1, &m()),
            Err(MoveError::Blocked { .. })
        ));
    }

    #[test]
    fn moveup_with_rename_leaves_copy() {
        // ADD k,k,1 (row 5) wants row 0; the COPY m,k (row 4) and LOAD x[k]
        // (row 0) read k. Crossing the COPY is an anti-dependence → rename;
        // landing in row 0 with LOAD (also reads k) is same-cycle → fine.
        let mut s = vecmin_sched();
        let add = id_at(&s, 5);
        let n_before = s.n_instances();
        moveup(&mut s, add, 0, &m()).unwrap();
        assert_eq!(s.n_instances(), n_before + 1, "copy left behind");
        // The moved ADD writes a fresh register now.
        let moved = s.rows[0]
            .iter()
            .find(|i| matches!(i.op.kind, OpKind::Alu { .. }))
            .unwrap();
        let fresh = match moved.op.kind {
            OpKind::Alu { dst, .. } => dst,
            _ => unreachable!(),
        };
        assert!(fresh.0 >= psp_kernels::by_name("vecmin").unwrap().spec.n_regs);
        // And a COPY k, fresh sits at the original row.
        let leftover = s.rows[5]
            .iter()
            .find(|i| matches!(i.op.kind, OpKind::Copy { .. }))
            .unwrap();
        assert_eq!(leftover.op.uses(), vec![psp_ir::RegRef::Gpr(fresh)]);
    }

    #[test]
    fn moveup_combining_folds_stride() {
        // Move LOAD x[k] below… rather: wrap it and move it up past ADD.
        // Simpler: construct directly — LOAD at row 1 under ADD at row 0 —
        // crossing requires displacement +1.
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut s = Schedule::initial(&kernel.spec);
        // Move ADD (row 5) to row 1 is blocked by COPY m,k? COPY is at row
        // 4 with matrix [1]; ADD universe: not disjoint → anti → rename.
        // Instead test combine directly: wrap LOAD x[k], then move it up
        // across the ADD.
        let load_id = id_at(&s, 0);
        wrap_up(&mut s, load_id, &m()).unwrap();
        // The wrapped load sits at the bottom with index +1.
        let (row, _) = s.find(load_id).unwrap();
        assert_eq!(row, s.n_rows() - 1);
        let inst = s.instance(load_id).unwrap().clone();
        assert_eq!(inst.index, 1);
        // Move it up across BREAK (7→6 after row-0 removal shifts? rows:
        // original row 0 is now empty) — prune first.
        prune_stalls(&mut s, &m());
        let (row, _) = s.find(load_id).unwrap();
        // Rows now: LOADxm, LT, IF, COPY, ADD, GE, BREAK, LOAD(+1).
        assert_eq!(row, 7);
        // Crossing BREAK (row 6) and GE (row 5) is free (not observable);
        // joining ADD's cycle (row 4) combines its stride into the
        // displacement (pre-cycle reads see the not-yet-updated index).
        moveup(&mut s, load_id, 4, &m()).unwrap();
        let inst = s.instance(load_id).unwrap();
        match inst.op.kind {
            OpKind::Load { addr, .. } => assert_eq!(addr.disp, 1, "combined +1"),
            _ => panic!("not a load"),
        }
        // Leaving the shared cycle upward must NOT re-apply the combine.
        moveup(&mut s, load_id, 3, &m()).unwrap();
        let inst = s.instance(load_id).unwrap();
        match inst.op.kind {
            OpKind::Load { addr, .. } => assert_eq!(addr.disp, 1, "no double combine"),
            _ => panic!("not a load"),
        }
    }

    #[test]
    fn wrap_increments_index_and_records_snapshot() {
        let mut s = vecmin_sched();
        let id = id_at(&s, 0);
        let original_op = s.instance(id).unwrap().op;
        wrap_up(&mut s, id, &m()).unwrap();
        let inst = s.instance(id).unwrap();
        assert_eq!(inst.index, 1);
        assert_eq!(inst.snapshots.len(), 1);
        assert_eq!(inst.snapshots[0], original_op);
    }

    #[test]
    fn conditional_instances_wrap_with_shifted_matrix() {
        // The reaching-definition preloop can establish contracts for
        // single-level conditional instances, so conditional wraps are
        // legal; the matrix shifts one column right.
        let mut s = vecmin_sched();
        s.rows[0][0].formal = PredicateMatrix::single(0, 0, true);
        let id = id_at(&s, 0);
        wrap_up(&mut s, id, &m()).unwrap();
        let inst = s.instance(id).unwrap();
        assert_eq!(inst.index, 1);
        assert_eq!(inst.formal, PredicateMatrix::single(0, 1, true));
    }

    #[test]
    fn wrap_requires_row_zero() {
        let mut s = vecmin_sched();
        let id = id_at(&s, 3);
        assert_eq!(wrap_up(&mut s, id, &m()), Err(MoveError::BadTarget));
    }

    #[test]
    fn store_cannot_wrap_past_break() {
        // sign_store: the store sits under an IF; move it to row 0 is
        // blocked anyway (control dep, store not speculable). Check that a
        // store at row 0 cannot wrap past a BREAK: build a toy schedule.
        let kernel = psp_kernels::by_name("sign_store").unwrap();
        let mut s = Schedule::initial(&kernel.spec);
        // Find the store instance and try to wrap whatever reaches row 0 —
        // instead directly: wrapping the row-0 LOAD is fine.
        let id = id_at(&s, 0);
        assert!(wrap_up(&mut s, id, &m()).is_ok());
    }

    #[test]
    fn movedown_simple() {
        let mut s = vecmin_sched();
        // Move LOAD xk (row 0) down to row 1 (with LOAD xm): same-cycle ok.
        let id = id_at(&s, 0);
        movedown(&mut s, id, 1, &m()).unwrap();
        assert_eq!(s.rows[1].len(), 2);
    }

    #[test]
    fn movedown_blocked_past_consumer() {
        let mut s = vecmin_sched();
        let id = id_at(&s, 0); // LOAD xk feeds LT at row 2
        assert!(matches!(
            movedown(&mut s, id, 3, &m()),
            Err(MoveError::Blocked { .. }) | Err(MoveError::Latency)
        ));
    }

    #[test]
    fn split_requires_available_predicate() {
        let mut s = vecmin_sched();
        // GE at row 6: predicate (0,0) is computed by IF at row 3 < 6 → ok.
        let ge = id_at(&s, 6);
        split(&mut s, ge, 0, 0).unwrap();
        assert_eq!(s.rows[6].len(), 2);
        assert!(s.rows[6][0].formal.is_disjoint(&s.rows[6][1].formal));
        // LOAD at row 0: predicate not yet computed → refuse.
        let ld = id_at(&s, 0);
        assert_eq!(split(&mut s, ld, 0, 0), Err(MoveError::BadSplit));
        // Splitting a constrained element refuses.
        let copy_m = id_at(&s, 4);
        assert_eq!(split(&mut s, copy_m, 0, 0), Err(MoveError::BadSplit));
    }

    #[test]
    fn split_then_unify_roundtrip() {
        let mut s = vecmin_sched();
        let ge = id_at(&s, 6);
        let before = s.rows[6][0].clone();
        split(&mut s, ge, 0, 0).unwrap();
        let a = s.rows[6][0].id;
        let b = s.rows[6][1].id;
        unify(&mut s, a, b).unwrap();
        assert_eq!(s.rows[6].len(), 1);
        assert_eq!(s.rows[6][0].formal, before.formal);
        assert_eq!(s.rows[6][0].op, before.op);
    }

    #[test]
    fn unify_rejects_mismatched_instances() {
        let mut s = vecmin_sched();
        let a = id_at(&s, 0);
        let b = id_at(&s, 1);
        assert_eq!(unify(&mut s, a, b), Err(MoveError::BadUnify));
    }

    #[test]
    fn prune_stalls_keeps_latency_gaps() {
        let slow = MachineConfig {
            load_latency: 3,
            ..m()
        };
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let mut s = Schedule::initial(&kernel.spec);
        // Empty a row between LOAD and LT by moving LOAD xm into row 0.
        let id = id_at(&s, 1);
        moveup(&mut s, id, 0, &slow).unwrap();
        assert!(s.rows[1].is_empty());
        // With load latency 3 the stall must be kept (LT at row 2 needs
        // LOAD + 3 ≤ … wait: LT at row 2 already violates? LOAD row 0 +
        // 3 > 2 — the initial schedule with this machine would itself be
        // invalid; use unit-latency machine to check pruning works, and a
        // synthetic gap for keeping.
        let mut s2 = vecmin_sched();
        let id2 = id_at(&s2, 1);
        moveup(&mut s2, id2, 0, &m()).unwrap();
        let before = s2.n_rows();
        prune_stalls(&mut s2, &m());
        assert_eq!(s2.n_rows(), before - 1);
        let _ = s;
    }

    #[test]
    fn split_candidates_finds_disjoining_positions() {
        let mut x = vecmin_sched().rows[6][0].clone();
        x.formal = PredicateMatrix::universe();
        let mut blocker = x.clone();
        blocker.formal = PredicateMatrix::single(0, 0, true);
        assert_eq!(split_candidates(&x, &blocker), vec![(0, 0)]);
        let same = split_candidates(&blocker, &blocker);
        assert!(same.is_empty());
    }

    #[test]
    fn break_cannot_pass_observable_store() {
        let kernel = psp_kernels::by_name("clamp_store").unwrap();
        let mut s = Schedule::initial(&kernel.spec);
        // Find BREAK (last row) and the STORE row.
        let break_row = s.n_rows() - 1;
        let brk = s.rows[break_row][0].id;
        let store_row = s
            .rows
            .iter()
            .position(|r| r.iter().any(|i| i.op.is_store()))
            .unwrap();
        // Moving BREAK above the store row must fail; to the store row
        // itself would be fine pairwise but is blocked by the flow from GE
        // anyway. Target one above the store:
        let r = moveup(&mut s, brk, store_row.saturating_sub(1), &m());
        assert!(r.is_err());
        let _ = CcReg(0);
        let _ = Reg(0);
    }
}
