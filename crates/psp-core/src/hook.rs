//! Registry for an externally installed PSP-schedule validator.
//!
//! Mirrors `psp_machine::hook` for the richer artifact the PSP driver
//! produces: the encoded [`Schedule`] together with the generated
//! [`VliwLoop`]. `psp_verify::install()` registers the checker; until then
//! [`check`] is a no-op. Gated to debug builds unless `PSP_VALIDATE` is
//! set.

use crate::Schedule;
use psp_ir::LoopSpec;
use psp_machine::{MachineConfig, VliwLoop};
use std::sync::OnceLock;

/// An independent validator over the driver's winning schedule + program.
pub type ScheduleValidator = fn(&LoopSpec, &MachineConfig, &Schedule, &VliwLoop) -> Vec<String>;

static HOOK: OnceLock<ScheduleValidator> = OnceLock::new();

/// Install the validator (first caller wins; later calls are ignored).
pub fn install(f: ScheduleValidator) {
    let _ = HOOK.set(f);
}

/// Validate the driver result; panics with every violation on rejection.
pub fn check(spec: &LoopSpec, machine: &MachineConfig, sched: &Schedule, prog: &VliwLoop) {
    if !psp_machine::hook::enabled() {
        return;
    }
    if let Some(f) = HOOK.get() {
        let violations = f(spec, machine, sched, prog);
        assert!(
            violations.is_empty(),
            "independent validator rejected the PSP result for `{}`:\n  {}",
            spec.name,
            violations.join("\n  ")
        );
    }
}
