//! The schedule: a list of rows (cycles) of operation instances, with the
//! flow of control implicitly encoded in their predicate matrices.

use crate::instance::{InstId, Instance};
use psp_ir::{flatten, CcReg, Item, LoopSpec, OpKind, ResClass};
use psp_machine::MachineConfig;
use psp_predicate::{IfLog, IfLogEntry};
use std::fmt;

/// A PSP schedule. Row `r` is the set of instances issued in cycle `r` of
/// the transformed loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The rows (cycles).
    pub rows: Vec<Vec<Instance>>,
    /// The loop being scheduled; owns register allocation, so renaming
    /// during transformations draws fresh registers from here.
    pub spec: LoopSpec,
    /// Register-file sizes of the *original* program (before any renaming):
    /// the boundary between architectural registers — whose initial values
    /// are meaningful at loop entry — and scheduler-introduced temporaries.
    pub orig_n_regs: u32,
    /// Original condition-register count.
    pub orig_n_ccs: u32,
    next_id: u64,
}

impl Schedule {
    /// The initial schedule: one instance per row, in flattened source
    /// order, all indices 0, formal matrices = initial control dependence
    /// (paper §2's "initial assignment").
    pub fn initial(spec: &LoopSpec) -> Self {
        let flat = flatten(spec);
        let rows = flat
            .iter()
            .enumerate()
            .map(|(i, f)| {
                vec![Instance {
                    id: InstId(i as u64),
                    op: f.op,
                    index: 0,
                    formal: f.ctrl.clone(),
                    computes_if: f.computes_if,
                    origin: f.pos,
                    late: 0,
                    snapshots: Vec::new(),
                }]
            })
            .collect::<Vec<_>>();
        let next_id = flat.len() as u64;
        Self {
            rows,
            spec: spec.clone(),
            orig_n_regs: spec.n_regs,
            orig_n_ccs: spec.n_ccs,
            next_id,
        }
    }

    /// Allocate a fresh instance id.
    pub fn fresh_id(&mut self) -> InstId {
        let id = InstId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Number of rows (the static II upper bound).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total instance count.
    pub fn n_instances(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Locate an instance: `(row, position-in-row)`.
    pub fn find(&self, id: InstId) -> Option<(usize, usize)> {
        for (r, row) in self.rows.iter().enumerate() {
            if let Some(p) = row.iter().position(|i| i.id == id) {
                return Some((r, p));
            }
        }
        None
    }

    /// Borrow an instance by id.
    pub fn instance(&self, id: InstId) -> Option<&Instance> {
        let (r, p) = self.find(id)?;
        Some(&self.rows[r][p])
    }

    /// Remove an instance.
    pub fn remove(&mut self, id: InstId) -> Option<Instance> {
        let (r, p) = self.find(id)?;
        Some(self.rows[r].remove(p))
    }

    /// Insert an instance into row `r` (extending the schedule as needed).
    pub fn insert(&mut self, r: usize, inst: Instance) {
        while self.rows.len() <= r {
            self.rows.push(Vec::new());
        }
        self.rows[r].push(inst);
    }

    /// Drop empty rows (shortening the II).
    pub fn prune_empty_rows(&mut self) {
        self.rows.retain(|r| !r.is_empty());
    }

    /// All instances in schedule order.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.rows.iter().flatten()
    }

    /// A content fingerprint for memoizing code generation + scoring.
    ///
    /// Two schedules of the same source loop with equal fingerprints
    /// generate identical programs and scores: the key covers everything
    /// code generation reads that a transformation can change — the
    /// register/CC budget of the spec (renames grow it; preloop temps are
    /// allocated past it) and, for every instance in row order, exactly
    /// the fields the generator consumes: operation, iteration index,
    /// formal matrix, computed predicate row, and origin. Bookkeeping
    /// fields (`id`, `late`, `snapshots`) are deliberately excluded — they
    /// never reach generated code, and keying on them would make trials
    /// that converge to the same schedule look distinct. Fields fixed for
    /// the lifetime of one pipelining run (body, live-ins/outs, machine)
    /// are also omitted: the memo is scoped to a run.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 * (1 + self.n_instances()));
        let _ = write!(s, "r{}c{}", self.spec.n_regs, self.spec.n_ccs);
        for row in &self.rows {
            s.push('|');
            for inst in row {
                let _ = write!(
                    s,
                    "{:?}@{}^{}~{:?}:{:?};",
                    inst.op, inst.index, inst.origin, inst.computes_if, inst.formal
                );
            }
        }
        s
    }

    /// Largest operation index (pipeline depth; determines preloop length).
    pub fn max_index(&self) -> i32 {
        self.instances().map(|i| i.index).max().unwrap_or(0)
    }

    /// The IFLog of this schedule: where every IF instance sits.
    pub fn iflog(&self) -> IfLog {
        let mut log = IfLog::new();
        for (r, row) in self.rows.iter().enumerate() {
            for inst in row {
                if let Some(if_row) = inst.computes_if {
                    log.record(IfLogEntry {
                        if_row,
                        index: inst.index,
                        cycle: r,
                        matrix: inst.formal.clone(),
                    });
                }
            }
        }
        log
    }

    /// The condition register tested by IF instances of predicate row `r`.
    pub fn cc_of_if_row(&self, if_row: u32) -> Option<CcReg> {
        for inst in self.instances() {
            if inst.computes_if == Some(if_row) {
                if let OpKind::If { cc } = inst.op.kind {
                    return Some(cc);
                }
            }
        }
        // Fall back to the source body (an IF could in principle be absent
        // from a partially built schedule).
        fn scan(items: &[Item], if_row: u32) -> Option<CcReg> {
            for item in items {
                if let Item::If(i) = item {
                    if i.if_id == if_row {
                        return Some(i.cc);
                    }
                    if let Some(cc) =
                        scan(&i.then_items, if_row).or_else(|| scan(&i.else_items, if_row))
                    {
                        return Some(cc);
                    }
                }
            }
            None
        }
        scan(&self.spec.items, if_row)
    }

    /// Resource feasibility of row `r`: instances whose matrices are
    /// pairwise disjoint lie on different paths and can share a machine
    /// slot, so the binding quantity per resource class is the largest set
    /// of pairwise-*compatible* instances (a clique in the compatibility
    /// graph — a safe upper bound on the largest set that is jointly on one
    /// path).
    pub fn row_resource_ok(&self, r: usize, m: &MachineConfig) -> bool {
        let row = match self.rows.get(r) {
            Some(x) => x,
            None => return true,
        };
        for class in [ResClass::Alu, ResClass::Mem, ResClass::Branch] {
            let members: Vec<&Instance> =
                row.iter().filter(|i| i.op.res_class() == class).collect();
            let limit = m.limit(class) as usize;
            if members.len() > limit && compatible_clique_exceeds(&members, limit) {
                return false;
            }
        }
        true
    }

    /// Full resource validation.
    pub fn validate_resources(&self, m: &MachineConfig) -> Result<(), String> {
        for r in 0..self.rows.len() {
            if !self.row_resource_ok(r, m) {
                return Err(format!("row {r} exceeds machine resources"));
            }
        }
        Ok(())
    }

    /// Pretty-print in the paper's Figure 2 style.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (r, row) in self.rows.iter().enumerate() {
            s.push_str(&format!("Cycle{}:", r + 1));
            for inst in row {
                s.push_str(&format!("  {inst};"));
            }
            s.push('\n');
        }
        s
    }
}

/// Whether a clique of pairwise non-disjoint instances larger than `limit`
/// exists. Branch-and-bound DFS: returns as soon as a clique of size
/// `limit + 1` is found, and prunes branches that cannot reach it — this is
/// the decision form of the max-clique question (the only form resource
/// validation needs), far cheaper than computing the maximum exactly.
///
/// The pairwise disjointness tests are hoisted into one adjacency bitset
/// per member, computed once up front: the DFS re-reads each pair many
/// times, and over a row check this is the memoized form of the old
/// per-node `is_disjoint` chain (each pair tested exactly once). The DFS
/// explores the same tree and returns the same boolean.
fn compatible_clique_exceeds(members: &[&Instance], limit: usize) -> bool {
    let n = members.len();
    if n > 128 {
        return clique_exceeds_general(members, limit);
    }
    let mut adj = vec![0u128; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if !members[i].formal.is_disjoint(&members[j].formal) {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }
    fn go(adj: &[u128], chosen: u128, size: usize, from: usize, limit: usize) -> bool {
        if size > limit {
            return true;
        }
        if size + (adj.len() - from) <= limit {
            return false; // too few candidates left to exceed the limit
        }
        for i in from..adj.len() {
            // Compatible with every chosen member: chosen ⊆ neighbors(i).
            if chosen & !adj[i] == 0 && go(adj, chosen | 1 << i, size + 1, i + 1, limit) {
                return true;
            }
        }
        false
    }
    go(&adj, 0, 0, 0, limit)
}

/// Fallback for rows wider than the bitset (never hit by the kernel suite;
/// kept so pathological inputs stay correct rather than fast).
fn clique_exceeds_general(members: &[&Instance], limit: usize) -> bool {
    fn go(members: &[&Instance], chosen: &mut Vec<usize>, from: usize, limit: usize) -> bool {
        if chosen.len() > limit {
            return true;
        }
        if chosen.len() + (members.len() - from) <= limit {
            return false;
        }
        for i in from..members.len() {
            if chosen
                .iter()
                .all(|&j| !members[i].formal.is_disjoint(&members[j].formal))
            {
                chosen.push(i);
                if go(members, chosen, i + 1, limit) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    go(members, &mut Vec::new(), 0, limit)
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_predicate::PredicateMatrix;

    fn vecmin() -> Schedule {
        Schedule::initial(&psp_kernels::by_name("vecmin").unwrap().spec)
    }

    #[test]
    fn initial_schedule_is_one_op_per_row() {
        let s = vecmin();
        assert_eq!(s.n_rows(), 8);
        assert_eq!(s.n_instances(), 8);
        assert!(s.rows.iter().all(|r| r.len() == 1));
        // Paper §2: only COPY carries [1]; everything else [b].
        let constrained: Vec<_> = s.instances().filter(|i| !i.formal.is_universe()).collect();
        assert_eq!(constrained.len(), 1);
        assert_eq!(constrained[0].formal, PredicateMatrix::single(0, 0, true));
    }

    #[test]
    fn iflog_records_if_instances() {
        let s = vecmin();
        let log = s.iflog();
        assert_eq!(log.entries().len(), 1);
        let e = &log.entries()[0];
        assert_eq!(e.if_row, 0);
        assert_eq!(e.index, 0);
        assert_eq!(e.cycle, 3); // IF is the 4th flattened op
    }

    #[test]
    fn find_remove_insert_roundtrip() {
        let mut s = vecmin();
        let id = s.rows[0][0].id;
        let (r, p) = s.find(id).unwrap();
        assert_eq!((r, p), (0, 0));
        let inst = s.remove(id).unwrap();
        assert!(s.find(id).is_none());
        s.insert(10, inst);
        assert_eq!(s.find(id), Some((10, 0)));
        assert_eq!(s.n_rows(), 11);
        s.remove(id);
        s.prune_empty_rows();
        assert_eq!(s.n_rows(), 7);
    }

    #[test]
    fn cc_of_if_row_resolves() {
        let s = vecmin();
        assert_eq!(s.cc_of_if_row(0), Some(CcReg(0)));
        assert_eq!(s.cc_of_if_row(9), None);
    }

    #[test]
    fn disjoint_instances_share_resource_slots() {
        let mut s = vecmin();
        let m = MachineConfig::narrow(1, 1, 1);
        // Two disjoint copies in one row: fits a 1-ALU machine.
        let a = Instance {
            id: s.fresh_id(),
            op: psp_ir::op::build::copy(psp_ir::Reg(9), 1i64),
            index: 0,
            formal: PredicateMatrix::single(0, 0, true),
            computes_if: None,
            origin: 0,
            late: 0,
            snapshots: Vec::new(),
        };
        let b = Instance {
            formal: PredicateMatrix::single(0, 0, false),
            id: s.fresh_id(),
            ..a.clone()
        };
        s.insert(20, a.clone());
        s.rows[20].push(b.clone());
        assert!(s.row_resource_ok(20, &m));
        // A third, compatible with both, overflows.
        let c = Instance {
            formal: PredicateMatrix::universe(),
            id: InstId(999),
            ..a
        };
        s.rows[20].push(c);
        assert!(!s.row_resource_ok(20, &m));
        assert!(s.validate_resources(&m).is_err());
    }

    #[test]
    fn render_matches_fig2_style() {
        let s = vecmin();
        let r = s.render();
        assert!(r.starts_with("Cycle1:"));
        assert!(r.contains("COPY"));
        assert!(r.contains("(+0)"));
    }

    #[test]
    fn max_index_of_initial_is_zero() {
        assert_eq!(vecmin().max_index(), 0);
    }
}
