//! Operation instances: the unit the PSP scheduler moves around.

use psp_ir::Operation;
use psp_predicate::PredicateMatrix;
use std::fmt;

/// Stable identity of an instance within one [`crate::Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u64);

/// One operation instance: an operation, its *operation index* (the
/// original iteration it belongs to, relative to the current transformed
/// iteration), and its *formal* predicate matrix (the set of paths on which
/// it should execute).
///
/// The paper's notation `COPY (…) (+1) [b 1]` maps to
/// `op = COPY …, index = 1, formal = [b 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Stable id.
    pub id: InstId,
    /// The operation (guards are a code-generation artifact and never
    /// appear here).
    pub op: Operation,
    /// Operation index: original iteration relative to the current
    /// transformed iteration. Incremented when the instance moves across
    /// the loop boundary into the previous iteration.
    pub index: i32,
    /// Formal path set.
    pub formal: PredicateMatrix,
    /// For IF operations: the predicate *row* this instance computes — the
    /// column it computes is [`Instance::index`].
    pub computes_if: Option<u32>,
    /// Position of the operation in the flattened source body; together
    /// with `index` this gives the original program order.
    pub origin: usize,
    /// Sub-position after `origin`: rename-leftover copies logically sit
    /// *just after* the operation they write back for (chains increment).
    /// Breaks program-order ties between a renamed instance and its copy.
    pub late: u16,
    /// Pre-wrap snapshots, one per boundary crossing: `snapshots[j]` is the
    /// operation as it was when this instance's index was `j` — the version
    /// whose operands refer to architectural per-iteration state, which is
    /// exactly what the *preloop* must execute for the startup iterations.
    /// Post-wrap rewrites (combining, substitution) compensate for
    /// cross-iteration placement and are deliberately excluded.
    pub snapshots: Vec<Operation>,
}

impl Instance {
    /// Original-program order key: `(original iteration, source position)`.
    ///
    /// Instance A precedes instance B in the source program iff
    /// `A.prog_order() < B.prog_order()`.
    pub fn prog_order(&self) -> (i32, usize, u16) {
        (self.index, self.origin, self.late)
    }

    /// Whether this instance has observable effects past a loop exit:
    /// memory stores and definitions of live-out registers must never
    /// execute speculatively with respect to a `BREAK`.
    pub fn is_observable(&self, live_out: &[psp_ir::RegRef]) -> bool {
        self.op.is_store() || self.op.defs().iter().any(|d| live_out.contains(d))
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:+}) {}", self.op, self.index, self.formal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, Reg, RegRef};

    fn inst(op: Operation, index: i32) -> Instance {
        Instance {
            id: InstId(0),
            op,
            index,
            formal: PredicateMatrix::universe(),
            computes_if: None,
            origin: 3,
            late: 0,
            snapshots: Vec::new(),
        }
    }

    #[test]
    fn prog_order_is_iteration_major() {
        let a = inst(copy(Reg(0), 1i64), 0);
        let mut b = inst(copy(Reg(0), 1i64), 1);
        b.origin = 0;
        assert!(a.prog_order() < b.prog_order());
    }

    #[test]
    fn observability() {
        let live_out = vec![RegRef::Gpr(Reg(5))];
        assert!(inst(store(ArrayId(0), Reg(0), Reg(1)), 0).is_observable(&live_out));
        assert!(inst(copy(Reg(5), Reg(1)), 0).is_observable(&live_out));
        assert!(!inst(copy(Reg(4), Reg(1)), 0).is_observable(&live_out));
        assert!(!inst(break_(CcReg(0)), 0).is_observable(&live_out));
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut i = inst(copy(Reg(3), Reg(2)), 1);
        i.formal = PredicateMatrix::single(0, 1, true);
        assert_eq!(i.to_string(), "COPY R3, R2 (+1) [_b_ 1]");
    }
}
