//! Candidate scoring.
//!
//! The paper's technique evaluates candidate transformations heuristically
//! and applies the best (§3). Our evaluation is *semantic*: a candidate is
//! tried on a clone of the schedule, compacted, run through code
//! generation, and scored on the resulting per-path initiation intervals —
//! either by worst-case II (the static, data-dependence-driven mode) or by
//! the expected mean dynamic II under a branch profile (the §4 extension:
//! "heuristics driven by dynamic probabilities of path sets").

use crate::codegen::generate;
use crate::schedule::Schedule;
use psp_machine::{MachineConfig, VliwLoop};
use psp_predicate::PathSet;

/// A schedule's figure of merit. Lower is better, compared
/// lexicographically.
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    /// Primary: expected (profile mode) or maximal (static mode) II.
    pub primary: f64,
    /// Rows of the schedule (static code length of the body).
    pub rows: usize,
    /// Instances (code size; splits and renames grow it).
    pub instances: usize,
}

impl Score {
    /// Strictly better than `other`.
    pub fn better_than(&self, other: &Score) -> bool {
        const EPS: f64 = 1e-9;
        if self.primary + EPS < other.primary {
            return true;
        }
        if self.primary > other.primary + EPS {
            return false;
        }
        (self.rows, self.instances) < (other.rows, other.instances)
    }
}

/// Per-IF-row probability of the True outcome (stationary model).
pub type BranchProbs = Vec<f64>;

/// The probability of one steady-state path of the generated loop: conjoin
/// the matrices of its blocks and measure under the profile.
fn path_probability(prog: &VliwLoop, blocks: &[usize], probs: &[f64]) -> f64 {
    let mut m = psp_predicate::PredicateMatrix::universe();
    for &b in blocks {
        match m.conjoin(&prog.blocks[b].matrix) {
            Some(x) => m = x,
            None => return 0.0,
        }
    }
    PathSet::from_matrix(m).probability(|row, _| probs.get(row as usize).copied().unwrap_or(0.5))
}

/// Expected steady-state II of a generated loop under a branch profile.
pub fn expected_ii(prog: &VliwLoop, probs: &[f64]) -> f64 {
    let iis = prog.path_iis();
    if iis.is_empty() {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for p in &iis {
        let w = path_probability(prog, &p.blocks, probs);
        num += w * p.cycles as f64;
        den += w;
    }
    if den <= 0.0 {
        // Degenerate profile: fall back to the unweighted mean.
        iis.iter().map(|p| p.cycles as f64).sum::<f64>() / iis.len() as f64
    } else {
        num / den
    }
}

/// Score an already-generated loop against the schedule it came from.
/// Split out of [`score`] so the driver can memoize code generation and
/// score cached programs without regenerating them.
pub fn score_program(prog: &VliwLoop, sched: &Schedule, probs: Option<&BranchProbs>) -> Score {
    let primary = match probs {
        Some(p) => expected_ii(prog, p),
        None => prog.ii_range().map(|(_, max)| max as f64).unwrap_or(0.0),
    };
    Score {
        primary,
        rows: sched.n_rows(),
        instances: sched.n_instances(),
    }
}

/// Score a schedule by generating code for it. `None` when code generation
/// fails (the candidate that produced this schedule must be discarded).
pub fn score(
    sched: &Schedule,
    machine: &MachineConfig,
    probs: Option<&BranchProbs>,
) -> Option<(Score, VliwLoop)> {
    let prog = generate(sched, machine).ok()?;
    let s = score_program(&prog, sched, probs);
    Some((s, prog))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_ordering_is_lexicographic() {
        let a = Score {
            primary: 2.0,
            rows: 3,
            instances: 9,
        };
        let b = Score {
            primary: 3.0,
            rows: 2,
            instances: 8,
        };
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        let c = Score {
            primary: 2.0,
            rows: 3,
            instances: 8,
        };
        assert!(c.better_than(&a));
        assert!(!a.better_than(&a));
    }

    #[test]
    fn initial_vecmin_scores_with_paper_iis() {
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let sched = Schedule::initial(&kernel.spec);
        let m = MachineConfig::paper_default();
        let (s, prog) = score(&sched, &m, None).unwrap();
        assert_eq!(s.primary, 8.0); // max II of the unscheduled loop
        assert_eq!(prog.ii_range(), Some((7, 8)));
        // Profiled: True branch taken with probability 0.25 → E[II] =
        // 0.25·8 + 0.75·7 = 7.25.
        let probs = vec![0.25];
        let (s, _) = score(&sched, &m, Some(&probs)).unwrap();
        assert!((s.primary - 7.25).abs() < 1e-9, "{}", s.primary);
    }

    #[test]
    fn expected_ii_uniform_matches_mean_for_symmetric_loop() {
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let sched = Schedule::initial(&kernel.spec);
        let m = MachineConfig::paper_default();
        let prog = generate(&sched, &m).unwrap();
        let e = expected_ii(&prog, &[0.5]);
        assert!((e - 7.5).abs() < 1e-9);
    }
}
