//! Loop code generation: reconstructing a control-flow graph from the
//! encoded schedule (paper §2, Figure 3).
//!
//! The generator walks the schedule row by row, maintaining a set of open
//! basic blocks, each labeled with the predicate matrix of its *actual*
//! paths:
//!
//! 1. the initial block set splits the universe on every *incoming*
//!    predicate — one whose outcome is computed in a previous transformed
//!    iteration (per the IFLog);
//! 2. every instance is placed in all open blocks with compatible
//!    (non-disjoint) matrices; an instance constrained on a predicate that
//!    an IF in the *same row* computes receives a guard (it sits on the
//!    matching subtree of the tree instruction); an instance constrained on
//!    a not-yet-computed predicate executes speculatively (its actual path
//!    set widens beyond its formal one);
//! 3. a block ends with the row in which an IF instance was placed; two
//!    successors are opened with the IF's matrix element set to `0` and
//!    `1` (several IFs in one row fan out through zero-cycle dispatch
//!    blocks);
//! 4. after the last row, every open block links back to the entry block
//!    whose matrix *subsumes its own left-shifted matrix* — the paper's
//!    loop-back linkage rule;
//! 5. empty jump-only blocks are deleted.
//!
//! The *preloop* (startup code) re-executes, once per level of pipelining,
//! the wrapped instances (operation index ≥ 1) that the steady state
//! assumes were issued by earlier iterations; a dispatch chain then enters
//! the steady state through the entry block selected by the predicates the
//! preloop computed. No postloop is needed: the transformation rules forbid
//! any motion that would require exit compensation.

use crate::instance::Instance;
use crate::schedule::Schedule;
use psp_ir::{Guard, Operation};
use psp_machine::{BlockId, MachineConfig, Succ, VliwBlock, VliwLoop, VliwTerm};
use psp_predicate::{PredAvailability, PredicateMatrix};
use std::fmt;

/// Code-generation failure. The scheduling driver treats these as a signal
/// to discard the candidate transformation that led here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// A constrained predicate is computed by no IF instance.
    UnresolvedPredicate(u32, i32),
    /// A non-speculable instance could not be placed exactly on its formal
    /// paths.
    Unplaceable(&'static str),
    /// An instance would need guards from two IFs of the same row.
    MultiGuard,
    /// Two speculatively co-executing clones conflict on a destination.
    SpeculativeConflict,
    /// A loop-back edge found no entry block to link to.
    NoBackEdgeTarget,
    /// Deep pipelining produced two incoming predicates in one IF row; the
    /// single condition register cannot dispatch on both.
    DispatchUnsupported,
    /// A generated cycle exceeds the machine's resources.
    Resource(String),
    /// The startup contract cannot be established by the preloop emulator
    /// (see `preloop`); the driver discards the candidate.
    PreloopUnsupported(&'static str),
    /// An internal invariant of the generator did not hold. Reaching this
    /// indicates a bug in a transformation or in the generator itself, but
    /// it is reported as a typed error (the driver discards the candidate)
    /// instead of unwinding through the public API.
    Internal(&'static str),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnresolvedPredicate(r, c) => {
                write!(f, "predicate ({r},{c}) is never computed")
            }
            CodegenError::Unplaceable(s) => write!(f, "unplaceable instance: {s}"),
            CodegenError::MultiGuard => write!(f, "instance needs two same-row guards"),
            CodegenError::SpeculativeConflict => {
                write!(f, "speculative clones conflict on a destination")
            }
            CodegenError::NoBackEdgeTarget => write!(f, "no entry block subsumes a loop-back"),
            CodegenError::DispatchUnsupported => {
                write!(f, "multiple incoming columns for one IF row")
            }
            CodegenError::Resource(s) => write!(f, "resource overflow: {s}"),
            CodegenError::PreloopUnsupported(s) => {
                write!(f, "preloop cannot establish the entry contract: {s}")
            }
            CodegenError::Internal(s) => write!(f, "internal invariant violated: {s}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// Token identifying one logical block during construction.
type Token = usize;

/// An open (under-construction) block.
#[derive(Debug, Clone)]
struct OpenBlock {
    token: Token,
    matrix: PredicateMatrix,
    cycles: Vec<Vec<Operation>>,
    /// Placed instances with their guards and *actual execution
    /// conditions* (block matrix at placement time conjoined with the
    /// guard's predicate), for conflict validation.
    placed: Vec<(Instance, Option<Guard>, PredicateMatrix)>,
}

/// A finished logical block.
#[derive(Debug)]
struct Done {
    token: Token,
    matrix: PredicateMatrix,
    cycles: Vec<Vec<Operation>>,
    term: DoneTerm,
}

#[derive(Debug)]
enum DoneTerm {
    /// Fan-out over IFs placed in the final row; `children` maps each leaf
    /// outcome matrix to the child's token.
    Splits {
        splits: Vec<(psp_ir::CcReg, u32, i32)>,
        children: Vec<(PredicateMatrix, Token)>,
    },
    /// Loop-back edge.
    Back,
}

/// The predicates the steady state dispatches on at block entry: those a
/// constrained instance needs from the *previous* iteration. Shared by
/// [`generate`] and the driver's score lower bound, so both agree exactly
/// on the entry fan-out (and on the failure modes that precede it).
pub(crate) fn incoming_predicates(sched: &Schedule) -> Result<Vec<(u32, i32)>, CodegenError> {
    let iflog = sched.iflog();
    let mut incoming: Vec<(u32, i32)> = Vec::new();
    for inst in sched.instances() {
        for (r, c, _v) in inst.formal.constrained() {
            match iflog.availability(r, c) {
                PredAvailability::PreviousIteration { .. } if !incoming.contains(&(r, c)) => {
                    incoming.push((r, c));
                }
                PredAvailability::NotComputed => {
                    return Err(CodegenError::UnresolvedPredicate(r, c))
                }
                _ => {}
            }
        }
    }
    incoming.sort_unstable();
    // One incoming column per IF row (a single condition register cannot
    // hold two iterations' outcomes).
    for w in incoming.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(CodegenError::DispatchUnsupported);
        }
    }
    Ok(incoming)
}

/// Generate executable code for a schedule.
pub fn generate(sched: &Schedule, machine: &MachineConfig) -> Result<VliwLoop, CodegenError> {
    let incoming = incoming_predicates(sched)?;

    // --- preloop -----------------------------------------------------------
    // Establish the steady-state entry contract by reaching-definition
    // analysis and emulation of the startup iterations (see `preloop`).
    // Depends only on the schedule and the incoming predicates, so it runs
    // *before* the exponential block walk: a schedule whose contract cannot
    // be established is rejected at linear cost.
    let (prologue, dispatch_map) = crate::preloop::build_preloop(sched, &incoming)?;

    // --- entry blocks ------------------------------------------------------
    let mut next_token: Token = 0;
    let mut fresh = move || {
        let t = next_token;
        next_token += 1;
        t
    };
    let mut entry_matrices = vec![PredicateMatrix::universe()];
    for &(r, c) in &incoming {
        let mut next = Vec::with_capacity(entry_matrices.len() * 2);
        for m in entry_matrices {
            let (f, t) = m.split(r, c).ok_or(CodegenError::Internal(
                "entry split on a constrained element",
            ))?;
            next.push(f);
            next.push(t);
        }
        entry_matrices = next;
    }
    let mut open: Vec<OpenBlock> = entry_matrices
        .iter()
        .map(|m| OpenBlock {
            token: fresh(),
            matrix: m.clone(),
            cycles: Vec::new(),
            placed: Vec::new(),
        })
        .collect();
    let entry_tokens: Vec<Token> = open.iter().map(|b| b.token).collect();
    let mut done: Vec<Done> = Vec::new();

    // --- walk the rows ---------------------------------------------------
    for row in &sched.rows {
        let mut next_open = Vec::new();
        for mut block in open {
            let row_ifs: Vec<&Instance> = row
                .iter()
                .filter(|i| i.op.is_if() && !i.formal.is_disjoint(&block.matrix))
                .collect();
            let mut cycle: Vec<Operation> = Vec::new();
            for inst in row {
                if inst.formal.is_disjoint(&block.matrix) {
                    continue;
                }
                let (guard, guard_pred) = guard_for(inst, &block, &row_ifs)?;
                let mut op = inst.op;
                op.guard = guard;
                cycle.push(op);
                let exec = match guard_pred {
                    Some((r, c, v)) => {
                        block
                            .matrix
                            .with(r, c, psp_predicate::PredElem::from_bool(v))
                    }
                    None => block.matrix.clone(),
                };
                block.placed.push((inst.clone(), guard, exec));
            }
            validate_block_conflicts(&block)?;
            if !cycle.is_empty() {
                block.cycles.push(cycle);
            }
            if row_ifs.is_empty() {
                next_open.push(block);
                continue;
            }
            // Block ends: fan out over the IFs placed in this row.
            let mut splits: Vec<(psp_ir::CcReg, u32, i32)> = Vec::with_capacity(row_ifs.len());
            for i in &row_ifs {
                let psp_ir::OpKind::If { cc } = i.op.kind else {
                    return Err(CodegenError::Internal("row_ifs holds a non-IF instance"));
                };
                let r = i.computes_if.ok_or(CodegenError::Internal(
                    "IF instance computes no predicate row",
                ))?;
                splits.push((cc, r, i.index));
            }
            let mut mats = vec![block.matrix.clone()];
            for &(_cc, r, c) in &splits {
                let mut next = Vec::with_capacity(mats.len() * 2);
                for m in mats {
                    match m.split(r, c) {
                        Some((f, t)) => {
                            next.push(f);
                            next.push(t);
                        }
                        // Outcome already known on these paths: one child.
                        None => next.push(m),
                    }
                }
                mats = next;
            }
            let mut children = Vec::with_capacity(mats.len());
            for m in mats {
                let token = fresh();
                children.push((m.clone(), token));
                next_open.push(OpenBlock {
                    token,
                    matrix: m,
                    cycles: Vec::new(),
                    placed: block.placed.clone(),
                });
            }
            done.push(Done {
                token: block.token,
                matrix: block.matrix,
                cycles: block.cycles,
                term: DoneTerm::Splits { splits, children },
            });
        }
        open = next_open;
    }
    for block in open {
        done.push(Done {
            token: block.token,
            matrix: block.matrix,
            cycles: block.cycles,
            term: DoneTerm::Back,
        });
    }

    // --- materialize VliwBlocks --------------------------------------------
    let mut blocks: Vec<VliwBlock> = Vec::new();
    let mut id_of_token: Vec<Option<BlockId>> = Vec::new();
    for d in &done {
        let id = blocks.len();
        blocks.push(VliwBlock {
            id,
            matrix: d.matrix.clone(),
            cycles: d.cycles.clone(),
            term: VliwTerm::Exit, // placeholder
        });
        if id_of_token.len() <= d.token {
            id_of_token.resize(d.token + 1, None);
        }
        id_of_token[d.token] = Some(id);
    }
    let block_of = |t: Token| -> Result<BlockId, CodegenError> {
        id_of_token
            .get(t)
            .copied()
            .flatten()
            .ok_or(CodegenError::Internal("block token was never finished"))
    };

    let entry_ids: Vec<BlockId> = entry_tokens
        .iter()
        .map(|&t| block_of(t))
        .collect::<Result<_, _>>()?;

    for (di, d) in done.iter().enumerate() {
        let my_id = block_of(done[di].token)?;
        match &d.term {
            DoneTerm::Back => {
                let shifted = d.matrix.shifted(-1);
                let target = entry_matrices
                    .iter()
                    .position(|e| e.subsumes(&shifted))
                    .ok_or(CodegenError::NoBackEdgeTarget)?;
                blocks[my_id].term = VliwTerm::Jump(Succ::back(entry_ids[target]));
            }
            DoneTerm::Splits { splits, children } => {
                let lookup = |m: &PredicateMatrix| -> Option<BlockId> {
                    children
                        .iter()
                        .find(|(cm, _)| cm == m)
                        .and_then(|&(_, t)| block_of(t).ok())
                };
                let term = build_dispatch(&mut blocks, &d.matrix, splits, &lookup)?;
                blocks[my_id].term = term;
            }
        }
    }

    // --- entry dispatch ------------------------------------------------------
    let entry = if incoming.is_empty() {
        entry_ids[0]
    } else {
        let splits: Vec<(psp_ir::CcReg, u32, i32)> = incoming
            .iter()
            .map(|&(r, c)| {
                let cc = dispatch_map
                    .get(&(r, c))
                    .copied()
                    .ok_or(CodegenError::UnresolvedPredicate(r, c))?;
                Ok((cc, r, c))
            })
            .collect::<Result<_, CodegenError>>()?;
        let lookup = |m: &PredicateMatrix| -> Option<BlockId> {
            entry_matrices
                .iter()
                .position(|e| e == m)
                .map(|i| entry_ids[i])
        };
        let root_matrix = PredicateMatrix::universe();
        let root_id = blocks.len();
        blocks.push(VliwBlock {
            id: root_id,
            matrix: root_matrix.clone(),
            cycles: Vec::new(),
            term: VliwTerm::Exit,
        });
        let term = build_dispatch(&mut blocks, &root_matrix, &splits, &lookup)?;
        blocks[root_id].term = term;
        root_id
    };

    let mut result = VliwLoop {
        name: format!("{}-psp", sched.spec.name),
        prologue,
        blocks,
        entry,
        epilogue: Vec::new(),
    };
    cleanup_empty_jump_blocks(&mut result);
    result.validate(machine).map_err(CodegenError::Resource)?;
    Ok(result)
}

/// Terminator (possibly via zero-cycle dispatch blocks) implementing a
/// sequence of matrix splits from `base`, resolving leaves with `lookup`.
fn build_dispatch(
    blocks: &mut Vec<VliwBlock>,
    base: &PredicateMatrix,
    splits: &[(psp_ir::CcReg, u32, i32)],
    lookup: &dyn Fn(&PredicateMatrix) -> Option<BlockId>,
) -> Result<VliwTerm, CodegenError> {
    let (cc, r, c) = splits[0];
    let rest = &splits[1..];
    let mut child = |outcome: bool| -> Result<Succ, CodegenError> {
        // If the base already fixes the outcome, both branch directions
        // continue on the single consistent path.
        let m = if base.get(r, c).is_constrained() {
            base.clone()
        } else {
            base.with(r, c, psp_predicate::PredElem::from_bool(outcome))
        };
        if rest.is_empty() {
            let id = lookup(&m).ok_or(CodegenError::NoBackEdgeTarget)?;
            Ok(Succ::fall(id))
        } else {
            let id = blocks.len();
            blocks.push(VliwBlock {
                id,
                matrix: m.clone(),
                cycles: Vec::new(),
                term: VliwTerm::Exit,
            });
            let t = build_dispatch(blocks, &m, rest, lookup)?;
            blocks[id].term = t;
            Ok(Succ::fall(id))
        }
    };
    let on_false = child(false)?;
    let on_true = child(true)?;
    Ok(VliwTerm::Branch {
        cc,
        on_true,
        on_false,
    })
}

/// The guard an instance needs inside a block, if any, together with the
/// predicate position the guard tests (for exec-condition tracking).
#[allow(clippy::type_complexity)]
fn guard_for(
    inst: &Instance,
    block: &OpenBlock,
    row_ifs: &[&Instance],
) -> Result<(Option<Guard>, Option<(u32, i32, bool)>), CodegenError> {
    let mut guard: Option<Guard> = None;
    let mut guard_pred: Option<(u32, i32, bool)> = None;
    for (r, c, v) in inst.formal.constrained() {
        if block.matrix.get(r, c).is_constrained() {
            // The block preselects the path (values agree, else the
            // matrices would be disjoint).
            continue;
        }
        // Does an IF in this very row compute the predicate?
        let same_row_if = row_ifs
            .iter()
            .find(|i| i.computes_if == Some(r) && i.index == c);
        if let Some(ifinst) = same_row_if {
            let psp_ir::OpKind::If { cc } = ifinst.op.kind else {
                return Err(CodegenError::Internal(
                    "computes_if set on a non-IF instance",
                ));
            };
            if guard.is_some() {
                return Err(CodegenError::MultiGuard);
            }
            guard = Some(Guard { cc, on_true: v });
            guard_pred = Some((r, c, v));
            continue;
        }
        // Unresolved here: speculative execution — legal only for
        // speculable operations. (Also covers predicates computed earlier
        // whose blocks did not split because the computing IF was itself
        // conditional.)
        if !inst.op.is_speculable() {
            return Err(CodegenError::Unplaceable(
                "non-speculable instance on an unresolved predicate",
            ));
        }
    }
    Ok((guard, guard_pred))
}

/// Two placed instances whose formal path sets are disjoint must never
/// *actually* co-execute while writing the same destination: compare their
/// actual execution conditions (placement matrix ∧ guard predicate).
fn validate_block_conflicts(block: &OpenBlock) -> Result<(), CodegenError> {
    for i in 0..block.placed.len() {
        for j in (i + 1)..block.placed.len() {
            let (a, _ga, ea) = &block.placed[i];
            let (b, _gb, eb) = &block.placed[j];
            if !a.formal.is_disjoint(&b.formal) {
                continue; // ordinary (ordered) writes on shared paths
            }
            if ea.is_disjoint(eb) {
                continue; // never co-execute at runtime
            }
            let defs_a = a.op.defs();
            if defs_a.iter().any(|d| b.op.defs().contains(d)) {
                return Err(CodegenError::SpeculativeConflict);
            }
        }
    }
    Ok(())
}

/// Delete empty jump-only blocks by redirecting their predecessors
/// (dispatch blocks — empty with a branch — are kept).
fn cleanup_empty_jump_blocks(prog: &mut VliwLoop) {
    fn resolve(prog: &VliwLoop, mut s: Succ) -> Succ {
        let mut hops = 0;
        while let VliwTerm::Jump(next) = prog.blocks[s.block].term {
            if !prog.blocks[s.block].cycles.is_empty() {
                break;
            }
            s = Succ {
                block: next.block,
                back_edge: s.back_edge || next.back_edge,
            };
            hops += 1;
            if hops > prog.blocks.len() {
                break; // cycle of empty blocks: leave as is
            }
        }
        s
    }
    let snapshot = prog.clone();
    for b in &mut prog.blocks {
        b.term = match b.term {
            VliwTerm::Jump(s) => VliwTerm::Jump(resolve(&snapshot, s)),
            VliwTerm::Branch {
                cc,
                on_true,
                on_false,
            } => VliwTerm::Branch {
                cc,
                on_true: resolve(&snapshot, on_true),
                on_false: resolve(&snapshot, on_false),
            },
            VliwTerm::Exit => VliwTerm::Exit,
        };
    }
    prog.entry = resolve(&snapshot, Succ::fall(prog.entry)).block;
    // Garbage-collect unreachable blocks, remapping ids.
    let mut reach = vec![false; prog.blocks.len()];
    let mut stack = vec![prog.entry];
    while let Some(b) = stack.pop() {
        if reach[b] {
            continue;
        }
        reach[b] = true;
        for s in prog.blocks[b].term.succs() {
            stack.push(s.block);
        }
    }
    let mut remap = vec![usize::MAX; prog.blocks.len()];
    let mut kept = Vec::new();
    for (i, b) in prog.blocks.drain(..).enumerate() {
        if reach[i] {
            remap[i] = kept.len();
            kept.push(b);
        }
    }
    let fix = |s: Succ| Succ {
        block: remap[s.block],
        back_edge: s.back_edge,
    };
    for (new_id, b) in kept.iter_mut().enumerate() {
        b.id = new_id;
        b.term = match b.term {
            VliwTerm::Jump(s) => VliwTerm::Jump(fix(s)),
            VliwTerm::Branch {
                cc,
                on_true,
                on_false,
            } => VliwTerm::Branch {
                cc,
                on_true: fix(on_true),
                on_false: fix(on_false),
            },
            VliwTerm::Exit => VliwTerm::Exit,
        };
    }
    prog.blocks = kept;
    prog.entry = remap[prog.entry];
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_kernels::{by_name, KernelData};
    use psp_sim::check_equivalence;

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    #[test]
    fn initial_schedule_generates_sequential_equivalent() {
        for kernel in psp_kernels::all_kernels() {
            let sched = Schedule::initial(&kernel.spec);
            let prog = generate(&sched, &m()).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for seed in 0..3u64 {
                let data = KernelData::random(seed + 5, 29);
                let init = kernel.initial_state(&data);
                let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                kernel.check(&run.state, &data).unwrap();
            }
        }
    }

    #[test]
    fn initial_vecmin_codegen_has_paper_iis() {
        // Unscheduled: one op per row → per-path II 7 (False) and 8 (True).
        let kernel = by_name("vecmin").unwrap();
        let sched = Schedule::initial(&kernel.spec);
        let prog = generate(&sched, &m()).unwrap();
        assert_eq!(prog.ii_range(), Some((7, 8)));
    }

    #[test]
    fn variable_ii_blocks_skip_disjoint_rows() {
        // The COPY row issues nothing on the False path: the False block
        // is one cycle shorter.
        let kernel = by_name("vecmin").unwrap();
        let sched = Schedule::initial(&kernel.spec);
        let prog = generate(&sched, &m()).unwrap();
        let iis = prog.path_iis();
        let cycles: Vec<usize> = iis.iter().map(|p| p.cycles).collect();
        assert!(cycles.contains(&7) && cycles.contains(&8));
    }

    #[test]
    fn no_incoming_predicates_means_single_entry() {
        let kernel = by_name("vecmin").unwrap();
        let sched = Schedule::initial(&kernel.spec);
        let prog = generate(&sched, &m()).unwrap();
        assert!(prog.prologue.is_empty());
        assert_eq!(prog.steady_entries().len(), 1);
    }
}
