//! Structural invariants of generated code, checked over every kernel ×
//! machine: properties the paper's code-generation algorithm guarantees by
//! construction.

use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::all_kernels;
use psp_machine::{MachineConfig, VliwTerm};
use psp_predicate::PathSet;

fn machines() -> Vec<MachineConfig> {
    vec![
        MachineConfig::paper_default(),
        MachineConfig::narrow(2, 1, 1),
        MachineConfig::narrow(1, 1, 1),
    ]
}

#[test]
fn steady_entries_partition_the_incoming_paths() {
    for kernel in all_kernels() {
        for m in machines() {
            let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(m)).unwrap();
            let prog = &res.program;
            let entries = prog.steady_entries();
            // Entry matrices are pairwise disjoint and jointly cover all
            // paths.
            for (i, &a) in entries.iter().enumerate() {
                for &b in &entries[i + 1..] {
                    assert!(
                        prog.blocks[a].matrix.is_disjoint(&prog.blocks[b].matrix),
                        "{}: entry blocks overlap",
                        kernel.name
                    );
                }
            }
            let union =
                PathSet::from_matrices(entries.iter().map(|&b| prog.blocks[b].matrix.clone()));
            assert!(union.is_universe(), "{}: entries do not cover", kernel.name);
        }
    }
}

#[test]
fn back_edges_respect_the_superset_linkage_rule() {
    for kernel in all_kernels() {
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        let prog = &res.program;
        for b in &prog.blocks {
            for s in b.term.succs() {
                if s.back_edge {
                    // The paper's rule: successor matrix ⊇ left-shifted
                    // predecessor matrix (the predecessor's matrix already
                    // includes the branch outcome when it ends in an IF —
                    // conservatively check with the plain matrix, which is
                    // weaker but must still not be *disjoint*).
                    let shifted = b.matrix.shifted(-1);
                    assert!(
                        !prog.blocks[s.block].matrix.is_disjoint(&shifted),
                        "{}: back edge contradicts linkage rule",
                        kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn prologue_is_never_observable() {
    // The preloop executes speculatively: no stores, no BREAK side effects
    // on memory, no writes to live-out registers.
    for kernel in all_kernels() {
        for m in machines() {
            let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(m)).unwrap();
            for cycle in &res.program.prologue {
                for op in cycle {
                    assert!(!op.is_store(), "{}: store in the preloop", kernel.name);
                    assert!(!op.is_if() && !op.is_break());
                    for d in op.defs() {
                        assert!(
                            !kernel.spec.live_out.contains(&d),
                            "{}: preloop writes live-out {d}",
                            kernel.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn branch_blocks_end_with_the_tested_if_or_are_dispatch() {
    for kernel in all_kernels() {
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        for b in &res.program.blocks {
            if let VliwTerm::Branch { cc, .. } = b.term {
                // Zero-cycle dispatch blocks have no cycles.
                if let Some(last) = b.cycles.last() {
                    assert!(
                        last.iter()
                            .any(|o| matches!(o.kind, psp_ir::OpKind::If { cc: c } if c == cc)),
                        "{}: block branches on {cc} without that IF",
                        kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn no_empty_jump_blocks_survive_cleanup() {
    for kernel in all_kernels() {
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        for b in &res.program.blocks {
            if b.cycles.is_empty() {
                assert!(
                    matches!(b.term, VliwTerm::Branch { .. }),
                    "{}: empty non-dispatch block survived",
                    kernel.name
                );
            }
        }
    }
}

#[test]
fn every_block_is_reachable_and_cfg_is_closed() {
    for kernel in all_kernels() {
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        let prog = &res.program;
        let mut reach = vec![false; prog.blocks.len()];
        let mut stack = vec![prog.entry];
        while let Some(x) = stack.pop() {
            if reach[x] {
                continue;
            }
            reach[x] = true;
            for s in prog.blocks[x].term.succs() {
                assert!(s.block < prog.blocks.len());
                stack.push(s.block);
            }
        }
        assert!(
            reach.iter().all(|&r| r),
            "{}: unreachable block after GC",
            kernel.name
        );
    }
}

#[test]
fn pipelined_ii_never_exceeds_schedule_rows() {
    for kernel in all_kernels() {
        for m in machines() {
            let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(m.clone())).unwrap();
            let (_, max_ii) = res.program.ii_range().unwrap();
            assert!(
                max_ii <= res.schedule.n_rows(),
                "{}: II {} > rows {}",
                kernel.name,
                max_ii,
                res.schedule.n_rows()
            );
            res.program.validate(&m).unwrap();
        }
    }
}
