//! Direct tests of the reaching-definition preloop: contract computation,
//! guarded emulation, dispatch mapping, and the refusal cases.

use psp_core::preloop::build_preloop;
use psp_core::transform::wrap_up;
use psp_core::{pipeline_loop, PspConfig, Schedule};
use psp_kernels::by_name;
use psp_machine::MachineConfig;
use psp_sim::{run_vliw, MachineState};

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

#[test]
fn unpipelined_schedule_needs_no_preloop() {
    for kernel in psp_kernels::all_kernels() {
        let sched = Schedule::initial(&kernel.spec);
        let (cycles, dispatch) = build_preloop(&sched, &[]).unwrap();
        assert!(cycles.is_empty(), "{}", kernel.name);
        assert!(dispatch.is_empty());
    }
}

#[test]
fn wrapped_load_contract_is_the_original_load() {
    // Wrap vecmin's first load: the preloop must compute x[k] for the
    // original iteration 0 into the load's destination.
    let kernel = by_name("vecmin").unwrap();
    let mut sched = Schedule::initial(&kernel.spec);
    let id = sched.rows[0][0].id;
    wrap_up(&mut sched, id, &m()).unwrap();
    sched.prune_empty_rows();
    let (cycles, _) = build_preloop(&sched, &[]).unwrap();
    // One contract value: the load itself (k and m are architectural).
    assert_eq!(cycles.len(), 1);
    let op = &cycles[0][0];
    assert!(matches!(op.kind, psp_ir::OpKind::Load { .. }), "{op}");
    assert!(op.guard.is_none());
}

#[test]
fn dispatch_map_resolves_incoming_predicates() {
    // Wrap LOAD, LOAD, LT, IF (the Figure 2 schedule): predicate (0,0)
    // becomes incoming and must resolve to the level-0 compare's register.
    let kernel = by_name("vecmin").unwrap();
    let mut sched = Schedule::initial(&kernel.spec);
    for _ in 0..4 {
        let id = sched.rows[0][0].id;
        wrap_up(&mut sched, id, &m()).unwrap();
        sched.prune_empty_rows();
    }
    let (cycles, dispatch) = build_preloop(&sched, &[(0, 0)]).unwrap();
    let cc = dispatch.get(&(0, 0)).copied().expect("dispatch register");
    // The preloop must contain a compare writing exactly that register.
    let writes_cc = cycles
        .iter()
        .flatten()
        .any(|op| op.defs().contains(&psp_ir::RegRef::Cc(cc)));
    assert!(writes_cc, "dispatch register {cc} computed in the preloop");
}

#[test]
fn guarded_contract_seeds_the_prior_value() {
    // sat_add's conditional clamp (acc = hi when acc > hi): pipelining the
    // compare makes CC0 a contract; if the conditional COPY's value were
    // needed it must come as seed + guarded overwrite. We check the general
    // property on the driver result: any guarded preloop operation is
    // preceded by an unguarded write of the same destination (the seed),
    // unless the destination is architectural.
    for name in ["sat_add", "dot_cond", "mac_cond", "two_cond"] {
        let kernel = by_name(name).unwrap();
        let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
        let mut written: Vec<psp_ir::RegRef> = Vec::new();
        for cycle in &res.program.prologue {
            for op in cycle {
                if op.guard.is_some() {
                    for d in op.defs() {
                        let arch = match d {
                            psp_ir::RegRef::Gpr(g) => g.0 < kernel.spec.n_regs,
                            psp_ir::RegRef::Cc(c) => c.0 < kernel.spec.n_ccs,
                        };
                        assert!(
                            arch || written.contains(&d),
                            "{name}: guarded preloop write to unseeded temp {d}"
                        );
                    }
                }
                written.extend(op.defs());
            }
        }
    }
}

#[test]
fn preloop_establishes_deep_contracts_end_to_end() {
    // dot_cond reaches depth 3: execute ONLY prologue + one body iteration
    // on a 1-element input and check the live-out.
    let kernel = by_name("dot_cond").unwrap();
    let res = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
    assert!(res.schedule.max_index() >= 2, "deep pipeline expected");
    let data = psp_kernels::KernelData::random(3, 1);
    let mut init = kernel.initial_state(&data);
    init.grow(64, 32);
    let run = run_vliw(&res.program, init, 1_000).unwrap();
    kernel.check(&run.state, &data).unwrap();
    // The whole loop took exactly prologue + one body iteration's cycles.
    assert_eq!(run.iterations, 1);
}

#[test]
fn preloop_never_stores_or_exits() {
    for kernel in psp_kernels::all_kernels() {
        for mc in [m(), MachineConfig::narrow(2, 1, 1)] {
            let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(mc)).unwrap();
            for op in res.program.prologue.iter().flatten() {
                assert!(!op.is_store() && !op.is_break() && !op.is_if());
            }
        }
    }
}

#[test]
fn refusals_surface_as_codegen_errors_not_miscompiles() {
    // Force a shape the emulator refuses: wrap a conditional instance of
    // clamp_store whose controlling predicate is nested (two entries).
    // The driver never produces this (trials discard), so drive the
    // transforms manually until codegen refuses or the schedule stays
    // generatable — either way, the outcome must be an error or correct
    // code, never wrong code.
    let kernel = by_name("clamp_store").unwrap();
    let mut sched = Schedule::initial(&kernel.spec);
    // Wrap everything in row 0 repeatedly, accepting failures.
    for _ in 0..16 {
        let ids: Vec<_> = sched.rows[0].iter().map(|i| i.id).collect();
        for id in ids {
            let _ = wrap_up(&mut sched, id, &m());
        }
        sched.prune_empty_rows();
        psp_core::compact::compact(&mut sched, &m());
        match psp_core::generate(&sched, &m()) {
            Err(_) => {} // refusal is acceptable
            Ok(prog) => {
                let data = psp_kernels::KernelData::random(8, 9);
                let init = kernel.initial_state(&data);
                let (_, run) = psp_sim::check_equivalence(&kernel.spec, &prog, &init, 1_000_000)
                    .expect("generated code must be correct");
                kernel.check(&run.state, &data).unwrap();
            }
        }
        if sched.rows.is_empty() {
            break;
        }
    }
    let _ = MachineState::new(1, 1);
}
