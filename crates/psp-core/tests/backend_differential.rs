//! Packed-vs-sparse backend differential over the full kernel suite.
//!
//! The packed bitplane algebra is a pure representation change: for every
//! kernel, pipelining under the packed backend must produce the same
//! transformation counters, the same final II, the same generated program
//! text, and the same schedule rendering as the sparse reference backend
//! (the same observable surface `driver_parallel.rs` pins across thread
//! counts). A single `#[test]` holds both phases so no concurrently
//! running test can interleave with the process-global backend flag while
//! the sparse phase runs.

use psp_core::driver::{pipeline_loop, PspConfig, PspResult};
use psp_kernels::all_kernels;
use psp_predicate::backend::with_backend;

fn observe(res: &PspResult) -> (Vec<usize>, Option<(usize, usize)>, String, String) {
    (
        res.stats.counters().to_vec(),
        res.program.ii_range(),
        res.program.to_string(),
        res.schedule.render(),
    )
}

#[test]
fn packed_matches_sparse_on_all_kernels() {
    for kernel in all_kernels() {
        for (label, cfg) in [
            ("default", PspConfig::default()),
            ("sequential", PspConfig::default().sequential()),
        ] {
            let packed = with_backend(true, || pipeline_loop(&kernel.spec, &cfg))
                .unwrap_or_else(|e| panic!("{} (packed, {label}): {e}", kernel.name));
            let sparse = with_backend(false, || pipeline_loop(&kernel.spec, &cfg))
                .unwrap_or_else(|e| panic!("{} (sparse, {label}): {e}", kernel.name));
            assert_eq!(
                observe(&packed),
                observe(&sparse),
                "{} ({label}): packed backend diverged from the sparse reference",
                kernel.name
            );
        }
    }
}
