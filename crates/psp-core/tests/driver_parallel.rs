//! Determinism cross-checks for the parallel, memoized driver.
//!
//! The candidate search evaluates trials concurrently and memoizes code
//! generation, but its *results* must be bit-identical to the plain
//! sequential scan: same transformation counts, same final II, same
//! generated program text, for every kernel and every thread count.

use psp_core::driver::{pipeline_loop, PspConfig, PspResult};
use psp_kernels::all_kernels;

/// The observable outcome of a run: everything that must not depend on
/// thread count or memoization. (Timers and cache telemetry are excluded
/// by construction — see `PspStats::counters`.)
fn observe(res: &PspResult) -> (Vec<usize>, Option<(usize, usize)>, String, String) {
    (
        res.stats.counters().to_vec(),
        res.program.ii_range(),
        res.program.to_string(),
        res.schedule.render(),
    )
}

#[test]
fn parallel_matches_sequential_on_all_kernels() {
    for kernel in all_kernels() {
        let seq = pipeline_loop(&kernel.spec, &PspConfig::default().sequential())
            .unwrap_or_else(|e| panic!("{} (sequential): {e}", kernel.name));
        for threads in [0, 2, 3] {
            let cfg = PspConfig {
                threads,
                ..PspConfig::default()
            };
            let par = pipeline_loop(&kernel.spec, &cfg)
                .unwrap_or_else(|e| panic!("{} (threads={threads}): {e}", kernel.name));
            assert_eq!(
                observe(&seq),
                observe(&par),
                "{}: threads={threads} diverged from the sequential driver",
                kernel.name
            );
        }
    }
}

#[test]
fn memoization_does_not_change_results() {
    for kernel in all_kernels() {
        let base = PspConfig {
            threads: 1,
            ..PspConfig::default()
        };
        let memo_off = pipeline_loop(
            &kernel.spec,
            &PspConfig {
                enable_memo: false,
                ..base.clone()
            },
        )
        .unwrap_or_else(|e| panic!("{} (memo off): {e}", kernel.name));
        let memo_on = pipeline_loop(
            &kernel.spec,
            &PspConfig {
                enable_memo: true,
                ..base
            },
        )
        .unwrap_or_else(|e| panic!("{} (memo on): {e}", kernel.name));
        assert_eq!(
            observe(&memo_off),
            observe(&memo_on),
            "{}: memoization changed the result",
            kernel.name
        );
        // Single-threaded memo telemetry is deterministic: every trial is
        // either a hit or a miss, and hits only ever shortcut work.
        assert!(memo_on.stats.cache_hits + memo_on.stats.cache_misses > 0);
        assert_eq!(memo_off.stats.cache_hits, 0);
        assert_eq!(memo_off.stats.cache_misses, 0);
    }
}

#[test]
fn probability_mode_is_thread_count_invariant() {
    let kernel = psp_kernels::by_name("skewed").unwrap();
    let mk = |threads: usize| PspConfig {
        threads,
        probs: Some(vec![0.1]),
        ..PspConfig::default()
    };
    let seq = pipeline_loop(&kernel.spec, &mk(1)).unwrap();
    let par = pipeline_loop(&kernel.spec, &mk(0)).unwrap();
    assert_eq!(observe(&seq), observe(&par));
}
