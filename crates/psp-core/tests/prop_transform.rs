//! Property-based fuzzing of transformation *sequences*.
//!
//! The driver exercises one particular policy (compact → wrap rounds →
//! split refinement). Here we apply arbitrary sequences of the four
//! elementary transformations — moveup, wrap-up, movedown, split, unify —
//! at random positions, keep whatever the legality checks accept, and
//! require that every intermediate schedule still (a) respects machine
//! resources, (b) respects producer latencies, and (c) generates code
//! observationally equivalent to the source loop whenever code generation
//! succeeds.

use proptest::prelude::*;
use psp_core::transform::{self, Transformation};
use psp_core::{generate, Schedule};
use psp_kernels::{all_kernels, KernelData};
use psp_machine::MachineConfig;
use psp_sim::check_equivalence;

/// One fuzz action, mapped onto the current schedule by index arithmetic.
#[derive(Debug, Clone)]
enum Action {
    MoveUp { pick: u16, target: u16 },
    WrapUp { pick: u16 },
    MoveDown { pick: u16, target: u16 },
    Split { pick: u16, row: u8, col: u8 },
    Unify { pick: u16 },
    Prune,
    Compact,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(pick, target)| Action::MoveUp { pick, target }),
        any::<u16>().prop_map(|pick| Action::WrapUp { pick }),
        (any::<u16>(), any::<u16>()).prop_map(|(pick, target)| Action::MoveDown { pick, target }),
        (any::<u16>(), any::<u8>(), any::<u8>()).prop_map(|(pick, row, col)| Action::Split {
            pick,
            row,
            col
        }),
        any::<u16>().prop_map(|pick| Action::Unify { pick }),
        Just(Action::Prune),
        Just(Action::Compact),
    ]
}

/// Resolve an action against the live schedule; returns a transformation or
/// a prune request. `None` = nothing applicable.
fn resolve(sched: &Schedule, action: &Action) -> Option<Result<Transformation, ()>> {
    let ids: Vec<_> = sched.instances().map(|i| i.id).collect();
    if ids.is_empty() {
        return None;
    }
    let by_pick = |p: u16| ids[p as usize % ids.len()];
    match action {
        Action::MoveUp { pick, target } => {
            let id = by_pick(*pick);
            let (cur, _) = sched.find(id)?;
            if cur == 0 {
                return None;
            }
            Some(Ok(Transformation::MoveUp {
                id,
                target: *target as usize % cur,
            }))
        }
        Action::WrapUp { pick } => Some(Ok(Transformation::WrapUp { id: by_pick(*pick) })),
        Action::MoveDown { pick, target } => {
            let id = by_pick(*pick);
            let (cur, _) = sched.find(id)?;
            if cur + 1 >= sched.n_rows() {
                return None;
            }
            let t = cur + 1 + (*target as usize % (sched.n_rows() - cur - 1));
            Some(Ok(Transformation::MoveDown { id, target: t }))
        }
        Action::Split { pick, row, col } => {
            let id = by_pick(*pick);
            let n_ifs = sched.spec.n_ifs.max(1);
            Some(Ok(Transformation::Split {
                id,
                row: *row as u32 % n_ifs,
                col: (*col % 3) as i32 - 1,
            }))
        }
        Action::Unify { pick } => {
            // Find any unifiable clone pair in the row of the picked
            // instance.
            let id = by_pick(*pick);
            let (r, _) = sched.find(id)?;
            let row = &sched.rows[r];
            for i in 0..row.len() {
                for j in (i + 1)..row.len() {
                    if row[i].op == row[j].op
                        && row[i].index == row[j].index
                        && row[i].origin == row[j].origin
                        && row[i].formal.unify(&row[j].formal).is_some()
                    {
                        return Some(Ok(Transformation::Unify {
                            a: row[i].id,
                            b: row[j].id,
                        }));
                    }
                }
            }
            None
        }
        Action::Prune | Action::Compact => Some(Err(())),
    }
}

fn fuzz_kernel(kernel: &psp_kernels::Kernel, actions: &[Action], machine: &MachineConfig) {
    let mut sched = Schedule::initial(&kernel.spec);
    let mut applied = 0;
    for action in actions {
        let Some(req) = resolve(&sched, action) else {
            continue;
        };
        match req {
            Err(()) => match action {
                Action::Compact => {
                    psp_core::compact::compact(&mut sched, machine);
                }
                _ => transform::prune_stalls(&mut sched, machine),
            },
            Ok(t) => {
                if transform::apply(&mut sched, &t, machine).is_err() {
                    continue; // refused: that is the legality system working
                }
                applied += 1;
            }
        }
        // Invariants after every accepted mutation.
        sched
            .validate_resources(machine)
            .unwrap_or_else(|e| panic!("{}: {e}\n{sched}", kernel.name));
        transform::validate_latencies(&sched, machine)
            .unwrap_or_else(|e| panic!("{}: {e}\n{sched}", kernel.name));
    }
    // Whenever codegen succeeds, the code must be correct.
    if let Ok(prog) = generate(&sched, machine) {
        for len in [1usize, 2, 9] {
            let data = KernelData::random(1234, len);
            let init = kernel.initial_state(&data);
            let (_, run) = check_equivalence(&kernel.spec, &prog, &init, 10_000_000)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} after {applied} transformations, len {len}: {e}\n{sched}\n{prog}",
                        kernel.name
                    )
                });
            kernel
                .check(&run.state, &data)
                .unwrap_or_else(|e| panic!("{e}\n{sched}\n{prog}"));
        }
    }
    let _ = applied;
}

const CASES: u32 = if cfg!(debug_assertions) { 12 } else { 64 };

proptest! {
    #![proptest_config(ProptestConfig {
        cases: CASES,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn arbitrary_transformation_sequences_stay_sound(
        kernel_pick in 0usize..13,
        actions in proptest::collection::vec(arb_action(), 5..40),
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_pick % kernels.len()];
        fuzz_kernel(kernel, &actions, &MachineConfig::paper_default());
    }

    #[test]
    fn arbitrary_sequences_on_narrow_machine(
        kernel_pick in 0usize..13,
        actions in proptest::collection::vec(arb_action(), 5..25),
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_pick % kernels.len()];
        fuzz_kernel(kernel, &actions, &MachineConfig::narrow(2, 1, 1));
    }
}
