//! Per-cycle resource accounting.

use crate::config::MachineConfig;
use psp_ir::{Operation, ResClass};

/// Counts of operations per resource class in one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUse {
    /// ALU/compare/move operations.
    pub alu: u32,
    /// Memory operations.
    pub mem: u32,
    /// Branch (IF/BREAK) operations.
    pub branch: u32,
}

impl ResourceUse {
    /// No resources used.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Account one operation.
    pub fn add(&mut self, op: &Operation) {
        match op.res_class() {
            ResClass::Alu => self.alu += 1,
            ResClass::Mem => self.mem += 1,
            ResClass::Branch => self.branch += 1,
        }
    }

    /// Un-account one operation (backtracking in search-based schedulers).
    /// The operation must have been [`add`](Self::add)ed before.
    pub fn sub(&mut self, op: &Operation) {
        match op.res_class() {
            ResClass::Alu => self.alu -= 1,
            ResClass::Mem => self.mem -= 1,
            ResClass::Branch => self.branch -= 1,
        }
    }

    /// Sum of two usages.
    pub fn plus(self, other: Self) -> Self {
        Self {
            alu: self.alu + other.alu,
            mem: self.mem + other.mem,
            branch: self.branch + other.branch,
        }
    }

    /// Whether the usage fits within the machine's per-cycle limits.
    pub fn fits(&self, m: &MachineConfig) -> bool {
        self.alu <= m.n_alu && self.mem <= m.n_mem && self.branch <= m.n_branch
    }

    /// Whether one more operation of the given class would still fit.
    pub fn can_accept(&self, class: ResClass, m: &MachineConfig) -> bool {
        match class {
            ResClass::Alu => self.alu < m.n_alu,
            ResClass::Mem => self.mem < m.n_mem,
            ResClass::Branch => self.branch < m.n_branch,
        }
    }

    /// Total operation count.
    pub fn total(&self) -> u32 {
        self.alu + self.mem + self.branch
    }
}

/// Resource usage of a whole cycle.
pub fn cycle_use(ops: &[Operation]) -> ResourceUse {
    let mut u = ResourceUse::empty();
    for op in ops {
        u.add(op);
    }
    u
}

/// Whether the cycle fits within the machine's limits.
pub fn cycle_fits(ops: &[Operation], m: &MachineConfig) -> bool {
    cycle_use(ops).fits(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, Reg};

    #[test]
    fn counting_by_class() {
        let ops = vec![
            add(Reg(0), Reg(1), Reg(2)),
            load(Reg(3), ArrayId(0), Reg(1)),
            load(Reg(4), ArrayId(0), Reg(2)),
            if_(CcReg(0)),
        ];
        let u = cycle_use(&ops);
        assert_eq!(
            u,
            ResourceUse {
                alu: 1,
                mem: 2,
                branch: 1
            }
        );
        assert_eq!(u.total(), 4);
    }

    #[test]
    fn fits_respects_limits() {
        let ops = vec![
            load(Reg(3), ArrayId(0), Reg(1)),
            load(Reg(4), ArrayId(0), Reg(2)),
        ];
        assert!(cycle_fits(&ops, &MachineConfig::paper_default()));
        assert!(!cycle_fits(&ops, &MachineConfig::narrow(4, 1, 1)));
    }

    #[test]
    fn can_accept_at_boundary() {
        let m = MachineConfig::narrow(1, 1, 1);
        let mut u = ResourceUse::empty();
        assert!(u.can_accept(psp_ir::ResClass::Alu, &m));
        u.add(&add(Reg(0), Reg(1), Reg(2)));
        assert!(!u.can_accept(psp_ir::ResClass::Alu, &m));
        assert!(u.can_accept(psp_ir::ResClass::Mem, &m));
    }

    #[test]
    fn sub_reverses_add() {
        let mut u = ResourceUse::empty();
        let op = load(Reg(3), ArrayId(0), Reg(1));
        u.add(&op);
        u.add(&add(Reg(0), Reg(1), Reg(2)));
        u.sub(&op);
        assert_eq!(
            u,
            ResourceUse {
                alu: 1,
                mem: 0,
                branch: 0
            }
        );
    }

    #[test]
    fn plus_sums_fields() {
        let a = ResourceUse {
            alu: 1,
            mem: 2,
            branch: 0,
        };
        let b = ResourceUse {
            alu: 3,
            mem: 0,
            branch: 1,
        };
        assert_eq!(
            a.plus(b),
            ResourceUse {
                alu: 4,
                mem: 2,
                branch: 1
            }
        );
    }
}
