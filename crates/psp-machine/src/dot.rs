//! Graphviz (DOT) export of compiled loops — render the reconstructed
//! control-flow graph the way the paper draws Figure 3.

use crate::vliw::{VliwLoop, VliwTerm};
use std::fmt::Write;

/// Render the loop as a DOT digraph. Pipe through `dot -Tsvg` to visualize:
/// blocks are boxes labeled with their predicate matrix and cycles,
/// back edges are drawn bold, the entry dispatch dashed, and the preloop
/// as a separate note.
pub fn to_dot(prog: &VliwLoop) -> String {
    let mut out = String::new();
    let esc = |s: String| s.replace('\\', "\\\\").replace('"', "\\\"");
    writeln!(out, "digraph \"{}\" {{", esc(prog.name.clone())).unwrap();
    writeln!(
        out,
        "  rankdir=TB; node [shape=box, fontname=\"monospace\"];"
    )
    .unwrap();

    if !prog.prologue.is_empty() {
        let mut label = String::from("preloop\\l");
        for (i, c) in prog.prologue.iter().enumerate() {
            let ops: Vec<String> = c.iter().map(|o| o.to_string()).collect();
            label.push_str(&esc(format!("P{i}: {}", ops.join("; "))));
            label.push_str("\\l");
        }
        writeln!(out, "  pre [label=\"{label}\", style=dashed];").unwrap();
        writeln!(out, "  pre -> b{} [style=dashed];", prog.entry).unwrap();
    }

    for b in &prog.blocks {
        let mut label = esc(format!("B{} {}", b.id, b.matrix));
        label.push_str("\\l");
        for (i, c) in b.cycles.iter().enumerate() {
            let ops: Vec<String> = c.iter().map(|o| o.to_string()).collect();
            label.push_str(&esc(format!("C{i}: {}", ops.join("; "))));
            label.push_str("\\l");
        }
        let style = if b.cycles.is_empty() {
            ", style=dashed"
        } else {
            ""
        };
        writeln!(out, "  b{} [label=\"{label}\"{style}];", b.id).unwrap();
        match b.term {
            VliwTerm::Jump(s) => {
                writeln!(
                    out,
                    "  b{} -> b{}{};",
                    b.id,
                    s.block,
                    if s.back_edge { " [style=bold]" } else { "" }
                )
                .unwrap();
            }
            VliwTerm::Branch {
                cc,
                on_true,
                on_false,
            } => {
                for (succ, lbl) in [(on_true, format!("{cc}=1")), (on_false, format!("{cc}=0"))] {
                    writeln!(
                        out,
                        "  b{} -> b{} [label=\"{}\"{}];",
                        b.id,
                        succ.block,
                        esc(lbl),
                        if succ.back_edge { ", style=bold" } else { "" }
                    )
                    .unwrap();
                }
            }
            VliwTerm::Exit => {
                writeln!(out, "  b{} -> exit;", b.id).unwrap();
            }
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vliw::{Succ, VliwBlock};
    use crate::MachineConfig;
    use psp_ir::op::build::*;
    use psp_ir::{CcReg, Reg};
    use psp_predicate::PredicateMatrix;

    fn sample() -> VliwLoop {
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::single(0, 0, false),
            cycles: vec![vec![add(Reg(1), Reg(1), 1i64), if_(CcReg(0))]],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(1),
                on_false: Succ::back(0),
            },
        };
        let b1 = VliwBlock {
            id: 1,
            matrix: PredicateMatrix::single(0, 0, true),
            cycles: vec![vec![copy(Reg(2), Reg(1)), if_(CcReg(0))]],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(1),
                on_false: Succ::back(0),
            },
        };
        VliwLoop {
            name: "dot-sample \"quoted\"".into(),
            prologue: vec![vec![lt(CcReg(0), Reg(1), Reg(0))]],
            blocks: vec![b0, b1],
            entry: 0,
            epilogue: vec![],
        }
    }

    #[test]
    fn dot_contains_blocks_edges_and_preloop() {
        let prog = sample();
        prog.validate(&MachineConfig::paper_default()).unwrap();
        let dot = to_dot(&prog);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("b0 ["));
        assert!(dot.contains("b1 ["));
        assert!(dot.contains("pre ["));
        assert!(dot.contains("style=bold"), "back edges bold");
        assert!(dot.contains("CC0=1"));
        assert!(dot.contains("\\\"quoted\\\""), "quotes escaped");
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        // The `\l` left-justified line separators must survive escaping as
        // a single backslash, or Graphviz prints them literally.
        assert!(dot.contains("\\l"));
        assert!(!dot.contains("\\\\l"), "line separators double-escaped");
    }

    #[test]
    fn exit_terminator_renders() {
        let mut prog = sample();
        prog.blocks[1].term = VliwTerm::Exit;
        let dot = to_dot(&prog);
        assert!(dot.contains("b1 -> exit;"));
    }
}
