//! Machine configuration: issue widths and latencies.

use psp_ir::{OpKind, Operation};

/// Resource and latency parameters of the tree-VLIW target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// ALU/compare/move operations per cycle.
    pub n_alu: u32,
    /// Memory operations (LOAD/STORE) per cycle.
    pub n_mem: u32,
    /// Branch operations (IF/BREAK) per tree instruction.
    pub n_branch: u32,
    /// Cycles from an ALU/COPY/SELECT producer to its consumer (1 = next
    /// cycle).
    pub alu_latency: u32,
    /// Cycles from a compare to a consumer of its condition register.
    pub cmp_latency: u32,
    /// Cycles from a LOAD to a consumer of the loaded register.
    pub load_latency: u32,
    /// Whether LOADs may execute speculatively (above a controlling IF).
    /// The simulated memory never faults, so this is safe; turning it off
    /// models a machine without speculative loads (used in ablations).
    pub speculative_loads: bool,
}

impl MachineConfig {
    /// The configuration used for the paper's Figure 1: "sufficient
    /// parallelism in the hardware" — wide issue, unit latencies.
    pub fn paper_default() -> Self {
        Self {
            n_alu: 8,
            n_mem: 4,
            n_branch: 4,
            alu_latency: 1,
            cmp_latency: 1,
            load_latency: 1,
            speculative_loads: true,
        }
    }

    /// A narrower, more realistic machine used in resource-sensitivity
    /// experiments.
    pub fn narrow(n_alu: u32, n_mem: u32, n_branch: u32) -> Self {
        Self {
            n_alu,
            n_mem,
            n_branch,
            ..Self::paper_default()
        }
    }

    /// A strictly sequential machine: one operation per cycle.
    ///
    /// Modeled as one ALU *or* one memory *or* one branch op per cycle;
    /// the sequential baseline additionally refrains from packing.
    pub fn sequential() -> Self {
        Self {
            n_alu: 1,
            n_mem: 1,
            n_branch: 1,
            ..Self::paper_default()
        }
    }

    /// Producer latency of `op`: the number of cycles before a consumer of
    /// its result may issue.
    pub fn latency(&self, op: &Operation) -> u32 {
        match op.kind {
            OpKind::Load { .. } => self.load_latency,
            OpKind::Cmp { .. } | OpKind::CcAnd { .. } => self.cmp_latency,
            OpKind::Alu { .. } | OpKind::Copy { .. } | OpKind::Select { .. } => self.alu_latency,
            // Stores and control ops produce no register value.
            OpKind::Store { .. } | OpKind::If { .. } | OpKind::Break { .. } => 0,
        }
    }

    /// Limit for a resource class.
    pub fn limit(&self, class: psp_ir::ResClass) -> u32 {
        match class {
            psp_ir::ResClass::Alu => self.n_alu,
            psp_ir::ResClass::Mem => self.n_mem,
            psp_ir::ResClass::Branch => self.n_branch,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp, Reg, ResClass};

    #[test]
    fn paper_default_is_wide_and_unit_latency() {
        let m = MachineConfig::paper_default();
        assert!(m.n_alu >= 3 && m.n_mem >= 2 && m.n_branch >= 2);
        assert_eq!(m.alu_latency, 1);
        assert_eq!(m.cmp_latency, 1);
    }

    #[test]
    fn latencies_by_kind() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.latency(&add(Reg(0), Reg(1), Reg(2))), 1);
        assert_eq!(m.latency(&cmp(CmpOp::Lt, CcReg(0), Reg(0), Reg(1))), 1);
        assert_eq!(m.latency(&load(Reg(0), ArrayId(0), Reg(1))), 1);
        assert_eq!(m.latency(&store(ArrayId(0), Reg(1), Reg(0))), 0);
        assert_eq!(m.latency(&if_(CcReg(0))), 0);
        assert_eq!(m.latency(&break_(CcReg(0))), 0);
    }

    #[test]
    fn limits_map_to_classes() {
        let m = MachineConfig::narrow(2, 1, 1);
        assert_eq!(m.limit(ResClass::Alu), 2);
        assert_eq!(m.limit(ResClass::Mem), 1);
        assert_eq!(m.limit(ResClass::Branch), 1);
    }

    #[test]
    fn load_latency_is_configurable() {
        let m = MachineConfig {
            load_latency: 2,
            ..MachineConfig::paper_default()
        };
        assert_eq!(m.latency(&load(Reg(0), ArrayId(0), Reg(1))), 2);
    }
}
