//! Compiled pipelined-loop container: prologue, body CFG, epilogue.
//!
//! The body is a control-flow graph of [`VliwBlock`]s. Each block carries
//! the predicate matrix of the *actual* paths it lies on (reconstructed by
//! the PSP code generator; baselines use the universe matrix), a list of
//! cycles (each cycle = one tree-VLIW instruction), and a terminator whose
//! edges are explicitly marked as loop back edges or intra-iteration edges.
//!
//! `BREAK` operations appearing inside a cycle exit to the epilogue when
//! their condition is true (the end-of-cycle semantics are implemented by
//! the `psp-sim` interpreter); the block terminator describes fallthrough
//! control flow otherwise.

use crate::config::MachineConfig;
use crate::resources::cycle_fits;
use psp_ir::{CcReg, Operation};
use psp_predicate::PredicateMatrix;
use std::fmt;

/// Index of a block within [`VliwLoop::blocks`].
pub type BlockId = usize;

/// A successor edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Succ {
    /// Target block.
    pub block: BlockId,
    /// Whether this edge closes the loop (starts the next transformed
    /// iteration).
    pub back_edge: bool,
}

impl Succ {
    /// Intra-iteration edge.
    pub fn fall(block: BlockId) -> Self {
        Self {
            block,
            back_edge: false,
        }
    }

    /// Loop back edge.
    pub fn back(block: BlockId) -> Self {
        Self {
            block,
            back_edge: true,
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VliwTerm {
    /// Unconditional transfer.
    Jump(Succ),
    /// Two-way branch on the last IF of the block.
    Branch {
        /// Condition register tested by the ending IF.
        cc: CcReg,
        /// Successor when true.
        on_true: Succ,
        /// Successor when false.
        on_false: Succ,
    },
    /// Leave the loop (to the epilogue).
    Exit,
}

impl VliwTerm {
    /// All successor edges.
    pub fn succs(&self) -> Vec<Succ> {
        match *self {
            VliwTerm::Jump(s) => vec![s],
            VliwTerm::Branch {
                on_true, on_false, ..
            } => vec![on_true, on_false],
            VliwTerm::Exit => vec![],
        }
    }
}

/// One basic block of the compiled loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct VliwBlock {
    /// Block id (index in [`VliwLoop::blocks`]).
    pub id: BlockId,
    /// Actual-path predicate matrix of the block.
    pub matrix: PredicateMatrix,
    /// Tree-VLIW instructions, one per cycle.
    pub cycles: Vec<Vec<Operation>>,
    /// Terminator.
    pub term: VliwTerm,
}

impl VliwBlock {
    /// Total operations in the block.
    pub fn op_count(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum()
    }
}

/// Initiation interval of one steady-state path through the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathII {
    /// Steady-state entry block (a back-edge target).
    pub entry: BlockId,
    /// Block sequence of the path (entry first).
    pub blocks: Vec<BlockId>,
    /// Cycle count — the II of this path.
    pub cycles: usize,
}

/// A compiled, possibly software-pipelined loop.
#[derive(Debug, Clone, PartialEq)]
pub struct VliwLoop {
    /// Kernel name.
    pub name: String,
    /// Startup cycles executed once before entering the body (the paper's
    /// *preloop*).
    pub prologue: Vec<Vec<Operation>>,
    /// Body blocks.
    pub blocks: Vec<VliwBlock>,
    /// Block entered after the prologue (a dispatch block when the body
    /// entry depends on predicates computed in the prologue).
    pub entry: BlockId,
    /// Wind-down cycles executed once after a BREAK fires (the paper's
    /// *postloop*).
    pub epilogue: Vec<Vec<Operation>>,
}

impl VliwLoop {
    /// Structural and resource validation.
    pub fn validate(&self, m: &MachineConfig) -> Result<(), String> {
        if self.entry >= self.blocks.len() {
            return Err(format!("entry block {} out of range", self.entry));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id != i {
                return Err(format!("block {i} has inconsistent id {}", b.id));
            }
            for s in b.term.succs() {
                if s.block >= self.blocks.len() {
                    return Err(format!("block {i} targets out-of-range block {}", s.block));
                }
            }
            for (c, cycle) in b.cycles.iter().enumerate() {
                if !cycle_fits(cycle, m) {
                    return Err(format!(
                        "block {i} cycle {c} exceeds machine resources ({} ops)",
                        cycle.len()
                    ));
                }
            }
            if let VliwTerm::Branch { .. } = b.term {
                // A branching block must end with the IF that computes the
                // branch — by construction the IF sits in the last cycle.
                // Zero-cycle *dispatch* blocks are the exception: they
                // route on a condition register computed elsewhere (entry
                // dispatch after the preloop, multi-IF fan-out) and cost no
                // cycle.
                let has_if = b
                    .cycles
                    .last()
                    .map(|c| c.iter().any(|o| o.is_if()))
                    .unwrap_or(true);
                if !has_if {
                    return Err(format!("block {i} branches without an ending IF"));
                }
            }
        }
        for cycle in self.prologue.iter().chain(self.epilogue.iter()) {
            if !cycle_fits(cycle, m) {
                return Err("prologue/epilogue cycle exceeds machine resources".into());
            }
        }
        Ok(())
    }

    /// Blocks that are targets of back edges — the steady-state iteration
    /// entry points.
    pub fn steady_entries(&self) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self
            .blocks
            .iter()
            .flat_map(|b| b.term.succs())
            .filter(|s| s.back_edge)
            .map(|s| s.block)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Enumerate every steady-state path and its initiation interval.
    ///
    /// A path starts at a back-edge target and follows terminator edges
    /// until it traverses a back edge (paths reaching `Exit` terminate the
    /// loop and are not IIs). The body CFG minus back edges must be acyclic.
    pub fn path_iis(&self) -> Vec<PathII> {
        let mut out = Vec::new();
        for entry in self.steady_entries() {
            let mut stack = vec![(entry, vec![entry], self.blocks[entry].cycles.len())];
            while let Some((b, path, cycles)) = stack.pop() {
                let succs = self.blocks[b].term.succs();
                if succs.is_empty() {
                    continue; // Exit: not a steady-state path
                }
                for s in succs {
                    if s.back_edge {
                        out.push(PathII {
                            entry,
                            blocks: path.clone(),
                            cycles,
                        });
                    } else {
                        assert!(
                            !path.contains(&s.block),
                            "body CFG must be acyclic apart from back edges"
                        );
                        let mut p = path.clone();
                        p.push(s.block);
                        stack.push((s.block, p, cycles + self.blocks[s.block].cycles.len()));
                    }
                }
            }
        }
        out.sort_by(|a, b| (a.entry, &a.blocks).cmp(&(b.entry, &b.blocks)));
        out.dedup();
        out
    }

    /// Minimum and maximum II over all steady-state paths.
    pub fn ii_range(&self) -> Option<(usize, usize)> {
        let iis = self.path_iis();
        let min = iis.iter().map(|p| p.cycles).min()?;
        let max = iis.iter().map(|p| p.cycles).max()?;
        Some((min, max))
    }

    /// Total static operation count (body only).
    pub fn body_op_count(&self) -> usize {
        self.blocks.iter().map(VliwBlock::op_count).sum()
    }

    /// Static issue-slot utilization of the body: operations issued divided
    /// by available slots (cycles × machine width), per resource class and
    /// overall. A measure of how much instruction-level parallelism the
    /// schedule actually extracts.
    pub fn utilization(&self, m: &crate::MachineConfig) -> Utilization {
        let mut used = crate::ResourceUse::empty();
        for b in &self.blocks {
            for c in &b.cycles {
                for op in c {
                    used.add(op);
                }
            }
        }
        let cycles = self.body_cycle_count() as f64;
        let frac = |u: u32, w: u32| {
            if cycles == 0.0 || w == 0 {
                0.0
            } else {
                u as f64 / (cycles * w as f64)
            }
        };
        Utilization {
            alu: frac(used.alu, m.n_alu),
            mem: frac(used.mem, m.n_mem),
            branch: frac(used.branch, m.n_branch),
            overall: frac(used.total(), m.n_alu + m.n_mem + m.n_branch),
            ops_per_cycle: if cycles == 0.0 {
                0.0
            } else {
                used.total() as f64 / cycles
            },
        }
    }

    /// Total static cycle count (body only).
    pub fn body_cycle_count(&self) -> usize {
        self.blocks.iter().map(|b| b.cycles.len()).sum()
    }

    /// How many general-purpose and condition registers executing this
    /// loop requires: one past the highest register referenced by any
    /// operation (prologue, body, or epilogue) or dispatch terminator.
    /// Compiled code routinely uses renamed registers beyond the source
    /// loop's count, so size the [machine state] to at least this before
    /// running.
    ///
    /// [machine state]: https://docs.rs/psp-sim
    pub fn register_demand(&self) -> (u32, u32) {
        let mut regs = 0;
        let mut ccs = 0;
        let cycles = self
            .prologue
            .iter()
            .chain(self.blocks.iter().flat_map(|b| b.cycles.iter()))
            .chain(self.epilogue.iter());
        for op in cycles.flatten() {
            for r in op.defs().into_iter().chain(op.uses()) {
                match r {
                    psp_ir::RegRef::Gpr(g) => regs = regs.max(g.0 + 1),
                    psp_ir::RegRef::Cc(c) => ccs = ccs.max(c.0 + 1),
                }
            }
        }
        for b in &self.blocks {
            if let VliwTerm::Branch { cc, .. } = b.term {
                ccs = ccs.max(cc.0 + 1);
            }
        }
        (regs, ccs)
    }
}

/// Issue-slot utilization fractions (see [`VliwLoop::utilization`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// ALU slots used / available.
    pub alu: f64,
    /// Memory slots used / available.
    pub mem: f64,
    /// Branch slots used / available.
    pub branch: f64,
    /// All slots used / available.
    pub overall: f64,
    /// Mean operations issued per cycle.
    pub ops_per_cycle: f64,
}

impl fmt::Display for VliwLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vliw loop {} (entry B{})", self.name, self.entry)?;
        if !self.prologue.is_empty() {
            writeln!(f, " prologue:")?;
            for (i, c) in self.prologue.iter().enumerate() {
                write!(f, "  P{i}:")?;
                for op in c {
                    write!(f, "  {op};")?;
                }
                writeln!(f)?;
            }
        }
        for b in &self.blocks {
            writeln!(f, " B{} {}:", b.id, b.matrix)?;
            for (i, c) in b.cycles.iter().enumerate() {
                write!(f, "  C{i}:")?;
                for op in c {
                    write!(f, "  {op};")?;
                }
                writeln!(f)?;
            }
            match b.term {
                VliwTerm::Jump(s) => writeln!(
                    f,
                    "  -> B{}{}",
                    s.block,
                    if s.back_edge { " (back)" } else { "" }
                )?,
                VliwTerm::Branch {
                    cc,
                    on_true,
                    on_false,
                } => writeln!(
                    f,
                    "  {cc}? -> B{}{} : B{}{}",
                    on_true.block,
                    if on_true.back_edge { " (back)" } else { "" },
                    on_false.block,
                    if on_false.back_edge { " (back)" } else { "" },
                )?,
                VliwTerm::Exit => writeln!(f, "  -> exit")?,
            }
        }
        if !self.epilogue.is_empty() {
            writeln!(f, " epilogue:")?;
            for (i, c) in self.epilogue.iter().enumerate() {
                write!(f, "  E{i}:")?;
                for op in c {
                    write!(f, "  {op};")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{CcReg, Reg};

    /// Two-block steady state: B0 `[0 b]` (2 cycles), B1 `[1 b]` (2 cycles),
    /// each branching back to B0/B1 — the shape of the paper's Figure 3.
    fn fig3_like() -> VliwLoop {
        let mk_block = |id: usize, outcome: bool| VliwBlock {
            id,
            matrix: PredicateMatrix::single(0, -1, outcome),
            cycles: vec![
                vec![add(Reg(2), Reg(2), Reg(0)), lt(CcReg(0), Reg(4), Reg(5))],
                vec![if_(CcReg(0)), break_(CcReg(1))],
            ],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(1),
                on_false: Succ::back(0),
            },
        };
        VliwLoop {
            name: "fig3".into(),
            prologue: vec![vec![lt(CcReg(0), Reg(4), Reg(5))]],
            blocks: vec![mk_block(0, false), mk_block(1, true)],
            entry: 0,
            epilogue: vec![],
        }
    }

    #[test]
    fn validate_ok() {
        let l = fig3_like();
        assert!(l.validate(&MachineConfig::paper_default()).is_ok());
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut l = fig3_like();
        l.blocks[0].term = VliwTerm::Jump(Succ::fall(9));
        assert!(l.validate(&MachineConfig::paper_default()).is_err());
    }

    #[test]
    fn validate_rejects_resource_overflow() {
        let l = fig3_like();
        assert!(l.validate(&MachineConfig::narrow(1, 1, 1)).is_err());
    }

    #[test]
    fn validate_rejects_branch_without_if() {
        let mut l = fig3_like();
        l.blocks[0].cycles = vec![vec![add(Reg(2), Reg(2), Reg(0))]];
        assert!(l.validate(&MachineConfig::paper_default()).is_err());
    }

    #[test]
    fn steady_entries_are_back_targets() {
        let l = fig3_like();
        assert_eq!(l.steady_entries(), vec![0, 1]);
    }

    #[test]
    fn path_iis_of_two_block_kernel() {
        let l = fig3_like();
        let iis = l.path_iis();
        // Both entries, each one block long, 2 cycles each.
        assert_eq!(iis.len(), 2);
        assert!(iis.iter().all(|p| p.cycles == 2 && p.blocks.len() == 1));
        assert_eq!(l.ii_range(), Some((2, 2)));
    }

    #[test]
    fn variable_ii_paths() {
        // B0 (1 cycle) branches: true -> B1 (2 more cycles) -> back B0;
        // false -> back to B0 directly. IIs: 1 and 3.
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![if_(CcReg(0))]],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::fall(1),
                on_false: Succ::back(0),
            },
        };
        let b1 = VliwBlock {
            id: 1,
            matrix: PredicateMatrix::universe(),
            cycles: vec![
                vec![add(Reg(0), Reg(0), Reg(1))],
                vec![copy(Reg(2), Reg(0))],
            ],
            term: VliwTerm::Jump(Succ::back(0)),
        };
        let l = VliwLoop {
            name: "var".into(),
            prologue: vec![],
            blocks: vec![b0, b1],
            entry: 0,
            epilogue: vec![],
        };
        assert!(l.validate(&MachineConfig::paper_default()).is_ok());
        assert_eq!(l.ii_range(), Some((1, 3)));
        assert_eq!(l.path_iis().len(), 2);
    }

    #[test]
    fn exit_paths_are_not_iis() {
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![if_(CcReg(0))]],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::fall(1),
                on_false: Succ::back(0),
            },
        };
        let b1 = VliwBlock {
            id: 1,
            matrix: PredicateMatrix::universe(),
            cycles: vec![],
            term: VliwTerm::Exit,
        };
        let l = VliwLoop {
            name: "exit".into(),
            prologue: vec![],
            blocks: vec![b0, b1],
            entry: 0,
            epilogue: vec![],
        };
        let iis = l.path_iis();
        assert_eq!(iis.len(), 1);
        assert_eq!(iis[0].cycles, 1);
    }

    #[test]
    fn utilization_fractions() {
        let l = fig3_like();
        let u = l.utilization(&MachineConfig::narrow(2, 1, 2));
        // 4 cycles; per block: 2 alu + 2 branch over 2 cycles.
        assert!((u.alu - 4.0 / 8.0).abs() < 1e-9);
        assert!((u.branch - 4.0 / 8.0).abs() < 1e-9);
        assert!((u.mem - 0.0).abs() < 1e-9);
        assert!((u.ops_per_cycle - 2.0).abs() < 1e-9);
    }

    #[test]
    fn register_demand_spans_all_phases_and_terminators() {
        let mut l = fig3_like();
        // Highest GPR anywhere: put R9 in the epilogue, CC3 in a prologue
        // guard-free compare; the branch terminator contributes its CC.
        l.prologue = vec![vec![lt(CcReg(3), Reg(1), Reg(0))]];
        l.epilogue = vec![vec![copy(Reg(9), Reg(0))]];
        let (regs, ccs) = l.register_demand();
        assert_eq!(regs, 10, "one past the highest GPR (epilogue R9)");
        assert_eq!(ccs, 4, "one past the highest CC (prologue CC3)");

        let empty = VliwLoop {
            name: "empty".into(),
            prologue: vec![],
            blocks: vec![],
            entry: 0,
            epilogue: vec![],
        };
        assert_eq!(empty.register_demand(), (0, 0));
    }

    #[test]
    fn counters_and_display() {
        let l = fig3_like();
        assert_eq!(l.body_op_count(), 8);
        assert_eq!(l.body_cycle_count(), 4);
        let s = l.to_string();
        assert!(s.contains("B0"));
        assert!(s.contains("(back)"));
        assert!(s.contains("prologue:"));
    }
}
