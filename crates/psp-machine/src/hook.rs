//! Registry for an externally installed VLIW-loop validator.
//!
//! `psp-verify` implements an independent checker that must see every
//! generated [`VliwLoop`], but depending on it from the producer crates
//! would create a dependency cycle. Instead the producers call
//! [`check`] at their return points; it is a no-op until a validator is
//! [`install`]ed (which `psp_verify::install()` does), and is gated to
//! debug builds unless `PSP_VALIDATE` is set in the environment.

use crate::{MachineConfig, VliwLoop};
use psp_ir::LoopSpec;
use std::sync::OnceLock;

/// An independent validator: returns one message per violation, empty when
/// the program is clean.
pub type VliwValidator = fn(&LoopSpec, &MachineConfig, &VliwLoop) -> Vec<String>;

static HOOK: OnceLock<VliwValidator> = OnceLock::new();

/// Install the validator (first caller wins; later calls are ignored).
pub fn install(f: VliwValidator) {
    let _ = HOOK.set(f);
}

/// Whether [`check`] actually validates (debug build, or `PSP_VALIDATE` set).
pub fn enabled() -> bool {
    cfg!(debug_assertions) || std::env::var_os("PSP_VALIDATE").is_some()
}

/// Validate `prog` against the installed hook; panics with every violation
/// if the validator rejects it. No-op when disabled or not installed.
pub fn check(producer: &str, spec: &LoopSpec, machine: &MachineConfig, prog: &VliwLoop) {
    if !enabled() {
        return;
    }
    if let Some(f) = HOOK.get() {
        let violations = f(spec, machine, prog);
        assert!(
            violations.is_empty(),
            "independent validator rejected `{}` from {producer}:\n  {}",
            prog.name,
            violations.join("\n  ")
        );
    }
}
