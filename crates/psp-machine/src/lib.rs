//! Parametric model of the IBM-style tree-VLIW target machine assumed by
//! the paper (Ebcioglu \[2], Moon & Ebcioglu \[6]), plus the container type
//! for compiled pipelined loops.
//!
//! A *tree-VLIW instruction* executes, in a single cycle, a set of ALU and
//! LOAD/STORE operations together with IF operations that choose one path
//! down the instruction's tree. We model one instruction as one *cycle* — a
//! list of [`psp_ir::Operation`]s where operations carrying a [`psp_ir::Guard`]
//! sit on a subtree of the IF testing the same condition register. The
//! machine model bounds how many operations of each [`psp_ir::ResClass`]
//! fit in a cycle and assigns producer→consumer latencies.
//!
//! A compiled loop is a [`VliwLoop`]: prologue cycles, a body control-flow
//! graph of [`VliwBlock`]s with explicit back edges, and an epilogue, ready
//! for the `psp-sim` interpreter and for II (initiation-interval) analysis.

pub mod config;
pub mod dot;
pub mod hook;
pub mod resources;
pub mod vliw;

pub use config::MachineConfig;
pub use dot::to_dot;
pub use resources::{cycle_fits, cycle_use, ResourceUse};
pub use vliw::{BlockId, PathII, Succ, Utilization, VliwBlock, VliwLoop, VliwTerm};
