//! Criterion bench: end-to-end dynamic execution — how many simulated
//! cycles each compilation level spends on the same workload. The measured
//! wall time tracks simulated cycles, so relative timings reproduce the
//! paper's speedup *shape* (sequential > local > PSP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psp_baselines::{compile_local, compile_sequential, compile_unrolled};
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{by_name, KernelData};
use psp_machine::MachineConfig;
use psp_sim::run_vliw;

fn bench_execution(c: &mut Criterion) {
    let machine = MachineConfig::paper_default();
    for name in ["vecmin", "cond_sum", "two_cond"] {
        let kernel = by_name(name).unwrap();
        let data = KernelData::random(9, 2048);
        let mut init = kernel.initial_state(&data);
        init.grow(64, 16);

        let programs = vec![
            ("seq", compile_sequential(&kernel.spec)),
            ("local", compile_local(&kernel.spec, &machine)),
            ("unroll4", compile_unrolled(&kernel.spec, 4, &machine)),
            (
                "psp",
                pipeline_loop(&kernel.spec, &PspConfig::default())
                    .unwrap()
                    .program,
            ),
        ];
        let mut g = c.benchmark_group(format!("execute_{name}"));
        for (label, prog) in programs {
            g.bench_with_input(BenchmarkId::from_parameter(label), &prog, |b, prog| {
                b.iter(|| run_vliw(prog, init.clone(), u64::MAX).expect("runs"));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
