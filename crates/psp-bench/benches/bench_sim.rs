//! Criterion bench: simulator throughput — cycles interpreted per second
//! for the reference interpreter and the VLIW interpreter on sequential
//! and pipelined code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psp_baselines::compile_sequential;
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{by_name, KernelData};
use psp_sim::{run_reference, run_vliw};

fn bench_interpreters(c: &mut Criterion) {
    let kernel = by_name("vecmin").unwrap();
    let data = KernelData::random(5, 4096);
    let init = kernel.initial_state(&data);

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(data.len() as u64));

    g.bench_with_input(BenchmarkId::new("reference", "vecmin"), &init, |b, init| {
        b.iter(|| run_reference(&kernel.spec, init.clone(), u64::MAX).expect("runs"));
    });

    let seq = compile_sequential(&kernel.spec);
    g.bench_with_input(BenchmarkId::new("vliw_seq", "vecmin"), &init, |b, init| {
        let mut st = init.clone();
        st.grow(kernel.spec.n_regs, kernel.spec.n_ccs);
        b.iter(|| run_vliw(&seq, st.clone(), u64::MAX).expect("runs"));
    });

    let psp = pipeline_loop(&kernel.spec, &PspConfig::default()).unwrap();
    g.bench_with_input(BenchmarkId::new("vliw_psp", "vecmin"), &init, |b, init| {
        let mut st = init.clone();
        st.grow(64, 16);
        b.iter(|| run_vliw(&psp.program, st.clone(), u64::MAX).expect("runs"));
    });
    g.finish();
}

criterion_group!(benches, bench_interpreters);
criterion_main!(benches);
