//! Criterion bench: PSP scheduling cost per kernel (experiment E5's
//! "acceptable cost" claim — wall-clock to pipeline one loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psp_core::{pipeline_loop, PspConfig};
use psp_machine::MachineConfig;

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("psp_schedule");
    for kernel in psp_kernels::all_kernels() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.name),
            &kernel,
            |b, kernel| {
                let cfg = PspConfig::default();
                b.iter(|| pipeline_loop(&kernel.spec, &cfg).expect("pipelines"));
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("psp_schedule_narrow");
    for name in ["vecmin", "clamp_store", "two_cond"] {
        let kernel = psp_kernels::by_name(name).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, kernel| {
            let cfg = PspConfig::with_machine(MachineConfig::narrow(2, 1, 1));
            b.iter(|| pipeline_loop(&kernel.spec, &cfg).expect("pipelines"));
        });
    }
    g.finish();

    // Sequential vs parallel+pruned driver on the heaviest kernels. The
    // PspStats phase breakdown is printed once per configuration so the
    // criterion wall-clock numbers can be attributed to driver phases.
    let mut g = c.benchmark_group("psp_schedule_drivers");
    let seq_cfg = PspConfig::default().sequential();
    let par_cfg = PspConfig::default();
    for name in ["clamp_store", "bubble_pass"] {
        let kernel = psp_kernels::by_name(name).unwrap();
        for (label, cfg) in [("seq", &seq_cfg), ("par", &par_cfg)] {
            let res = pipeline_loop(&kernel.spec, cfg).expect("pipelines");
            println!("{name}/{label} stats: {}", res.stats.to_json());
            g.bench_with_input(BenchmarkId::new(label, name), &kernel, |b, kernel| {
                b.iter(|| pipeline_loop(&kernel.spec, cfg).expect("pipelines"));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
