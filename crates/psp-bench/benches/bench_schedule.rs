//! Criterion bench: PSP scheduling cost per kernel (experiment E5's
//! "acceptable cost" claim — wall-clock to pipeline one loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psp_core::{pipeline_loop, PspConfig};
use psp_machine::MachineConfig;

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("psp_schedule");
    for kernel in psp_kernels::all_kernels() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.name),
            &kernel,
            |b, kernel| {
                let cfg = PspConfig::default();
                b.iter(|| pipeline_loop(&kernel.spec, &cfg).expect("pipelines"));
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("psp_schedule_narrow");
    for name in ["vecmin", "clamp_store", "two_cond"] {
        let kernel = psp_kernels::by_name(name).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, kernel| {
            let cfg = PspConfig::with_machine(MachineConfig::narrow(2, 1, 1));
            b.iter(|| pipeline_loop(&kernel.spec, &cfg).expect("pipelines"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
