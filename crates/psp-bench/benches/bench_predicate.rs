//! Criterion bench: predicate-matrix and path-set algebra — the operations
//! the scheduler performs on every pair check.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use psp_predicate::{PathSet, PredicateMatrix};

fn matrices() -> Vec<PredicateMatrix> {
    let mut out = Vec::new();
    for r in 0..3u32 {
        for c in -1..=1i32 {
            for v in [false, true] {
                out.push(PredicateMatrix::single(r, c, v));
                out.push(PredicateMatrix::from_entries([
                    (r, c, v),
                    ((r + 1) % 3, c, !v),
                ]));
            }
        }
    }
    out
}

fn bench_algebra(c: &mut Criterion) {
    let ms = matrices();

    c.bench_function("matrix_is_disjoint_pairwise", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for a in &ms {
                for bm in &ms {
                    if black_box(a).is_disjoint(black_box(bm)) {
                        n += 1;
                    }
                }
            }
            n
        })
    });

    c.bench_function("matrix_conjoin_pairwise", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for a in &ms {
                for bm in &ms {
                    if black_box(a).conjoin(black_box(bm)).is_some() {
                        n += 1;
                    }
                }
            }
            n
        })
    });

    c.bench_function("matrix_shift", |b| {
        b.iter(|| {
            ms.iter()
                .map(|m| black_box(m).shifted(1).shifted(-1))
                .fold(0usize, |n, m| n + m.constrained_len())
        })
    });

    let sets: Vec<PathSet> = ms
        .chunks(4)
        .map(|c| PathSet::from_matrices(c.to_vec()))
        .collect();
    c.bench_function("pathset_union_normalize", |b| {
        b.iter(|| {
            let mut acc = PathSet::empty();
            for s in &sets {
                acc = acc.union(black_box(s));
            }
            acc
        })
    });

    c.bench_function("pathset_probability", |b| {
        b.iter(|| {
            sets.iter()
                .map(|s| black_box(s).probability(|_, _| 0.3))
                .sum::<f64>()
        })
    });

    c.bench_function("pathset_subsumes", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for a in &sets {
                for s in &sets {
                    if black_box(a).subsumes(black_box(s)) {
                        n += 1;
                    }
                }
            }
            n
        })
    });
}

criterion_group!(benches, bench_algebra);
criterion_main!(benches);
