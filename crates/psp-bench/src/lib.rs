//! Shared helpers for the experiment binaries (`fig1` … `table_ablation`)
//! and the criterion benches. Each binary regenerates one figure or table
//! of EXPERIMENTS.md; run them all with
//! `for b in fig1 fig2 fig3 table_kernels table_cost table_resources table_gap
//! table_prob table_ablation; do cargo run -p psp-bench --bin $b --release; done`.

use psp_kernels::{Kernel, KernelData};
use psp_machine::{MachineConfig, VliwLoop};
use psp_sim::check_equivalence;

/// Measured behaviour of one compiled loop on one input.
#[derive(Debug, Clone)]
pub struct Measured {
    /// II range as a display string (`"2"` or `"2..3"`).
    pub ii: String,
    /// Dynamic body cycles.
    pub body_cycles: u64,
    /// Cycles per source iteration.
    pub cycles_per_iter: f64,
    /// Speedup over the sequential reference.
    pub speedup: f64,
}

/// Run `prog` against the kernel's reference semantics and golden results;
/// panics on any mismatch (experiments must not report wrong code).
pub fn measure(kernel: &Kernel, prog: &VliwLoop, data: &KernelData) -> Measured {
    let init = kernel.initial_state(data);
    let (golden, run) = check_equivalence(&kernel.spec, prog, &init, 1_000_000_000)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.name, prog.name));
    kernel
        .check(&run.state, data)
        .unwrap_or_else(|e| panic!("{e}"));
    Measured {
        ii: ii_string(prog),
        body_cycles: run.body_cycles,
        cycles_per_iter: run.cycles_per_iteration(),
        speedup: golden.cycles as f64 / run.body_cycles.max(1) as f64,
    }
}

/// II range of a compiled loop as a display string.
pub fn ii_string(prog: &VliwLoop) -> String {
    match prog.ii_range() {
        Some((a, b)) if a == b => format!("{a}"),
        Some((a, b)) => format!("{a}..{b}"),
        None => "-".into(),
    }
}

/// Machine label for table headers.
pub fn machine_label(m: &MachineConfig) -> String {
    format!("{}alu/{}mem/{}br", m.n_alu, m.n_mem, m.n_branch)
}

/// Synthetic scaling loop: `b` independent conditional accumulations over
/// one loaded element. Codegen block count is exponential in live IFs, so
/// this family stresses every predicate-algebra hot path; shared by
/// `table_cost` (driver scaling) and `table_predbench` (backend scaling).
pub fn synthetic(blocks: usize) -> psp_ir::LoopSpec {
    use psp_ir::op::build;
    let mut b = psp_ir::LoopBuilder::new(format!("synthetic{blocks}"));
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let xk = b.reg();
    let mut live = vec![n, k];
    b.op(build::load(xk, x, k));
    for i in 0..blocks {
        let acc = b.named_reg(format!("acc{i}"));
        live.push(acc);
        let cc = b.cc();
        b.op(build::cmp(psp_ir::CmpOp::Gt, cc, xk, (i as i64) * 10 - 40));
        b.if_else(
            cc,
            |b| {
                b.op(build::add(acc, acc, xk));
            },
            |_| {},
        );
    }
    b.op(build::add(k, k, 1i64));
    let ccb = b.cc();
    b.op(build::cmp(psp_ir::CmpOp::Ge, ccb, k, n));
    b.break_(ccb);
    let outs: Vec<_> = live[2..].to_vec();
    b.finish(live.clone(), outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_baselines::compile_sequential;

    #[test]
    fn measure_checks_and_reports() {
        let kernel = psp_kernels::by_name("vecmin").unwrap();
        let data = KernelData::random(1, 64);
        let prog = compile_sequential(&kernel.spec);
        let m = measure(&kernel, &prog, &data);
        assert_eq!(m.ii, "7..8");
        assert!((m.speedup - 1.0).abs() < 1e-9);
    }
}
