//! Experiment E11 — the simulation-engine benchmark.
//!
//! Every legality claim in the repo bottoms out in `check_equivalence`, so
//! this binary measures the oracle itself: for each kernel it compiles the
//! PSP-pipelined loop, then runs the same batched trial set three ways —
//!
//! 1. **interp** — the trusted `step_cycle`/`run_items` interpreters;
//! 2. **decoded** — the pre-decoded engine, single thread (the headline:
//!    the acceptance bar is a ≥5× geomean speedup over the interpreter);
//! 3. **decoded-mt** — the same batch sharded across all available
//!    threads via the vendored rayon.
//!
//! Each pair is also a differential check: the per-trial cycle/iteration
//! observables of all three runs must match exactly. `--json` writes
//! BENCH_sim.json; `--smoke` trims trials and repetitions for the
//! time-boxed CI job.

use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{all_kernels, Kernel, KernelData};
use psp_sim::{check_equivalence_batch, BatchRun, EngineKind, EquivConfig};
use std::collections::HashMap;
use std::time::Instant;

/// Fixed trial sets (immune to `PSP_EQUIV_TRIALS`): benchmarks must stay
/// comparable across environments.
const FULL_TRIALS: usize = 12;
const SMOKE_TRIALS: usize = 6;
const SEED: u64 = 5;

/// Simulation-bound trial lengths. The default `TRIAL_LENS` ladder starts
/// at trip counts of 1–7, where a trial is over in a few hundred
/// simulated cycles and the measurement degenerates into timing random
/// input generation (paid identically by both engines). The correctness
/// suites keep those tiny trip counts; the benchmark measures the
/// regime the oracle actually spends its time in.
const BENCH_LENS: [usize; 3] = [257, 1024, 4096];

/// Pre-built initial states keyed by trial input: input construction is
/// engine-independent and stays outside the measurement; the oracle
/// borrows each trial's input (its internal reusable-state copies are
/// what checking inherently pays, and they stay inside).
type Inputs = HashMap<(u64, usize), psp_sim::MachineState>;

fn build_inputs(kernel: &Kernel, cfg: &EquivConfig) -> Inputs {
    cfg.trial_inputs()
        .into_iter()
        .map(|(seed, len)| {
            let data = KernelData::random(seed, len);
            ((seed, len), kernel.initial_state(&data))
        })
        .collect()
}

fn run_batch(
    kernel: &Kernel,
    prog: &psp_machine::VliwLoop,
    cfg: &EquivConfig,
    inputs: &Inputs,
) -> BatchRun {
    check_equivalence_batch(&kernel.spec, prog, cfg, |seed, len| &inputs[&(seed, len)])
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.name, cfg.engine.label()))
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trials = if smoke { SMOKE_TRIALS } else { FULL_TRIALS };
    let runs = if smoke { 1 } else { 3 };

    println!("E11 — simulation engines: pre-decoded batch vs step_cycle interpreter");
    println!("({trials} trials per kernel, best of {runs} runs)\n");
    println!(
        "{:<16} {:>7} {:>11} {:>11} {:>11} {:>9} {:>9} {:>12}",
        "kernel", "II", "interp ms", "decoded ms", "dec-mt ms", "speedup", "mt-spdup", "sim cycles"
    );

    let cfg = PspConfig::default();
    let mut records = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    let mut worst = f64::MAX;
    let kernels = all_kernels();
    for kernel in &kernels {
        let res =
            pipeline_loop(&kernel.spec, &cfg).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let prog = &res.program;
        let interp_cfg = EquivConfig::fixed(trials, SEED)
            .with_lens(&BENCH_LENS)
            .with_engine(EngineKind::Interpreter);
        let dec_cfg = EquivConfig::fixed(trials, SEED)
            .with_lens(&BENCH_LENS)
            .with_engine(EngineKind::Decoded);
        let dec_mt_cfg = EquivConfig::fixed(trials, SEED)
            .with_lens(&BENCH_LENS)
            .with_engine(EngineKind::Decoded)
            .with_threads(0);
        let inputs = build_inputs(kernel, &interp_cfg);

        let mut interp_ms = f64::MAX;
        let mut dec_ms = f64::MAX;
        let mut dec_mt_ms = f64::MAX;
        let mut reference: Option<BatchRun> = None;
        for _ in 0..runs {
            let t = Instant::now();
            let bi = run_batch(kernel, prog, &interp_cfg, &inputs);
            interp_ms = interp_ms.min(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            let bd = run_batch(kernel, prog, &dec_cfg, &inputs);
            dec_ms = dec_ms.min(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            let bm = run_batch(kernel, prog, &dec_mt_cfg, &inputs);
            dec_mt_ms = dec_mt_ms.min(t.elapsed().as_secs_f64() * 1e3);
            // The engines must agree trial by trial, run after run.
            assert_eq!(bi.trials, bd.trials, "{}: decoded diverged", kernel.name);
            assert_eq!(bi.trials, bm.trials, "{}: sharded diverged", kernel.name);
            reference = Some(bd);
        }
        let batch = reference.unwrap();
        let cycles = batch.total_cycles();
        let speedup = interp_ms / dec_ms;
        let mt_speedup = interp_ms / dec_mt_ms;
        log_speedup_sum += speedup.ln();
        worst = worst.min(speedup);
        let ii = psp_bench::ii_string(prog);
        println!(
            "{:<16} {:>7} {:>11.3} {:>11.3} {:>11.3} {:>8.2}x {:>8.2}x {:>12}",
            kernel.name, ii, interp_ms, dec_ms, dec_mt_ms, speedup, mt_speedup, cycles
        );
        records.push(format!(
            concat!(
                "{{\"kernel\":\"{}\",\"ii\":\"{}\",\"trials\":{},\"sim_cycles\":{},",
                "\"interp_ms\":{:.4},\"decoded_ms\":{:.4},\"decoded_mt_ms\":{:.4},",
                "\"speedup_1t\":{:.3},\"speedup_mt\":{:.3}}}"
            ),
            kernel.name, ii, trials, cycles, interp_ms, dec_ms, dec_mt_ms, speedup, mt_speedup
        ));
    }

    let geomean = (log_speedup_sum / kernels.len() as f64).exp();
    println!("\ngeomean single-thread speedup: {geomean:.2}x (worst kernel {worst:.2}x)");

    let totals = psp_sim::stats::snapshot();
    println!(
        "process totals: {} programs decoded ({} micro-ops), {} trials in {} batches, \
         decoded {:.1}M cycles/sec vs interpreter {:.1}M cycles/sec",
        totals.programs_decoded,
        totals.decoded_ops,
        totals.trials,
        totals.batches,
        totals.decoded_cycles_per_sec() / 1e6,
        totals.interp_cycles_per_sec() / 1e6,
    );

    if json {
        let payload = format!(
            concat!(
                "{{\"trials\":{},\"runs\":{},\"geomean_speedup_1t\":{:.3},",
                "\"worst_speedup_1t\":{:.3},\"sim\":{},\"kernels\":[{}]}}"
            ),
            trials,
            runs,
            geomean,
            worst,
            totals.to_json(),
            records.join(","),
        );
        std::fs::write("BENCH_sim.json", &payload).expect("write BENCH_sim.json");
        println!("wrote BENCH_sim.json");
    }
}
