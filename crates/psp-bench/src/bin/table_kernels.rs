//! Experiment E4 — the kernel-suite comparison table (the paper's §3
//! "preliminary experimental results" expanded into a full evaluation).
//!
//! Every kernel × every compiler: static II, verified dynamic cycles per
//! iteration, and speedup over the sequential reference. EMS reports its
//! verified single II with the idealized cycle model (DESIGN.md §4).

use psp_baselines::{compile_local, compile_sequential, compile_unrolled, modulo_schedule};
use psp_bench::{ii_string, measure};
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{all_kernels, KernelData};
use psp_machine::MachineConfig;
use psp_opt::{certify, Certification, ExactConfig};
use psp_sim::run_reference;
use std::time::Instant;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let machine = MachineConfig::paper_default();
    let len = 1024;

    println!("E4 — kernel suite, machine = wide tree-VLIW, n = {len}");
    println!("cells: II | cycles/iter | speedup vs sequential\n");
    println!(
        "{:<16} {:>14} {:>16} {:>16} {:>15} {:>16} {:>7}",
        "kernel", "seq", "local", "unroll x4", "ems (1 II)", "psp", "ops/cy"
    );

    let mut geo: Vec<f64> = Vec::new();
    let mut records = Vec::new();
    for kernel in all_kernels() {
        let t_kernel = Instant::now();
        let data = KernelData::random(2024, len);
        let golden =
            run_reference(&kernel.spec, kernel.initial_state(&data), 1_000_000_000).unwrap();

        let seq = measure(&kernel, &compile_sequential(&kernel.spec), &data);
        let local = measure(&kernel, &compile_local(&kernel.spec, &machine), &data);
        let unroll = measure(&kernel, &compile_unrolled(&kernel.spec, 4, &machine), &data);
        let ems = modulo_schedule(&kernel.spec, &machine);
        ems.verify(&machine).expect("modulo schedule verifies");
        let ems_cycles = ems.estimated_cycles(golden.iterations);
        let ems_speedup = golden.cycles as f64 / ems_cycles as f64;
        let psp = pipeline_loop(&kernel.spec, &PspConfig::with_machine(machine.clone()))
            .expect("psp pipelines");
        let pspm = measure(&kernel, &psp.program, &data);
        geo.push(pspm.speedup);

        let cell = |m: &psp_bench::Measured| {
            format!("{}|{:.2}|{:.2}x", m.ii, m.cycles_per_iter, m.speedup)
        };
        let util = psp.program.utilization(&machine);
        println!(
            "{:<16} {:>14} {:>16} {:>16} {:>15} {:>16} {:>7.2}",
            kernel.name,
            cell(&seq),
            cell(&local),
            cell(&unroll),
            format!(
                "{}|{:.2}|{:.2}x",
                ems.ii,
                ems_cycles as f64 / golden.iterations as f64,
                ems_speedup
            ),
            cell(&pspm),
            util.ops_per_cycle,
        );
        // Sanity: the paper's claim — PSP at least matches local scheduling.
        assert!(
            pspm.body_cycles
                <= measure(&kernel, &compile_local(&kernel.spec, &machine), &data).body_cycles
                    + golden.iterations / 8,
            "{}: psp regressed vs local",
            kernel.name
        );
        let _ = ii_string(&psp.program);
        if json {
            let exact = certify(
                &kernel.spec,
                &machine,
                &ExactConfig::default(),
                Some(ems.ii),
            );
            let lb = exact.outcome.lb();
            records.push(format!(
                concat!(
                    "{{\"kernel\":\"{}\",\"ems_ii\":{},\"certified_lb\":{},",
                    "\"certified\":{},\"ems_gap\":{},\"psp_ii\":\"{}\",",
                    "\"psp_speedup\":{:.4},\"wall_ms\":{:.3},\"pred\":{}}}"
                ),
                kernel.name,
                ems.ii,
                lb,
                matches!(exact.outcome, Certification::Certified(_)),
                ems.ii - lb,
                pspm.ii,
                pspm.speedup,
                t_kernel.elapsed().as_secs_f64() * 1e3,
                psp.stats.pred.to_json(),
            ));
        }
    }
    let g = geo.iter().map(|s| s.ln()).sum::<f64>() / geo.len() as f64;
    println!(
        "\nPSP geometric-mean speedup over sequential: {:.2}x",
        g.exp()
    );
    if json {
        let payload = format!("[{}]", records.join(","));
        std::fs::write("BENCH_kernels.json", &payload).expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json ({} records)", records.len());
    }
}
