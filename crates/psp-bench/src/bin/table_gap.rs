//! Experiment E8 — the optimality-gap table.
//!
//! For every kernel: the greedy EMS II, the certified optimal fixed II (or
//! a sound `[lb,ub]` interval when the budget runs out), the heuristic gap,
//! the PSP driver's maximal per-path II and its gap to the certified fixed
//! floor, and the solver's cost (branch-and-bound nodes, wall time). The
//! PSP gap may be *negative*: variable per-path II is allowed to beat the
//! best single fixed II — that asymmetry is the paper's central claim, and
//! this table quantifies it per kernel.
//!
//! Certified witness schedules are compiled to kernel code
//! (`psp_opt::modulo_to_vliw`) and run through the differential equivalence
//! check, so every "certified" cell is backed by executable, verified code.
//!
//! Flags: `--smoke` caps the node budget for the CI smoke job; `--json`
//! additionally writes a `BENCH_gap.json` artifact.

use psp_baselines::modulo_schedule;
use psp_bench::measure;
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{all_kernels, KernelData};
use psp_machine::MachineConfig;
use psp_opt::{certify, mii_lower_bound, modulo_to_vliw, Certification, ExactConfig};
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let machine = MachineConfig::paper_default();
    let cfg = ExactConfig {
        max_nodes: if smoke { 20_000 } else { 200_000 },
        max_ii: None,
    };

    println!(
        "E8 — optimality gap, machine = wide tree-VLIW, node budget = {}{}",
        cfg.max_nodes,
        if smoke { " (smoke)" } else { "" }
    );
    println!("exact = certified optimal fixed II ([lb,ub] when the budget ran out)");
    println!("psp gap may be negative: variable per-path II can beat any fixed II\n");
    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "kernel", "ems II", "exact", "ems gap", "psp max", "psp gap", "nodes", "ms"
    );

    let mut certified = 0usize;
    let mut records = Vec::new();
    let mut t_free = 0.0f64;
    let mut t_floored = 0.0f64;
    let mut floor_hits = 0usize;
    let kernels = all_kernels();
    let total = kernels.len();

    for kernel in &kernels {
        let ems = modulo_schedule(&kernel.spec, &machine);
        ems.verify(&machine).expect("greedy schedule verifies");
        let lb0 = mii_lower_bound(&kernel.spec, &machine);
        assert!(
            lb0 <= ems.ii,
            "{}: floor {lb0} above greedy II {}",
            kernel.name,
            ems.ii
        );

        let res = certify(&kernel.spec, &machine, &cfg, Some(ems.ii));
        let lb = res.outcome.lb();
        assert!(
            lb >= lb0 && lb <= ems.ii,
            "{}: unsound interval",
            kernel.name
        );
        let (exact_cell, ems_gap) = match res.outcome {
            Certification::Certified(ii) => {
                certified += 1;
                (format!("{ii}"), format!("{}", ems.ii - ii))
            }
            Certification::Bounded { .. } => (res.outcome.display(), format!("≤{}", ems.ii - lb)),
        };

        // A certified witness must survive codegen + differential check.
        if let Some(sched) = &res.schedule {
            let prog = modulo_to_vliw(sched, format!("{}_exact", kernel.name));
            prog.validate(&machine)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            let data = KernelData::random(2024, 256);
            let _ = measure(kernel, &prog, &data);
        }

        let t0 = Instant::now();
        let psp = pipeline_loop(&kernel.spec, &PspConfig::with_machine(machine.clone()))
            .expect("psp pipelines");
        t_free += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let floored = pipeline_loop(
            &kernel.spec,
            &PspConfig {
                exact_floor: Some(lb as f64),
                ..PspConfig::with_machine(machine.clone())
            },
        )
        .expect("psp pipelines under a floor");
        t_floored += t1.elapsed().as_secs_f64();
        floor_hits += floored.stats.floor_hit as usize;

        let psp_max = psp.program.ii_range().map(|(_, b)| b).unwrap_or(0);
        let psp_gap = psp_max as i64 - lb as i64;
        let ms = res.elapsed.as_secs_f64() * 1e3;
        println!(
            "{:<16} {:>7} {:>8} {:>8} {:>8} {:>+8} {:>9} {:>8.2}",
            kernel.name, ems.ii, exact_cell, ems_gap, psp_max, psp_gap, res.nodes, ms
        );
        records.push(format!(
            concat!(
                "{{\"kernel\":\"{}\",\"ems_ii\":{},\"exact_lb\":{},\"exact_ub\":{},",
                "\"certified\":{},\"psp_max_ii\":{},\"psp_gap\":{},\"nodes\":{},",
                "\"wall_ms\":{:.3}}}"
            ),
            kernel.name,
            ems.ii,
            lb,
            res.outcome
                .ub()
                .map(|u| u.to_string())
                .unwrap_or_else(|| "null".into()),
            matches!(res.outcome, Certification::Certified(_)),
            psp_max,
            psp_gap,
            res.nodes,
            ms,
        ));
    }

    println!(
        "\ncertified optimal: {certified}/{total} kernels \
         (the rest carry sound intervals)"
    );
    println!(
        "exact_floor early-stop: {floor_hits}/{total} kernels stopped at the certified \
         floor; PSP wall time {:.1} ms unrestricted vs {:.1} ms floored",
        t_free * 1e3,
        t_floored * 1e3
    );
    if !smoke {
        assert!(
            certified * 4 >= total * 3,
            "acceptance: only {certified}/{total} certified within the default budget"
        );
    }

    if json {
        let payload = format!("[{}]", records.join(","));
        std::fs::write("BENCH_gap.json", &payload).expect("write BENCH_gap.json");
        println!("wrote BENCH_gap.json ({} records)", records.len());
    }
}
