//! Experiment E3 — paper Figure 3: loop code generation from the Figure 2
//! schedule.
//!
//! The paper's description: "the process starts with two basic blocks
//! [0 b] and [1 b], since the schedule contains an operation instance that
//! is control dependent on p(0), and the corresponding instance IF(0) is
//! computed in the previous iteration (recorded in IFLog). Then, the COPY
//! operation is placed only in the basic block [1 b]. Other operations are
//! placed in both basic blocks … Each basic block ends with an IF
//! operation, that then defines the outcome p(1) … the new basic blocks
//! are linked to the existing blocks by loop back edges … defined by
//! 'superset' relationships between predicate matrix of the successor
//! block and the left-shifted matrix of the predecessor … Finally, the
//! empty basic blocks are deleted."

use psp_core::codegen::generate;
use psp_core::transform::{moveup, wrap_up};
use psp_core::Schedule;
use psp_kernels::{by_name, KernelData};
use psp_machine::{MachineConfig, VliwTerm};
use psp_predicate::PredicateMatrix;
use psp_sim::check_equivalence;

fn main() {
    let kernel = by_name("vecmin").unwrap();
    let machine = MachineConfig::paper_default();

    // Rebuild the Figure 2 schedule.
    let mut sched = Schedule::initial(&kernel.spec);
    for _ in 0..4 {
        let id = sched.rows[0][0].id;
        wrap_up(&mut sched, id, &machine).expect("paper's moves are legal");
        sched.prune_empty_rows();
    }
    let first_load_row = sched
        .rows
        .iter()
        .position(|r| r.iter().any(|i| i.index == 1))
        .unwrap();
    let second_load = sched.rows[first_load_row + 1][0].id;
    moveup(&mut sched, second_load, first_load_row, &machine).unwrap();
    sched.prune_empty_rows();

    println!("E3 / paper Figure 3 — code generation from the Figure 2 schedule\n");
    let prog = generate(&sched, &machine).expect("codegen succeeds");
    println!("{prog}");

    // The steady state consists of the two incoming-predicate blocks.
    let entries = prog.steady_entries();
    assert_eq!(entries.len(), 2, "two basic blocks, [0 b] and [1 b]");
    let m0 = PredicateMatrix::single(0, 0, false);
    let m1 = PredicateMatrix::single(0, 0, true);
    let b0 = entries
        .iter()
        .copied()
        .find(|&b| prog.blocks[b].matrix == m0)
        .expect("[0 b] block");
    let b1 = entries
        .iter()
        .copied()
        .find(|&b| prog.blocks[b].matrix == m1)
        .expect("[1 b] block");

    // COPY only in [1 b]; everything else in both.
    let has_copy = |b: usize| {
        prog.blocks[b]
            .cycles
            .iter()
            .flatten()
            .any(|op| matches!(op.kind, psp_ir::OpKind::Copy { .. }))
    };
    assert!(has_copy(b1), "COPY placed in [1 b]");
    assert!(!has_copy(b0), "COPY absent from [0 b]");
    let count = |b: usize| prog.blocks[b].cycles.iter().flatten().count();
    assert_eq!(count(b1), count(b0) + 1, "blocks differ only in the COPY");

    // Both blocks end with the IF and link back via the superset rule.
    for &b in &[b0, b1] {
        let last_cycle = prog.blocks[b].cycles.last().expect("non-empty block");
        assert!(last_cycle.iter().any(|o| o.is_if()), "block ends with IF");
        match prog.blocks[b].term {
            VliwTerm::Branch {
                on_true, on_false, ..
            } => {
                assert!(on_true.back_edge && on_false.back_edge);
                assert_eq!(prog.blocks[on_true.block].matrix, m1);
                assert_eq!(prog.blocks[on_false.block].matrix, m0);
                // The paper's linkage rule, checked explicitly: successor
                // matrix ⊇ left-shifted extended predecessor matrix.
                for (succ, outcome) in [(on_true, true), (on_false, false)] {
                    let extended = prog.blocks[b].matrix.with(
                        0,
                        1,
                        psp_predicate::PredElem::from_bool(outcome),
                    );
                    assert!(prog.blocks[succ.block]
                        .matrix
                        .subsumes(&extended.shifted(-1)));
                }
            }
            ref t => panic!("expected branch terminator, got {t:?}"),
        }
    }

    // The preloop carries the startup iteration (paper: "operations from
    // L1 pushed into the previous iteration").
    assert!(!prog.prologue.is_empty(), "preloop present");

    // And the generated code runs correctly at II 7/5? — measure it.
    let data = KernelData::random(3, 200);
    let init = kernel.initial_state(&data);
    let (golden, run) = check_equivalence(&kernel.spec, &prog, &init, 1_000_000).unwrap();
    kernel.check(&run.state, &data).unwrap();
    println!(
        "verified: result matches reference; {:.2} cycles/iter vs {:.2} sequential",
        run.cycles_per_iteration(),
        golden.cycles_per_iteration()
    );
    println!("\nFigure 3 structure reproduced ✓");
}
