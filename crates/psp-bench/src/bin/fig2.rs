//! Experiment E2 — paper Figure 2: the schedule after moving the first
//! four operations of the initial vecmin schedule across the loop boundary.
//!
//! Paper Figure 2:
//! ```text
//! Cycle1: COPY (R3,(R2))   (0)[1]
//! Cycle2: ADD  (R2,(R2,R0)) (0)[b]
//! Cycle3: GE   (CC1,(R2,R1))(0)[b]
//! Cycle4: BREAK(CC1)        (0)[b]
//! Cycle5: LOAD (R4,(R2,#x)) (1)[b]   LOAD (R5,(R3,#x)) (1)[b]
//! Cycle6: LT   (CC0,(R4,R5))(1)[b]
//! Cycle7: IF   (CC0)        (1)[b]
//! ```
//! (our register numbering differs; the shape — four index-0 rows, then
//! the two loads sharing a row, LT, IF, all at index +1 — is asserted).

use psp_core::transform::{moveup, wrap_up};
use psp_core::Schedule;
use psp_kernels::by_name;
use psp_machine::MachineConfig;

fn main() {
    let kernel = by_name("vecmin").unwrap();
    let machine = MachineConfig::paper_default();
    let mut sched = Schedule::initial(&kernel.spec);

    println!("E2 / paper Figure 2 — wrapping vecmin's first four operations\n");
    println!("initial schedule (initial assignment of §2):\n{sched}");

    // The paper moves LOAD, LOAD, LT, IF across the boundary. Each wrap
    // takes the current row-0 instance (rows close up as they empty).
    for _ in 0..4 {
        let id = sched.rows[0][0].id;
        wrap_up(&mut sched, id, &machine).expect("paper's moves are legal");
        sched.prune_empty_rows();
    }
    // The two wrapped loads are independent: the paper shows them sharing
    // cycle 5. Bring the second load up next to the first.
    let first_load_row = sched
        .rows
        .iter()
        .position(|r| r.iter().any(|i| i.index == 1))
        .expect("wrapped instances present");
    let second_load = sched.rows[first_load_row + 1][0].id;
    moveup(&mut sched, second_load, first_load_row, &machine).expect("loads pack");
    sched.prune_empty_rows();

    println!("after four cross-boundary moveups (paper Figure 2):\n{sched}");

    // Assert the shape.
    assert_eq!(sched.n_rows(), 7, "paper shows 7 cycles");
    let indices: Vec<Vec<i32>> = sched
        .rows
        .iter()
        .map(|r| r.iter().map(|i| i.index).collect())
        .collect();
    assert_eq!(
        indices,
        vec![
            vec![0],
            vec![0],
            vec![0],
            vec![0],
            vec![1, 1],
            vec![1],
            vec![1]
        ],
        "index layout matches Figure 2"
    );
    // Row 0 is the COPY with matrix [1]; the wrapped IF computes p(+1).
    assert!(sched.rows[0][0].formal == psp_predicate::PredicateMatrix::single(0, 0, true));
    let if_inst = sched
        .instances()
        .find(|i| i.op.is_if())
        .expect("IF present");
    assert_eq!(if_inst.index, 1, "IF instance is (+1)");
    let log = sched.iflog();
    assert!(matches!(
        log.availability(0, 0),
        psp_predicate::PredAvailability::PreviousIteration { delta: 1, .. }
    ));
    println!("shape matches paper Figure 2 ✓ (IFLog: p(0) from previous iteration)");
}
