//! Experiment E10 — the predicate-algebra microbench and backend
//! comparison.
//!
//! Three sections, each run under both backends (packed bitplanes vs the
//! sparse `BTreeMap` reference, selected via `psp_predicate::backend`):
//!
//! 1. **micro** — per-op latency of `conjoin`/`is_disjoint`/`subsumes`/
//!    `shifted` and `PathSet::subtract` over a deterministic corpus of
//!    scheduler-shaped matrices;
//! 2. **kernels** — end-to-end `pipeline_loop` wall time per kernel, with
//!    the packed run's predicate-op counters and interner memo hit rate;
//! 3. **scaling** — the synthetic conditional-block family of `table_cost`
//!    (the b=8 point is the headline: predicate work dominates there).
//!
//! Every end-to-end pair is also a differential check: the deterministic
//! counters of the two backends must match exactly. `--json` writes
//! BENCH_pred.json; `--smoke` trims the corpus and the scaling sweep for
//! the time-boxed CI job.

use psp_bench::synthetic;
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::all_kernels;
use psp_predicate::backend::with_backend;
use psp_predicate::{stats, PathSet, PredicateMatrix};
use std::time::Instant;

/// Deterministic corpus: entry lists shaped like scheduler formals (few
/// constrained elements, small rows, columns clustered near 0). A plain
/// LCG keeps the binary dependency-free and the corpus identical across
/// backends and runs.
fn corpus_entries(n: usize, spill: bool) -> Vec<Vec<(u32, i32, bool)>> {
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    (0..n)
        .map(|_| {
            let len = next(6) as usize + 1;
            (0..len)
                .map(|_| {
                    let row = next(if spill { 10 } else { 5 }) as u32;
                    let col = next(if spill { 24 } else { 8 }) as i32 - if spill { 12 } else { 4 };
                    (row, col, next(2) == 1)
                })
                .collect()
        })
        .collect()
}

fn build(packed: bool, entries: &[Vec<(u32, i32, bool)>]) -> Vec<PredicateMatrix> {
    with_backend(packed, || {
        entries
            .iter()
            .map(|e| PredicateMatrix::from_entries(e.iter().copied()))
            .collect()
    })
}

/// ns/op over all ordered pairs of the corpus, repeated `reps` times.
fn time_pairs(
    ms: &[PredicateMatrix],
    reps: usize,
    mut f: impl FnMut(&PredicateMatrix, &PredicateMatrix),
) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        for a in ms {
            for b in ms {
                f(a, b);
            }
        }
    }
    t0.elapsed().as_nanos() as f64 / (reps * ms.len() * ms.len()) as f64
}

fn time_each(ms: &[PredicateMatrix], reps: usize, mut f: impl FnMut(&PredicateMatrix)) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        for a in ms {
            f(a);
        }
    }
    t0.elapsed().as_nanos() as f64 / (reps * ms.len()) as f64
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");

    println!("E10 — predicate algebra: packed bitplanes vs sparse reference\n");

    // ---- 1. micro ops ----
    let (n_mats, reps) = if smoke { (24, 20) } else { (48, 200) };
    let entries = corpus_entries(n_mats, !smoke);
    let packed_ms = build(true, &entries);
    let sparse_ms = build(false, &entries);
    let packed_sets: Vec<PathSet> = packed_ms
        .chunks(3)
        .map(|c| PathSet::from_matrices(c.iter().cloned()))
        .collect();
    let sparse_sets: Vec<PathSet> = sparse_ms
        .chunks(3)
        .map(|c| PathSet::from_matrices(c.iter().cloned()))
        .collect();

    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "op", "sparse ns", "packed ns", "speedup"
    );
    let mut micro = Vec::new();
    let mut sink = 0usize; // defeat dead-code elimination
    let mut row = |op: &str, sparse_ns: f64, packed_ns: f64| {
        println!(
            "{op:<14} {sparse_ns:>12.1} {packed_ns:>12.1} {:>8.2}x",
            sparse_ns / packed_ns
        );
        micro.push(format!(
            "{{\"op\":\"{op}\",\"sparse_ns\":{sparse_ns:.2},\"packed_ns\":{packed_ns:.2},\"speedup\":{:.3}}}",
            sparse_ns / packed_ns
        ));
    };
    let s = time_pairs(&sparse_ms, reps, |a, b| sink += a.is_disjoint(b) as usize);
    let p = time_pairs(&packed_ms, reps, |a, b| sink += a.is_disjoint(b) as usize);
    row("is_disjoint", s, p);
    let s = time_pairs(&sparse_ms, reps, |a, b| sink += a.subsumes(b) as usize);
    let p = time_pairs(&packed_ms, reps, |a, b| sink += a.subsumes(b) as usize);
    row("subsumes", s, p);
    let s = time_pairs(&sparse_ms, reps, |a, b| {
        sink += a.conjoin(b).is_some() as usize
    });
    let p = time_pairs(&packed_ms, reps, |a, b| {
        sink += a.conjoin(b).is_some() as usize
    });
    row("conjoin", s, p);
    let s = time_each(&sparse_ms, reps * 8, |a| {
        sink += a.shifted(1).constrained_len()
    });
    let p = time_each(&packed_ms, reps * 8, |a| {
        sink += a.shifted(1).constrained_len()
    });
    row("shifted", s, p);
    let set_reps = if smoke { 2 } else { 10 };
    let t0 = Instant::now();
    for _ in 0..set_reps {
        for a in &sparse_sets {
            for b in &sparse_sets {
                sink += a.subtract(b).len();
            }
        }
    }
    let s =
        t0.elapsed().as_nanos() as f64 / (set_reps * sparse_sets.len() * sparse_sets.len()) as f64;
    let t0 = Instant::now();
    for _ in 0..set_reps {
        for a in &packed_sets {
            for b in &packed_sets {
                sink += a.subtract(b).len();
            }
        }
    }
    let p =
        t0.elapsed().as_nanos() as f64 / (set_reps * packed_sets.len() * packed_sets.len()) as f64;
    row("set_subtract", s, p);
    assert!(sink > 0);

    // Differential spot check on the corpus itself.
    for (a, b) in packed_ms.iter().zip(&sparse_ms) {
        assert_eq!(a, b, "corpus diverged between backends");
    }

    // ---- 2. end-to-end kernels ----
    println!("\nend-to-end pipeline_loop per kernel (wall ms, identical results asserted):");
    // Packed runs answer most in-window queries with direct word tests
    // that never touch the interner memo, so the interesting memo hit
    // rate is the sparse run's (where every cached query goes through it).
    println!(
        "{:<16} {:>11} {:>11} {:>9} {:>12} {:>10} {:>7}",
        "kernel", "sparse ms", "packed ms", "speedup", "disj tests", "conjoins", "smemo%"
    );
    let cfg = PspConfig::default();
    let kernels = all_kernels();
    let kernels = if smoke { &kernels[..3] } else { &kernels[..] };
    let runs = if smoke { 1 } else { 3 };
    let mut kernel_records = Vec::new();
    let mut worst_ratio = f64::MAX;
    for kernel in kernels {
        let mut sparse_ms_best = f64::MAX;
        let mut packed_ms_best = f64::MAX;
        let mut sparse_res = None;
        let mut packed_res = None;
        for _ in 0..runs {
            let t = Instant::now();
            let r = with_backend(false, || pipeline_loop(&kernel.spec, &cfg)).expect("pipelines");
            sparse_ms_best = sparse_ms_best.min(t.elapsed().as_secs_f64() * 1e3);
            sparse_res = Some(r);
            let t = Instant::now();
            let r = with_backend(true, || pipeline_loop(&kernel.spec, &cfg)).expect("pipelines");
            packed_ms_best = packed_ms_best.min(t.elapsed().as_secs_f64() * 1e3);
            packed_res = Some(r);
        }
        let (sparse_res, packed_res) = (sparse_res.unwrap(), packed_res.unwrap());
        assert_eq!(
            sparse_res.stats.counters(),
            packed_res.stats.counters(),
            "{}: backends diverged",
            kernel.name
        );
        assert_eq!(sparse_res.program.ii_range(), packed_res.program.ii_range());
        let speedup = sparse_ms_best / packed_ms_best;
        worst_ratio = worst_ratio.min(speedup);
        let pred = &packed_res.stats.pred;
        let pred_sparse = &sparse_res.stats.pred;
        println!(
            "{:<16} {:>11.3} {:>11.3} {:>8.2}x {:>12} {:>10} {:>6.0}%",
            kernel.name,
            sparse_ms_best,
            packed_ms_best,
            speedup,
            pred.disjoint_tests,
            pred.conjoins,
            100.0 * pred_sparse.memo_hit_rate(),
        );
        kernel_records.push(format!(
            concat!(
                "{{\"kernel\":\"{}\",\"sparse_ms\":{:.4},\"packed_ms\":{:.4},",
                "\"speedup\":{:.3},\"pred\":{},\"pred_sparse\":{}}}"
            ),
            kernel.name,
            sparse_ms_best,
            packed_ms_best,
            speedup,
            pred.to_json(),
            pred_sparse.to_json(),
        ));
    }
    println!("worst kernel speedup: {worst_ratio:.2}x");

    // ---- 3. synthetic scaling ----
    println!("\nscaling (synthetic loops, b conditional blocks):");
    println!(
        "{:<4} {:>11} {:>11} {:>9} {:>12} {:>7}",
        "b", "sparse ms", "packed ms", "speedup", "disj tests", "smemo%"
    );
    let blocks: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 6, 8] };
    let mut scaling_records = Vec::new();
    for &b in blocks {
        let spec = synthetic(b);
        let t = Instant::now();
        let sparse = with_backend(false, || pipeline_loop(&spec, &cfg)).expect("pipelines");
        let sparse_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let packed = with_backend(true, || pipeline_loop(&spec, &cfg)).expect("pipelines");
        let packed_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            sparse.stats.counters(),
            packed.stats.counters(),
            "b={b}: diverged"
        );
        assert_eq!(sparse.program.ii_range(), packed.program.ii_range());
        let pred = &packed.stats.pred;
        let pred_sparse = &sparse.stats.pred;
        println!(
            "{:<4} {:>11.2} {:>11.2} {:>8.2}x {:>12} {:>6.0}%",
            b,
            sparse_ms,
            packed_ms,
            sparse_ms / packed_ms,
            pred.disjoint_tests,
            100.0 * pred_sparse.memo_hit_rate(),
        );
        scaling_records.push(format!(
            concat!(
                "{{\"blocks\":{},\"sparse_ms\":{:.3},\"packed_ms\":{:.3},",
                "\"speedup\":{:.3},\"pred\":{},\"pred_sparse\":{}}}"
            ),
            b,
            sparse_ms,
            packed_ms,
            sparse_ms / packed_ms,
            pred.to_json(),
            pred_sparse.to_json(),
        ));
    }

    let totals = stats::snapshot();
    println!(
        "\nprocess totals: {} conjoins, {} disjoint tests, {} subsume tests, memo hit rate {:.0}%",
        totals.conjoins,
        totals.disjoint_tests,
        totals.subsume_tests,
        100.0 * totals.memo_hit_rate(),
    );

    if json {
        let payload = format!(
            "{{\"micro\":[{}],\"kernels\":[{}],\"scaling\":[{}]}}",
            micro.join(","),
            kernel_records.join(","),
            scaling_records.join(","),
        );
        std::fs::write("BENCH_pred.json", &payload).expect("write BENCH_pred.json");
        println!("wrote BENCH_pred.json");
    }
}
