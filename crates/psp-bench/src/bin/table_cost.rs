//! Experiment E5 — scheduling cost (the paper's "efficient code at
//! acceptable cost"). Per kernel: wall-clock to pipeline, candidate
//! evaluations, applied transformations, and code growth.

use psp_core::{pipeline_loop, PspConfig, Schedule};
use psp_kernels::all_kernels;
use std::time::Instant;

fn main() {
    println!("E5 — scheduling cost of the PSP technique (wide machine)\n");
    println!(
        "{:<16} {:>8} {:>10} {:>7} {:>6} {:>7} {:>9} {:>9} {:>10}",
        "kernel", "src ops", "final ops", "moves", "wraps", "splits", "cands", "time(ms)", "growth"
    );

    let cfg = PspConfig::default();
    let mut total_ms = 0.0;
    for kernel in all_kernels() {
        let src_ops = Schedule::initial(&kernel.spec).n_instances();
        let t0 = Instant::now();
        let res = pipeline_loop(&kernel.spec, &cfg).expect("pipelines");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        let final_ops = res.schedule.n_instances();
        println!(
            "{:<16} {:>8} {:>10} {:>7} {:>6} {:>7} {:>9} {:>9.2} {:>9.2}x",
            kernel.name,
            src_ops,
            final_ops,
            res.stats.moves,
            res.stats.wraps,
            res.stats.splits,
            res.stats.candidates,
            ms,
            final_ops as f64 / src_ops as f64,
        );
    }
    println!(
        "\ntotal: {:.1} ms for {} kernels — the technique is iterative with \
         no backtracking (candidate trials are clone+compact+codegen).",
        total_ms,
        all_kernels().len()
    );

    // Scaling sweep: synthetic loops with a growing chain of conditional
    // blocks, to show how scheduling cost grows with body size.
    println!("\nscaling (synthetic loops, b conditional blocks each with 3 ops):");
    println!("{:>4} {:>8} {:>9} {:>9} {:>10}", "b", "src ops", "cands", "time(ms)", "final II");
    for blocks in [1usize, 2, 4, 6, 8] {
        let spec = synthetic(blocks);
        let src_ops = Schedule::initial(&spec).n_instances();
        let t0 = Instant::now();
        let res = pipeline_loop(&spec, &cfg).expect("pipelines");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let ii = res
            .program
            .ii_range()
            .map(|(a, b)| if a == b { format!("{a}") } else { format!("{a}..{b}") })
            .unwrap_or_default();
        println!(
            "{:>4} {:>8} {:>9} {:>9.2} {:>10}",
            blocks, src_ops, res.stats.candidates, ms, ii
        );
    }
}

/// `b` independent conditional accumulations over one loaded element.
fn synthetic(blocks: usize) -> psp_ir::LoopSpec {
    use psp_ir::op::build;
    let mut b = psp_ir::LoopBuilder::new(format!("synthetic{blocks}"));
    let x = b.array("x");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let xk = b.reg();
    let mut live = vec![n, k];
    b.op(build::load(xk, x, k));
    for i in 0..blocks {
        let acc = b.named_reg(format!("acc{i}"));
        live.push(acc);
        let cc = b.cc();
        b.op(build::cmp(psp_ir::CmpOp::Gt, cc, xk, (i as i64) * 10 - 40));
        b.if_else(
            cc,
            |b| {
                b.op(build::add(acc, acc, xk));
            },
            |_| {},
        );
    }
    b.op(build::add(k, k, 1i64));
    let ccb = b.cc();
    b.op(build::cmp(psp_ir::CmpOp::Ge, ccb, k, n));
    b.break_(ccb);
    let outs: Vec<_> = live[2..].to_vec();
    b.finish(live.clone(), outs)
}
