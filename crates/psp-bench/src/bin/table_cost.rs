//! Experiment E5 — scheduling cost (the paper's "efficient code at
//! acceptable cost"). Per kernel: wall-clock to pipeline, candidate
//! evaluations, applied transformations, codegen-memo hit rate, and code
//! growth — plus a sequential-vs-parallel comparison on synthetic scaling
//! loops, where candidate evaluation dominates.

use psp_bench::synthetic;
use psp_core::{pipeline_loop, PspConfig, PspResult, Schedule};
use psp_kernels::all_kernels;
use std::time::Instant;

fn hit_pct(res: &PspResult) -> f64 {
    let total = res.stats.cache_hits + res.stats.cache_misses;
    if total == 0 {
        0.0
    } else {
        100.0 * res.stats.cache_hits as f64 / total as f64
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    println!("E5 — scheduling cost of the PSP technique (wide machine)\n");
    println!(
        "{:<16} {:>8} {:>10} {:>7} {:>6} {:>7} {:>9} {:>7} {:>9} {:>10}",
        "kernel",
        "src ops",
        "final ops",
        "moves",
        "wraps",
        "splits",
        "cands",
        "hit%",
        "time(ms)",
        "growth"
    );

    let cfg = PspConfig::default();
    let mut total_ms = 0.0;
    let mut phase = psp_core::PhaseTimes::default();
    for kernel in all_kernels() {
        let src_ops = Schedule::initial(&kernel.spec).n_instances();
        let t0 = Instant::now();
        let res = pipeline_loop(&kernel.spec, &cfg).expect("pipelines");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        let final_ops = res.schedule.n_instances();
        println!(
            "{:<16} {:>8} {:>10} {:>7} {:>6} {:>7} {:>9} {:>6.0}% {:>9.2} {:>9.2}x",
            kernel.name,
            src_ops,
            final_ops,
            res.stats.moves,
            res.stats.wraps,
            res.stats.splits,
            res.stats.candidates,
            hit_pct(&res),
            ms,
            final_ops as f64 / src_ops as f64,
        );
        if json {
            println!("  stats: {}", res.stats.to_json());
        }
        phase.candidate_gen += res.stats.times.candidate_gen;
        phase.apply += res.stats.times.apply;
        phase.compact += res.stats.times.compact;
        phase.codegen += res.stats.times.codegen;
        phase.score += res.stats.times.score;
        phase.total += res.stats.times.total;
    }
    println!(
        "\ntotal: {:.1} ms for {} kernels — the technique is iterative with \
         no backtracking (candidate trials are clone+compact+codegen).",
        total_ms,
        all_kernels().len()
    );
    println!(
        "aggregate phase work (summed across worker threads): candidate-gen \
         {:.1} ms, apply {:.1} ms, compact {:.1} ms, codegen {:.1} ms, score \
         {:.1} ms — with exact-II pruning deferring most codegen, compaction \
         is the remaining cost; without pruning (sequential driver), codegen \
         dominates and grows exponentially with live IFs.",
        phase.candidate_gen.as_secs_f64() * 1e3,
        phase.apply.as_secs_f64() * 1e3,
        phase.compact.as_secs_f64() * 1e3,
        phase.codegen.as_secs_f64() * 1e3,
        phase.score.as_secs_f64() * 1e3,
    );

    // Scaling sweep: synthetic loops with a growing chain of conditional
    // blocks (codegen block count is exponential in live IFs), comparing
    // the original sequential driver against the parallel + memoized one.
    // Results are bit-identical by construction; only wall-clock differs.
    println!("\nscaling (synthetic loops, b conditional blocks each with 3 ops):");
    println!(
        "{:>4} {:>8} {:>9} {:>7} {:>11} {:>11} {:>8} {:>10}",
        "b", "src ops", "cands", "hit%", "seq(ms)", "par(ms)", "speedup", "final II"
    );
    let seq_cfg = PspConfig::default().sequential();
    for blocks in [1usize, 2, 4, 6, 8] {
        let spec = synthetic(blocks);
        let src_ops = Schedule::initial(&spec).n_instances();
        let t0 = Instant::now();
        let seq = pipeline_loop(&spec, &seq_cfg).expect("pipelines");
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par = pipeline_loop(&spec, &cfg).expect("pipelines");
        let par_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            seq.stats.counters(),
            par.stats.counters(),
            "parallel driver diverged at b={blocks}"
        );
        assert_eq!(seq.program.ii_range(), par.program.ii_range());
        let ii = par
            .program
            .ii_range()
            .map(|(a, b)| {
                if a == b {
                    format!("{a}")
                } else {
                    format!("{a}..{b}")
                }
            })
            .unwrap_or_default();
        println!(
            "{:>4} {:>8} {:>9} {:>6.0}% {:>11.2} {:>11.2} {:>7.2}x {:>10}",
            blocks,
            src_ops,
            par.stats.candidates,
            hit_pct(&par),
            seq_ms,
            par_ms,
            seq_ms / par_ms,
            ii
        );
        if json {
            println!("  seq: {}", seq.stats.to_json());
            println!("  par: {}", par.stats.to_json());
        }
    }
}
