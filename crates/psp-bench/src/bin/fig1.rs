//! Experiment E1 — paper Figure 1: the vecmin loop under the three
//! compilation levels the paper walks through.
//!
//! Paper values: (a) sequential II = 7 and 8 cycles for the two paths;
//! (b) local scheduling with renaming II = 3; (c) software pipelining
//! II = 2. This binary regenerates all three, verifies execution against
//! the reference interpreter, and asserts the paper's numbers.

use psp_baselines::{compile_local, compile_sequential};
use psp_bench::measure;
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{by_name, KernelData};
use psp_machine::MachineConfig;

fn main() {
    let kernel = by_name("vecmin").unwrap();
    let machine = MachineConfig::paper_default();
    let data = KernelData::random(42, 1000);

    println!("E1 / paper Figure 1 — vecmin: for (k=0;k<n;k++) if (x[k]<x[m]) m=k;");
    println!("machine: wide tree-VLIW (paper: \"sufficient parallelism in the hardware\")\n");
    println!(
        "{:<26} {:>8} {:>8} {:>13} {:>9}",
        "stage", "paper II", "ours II", "cycles/iter", "speedup"
    );

    let seq = compile_sequential(&kernel.spec);
    let m = measure(&kernel, &seq, &data);
    println!(
        "{:<26} {:>8} {:>8} {:>13.2} {:>8.2}x",
        "(a) sequential", "7..8", m.ii, m.cycles_per_iter, m.speedup
    );
    assert_eq!(m.ii, "7..8", "paper Fig. 1a");

    let local = compile_local(&kernel.spec, &machine);
    let m = measure(&kernel, &local, &data);
    println!(
        "{:<26} {:>8} {:>8} {:>13.2} {:>8.2}x",
        "(b) local sched + rename", "3", m.ii, m.cycles_per_iter, m.speedup
    );
    assert_eq!(m.ii, "3", "paper Fig. 1b");

    let psp = pipeline_loop(&kernel.spec, &PspConfig::with_machine(machine)).unwrap();
    let m = measure(&kernel, &psp.program, &data);
    println!(
        "{:<26} {:>8} {:>8} {:>13.2} {:>8.2}x",
        "(c) software pipelining", "2", m.ii, m.cycles_per_iter, m.speedup
    );
    assert_eq!(m.ii, "2", "paper Fig. 1c");

    println!("\ngenerated pipelined loop:\n{}", psp.program);
    println!("all three paper IIs reproduced ✓");
}
