//! Experiment E9 — ablation of the design choices DESIGN.md calls out:
//! what each mechanism of the technique buys, measured as verified cycles
//! per iteration across the kernel suite.
//!
//! Variants:
//! * `full`      — the complete technique;
//! * `no-split`  — split candidates disabled (clones never created);
//! * `depth 1`   — at most one level of pipelining overlap;
//! * `depth 0`   — no wrapping at all (≈ local scheduling inside the
//!   PSP framework);
//! * `no-rename` — compaction may not rename (the "with renaming" of the
//!   paper's Fig. 1b removed).

use psp_bench::measure;
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{all_kernels, KernelData};
use psp_machine::MachineConfig;

fn main() {
    let wide = MachineConfig::paper_default();
    let variants: Vec<(&str, PspConfig)> = vec![
        ("full", PspConfig::with_machine(wide.clone())),
        (
            "no-split",
            PspConfig {
                enable_split: false,
                ..PspConfig::with_machine(wide.clone())
            },
        ),
        (
            "depth 1",
            PspConfig {
                max_depth: 1,
                ..PspConfig::with_machine(wide.clone())
            },
        ),
        (
            "depth 0",
            PspConfig {
                max_depth: 0,
                ..PspConfig::with_machine(wide.clone())
            },
        ),
        (
            "no-rename",
            PspConfig {
                enable_rename: false,
                ..PspConfig::with_machine(wide.clone())
            },
        ),
    ];

    println!("E9 — ablation: verified cycles/iteration (wide machine, n = 512)\n");
    print!("{:<16}", "kernel");
    for (label, _) in &variants {
        print!(" {label:>11}");
    }
    println!();

    let mut sums = vec![0.0f64; variants.len()];
    let kernels = all_kernels();
    for kernel in &kernels {
        let data = KernelData::random(77, 512);
        print!("{:<16}", kernel.name);
        for (vi, (_, cfg)) in variants.iter().enumerate() {
            let res = pipeline_loop(&kernel.spec, cfg).expect("pipelines");
            let m = measure(kernel, &res.program, &data);
            sums[vi] += m.cycles_per_iter;
            print!(" {:>11.2}", m.cycles_per_iter);
        }
        println!();
    }
    print!("{:<16}", "mean");
    for s in &sums {
        print!(" {:>11.2}", s / kernels.len() as f64);
    }
    println!();
    println!(
        "\nReading: depth 0 ≈ local scheduling; the gap to `full` is the \
         pipelining payoff; `no-split` shows what disjoined clones buy on \
         kernels whose conditional bodies touch loop-carried state."
    );
}
