//! Experiment E7 — the paper's §4 future-work extension: heuristics driven
//! by dynamic probabilities of path sets, obtained by profiling.
//!
//! Sweeps the branch probability of the skewed kernel on a narrow machine
//! and compares static (worst-path) PSP, profile-guided PSP, and the
//! single-II EMS baseline. The guided scorer's estimated mean dynamic II
//! is printed next to the measured cycles per iteration — the estimator
//! the paper proposes ("a mapping from path sets … to their probabilities
//! would enable exact calculation of estimated mean (dynamic) II").

use psp_baselines::modulo_schedule;
use psp_bench::measure;
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{by_name, KernelData};
use psp_machine::MachineConfig;
use psp_sim::{run_reference, BranchProfile};

fn main() {
    let machine = MachineConfig::narrow(2, 1, 1);
    let len = 4000;

    println!("E7 — probability-driven heuristics (skewed kernel, 2alu/1mem/1br)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "p", "static c/i", "guided c/i", "E[II] est", "ems c/i", "guided win"
    );

    for name in ["skewed", "two_cond"] {
        println!("kernel: {name}");
        let kernel = by_name(name).unwrap();
        for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
            let data = KernelData::random(31, len).with_taken_fraction(q);
            let init = kernel.initial_state(&data);
            let golden = run_reference(&kernel.spec, init, 1_000_000_000).unwrap();
            let profile = BranchProfile::from_run(&golden, kernel.spec.n_ifs);

            let s = pipeline_loop(&kernel.spec, &PspConfig::with_machine(machine.clone())).unwrap();
            let sm = measure(&kernel, &s.program, &data);

            let cfg = PspConfig {
                probs: Some(profile.p_true.clone()),
                ..PspConfig::with_machine(machine.clone())
            };
            let g = pipeline_loop(&kernel.spec, &cfg).unwrap();
            let gm = measure(&kernel, &g.program, &data);

            let ems = modulo_schedule(&kernel.spec, &machine);
            ems.verify(&machine).unwrap();
            let ems_ci = ems.estimated_cycles(golden.iterations) as f64 / golden.iterations as f64;

            println!(
                "{:>6.2} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>11.1}%",
                q,
                sm.cycles_per_iter,
                gm.cycles_per_iter,
                g.score.primary,
                ems_ci,
                100.0 * (1.0 - gm.cycles_per_iter / sm.cycles_per_iter)
            );
            // The estimator must track reality closely (stationary model).
            assert!(
                (g.score.primary - gm.cycles_per_iter).abs() < 0.35,
                "estimated mean II diverged from measurement"
            );
        }
        println!();
    }
}
