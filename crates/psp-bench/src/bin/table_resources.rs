//! Experiment E6 — resource sensitivity: how the achieved (verified)
//! cycles per iteration of each technique scale with machine width. The
//! paper's framework handles resource constraints in the row-packing rules;
//! this table shows the II degrading gracefully as the machine narrows.

use psp_baselines::compile_local;
use psp_bench::{machine_label, measure};
use psp_core::{pipeline_loop, PspConfig};
use psp_kernels::{by_name, KernelData};
use psp_machine::MachineConfig;

fn main() {
    let configs = [
        MachineConfig::narrow(1, 1, 1),
        MachineConfig::narrow(2, 1, 1),
        MachineConfig::narrow(2, 2, 2),
        MachineConfig::narrow(4, 2, 2),
        MachineConfig::paper_default(),
    ];
    let len = 512;

    println!("E6 — cycles/iteration vs machine width (verified execution)\n");
    for name in ["vecmin", "cond_sum", "clamp_store", "dot_cond"] {
        let kernel = by_name(name).unwrap();
        let data = KernelData::random(7, len);
        println!("kernel: {name}");
        println!(
            "  {:<16} {:>12} {:>12} {:>10} {:>10}",
            "machine", "local", "psp", "psp II", "depth"
        );
        let mut prev = f64::INFINITY;
        for m in &configs {
            let local = measure(&kernel, &compile_local(&kernel.spec, m), &data);
            let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(m.clone()))
                .expect("pipelines");
            let psp = measure(&kernel, &res.program, &data);
            println!(
                "  {:<16} {:>12.2} {:>12.2} {:>10} {:>10}",
                machine_label(m),
                local.cycles_per_iter,
                psp.cycles_per_iter,
                psp.ii,
                res.schedule.max_index(),
            );
            // Wider machines should not hurt much — the greedy heuristic
            // is not strictly monotone in machine width (different
            // resource limits steer compaction to different local optima),
            // so allow a small tolerance.
            assert!(
                psp.cycles_per_iter <= prev + 1.0,
                "{name}: wider machine regressed sharply"
            );
            prev = psp.cycles_per_iter;
        }
        println!();
    }

    // Latency hiding: longer load latencies stall the local schedule but
    // software pipelining overlaps them with the previous iteration.
    println!("load-latency sensitivity (wide issue, vecmin):");
    println!("  {:<10} {:>12} {:>12}", "load lat", "local", "psp");
    let kernel = by_name("vecmin").unwrap();
    let data = KernelData::random(7, len);
    for lat in [1u32, 2, 3, 4] {
        let m = MachineConfig {
            load_latency: lat,
            ..MachineConfig::paper_default()
        };
        let local = measure(&kernel, &compile_local(&kernel.spec, &m), &data);
        let res = pipeline_loop(&kernel.spec, &PspConfig::with_machine(m)).expect("pipelines");
        let psp = measure(&kernel, &res.program, &data);
        println!(
            "  {:<10} {:>12.2} {:>12.2}",
            lat, local.cycles_per_iter, psp.cycles_per_iter
        );
        assert!(psp.cycles_per_iter <= local.cycles_per_iter + 1e-9);
    }
}
