//! Property tests for operation algebra: renaming and def/use reporting
//! must agree, and opcode evaluation must match a direct i64 model.

use proptest::prelude::*;
use psp_ir::op::build;
use psp_ir::{
    Address, AluOp, ArrayId, CcReg, CmpOp, Guard, OpKind, Operand, Operation, Reg, RegRef,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u32..6).prop_map(Reg)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (-100i64..100).prop_map(Operand::Imm),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Min),
        Just(AluOp::Max),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_op() -> impl Strategy<Value = Operation> {
    let g = prop_oneof![
        Just(None),
        (0u32..3, any::<bool>()).prop_map(|(c, v)| Some(Guard {
            cc: CcReg(c),
            on_true: v
        })),
    ];
    let kind = prop_oneof![
        (arb_alu(), arb_reg(), arb_operand(), arb_operand())
            .prop_map(|(op, dst, a, b)| OpKind::Alu { op, dst, a, b }),
        (arb_reg(), arb_operand()).prop_map(|(dst, src)| OpKind::Copy { dst, src }),
        (
            arb_cmp(),
            (0u32..3).prop_map(CcReg),
            arb_operand(),
            arb_operand()
        )
            .prop_map(|(op, dst, a, b)| OpKind::Cmp { op, dst, a, b }),
        (arb_reg(), arb_reg(), -2i64..3).prop_map(|(dst, idx, d)| OpKind::Load {
            dst,
            addr: Address::indexed(ArrayId(0), idx).displaced(d),
        }),
        (arb_operand(), arb_reg(), -2i64..3).prop_map(|(src, idx, d)| OpKind::Store {
            src,
            addr: Address::indexed(ArrayId(0), idx).displaced(d),
        }),
        (0u32..3).prop_map(|c| OpKind::If { cc: CcReg(c) }),
        (0u32..3).prop_map(|c| OpKind::Break { cc: CcReg(c) }),
    ];
    (kind, g).prop_map(|(kind, guard)| Operation { kind, guard })
}

proptest! {
    #[test]
    fn rename_gpr_is_consistent_with_defs_uses(op in arb_op(), from in arb_reg(), to in 10u32..14) {
        let to = Reg(to);
        let renamed = op.renamed_gpr(from, to);
        // After renaming, `from` appears nowhere.
        prop_assert!(!renamed.defs().contains(&RegRef::Gpr(from)) || from == to);
        prop_assert!(!renamed.uses().contains(&RegRef::Gpr(from)) || from == to);
        // Registers unrelated to the rename are untouched.
        for r in op.defs() {
            if r != RegRef::Gpr(from) {
                prop_assert!(renamed.defs().contains(&r));
            }
        }
        for r in op.uses() {
            if r != RegRef::Gpr(from) {
                prop_assert!(renamed.uses().contains(&r));
            }
        }
        // Renaming to a fresh register is reversible.
        prop_assert_eq!(renamed.renamed_gpr(to, from), op.renamed_gpr(from, from));
    }

    #[test]
    fn uses_only_rename_preserves_destination(op in arb_op(), from in arb_reg()) {
        let to = Reg(20);
        let renamed = op.with_uses_renamed(from, to);
        prop_assert_eq!(renamed.defs(), op.defs(), "destination untouched");
        prop_assert!(
            !renamed.uses().contains(&RegRef::Gpr(from)),
            "no remaining use of the source"
        );
    }

    #[test]
    fn rename_cc_is_consistent(op in arb_op(), from in 0u32..3) {
        let from = CcReg(from);
        let to = CcReg(9);
        let renamed = op.renamed_cc(from, to);
        prop_assert!(!renamed.defs().contains(&RegRef::Cc(from)));
        prop_assert!(!renamed.uses().contains(&RegRef::Cc(from)));
        prop_assert_eq!(
            renamed.defs().len(), op.defs().len()
        );
        prop_assert_eq!(renamed.uses().len(), op.uses().len());
    }

    #[test]
    fn alu_eval_matches_model(op in arb_alu(), a in -1000i64..1000, b in -1000i64..1000) {
        let model = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Min => std::cmp::min(a, b),
            AluOp::Max => std::cmp::max(a, b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        };
        prop_assert_eq!(op.eval(a, b), model);
    }

    #[test]
    fn cmp_eval_matches_model(op in arb_cmp(), a in -50i64..50, b in -50i64..50) {
        let model = match op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        prop_assert_eq!(op.eval(a, b), model);
    }

    #[test]
    fn with_dst_gpr_changes_exactly_the_destination(op in arb_op()) {
        let to = Reg(21);
        let changed = op.with_dst_gpr(to);
        match op.defs().as_slice() {
            [RegRef::Gpr(_)] => {
                prop_assert_eq!(changed.defs(), vec![RegRef::Gpr(to)]);
                // Uses that are not the destination register survive.
                for u in op.uses() {
                    if u != RegRef::Gpr(to) {
                        prop_assert!(changed.uses().contains(&u));
                    }
                }
            }
            _ => prop_assert_eq!(changed, op),
        }
    }

    #[test]
    fn guards_add_their_cc_to_uses(op in arb_op()) {
        if let Some(g) = op.guard {
            prop_assert!(op.uses().contains(&RegRef::Cc(g.cc)));
        }
        let bare = Operation { guard: None, ..op };
        let guarded = Operation {
            guard: Some(Guard::when(CcReg(2))),
            ..bare
        };
        prop_assert!(guarded.uses().contains(&RegRef::Cc(CcReg(2))));
        prop_assert_eq!(guarded.defs(), bare.defs());
    }

    #[test]
    fn builders_roundtrip_display(op in arb_op()) {
        // Display never panics and always names the mnemonic.
        let s = op.to_string();
        prop_assert!(!s.is_empty());
        let _ = build::if_(CcReg(0)); // keep the import exercised
    }
}
