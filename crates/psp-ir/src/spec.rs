//! Structured source loops and their builder.
//!
//! A [`LoopSpec`] is the input to every scheduler in this workspace: a
//! do-while loop body made of straight-line operations, nested `if`/`else`
//! regions, and `BREAK` exit tests, together with live-in/live-out registers
//! and array declarations. (As in the paper's §1.1, a source `while` loop is
//! assumed to have been rewritten as a do-while with a guarding test in
//! front; only the body is scheduled.)

use crate::op::{build, OpKind, Operation};
use crate::reg::{ArrayId, CcReg, Reg, RegRef};
use std::collections::BTreeMap;
use std::fmt;

/// One element of a structured loop body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A straight-line operation.
    Op(Operation),
    /// A two-way conditional region.
    If(IfItem),
    /// A loop-exit test.
    Break(BreakItem),
}

/// A structured `if (cc) { then } else { else }` region.
#[derive(Debug, Clone, PartialEq)]
pub struct IfItem {
    /// Dense id of this IF — the predicate-matrix *row* it controls.
    pub if_id: u32,
    /// Tested condition register.
    pub cc: CcReg,
    /// Items executed when `cc` is true.
    pub then_items: Vec<Item>,
    /// Items executed when `cc` is false.
    pub else_items: Vec<Item>,
}

/// A `BREAK cc` exit test (exits the loop when `cc` is true).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakItem {
    /// Tested condition register.
    pub cc: CcReg,
}

/// A complete source loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// Human-readable kernel name.
    pub name: String,
    /// Structured body.
    pub items: Vec<Item>,
    /// Registers carrying values into the loop (and across iterations).
    pub live_in: Vec<RegRef>,
    /// Registers whose final values are observed after the loop.
    pub live_out: Vec<RegRef>,
    /// Array names; position is the [`ArrayId`].
    pub arrays: Vec<String>,
    /// Number of general-purpose registers allocated so far.
    pub n_regs: u32,
    /// Number of condition registers allocated so far.
    pub n_ccs: u32,
    /// Number of IF operations (predicate-matrix rows).
    pub n_ifs: u32,
    /// Optional debug names for registers.
    pub reg_names: BTreeMap<u32, String>,
}

impl LoopSpec {
    /// Iterate over every operation in the body, depth-first, with its
    /// nesting depth (IF and BREAK items included as operations).
    pub fn all_ops(&self) -> Vec<(Operation, usize)> {
        fn walk(items: &[Item], depth: usize, out: &mut Vec<(Operation, usize)>) {
            for item in items {
                match item {
                    Item::Op(op) => out.push((*op, depth)),
                    Item::If(i) => {
                        out.push((build::if_(i.cc), depth));
                        walk(&i.then_items, depth + 1, out);
                        walk(&i.else_items, depth + 1, out);
                    }
                    Item::Break(b) => out.push((build::break_(b.cc), depth)),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.items, 0, &mut out);
        out
    }

    /// Total number of operations (IFs and BREAKs included).
    pub fn op_count(&self) -> usize {
        self.all_ops().len()
    }

    /// Sanity checks: array ids in range, IF ids dense, CC sources of
    /// control ops defined somewhere or live-in.
    pub fn validate(&self) -> Result<(), String> {
        let mut if_ids = Vec::new();
        let mut defined: Vec<RegRef> = self.live_in.clone();
        fn collect_ifs(items: &[Item], out: &mut Vec<u32>) {
            for item in items {
                if let Item::If(i) = item {
                    out.push(i.if_id);
                    collect_ifs(&i.then_items, out);
                    collect_ifs(&i.else_items, out);
                }
            }
        }
        collect_ifs(&self.items, &mut if_ids);
        if_ids.sort_unstable();
        for (expect, &got) in if_ids.iter().enumerate() {
            if got != expect as u32 {
                return Err(format!(
                    "IF ids must be dense 0..n, found {got} at position {expect}"
                ));
            }
        }
        if if_ids.len() != self.n_ifs as usize {
            return Err(format!(
                "n_ifs = {} but body contains {} IFs",
                self.n_ifs,
                if_ids.len()
            ));
        }
        for (op, _) in self.all_ops() {
            for u in op.uses() {
                // A register may legitimately be defined later in the body
                // textually yet carried around the back edge — accept any
                // register defined *somewhere* or live-in.
                let _ = u;
            }
            for d in op.defs() {
                defined.push(d);
            }
            if let OpKind::Load { addr, .. } | OpKind::Store { addr, .. } = op.kind {
                if addr.array.0 as usize >= self.arrays.len() {
                    return Err(format!("array {} not declared", addr.array));
                }
            }
        }
        for (op, _) in self.all_ops() {
            for u in op.uses() {
                if !defined.contains(&u) {
                    return Err(format!("register {u} used but never defined nor live-in"));
                }
            }
        }
        Ok(())
    }

    /// Name of an array.
    pub fn array_name(&self, id: ArrayId) -> &str {
        self.arrays
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Allocate a fresh general-purpose register (used by schedulers when
    /// renaming).
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.n_regs);
        self.n_regs += 1;
        r
    }

    /// Allocate a fresh condition register.
    pub fn fresh_cc(&mut self) -> CcReg {
        let c = CcReg(self.n_ccs);
        self.n_ccs += 1;
        c
    }
}

/// Incremental builder for [`LoopSpec`]s.
///
/// ```
/// use psp_ir::{LoopBuilder, op::build};
/// use psp_ir::op::CmpOp;
///
/// // for (k = 0; k < n; k++) if (x[k] < x[m]) m = k;   (paper §1.1)
/// let mut b = LoopBuilder::new("vecmin");
/// let x = b.array("x");
/// let one = b.named_reg("one");
/// let n = b.named_reg("n");
/// let k = b.named_reg("k");
/// let m = b.named_reg("m");
/// let xk = b.named_reg("xk");
/// let xm = b.named_reg("xm");
/// let cc0 = b.cc();
/// let cc1 = b.cc();
/// b.op(build::load(xk, x, k));
/// b.op(build::load(xm, x, m));
/// b.op(build::cmp(CmpOp::Lt, cc0, xk, xm));
/// b.if_else(cc0, |b| { b.op(build::copy(m, k)); }, |_| {});
/// b.op(build::add(k, k, one));
/// b.op(build::cmp(CmpOp::Ge, cc1, k, n));
/// b.break_(cc1);
/// let spec = b.finish([one, n, k, m], [m]);
/// assert_eq!(spec.n_ifs, 1);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct LoopBuilder {
    name: String,
    stack: Vec<Vec<Item>>,
    /// Open `begin_if` frames: `(if_id, cc, then_items once begin_else ran)`.
    pending_ifs: Vec<(u32, CcReg, Option<Vec<Item>>)>,
    arrays: Vec<String>,
    n_regs: u32,
    n_ccs: u32,
    n_ifs: u32,
    reg_names: BTreeMap<u32, String>,
}

impl LoopBuilder {
    /// Start building a loop named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            stack: vec![Vec::new()],
            pending_ifs: Vec::new(),
            arrays: Vec::new(),
            n_regs: 0,
            n_ccs: 0,
            n_ifs: 0,
            reg_names: BTreeMap::new(),
        }
    }

    /// Declare an array.
    pub fn array(&mut self, name: impl Into<String>) -> ArrayId {
        self.arrays.push(name.into());
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Allocate a register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.n_regs);
        self.n_regs += 1;
        r
    }

    /// Allocate a register with a debug name.
    pub fn named_reg(&mut self, name: impl Into<String>) -> Reg {
        let r = self.reg();
        self.reg_names.insert(r.0, name.into());
        r
    }

    /// Allocate a condition register.
    pub fn cc(&mut self) -> CcReg {
        let c = CcReg(self.n_ccs);
        self.n_ccs += 1;
        c
    }

    /// Append a straight-line operation.
    pub fn op(&mut self, op: Operation) -> &mut Self {
        assert!(
            !op.is_if() && !op.is_break(),
            "use if_else / break_ for control operations"
        );
        self.top().push(Item::Op(op));
        self
    }

    /// Append an `if (cc) {then} else {else}` region; the closures populate
    /// the two branches.
    pub fn if_else(
        &mut self,
        cc: CcReg,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let if_id = self.n_ifs;
        self.n_ifs += 1;
        self.stack.push(Vec::new());
        then_f(self);
        let then_items = self.stack.pop().expect("builder stack underflow");
        self.stack.push(Vec::new());
        else_f(self);
        let else_items = self.stack.pop().expect("builder stack underflow");
        self.top().push(Item::If(IfItem {
            if_id,
            cc,
            then_items,
            else_items,
        }));
        self
    }

    /// Append a `BREAK cc` exit test.
    pub fn break_(&mut self, cc: CcReg) -> &mut Self {
        self.top().push(Item::Break(BreakItem { cc }));
        self
    }

    /// Open an `if (cc)` region imperatively (alternative to
    /// [`LoopBuilder::if_else`] when closures are inconvenient, e.g. in
    /// recursive lowering). Statements now append to the *then* branch;
    /// call [`LoopBuilder::begin_else`] to switch branches and
    /// [`LoopBuilder::end_if`] to close the region.
    pub fn begin_if(&mut self, cc: CcReg) -> &mut Self {
        let if_id = self.n_ifs;
        self.n_ifs += 1;
        self.pending_ifs.push((if_id, cc, None));
        self.stack.push(Vec::new());
        self
    }

    /// Switch the open `begin_if` region to its else branch.
    pub fn begin_else(&mut self) -> &mut Self {
        let frame = self
            .pending_ifs
            .last_mut()
            .expect("begin_else without begin_if");
        assert!(frame.2.is_none(), "begin_else called twice");
        let then_items = self.stack.pop().expect("builder stack underflow");
        frame.2 = Some(then_items);
        self.stack.push(Vec::new());
        self
    }

    /// Close the innermost `begin_if` region.
    pub fn end_if(&mut self) -> &mut Self {
        let (if_id, cc, then_opt) = self.pending_ifs.pop().expect("end_if without begin_if");
        let last = self.stack.pop().expect("builder stack underflow");
        let (then_items, else_items) = match then_opt {
            Some(then_items) => (then_items, last),
            None => (last, Vec::new()),
        };
        self.top().push(Item::If(IfItem {
            if_id,
            cc,
            then_items,
            else_items,
        }));
        self
    }

    /// Finish the loop.
    pub fn finish(
        mut self,
        live_in: impl IntoIterator<Item = impl Into<RegRef>>,
        live_out: impl IntoIterator<Item = impl Into<RegRef>>,
    ) -> LoopSpec {
        assert!(self.pending_ifs.is_empty(), "unclosed begin_if region");
        assert_eq!(self.stack.len(), 1, "unbalanced if_else nesting");
        LoopSpec {
            name: self.name,
            items: self.stack.pop().unwrap(),
            live_in: live_in.into_iter().map(Into::into).collect(),
            live_out: live_out.into_iter().map(Into::into).collect(),
            arrays: self.arrays,
            n_regs: self.n_regs,
            n_ccs: self.n_ccs,
            n_ifs: self.n_ifs,
            reg_names: self.reg_names,
        }
    }

    fn top(&mut self) -> &mut Vec<Item> {
        self.stack.last_mut().expect("builder stack underflow")
    }
}

impl fmt::Display for LoopSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(items: &[Item], indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for item in items {
                match item {
                    Item::Op(op) => writeln!(f, "{:indent$}{op}", "", indent = indent)?,
                    Item::If(i) => {
                        writeln!(
                            f,
                            "{:indent$}IF {} (p{})",
                            "",
                            i.cc,
                            i.if_id,
                            indent = indent
                        )?;
                        walk(&i.then_items, indent + 2, f)?;
                        if !i.else_items.is_empty() {
                            writeln!(f, "{:indent$}ELSE", "", indent = indent)?;
                            walk(&i.else_items, indent + 2, f)?;
                        }
                        writeln!(f, "{:indent$}ENDIF", "", indent = indent)?;
                    }
                    Item::Break(b) => writeln!(f, "{:indent$}BREAK {}", "", b.cc, indent = indent)?,
                }
            }
            Ok(())
        }
        writeln!(f, "loop {} {{", self.name)?;
        walk(&self.items, 2, f)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::build::*;
    use crate::op::CmpOp;

    fn vecmin() -> LoopSpec {
        let mut b = LoopBuilder::new("vecmin");
        let x = b.array("x");
        let one = b.named_reg("one");
        let n = b.named_reg("n");
        let k = b.named_reg("k");
        let m = b.named_reg("m");
        let xk = b.reg();
        let xm = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(load(xm, x, m));
        b.op(cmp(CmpOp::Lt, cc0, xk, xm));
        b.if_else(
            cc0,
            |b| {
                b.op(copy(m, k));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        b.finish([one, n, k, m], [m])
    }

    #[test]
    fn vecmin_structure() {
        let spec = vecmin();
        assert_eq!(spec.n_ifs, 1);
        assert_eq!(spec.op_count(), 8);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.arrays, vec!["x".to_string()]);
    }

    #[test]
    fn all_ops_depth() {
        let spec = vecmin();
        let ops = spec.all_ops();
        // COPY sits at depth 1 inside the IF.
        let copy_depth = ops
            .iter()
            .find(|(op, _)| matches!(op.kind, OpKind::Copy { .. }))
            .map(|&(_, d)| d);
        assert_eq!(copy_depth, Some(1));
        // IF itself at depth 0.
        let if_depth = ops.iter().find(|(op, _)| op.is_if()).map(|&(_, d)| d);
        assert_eq!(if_depth, Some(0));
    }

    #[test]
    fn validate_rejects_undeclared_array() {
        let mut b = LoopBuilder::new("bad");
        let k = b.reg();
        let d = b.reg();
        b.op(load(d, ArrayId(7), k));
        let cc = b.cc();
        b.break_(cc);
        let mut spec = b.finish([k], [d]);
        spec.live_in.push(RegRef::Cc(CcReg(0)));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_undefined_use() {
        let mut b = LoopBuilder::new("bad2");
        let cc = b.cc();
        b.break_(cc); // cc never defined, not live-in
        let spec = b.finish(Vec::<Reg>::new(), Vec::<Reg>::new());
        assert!(spec.validate().is_err());
    }

    #[test]
    fn nested_if_ids_are_dense() {
        let mut b = LoopBuilder::new("nested");
        let cc0 = b.cc();
        let cc1 = b.cc();
        let r = b.reg();
        let one = b.named_reg("one");
        b.op(cmp(CmpOp::Lt, cc0, r, 0i64));
        b.if_else(
            cc0,
            |b| {
                b.op(cmp(CmpOp::Lt, cc1, r, 10i64));
                b.if_else(
                    cc1,
                    |b| {
                        b.op(add(r, r, one));
                    },
                    |_| {},
                );
            },
            |b| {
                b.op(sub(r, r, one));
            },
        );
        let ccb = b.cc();
        b.op(cmp(CmpOp::Ge, ccb, r, 100i64));
        b.break_(ccb);
        let spec = b.finish([r, one], [r]);
        assert_eq!(spec.n_ifs, 2);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn fresh_registers_extend_counts() {
        let mut spec = vecmin();
        let r = spec.fresh_reg();
        assert_eq!(r.0, 6);
        assert_eq!(spec.n_regs, 7);
        let c = spec.fresh_cc();
        assert_eq!(c.0, 2);
    }

    #[test]
    fn display_is_structured() {
        let s = vecmin().to_string();
        assert!(s.contains("loop vecmin {"));
        assert!(s.contains("IF CC0 (p0)"));
        assert!(s.contains("BREAK CC1"));
        assert!(s.contains("ENDIF"));
    }
}
