//! Operations: ALU, moves, compares, memory, and the control operations
//! `IF` and `BREAK`.

use crate::operand::{Address, Operand};
use crate::reg::{CcReg, Reg, RegRef};

/// Binary ALU opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (by the low 6 bits of the second operand).
    Shl,
    /// Arithmetic right shift.
    Shr,
}

impl AluOp {
    /// Evaluate the opcode on concrete values (wrapping arithmetic).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Sub => "SUB",
            AluOp::Mul => "MULT",
            AluOp::Min => "MIN",
            AluOp::Max => "MAX",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::Shl => "SHL",
            AluOp::Shr => "SHR",
        }
    }
}

/// Compare opcodes (write a condition register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `a < b`.
    Lt,
    /// `a <= b`.
    Le,
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
}

impl CmpOp {
    /// Evaluate the comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
        }
    }
}

/// Resource class an operation occupies in one tree-VLIW cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResClass {
    /// ALU / move / compare slot.
    Alu,
    /// Memory port.
    Mem,
    /// Branch (IF / BREAK) slot of the tree instruction.
    Branch,
}

/// Execution guard: run the operation only when `cc == on_true`.
///
/// Guards express the tree structure of a VLIW instruction (an operation on
/// one subtree of an IF resolved in the same cycle) and, for the
/// if-conversion baseline, ordinary predication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Tested condition register.
    pub cc: CcReg,
    /// Required value.
    pub on_true: bool,
}

impl Guard {
    /// Guard requiring `cc` to be true.
    pub fn when(cc: CcReg) -> Self {
        Self { cc, on_true: true }
    }

    /// Guard requiring `cc` to be false.
    pub fn unless(cc: CcReg) -> Self {
        Self { cc, on_true: false }
    }
}

/// The operation payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `dst = op(a, b)`.
    Alu {
        /// Opcode.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = cc ? on_true : on_false` (conditional move; used by the
    /// if-conversion baseline).
    Select {
        /// Destination register.
        dst: Reg,
        /// Selecting condition.
        cc: CcReg,
        /// Value when the condition is true.
        on_true: Operand,
        /// Value when the condition is false.
        on_false: Operand,
    },
    /// `dst = (a op b)` into a condition register.
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination condition register.
        dst: CcReg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// `dst = mem[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Source address.
        addr: Address,
    },
    /// `mem[addr] = src`.
    Store {
        /// Stored operand.
        src: Operand,
        /// Target address.
        addr: Address,
    },
    /// Condition combine: `dst = (a == a_val) && (b == b_val)`.
    ///
    /// Used by if-conversion (the local-scheduling and EMS baselines) to
    /// materialize compound predicates for operations nested under several
    /// IFs; the PSP technique itself never needs it (nesting lives in the
    /// predicate matrices).
    CcAnd {
        /// Destination condition register.
        dst: CcReg,
        /// First source condition.
        a: CcReg,
        /// Required value of `a`.
        a_val: bool,
        /// Second source condition.
        b: CcReg,
        /// Required value of `b`.
        b_val: bool,
    },
    /// Two-way branch *inside* the loop body, testing `cc`.
    If {
        /// Tested condition register.
        cc: CcReg,
    },
    /// Loop-exit test: leaves the loop when `cc` is true.
    Break {
        /// Tested condition register.
        cc: CcReg,
    },
}

/// An operation: payload plus optional guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operation {
    /// What the operation does.
    pub kind: OpKind,
    /// Optional execution guard (tree-VLIW subtree / predication).
    pub guard: Option<Guard>,
}

impl Operation {
    /// Unguarded operation.
    pub fn new(kind: OpKind) -> Self {
        Self { kind, guard: None }
    }

    /// Guarded operation.
    pub fn guarded(kind: OpKind, guard: Guard) -> Self {
        Self {
            kind,
            guard: Some(guard),
        }
    }

    /// Registers written.
    pub fn defs(&self) -> Vec<RegRef> {
        match self.kind {
            OpKind::Alu { dst, .. }
            | OpKind::Copy { dst, .. }
            | OpKind::Select { dst, .. }
            | OpKind::Load { dst, .. } => vec![RegRef::Gpr(dst)],
            OpKind::Cmp { dst, .. } | OpKind::CcAnd { dst, .. } => vec![RegRef::Cc(dst)],
            OpKind::Store { .. } | OpKind::If { .. } | OpKind::Break { .. } => vec![],
        }
    }

    /// Registers read (including the guard's condition register).
    pub fn uses(&self) -> Vec<RegRef> {
        let mut out = Vec::with_capacity(4);
        let push_operand = |o: Operand, out: &mut Vec<RegRef>| {
            if let Some(r) = o.reg() {
                out.push(RegRef::Gpr(r));
            }
        };
        match self.kind {
            OpKind::Alu { a, b, .. } | OpKind::Cmp { a, b, .. } => {
                push_operand(a, &mut out);
                push_operand(b, &mut out);
            }
            OpKind::Copy { src, .. } => push_operand(src, &mut out),
            OpKind::Select {
                cc,
                on_true,
                on_false,
                ..
            } => {
                out.push(RegRef::Cc(cc));
                push_operand(on_true, &mut out);
                push_operand(on_false, &mut out);
            }
            OpKind::Load { addr, .. } => {
                if let Some(r) = addr.index {
                    out.push(RegRef::Gpr(r));
                }
            }
            OpKind::Store { src, addr } => {
                push_operand(src, &mut out);
                if let Some(r) = addr.index {
                    out.push(RegRef::Gpr(r));
                }
            }
            OpKind::CcAnd { a, b, .. } => {
                out.push(RegRef::Cc(a));
                out.push(RegRef::Cc(b));
            }
            OpKind::If { cc } | OpKind::Break { cc } => out.push(RegRef::Cc(cc)),
        }
        if let Some(g) = self.guard {
            out.push(RegRef::Cc(g.cc));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resource class occupied in a tree-VLIW cycle.
    pub fn res_class(&self) -> ResClass {
        match self.kind {
            OpKind::Load { .. } | OpKind::Store { .. } => ResClass::Mem,
            OpKind::If { .. } | OpKind::Break { .. } => ResClass::Branch,
            _ => ResClass::Alu,
        }
    }

    /// Whether this is an `IF` operation.
    pub fn is_if(&self) -> bool {
        matches!(self.kind, OpKind::If { .. })
    }

    /// Whether this is a `BREAK` operation.
    pub fn is_break(&self) -> bool {
        matches!(self.kind, OpKind::Break { .. })
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self.kind, OpKind::Store { .. })
    }

    /// Whether the operation may be executed speculatively (before the IF
    /// computing one of its controlling predicates).
    ///
    /// Stores and `BREAK`s have irreversible side effects; IFs are never
    /// speculative in this framework (paper §2).
    pub fn is_speculable(&self) -> bool {
        !matches!(
            self.kind,
            OpKind::Store { .. } | OpKind::If { .. } | OpKind::Break { .. }
        )
    }

    /// Rename every occurrence of GPR `from` (in defs and uses) to `to`.
    pub fn renamed_gpr(&self, from: Reg, to: Reg) -> Self {
        let kind = match self.kind {
            OpKind::Alu { op, dst, a, b } => OpKind::Alu {
                op,
                dst: if dst == from { to } else { dst },
                a: a.rename(from, to),
                b: b.rename(from, to),
            },
            OpKind::Copy { dst, src } => OpKind::Copy {
                dst: if dst == from { to } else { dst },
                src: src.rename(from, to),
            },
            OpKind::Select {
                dst,
                cc,
                on_true,
                on_false,
            } => OpKind::Select {
                dst: if dst == from { to } else { dst },
                cc,
                on_true: on_true.rename(from, to),
                on_false: on_false.rename(from, to),
            },
            OpKind::Cmp { op, dst, a, b } => OpKind::Cmp {
                op,
                dst,
                a: a.rename(from, to),
                b: b.rename(from, to),
            },
            OpKind::Load { dst, addr } => OpKind::Load {
                dst: if dst == from { to } else { dst },
                addr: addr.rename(from, to),
            },
            OpKind::Store { src, addr } => OpKind::Store {
                src: src.rename(from, to),
                addr: addr.rename(from, to),
            },
            k @ (OpKind::If { .. } | OpKind::Break { .. } | OpKind::CcAnd { .. }) => k,
        };
        Self {
            kind,
            guard: self.guard,
        }
    }

    /// Rename every occurrence of CC register `from` to `to`.
    pub fn renamed_cc(&self, from: CcReg, to: CcReg) -> Self {
        let sub = |c: CcReg| if c == from { to } else { c };
        let kind = match self.kind {
            OpKind::Cmp { op, dst, a, b } => OpKind::Cmp {
                op,
                dst: sub(dst),
                a,
                b,
            },
            OpKind::Select {
                dst,
                cc,
                on_true,
                on_false,
            } => OpKind::Select {
                dst,
                cc: sub(cc),
                on_true,
                on_false,
            },
            OpKind::CcAnd {
                dst,
                a,
                a_val,
                b,
                b_val,
            } => OpKind::CcAnd {
                dst: sub(dst),
                a: sub(a),
                a_val,
                b: sub(b),
                b_val,
            },
            OpKind::If { cc } => OpKind::If { cc: sub(cc) },
            OpKind::Break { cc } => OpKind::Break { cc: sub(cc) },
            k => k,
        };
        let guard = self.guard.map(|g| Guard {
            cc: sub(g.cc),
            on_true: g.on_true,
        });
        Self { kind, guard }
    }

    /// Rename GPR `from` to `to` in *uses only* (sources and address
    /// indices), leaving the destination untouched — the substitution step
    /// of copy-propagation combining.
    pub fn with_uses_renamed(&self, from: Reg, to: Reg) -> Self {
        let dst_of = |k: &OpKind| -> Option<Reg> {
            match *k {
                OpKind::Alu { dst, .. }
                | OpKind::Copy { dst, .. }
                | OpKind::Select { dst, .. }
                | OpKind::Load { dst, .. } => Some(dst),
                _ => None,
            }
        };
        let old_dst = dst_of(&self.kind);
        let mut renamed = self.renamed_gpr(from, to);
        // Restore the destination if the blanket rename touched it.
        if let (Some(d), Some(nd)) = (old_dst, dst_of(&renamed.kind)) {
            if d != nd {
                renamed = renamed.with_dst_gpr(d);
            }
        }
        renamed
    }

    /// Replace the destination GPR only (for renaming-at-definition).
    pub fn with_dst_gpr(&self, to: Reg) -> Self {
        let kind = match self.kind {
            OpKind::Alu { op, a, b, .. } => OpKind::Alu { op, dst: to, a, b },
            OpKind::Copy { src, .. } => OpKind::Copy { dst: to, src },
            OpKind::Select {
                cc,
                on_true,
                on_false,
                ..
            } => OpKind::Select {
                dst: to,
                cc,
                on_true,
                on_false,
            },
            OpKind::Load { addr, .. } => OpKind::Load { dst: to, addr },
            k => k,
        };
        Self {
            kind,
            guard: self.guard,
        }
    }
}

impl From<OpKind> for Operation {
    fn from(kind: OpKind) -> Self {
        Operation::new(kind)
    }
}

/// Convenience constructors mirroring the paper's assembly.
pub mod build {
    use super::*;
    use crate::reg::ArrayId;

    /// `ADD dst, a, b`.
    pub fn add(dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Alu {
            op: AluOp::Add,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `SUB dst, a, b`.
    pub fn sub(dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Alu {
            op: AluOp::Sub,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Generic binary ALU operation.
    pub fn alu(op: AluOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `COPY dst, src`.
    pub fn copy(dst: Reg, src: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Copy {
            dst,
            src: src.into(),
        })
    }

    /// `SELECT dst, cc, on_true, on_false`.
    pub fn select(
        dst: Reg,
        cc: CcReg,
        on_true: impl Into<Operand>,
        on_false: impl Into<Operand>,
    ) -> Operation {
        Operation::new(OpKind::Select {
            dst,
            cc,
            on_true: on_true.into(),
            on_false: on_false.into(),
        })
    }

    /// `CCAND dst, (a == a_val) && (b == b_val)`.
    pub fn cc_and(dst: CcReg, a: CcReg, a_val: bool, b: CcReg, b_val: bool) -> Operation {
        Operation::new(OpKind::CcAnd {
            dst,
            a,
            a_val,
            b,
            b_val,
        })
    }

    /// `cmp dst, a, b` for an arbitrary comparison.
    pub fn cmp(op: CmpOp, dst: CcReg, a: impl Into<Operand>, b: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Cmp {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `LT dst, a, b`.
    pub fn lt(dst: CcReg, a: impl Into<Operand>, b: impl Into<Operand>) -> Operation {
        cmp(CmpOp::Lt, dst, a, b)
    }

    /// `GE dst, a, b`.
    pub fn ge(dst: CcReg, a: impl Into<Operand>, b: impl Into<Operand>) -> Operation {
        cmp(CmpOp::Ge, dst, a, b)
    }

    /// `LOAD dst, array[index]`.
    pub fn load(dst: Reg, array: ArrayId, index: Reg) -> Operation {
        Operation::new(OpKind::Load {
            dst,
            addr: Address::indexed(array, index),
        })
    }

    /// `LOAD dst, addr` for an arbitrary address.
    pub fn load_addr(dst: Reg, addr: Address) -> Operation {
        Operation::new(OpKind::Load { dst, addr })
    }

    /// `STORE array[index], src`.
    pub fn store(array: ArrayId, index: Reg, src: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Store {
            src: src.into(),
            addr: Address::indexed(array, index),
        })
    }

    /// `STORE addr, src` for an arbitrary address.
    pub fn store_addr(addr: Address, src: impl Into<Operand>) -> Operation {
        Operation::new(OpKind::Store {
            src: src.into(),
            addr,
        })
    }

    /// `IF cc`.
    pub fn if_(cc: CcReg) -> Operation {
        Operation::new(OpKind::If { cc })
    }

    /// `BREAK cc`.
    pub fn break_(cc: CcReg) -> Operation {
        Operation::new(OpKind::Break { cc })
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::reg::ArrayId;

    #[test]
    fn alu_eval() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(4, -3), -12);
        assert_eq!(AluOp::Min.eval(4, -3), -3);
        assert_eq!(AluOp::Max.eval(4, -3), 4);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-16, 2), -4);
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(CmpOp::Ne.eval(5, 6));
    }

    #[test]
    fn defs_and_uses() {
        let x = ArrayId(0);
        let op = add(Reg(2), Reg(2), Reg(0));
        assert_eq!(op.defs(), vec![RegRef::Gpr(Reg(2))]);
        assert_eq!(op.uses(), vec![RegRef::Gpr(Reg(0)), RegRef::Gpr(Reg(2))]);

        let c = lt(CcReg(0), Reg(4), Reg(5));
        assert_eq!(c.defs(), vec![RegRef::Cc(CcReg(0))]);
        assert_eq!(c.uses(), vec![RegRef::Gpr(Reg(4)), RegRef::Gpr(Reg(5))]);

        let ld = load(Reg(4), x, Reg(2));
        assert_eq!(ld.defs(), vec![RegRef::Gpr(Reg(4))]);
        assert_eq!(ld.uses(), vec![RegRef::Gpr(Reg(2))]);

        let st = store(x, Reg(2), Reg(4));
        assert!(st.defs().is_empty());
        assert_eq!(st.uses(), vec![RegRef::Gpr(Reg(2)), RegRef::Gpr(Reg(4))]);

        let br = break_(CcReg(1));
        assert!(br.defs().is_empty());
        assert_eq!(br.uses(), vec![RegRef::Cc(CcReg(1))]);

        let sel = select(Reg(3), CcReg(0), Reg(2), Reg(3));
        assert_eq!(sel.defs(), vec![RegRef::Gpr(Reg(3))]);
        assert_eq!(
            sel.uses(),
            vec![
                RegRef::Gpr(Reg(2)),
                RegRef::Gpr(Reg(3)),
                RegRef::Cc(CcReg(0))
            ]
        );
    }

    #[test]
    fn guard_adds_cc_use() {
        let g = Operation {
            guard: Some(Guard::when(CcReg(0))),
            ..copy(Reg(3), Reg(2))
        };
        assert!(g.uses().contains(&RegRef::Cc(CcReg(0))));
    }

    #[test]
    fn resource_classes() {
        assert_eq!(add(Reg(0), Reg(1), Reg(2)).res_class(), ResClass::Alu);
        assert_eq!(copy(Reg(0), Reg(1)).res_class(), ResClass::Alu);
        assert_eq!(lt(CcReg(0), Reg(0), Reg(1)).res_class(), ResClass::Alu);
        assert_eq!(load(Reg(0), ArrayId(0), Reg(1)).res_class(), ResClass::Mem);
        assert_eq!(store(ArrayId(0), Reg(1), Reg(0)).res_class(), ResClass::Mem);
        assert_eq!(if_(CcReg(0)).res_class(), ResClass::Branch);
        assert_eq!(break_(CcReg(0)).res_class(), ResClass::Branch);
    }

    #[test]
    fn speculability() {
        assert!(add(Reg(0), Reg(1), Reg(2)).is_speculable());
        assert!(load(Reg(0), ArrayId(0), Reg(1)).is_speculable());
        assert!(!store(ArrayId(0), Reg(1), Reg(0)).is_speculable());
        assert!(!if_(CcReg(0)).is_speculable());
        assert!(!break_(CcReg(0)).is_speculable());
    }

    #[test]
    fn rename_gpr_everywhere() {
        let op = add(Reg(2), Reg(2), Reg(0)).renamed_gpr(Reg(2), Reg(9));
        assert_eq!(op, add(Reg(9), Reg(9), Reg(0)));
        let ld = load(Reg(4), ArrayId(0), Reg(2)).renamed_gpr(Reg(2), Reg(9));
        assert_eq!(ld, load(Reg(4), ArrayId(0), Reg(9)));
    }

    #[test]
    fn rename_cc_everywhere() {
        let op = if_(CcReg(0)).renamed_cc(CcReg(0), CcReg(5));
        assert_eq!(op, if_(CcReg(5)));
        let c = lt(CcReg(0), Reg(1), Reg(2)).renamed_cc(CcReg(0), CcReg(5));
        assert_eq!(c, lt(CcReg(5), Reg(1), Reg(2)));
        let g = Operation {
            guard: Some(Guard::when(CcReg(0))),
            ..copy(Reg(3), Reg(2))
        }
        .renamed_cc(CcReg(0), CcReg(5));
        assert_eq!(g.guard, Some(Guard::when(CcReg(5))));
    }

    #[test]
    fn with_uses_renamed_keeps_destination() {
        // ADD m, m, 1 substituting m→k in uses only.
        let op = add(Reg(2), Reg(2), 1i64).with_uses_renamed(Reg(2), Reg(9));
        assert_eq!(op, add(Reg(2), Reg(9), 1i64));
        // Load address index substitutes; destination register stays.
        let ld = load(Reg(2), ArrayId(0), Reg(2)).with_uses_renamed(Reg(2), Reg(9));
        assert_eq!(ld, load(Reg(2), ArrayId(0), Reg(9)));
        // Plain use-only op.
        let st = store(ArrayId(0), Reg(1), Reg(2)).with_uses_renamed(Reg(2), Reg(9));
        assert_eq!(st, store(ArrayId(0), Reg(1), Reg(9)));
    }

    #[test]
    fn with_dst_gpr_changes_only_destination() {
        let op = add(Reg(2), Reg(2), Reg(0)).with_dst_gpr(Reg(9));
        assert_eq!(op, add(Reg(9), Reg(2), Reg(0)));
        let ld = load(Reg(4), ArrayId(0), Reg(2)).with_dst_gpr(Reg(8));
        assert_eq!(ld, load(Reg(8), ArrayId(0), Reg(2)));
        // No GPR destination: unchanged.
        let br = break_(CcReg(1)).with_dst_gpr(Reg(8));
        assert_eq!(br, break_(CcReg(1)));
    }
}
