//! Lowering a structured loop body to the PSP scheduler's starting point:
//! a linear list of operations, each annotated with its *initial predicate
//! matrix* (control dependence expressed as column-0 constraints).
//!
//! This reproduces the paper's "initial assignment" (§2): every operation
//! outside any conditional gets the all-`b` matrix; an operation nested in
//! the True branch of IF *i* gets element `(i, 0) = 1`, in the False branch
//! `= 0`, composing across nesting levels.

use crate::op::{build, Operation};
use crate::spec::{Item, LoopSpec};
use psp_predicate::{PredElem, PredicateMatrix};

/// One flattened operation: the operation plus its initial (formal)
/// predicate matrix and its source position in flattening order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatOp {
    /// The operation.
    pub op: Operation,
    /// Initial predicate matrix — control dependence at column 0.
    pub ctrl: PredicateMatrix,
    /// Position in the flattened order (sequential-source order, True
    /// branch before False branch).
    pub pos: usize,
    /// The IF id this operation *computes* (only for IF operations): the
    /// predicate-matrix row whose outcome the operation produces.
    pub computes_if: Option<u32>,
}

/// Flatten a structured loop body.
///
/// IF operations appear in the list at the point of their test, carrying
/// the *enclosing* matrix, and record which predicate row they compute.
/// Their branch contents follow (True branch first), each with the branch
/// constraint added at column 0.
pub fn flatten(spec: &LoopSpec) -> Vec<FlatOp> {
    fn walk(items: &[Item], ctrl: &PredicateMatrix, out: &mut Vec<FlatOp>) {
        for item in items {
            match item {
                Item::Op(op) => {
                    let pos = out.len();
                    out.push(FlatOp {
                        op: *op,
                        ctrl: ctrl.clone(),
                        pos,
                        computes_if: None,
                    });
                }
                Item::If(i) => {
                    let pos = out.len();
                    out.push(FlatOp {
                        op: build::if_(i.cc),
                        ctrl: ctrl.clone(),
                        pos,
                        computes_if: Some(i.if_id),
                    });
                    let then_ctrl = ctrl.with(i.if_id, 0, PredElem::True);
                    walk(&i.then_items, &then_ctrl, out);
                    let else_ctrl = ctrl.with(i.if_id, 0, PredElem::False);
                    walk(&i.else_items, &else_ctrl, out);
                }
                Item::Break(b) => {
                    let pos = out.len();
                    out.push(FlatOp {
                        op: build::break_(b.cc),
                        ctrl: ctrl.clone(),
                        pos,
                        computes_if: None,
                    });
                }
            }
        }
    }
    let mut out = Vec::with_capacity(spec.op_count());
    walk(&spec.items, &PredicateMatrix::universe(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::build::*;
    use crate::op::{CmpOp, OpKind};
    use crate::reg::{CcReg, Reg};
    use crate::spec::LoopBuilder;

    fn vecmin() -> LoopSpec {
        let mut b = LoopBuilder::new("vecmin");
        let x = b.array("x");
        let one = b.reg();
        let n = b.reg();
        let k = b.reg();
        let m = b.reg();
        let xk = b.reg();
        let xm = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(load(xm, x, m));
        b.op(cmp(CmpOp::Lt, cc0, xk, xm));
        b.if_else(
            cc0,
            |b| {
                b.op(copy(m, k));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        b.finish([one, n, k, m], [m])
    }

    #[test]
    fn paper_initial_assignment() {
        // Paper §2: all operations carry [b] except COPY which carries [1].
        let flat = flatten(&vecmin());
        assert_eq!(flat.len(), 8);
        for f in &flat {
            if matches!(f.op.kind, OpKind::Copy { .. }) {
                assert_eq!(f.ctrl, PredicateMatrix::single(0, 0, true));
            } else {
                assert!(f.ctrl.is_universe(), "{:?} should be [b]", f.op);
            }
        }
    }

    #[test]
    fn if_records_computed_row_and_keeps_enclosing_matrix() {
        let flat = flatten(&vecmin());
        let if_op = flat.iter().find(|f| f.op.is_if()).unwrap();
        assert_eq!(if_op.computes_if, Some(0));
        assert!(if_op.ctrl.is_universe());
        let break_op = flat.iter().find(|f| f.op.is_break()).unwrap();
        assert_eq!(break_op.computes_if, None);
    }

    #[test]
    fn positions_are_sequential() {
        let flat = flatten(&vecmin());
        for (i, f) in flat.iter().enumerate() {
            assert_eq!(f.pos, i);
        }
    }

    #[test]
    fn nested_branches_compose_constraints() {
        let mut b = LoopBuilder::new("nested");
        let r = b.reg();
        let one = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        let ccb = b.cc();
        b.op(cmp(CmpOp::Lt, cc0, r, 0i64));
        b.if_else(
            cc0,
            |b| {
                b.op(cmp(CmpOp::Lt, cc1, r, 10i64));
                b.if_else(
                    cc1,
                    |b| {
                        b.op(add(r, r, one));
                    },
                    |b| {
                        b.op(sub(r, r, one));
                    },
                );
            },
            |_| {},
        );
        b.op(cmp(CmpOp::Ge, ccb, r, 100i64));
        b.break_(ccb);
        let spec = b.finish([r, one], [r]);
        let flat = flatten(&spec);
        let add_op = flat
            .iter()
            .find(|f| {
                matches!(
                    f.op.kind,
                    OpKind::Alu {
                        op: crate::op::AluOp::Add,
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(
            add_op.ctrl,
            PredicateMatrix::from_entries([(0, 0, true), (1, 0, true)])
        );
        let sub_op = flat
            .iter()
            .find(|f| {
                matches!(
                    f.op.kind,
                    OpKind::Alu {
                        op: crate::op::AluOp::Sub,
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(
            sub_op.ctrl,
            PredicateMatrix::from_entries([(0, 0, true), (1, 0, false)])
        );
        // Inner IF carries only the outer constraint.
        let inner_if = flat.iter().find(|f| f.computes_if == Some(1)).unwrap();
        assert_eq!(inner_if.ctrl, PredicateMatrix::single(0, 0, true));
        // Operations on opposite arms are disjoined.
        assert!(add_op.ctrl.is_disjoint(&sub_op.ctrl));
    }

    #[test]
    fn then_branch_precedes_else_branch() {
        let mut b = LoopBuilder::new("order");
        let r = b.reg();
        let s = b.reg();
        let cc = b.cc();
        let ccb = b.cc();
        b.op(cmp(CmpOp::Lt, cc, r, 0i64));
        b.if_else(
            cc,
            |b| {
                b.op(copy(r, 1i64));
            },
            |b| {
                b.op(copy(s, 2i64));
            },
        );
        b.op(cmp(CmpOp::Ge, ccb, r, 100i64));
        b.break_(ccb);
        let spec = b.finish([r, s], [r, s]);
        let flat = flatten(&spec);
        let pos_true = flat
            .iter()
            .position(|f| matches!(f.op.kind, OpKind::Copy { dst: Reg(0), .. }))
            .unwrap();
        let pos_false = flat
            .iter()
            .position(|f| matches!(f.op.kind, OpKind::Copy { dst: Reg(1), .. }))
            .unwrap();
        assert!(pos_true < pos_false);
        let _ = CcReg(0);
    }
}
