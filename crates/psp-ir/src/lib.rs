//! Register-level IR for loops with conditional branches, modeled on the
//! IBM tree-VLIW architecture assumed by Milicev & Jovanovic (IPPS 1998)
//! and the Ebcioglu/Moon line of work it builds on.
//!
//! The IR distinguishes:
//!
//! * general-purpose registers ([`Reg`]) and condition-code registers
//!   ([`CcReg`]) — compare operations write a `CC`, and the control
//!   operations `IF` and `BREAK` test one;
//! * ALU operations, `COPY`, `SELECT` (conditional move, used by the
//!   if-conversion baseline), compares, `LOAD`/`STORE` against named arrays,
//!   and the two control operations. `IF` chooses one of two paths *inside*
//!   the loop body; `BREAK` has one branch that *exits* the loop (the
//!   paper's §1.1 distinction);
//! * an optional per-operation [`Guard`] — tree-VLIW semantics let an
//!   operation execute in the *same cycle* as the IF computing its guard,
//!   on the matching subtree.
//!
//! A source loop is a [`LoopSpec`]: a structured body (straight-line
//! operations, nested `if`/`else` regions, and `break` exit tests) plus
//! live-in/live-out information and array declarations. [`flatten()`](flatten::flatten) lowers
//! the structured body to a linear list of operations annotated with their
//! *initial predicate matrices* (control dependence expressed as column-0
//! constraints), the starting point of the PSP scheduler.

pub mod analysis;
pub mod flatten;
pub mod op;
pub mod operand;
pub mod print;
pub mod reg;
pub mod spec;

pub use analysis::{mem_access, AccessKind, MemAccess};
pub use flatten::{flatten, FlatOp};
pub use op::{AluOp, CmpOp, Guard, OpKind, Operation, ResClass};
pub use operand::{Address, Operand};
pub use reg::{ArrayId, CcReg, Reg, RegRef};
pub use spec::{BreakItem, IfItem, Item, LoopBuilder, LoopSpec};
