//! Operands and memory addresses.

use crate::reg::{ArrayId, Reg};
use std::fmt;

/// A source operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register source.
    Reg(Reg),
    /// Immediate constant.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    #[inline]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate, if this operand is one.
    #[inline]
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }

    /// Substitute register `from` by `to`.
    #[inline]
    pub fn rename(self, from: Reg, to: Reg) -> Self {
        match self {
            Operand::Reg(r) if r == from => Operand::Reg(to),
            other => other,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// A memory address `array[index + disp]`.
///
/// `index = None` denotes a constant (scalar) slot `array[disp]`. The
/// displacement field is what *combining* folds induction-variable updates
/// into when an access moves across the loop boundary: `x[k]` in the next
/// iteration, seen after `k = k + 1` has already executed, is `x[k']` for
/// the updated `k'` — and conversely, moving a load above the update rewrites
/// it to `x[k + 1]` with `disp = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// The accessed array.
    pub array: ArrayId,
    /// Index register, if the access is indexed.
    pub index: Option<Reg>,
    /// Constant displacement added to the index.
    pub disp: i64,
}

impl Address {
    /// Indexed access `array[index]`.
    pub fn indexed(array: ArrayId, index: Reg) -> Self {
        Self {
            array,
            index: Some(index),
            disp: 0,
        }
    }

    /// Constant access `array[disp]`.
    pub fn constant(array: ArrayId, disp: i64) -> Self {
        Self {
            array,
            index: None,
            disp,
        }
    }

    /// The address with its displacement shifted by `delta`.
    pub fn displaced(self, delta: i64) -> Self {
        Self {
            disp: self.disp + delta,
            ..self
        }
    }

    /// Substitute the index register.
    pub fn rename(self, from: Reg, to: Reg) -> Self {
        Self {
            index: self.index.map(|r| if r == from { to } else { r }),
            ..self
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.index, self.disp) {
            (Some(r), 0) => write!(f, "{}[{}]", self.array, r),
            (Some(r), d) if d > 0 => write!(f, "{}[{}+{}]", self.array, r, d),
            (Some(r), d) => write!(f, "{}[{}{}]", self.array, r, d),
            (None, d) => write!(f, "{}[{}]", self.array, d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Reg(Reg(2)).reg(), Some(Reg(2)));
        assert_eq!(Operand::Reg(Reg(2)).imm(), None);
        assert_eq!(Operand::Imm(5).imm(), Some(5));
        assert_eq!(Operand::Imm(5).reg(), None);
    }

    #[test]
    fn operand_rename() {
        let o = Operand::Reg(Reg(1));
        assert_eq!(o.rename(Reg(1), Reg(9)), Operand::Reg(Reg(9)));
        assert_eq!(o.rename(Reg(2), Reg(9)), o);
        assert_eq!(Operand::Imm(3).rename(Reg(1), Reg(9)), Operand::Imm(3));
    }

    #[test]
    fn address_display() {
        let a = ArrayId(0);
        assert_eq!(Address::indexed(a, Reg(2)).to_string(), "a0[R2]");
        assert_eq!(
            Address::indexed(a, Reg(2)).displaced(1).to_string(),
            "a0[R2+1]"
        );
        assert_eq!(
            Address::indexed(a, Reg(2)).displaced(-2).to_string(),
            "a0[R2-2]"
        );
        assert_eq!(Address::constant(a, 7).to_string(), "a0[7]");
    }

    #[test]
    fn address_displace_accumulates() {
        let a = Address::indexed(ArrayId(0), Reg(0))
            .displaced(2)
            .displaced(-5);
        assert_eq!(a.disp, -3);
    }

    #[test]
    fn address_rename_only_index() {
        let a = Address::indexed(ArrayId(0), Reg(1)).rename(Reg(1), Reg(4));
        assert_eq!(a.index, Some(Reg(4)));
        let c = Address::constant(ArrayId(0), 3).rename(Reg(1), Reg(4));
        assert_eq!(c.index, None);
    }
}
