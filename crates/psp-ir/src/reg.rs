//! Register and storage identifiers.

use std::fmt;

/// A general-purpose (integer) register, `R0`, `R1`, …
///
/// The register file is unbounded: the scheduler introduces fresh registers
/// freely when renaming, as in Moon & Ebcioglu's global scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// A condition-code register, `CC0`, `CC1`, … — written by compares, tested
/// by `IF`, `BREAK`, `SELECT`, and guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CcReg(pub u32);

/// A named memory array (the paper's `#x` address constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Either kind of register — the unit of def/use analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegRef {
    /// General-purpose register.
    Gpr(Reg),
    /// Condition-code register.
    Cc(CcReg),
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for CcReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CC{}", self.0)
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Gpr(r) => r.fmt(f),
            RegRef::Cc(c) => c.fmt(f),
        }
    }
}

impl From<Reg> for RegRef {
    fn from(r: Reg) -> Self {
        RegRef::Gpr(r)
    }
}

impl From<CcReg> for RegRef {
    fn from(c: CcReg) -> Self {
        RegRef::Cc(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Reg(3).to_string(), "R3");
        assert_eq!(CcReg(0).to_string(), "CC0");
        assert_eq!(ArrayId(2).to_string(), "a2");
        assert_eq!(RegRef::Gpr(Reg(1)).to_string(), "R1");
        assert_eq!(RegRef::Cc(CcReg(7)).to_string(), "CC7");
    }

    #[test]
    fn regref_distinguishes_kinds() {
        assert_ne!(RegRef::from(Reg(0)), RegRef::from(CcReg(0)));
    }
}
