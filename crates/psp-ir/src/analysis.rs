//! Memory-access extraction and alias analysis.
//!
//! Dependence testing between register operations is handled by
//! [`Operation::defs`]/[`Operation::uses`]; this module covers memory. The
//! scheduler works at *instance* level (operation + iteration index), so the
//! alias test takes the relative iteration distance into account for affine
//! `array[index_reg + disp]` accesses where the index register is a
//! unit-stride induction variable.

use crate::op::{OpKind, Operation};
use crate::operand::Address;
use crate::reg::{ArrayId, Reg};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Memory read (LOAD).
    Read,
    /// Memory write (STORE).
    Write,
}

/// A memory access performed by an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Accessed array.
    pub array: ArrayId,
    /// Read or write.
    pub kind: AccessKind,
    /// The address expression.
    pub addr: Address,
}

impl MemAccess {
    /// Whether both accesses can touch the same location, given the
    /// relative iteration distance `iter_delta` between their instances and
    /// the set of unit-stride induction registers (`ind` returns the stride
    /// of a register per iteration, or `None` when unknown).
    ///
    /// Conservative: returns `true` unless independence can be proven.
    pub fn may_alias(
        &self,
        other: &MemAccess,
        iter_delta: i64,
        stride_of: impl Fn(Reg) -> Option<i64>,
    ) -> bool {
        if self.array != other.array {
            return false;
        }
        match (self.addr.index, other.addr.index) {
            (None, None) => self.addr.disp == other.addr.disp,
            (Some(a), Some(b)) if a == b => {
                // Same index register. If it is a known induction variable,
                // instance `self` at iteration i accesses index
                // `v + stride*i + disp_a`, `other` at iteration i+delta
                // accesses `v + stride*(i+delta) + disp_b`.
                match stride_of(a) {
                    Some(s) => self.addr.disp == other.addr.disp + s * iter_delta,
                    None => true,
                }
            }
            // Different index registers or mixed constant/indexed: unknown.
            _ => true,
        }
    }

    /// Whether at least one of the two accesses writes.
    pub fn interferes(&self, other: &MemAccess) -> bool {
        matches!(self.kind, AccessKind::Write) || matches!(other.kind, AccessKind::Write)
    }
}

/// The memory access performed by `op`, if any.
pub fn mem_access(op: &Operation) -> Option<MemAccess> {
    match op.kind {
        OpKind::Load { addr, .. } => Some(MemAccess {
            array: addr.array,
            kind: AccessKind::Read,
            addr,
        }),
        OpKind::Store { addr, .. } => Some(MemAccess {
            array: addr.array,
            kind: AccessKind::Write,
            addr,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::build::*;

    const X: ArrayId = ArrayId(0);
    const Y: ArrayId = ArrayId(1);
    const K: Reg = Reg(0);
    const J: Reg = Reg(1);

    fn unit(r: Reg) -> Option<i64> {
        (r == K).then_some(1)
    }

    #[test]
    fn extraction() {
        assert_eq!(mem_access(&add(Reg(2), Reg(2), Reg(3))), None);
        let l = mem_access(&load(Reg(2), X, K)).unwrap();
        assert_eq!(l.kind, AccessKind::Read);
        assert_eq!(l.array, X);
        let s = mem_access(&store(Y, K, Reg(2))).unwrap();
        assert_eq!(s.kind, AccessKind::Write);
    }

    #[test]
    fn different_arrays_never_alias() {
        let a = mem_access(&load(Reg(2), X, K)).unwrap();
        let b = mem_access(&store(Y, K, Reg(2))).unwrap();
        assert!(!a.may_alias(&b, 0, unit));
    }

    #[test]
    fn same_index_same_iteration_aliases() {
        let a = mem_access(&load(Reg(2), X, K)).unwrap();
        let b = mem_access(&store(X, K, Reg(3))).unwrap();
        assert!(a.may_alias(&b, 0, unit));
    }

    #[test]
    fn unit_stride_disambiguates_across_iterations() {
        // x[k] in iteration i vs x[k] in iteration i+1: k has advanced, so
        // the addresses differ (0 != 0 + 1*1).
        let a = mem_access(&load(Reg(2), X, K)).unwrap();
        let b = mem_access(&store(X, K, Reg(3))).unwrap();
        assert!(!a.may_alias(&b, 1, unit));
        // But x[k+1] of this iteration vs x[k] of the next DO overlap.
        let c = mem_access(&load_addr(Reg(2), Address::indexed(X, K).displaced(1))).unwrap();
        assert!(c.may_alias(&b, 1, unit));
    }

    #[test]
    fn unknown_stride_is_conservative() {
        let a = mem_access(&load(Reg(2), X, J)).unwrap();
        let b = mem_access(&store(X, J, Reg(3))).unwrap();
        assert!(a.may_alias(&b, 1, unit)); // J has unknown stride
    }

    #[test]
    fn mixed_index_kinds_are_conservative() {
        let a = mem_access(&load_addr(Reg(2), Address::constant(X, 0))).unwrap();
        let b = mem_access(&store(X, K, Reg(3))).unwrap();
        assert!(a.may_alias(&b, 0, unit));
    }

    #[test]
    fn constant_slots_compare_displacements() {
        let a = mem_access(&load_addr(Reg(2), Address::constant(X, 0))).unwrap();
        let b = mem_access(&store_addr(Address::constant(X, 1), Reg(3))).unwrap();
        assert!(!a.may_alias(&b, 0, unit));
        let c = mem_access(&store_addr(Address::constant(X, 0), Reg(3))).unwrap();
        assert!(a.may_alias(&c, 5, unit));
    }

    #[test]
    fn interference_requires_a_write() {
        let a = mem_access(&load(Reg(2), X, K)).unwrap();
        let b = mem_access(&load(Reg(3), X, K)).unwrap();
        assert!(!a.interferes(&b)); // read-read never interferes
        let w = mem_access(&store(X, K, Reg(3))).unwrap();
        assert!(a.interferes(&w));
        assert!(w.interferes(&a));
    }
}
