//! Assembly-style pretty printing, mirroring the paper's notation
//! (`LT (CC0, (R4,R5))`, `COPY (R3, (R2))`, …), simplified to a flat
//! three-address syntax.

use crate::flatten::FlatOp;
use crate::op::{OpKind, Operation};
use std::fmt;

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "({}={})? ", g.cc, if g.on_true { 1 } else { 0 })?;
        }
        match self.kind {
            OpKind::Alu { op, dst, a, b } => write!(f, "{} {dst}, {a}, {b}", op.mnemonic()),
            OpKind::Copy { dst, src } => write!(f, "COPY {dst}, {src}"),
            OpKind::Select {
                dst,
                cc,
                on_true,
                on_false,
            } => write!(f, "SELECT {dst}, {cc}, {on_true}, {on_false}"),
            OpKind::Cmp { op, dst, a, b } => write!(f, "{} {dst}, {a}, {b}", op.mnemonic()),
            OpKind::Load { dst, addr } => write!(f, "LOAD {dst}, {addr}"),
            OpKind::Store { src, addr } => write!(f, "STORE {addr}, {src}"),
            OpKind::CcAnd {
                dst,
                a,
                a_val,
                b,
                b_val,
            } => write!(f, "CCAND {dst}, {a}={}, {b}={}", a_val as u8, b_val as u8),
            OpKind::If { cc } => write!(f, "IF {cc}"),
            OpKind::Break { cc } => write!(f, "BREAK {cc}"),
        }
    }
}

impl fmt::Display for FlatOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, self.ctrl)
    }
}

#[cfg(test)]
mod tests {
    use crate::op::build::*;
    use crate::op::{CmpOp, Guard, Operation};
    use crate::reg::{ArrayId, CcReg, Reg};

    #[test]
    fn operation_rendering() {
        assert_eq!(add(Reg(2), Reg(2), Reg(0)).to_string(), "ADD R2, R2, R0");
        assert_eq!(
            cmp(CmpOp::Lt, CcReg(0), Reg(4), Reg(5)).to_string(),
            "LT CC0, R4, R5"
        );
        assert_eq!(copy(Reg(3), Reg(2)).to_string(), "COPY R3, R2");
        assert_eq!(
            load(Reg(4), ArrayId(0), Reg(2)).to_string(),
            "LOAD R4, a0[R2]"
        );
        assert_eq!(
            store(ArrayId(0), Reg(2), Reg(4)).to_string(),
            "STORE a0[R2], R4"
        );
        assert_eq!(if_(CcReg(0)).to_string(), "IF CC0");
        assert_eq!(break_(CcReg(1)).to_string(), "BREAK CC1");
        assert_eq!(add(Reg(0), Reg(1), 5i64).to_string(), "ADD R0, R1, #5");
    }

    #[test]
    fn guarded_rendering() {
        let g = Operation {
            guard: Some(Guard::when(CcReg(0))),
            ..copy(Reg(3), Reg(2))
        };
        assert_eq!(g.to_string(), "(CC0=1)? COPY R3, R2");
        let g = Operation {
            guard: Some(Guard::unless(CcReg(2))),
            ..copy(Reg(3), Reg(2))
        };
        assert_eq!(g.to_string(), "(CC2=0)? COPY R3, R2");
    }
}
