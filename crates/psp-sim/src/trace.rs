//! Cycle-by-cycle execution tracing.
//!
//! [`trace_vliw`] runs a compiled loop exactly like
//! [`crate::run_vliw`] while recording, for every machine cycle, which
//! operations issued, which were squashed by their guards, and where
//! control went. Indispensable when staring at a miscompiled pipeline.

use crate::state::{MachineState, SimError};
use crate::vliw_run::VliwRun;
use psp_ir::Operation;
use psp_machine::{BlockId, VliwLoop, VliwTerm};
use std::fmt;

/// Which part of the loop a cycle belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Startup (preloop) cycle.
    Prologue,
    /// Steady-state body cycle, with its block.
    Body(BlockId),
    /// Wind-down cycle.
    Epilogue,
}

/// One traced cycle.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global cycle number (prologue + body + epilogue).
    pub time: u64,
    /// Phase / block.
    pub phase: Phase,
    /// Cycle index within the block (or prologue/epilogue).
    pub cycle: usize,
    /// Operations with their execution status (`false` = guard squashed).
    pub ops: Vec<(Operation, bool)>,
    /// Whether a `BREAK` fired at the end of this cycle.
    pub broke: bool,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            Phase::Prologue => write!(f, "t{:<4} pre  C{:<2}", self.time, self.cycle)?,
            Phase::Body(b) => write!(f, "t{:<4} B{b:<3} C{:<2}", self.time, self.cycle)?,
            Phase::Epilogue => write!(f, "t{:<4} epi  C{:<2}", self.time, self.cycle)?,
        }
        for (op, executed) in &self.ops {
            if *executed {
                write!(f, "  {op};")?;
            } else {
                write!(f, "  ~~{op}~~;")?;
            }
        }
        if self.broke {
            write!(f, "  → EXIT")?;
        }
        Ok(())
    }
}

/// Execute with tracing; also returns the normal run result. `max_events`
/// bounds the recorded trace (execution continues untraced past it).
pub fn trace_vliw(
    prog: &VliwLoop,
    mut state: MachineState,
    max_cycles: u64,
    max_events: usize,
) -> Result<(VliwRun, Vec<TraceEvent>), SimError> {
    let mut events = Vec::new();
    let mut body_cycles: u64 = 0;
    let mut total_cycles: u64 = 0;
    let mut iterations: u64 = 1;

    let record = |events: &mut Vec<TraceEvent>,
                  state: &MachineState,
                  phase: Phase,
                  cycle: usize,
                  ops: &[Operation],
                  time: u64|
     -> Result<bool, SimError> {
        // Evaluate squash status against pre-cycle state for the trace.
        let mut statuses = Vec::with_capacity(ops.len());
        for op in ops {
            let executed = match op.guard {
                Some(g) => state.cc(g.cc)? == g.on_true,
                None => true,
            };
            statuses.push((*op, executed));
        }
        let mut st2 = state.clone();
        let (broke, _) = st2.step_cycle(ops)?;
        if events.len() < max_events {
            events.push(TraceEvent {
                time,
                phase,
                cycle,
                ops: statuses,
                broke,
            });
        }
        Ok(broke)
    };

    for (i, cycle) in prog.prologue.iter().enumerate() {
        record(&mut events, &state, Phase::Prologue, i, cycle, total_cycles)?;
        total_cycles += 1;
        let (broke, _) = state.step_cycle(cycle)?;
        if broke {
            return finish(prog, state, 0, total_cycles, 0, events);
        }
    }

    let mut block = prog
        .blocks
        .get(prog.entry)
        .ok_or_else(|| SimError::Malformed(format!("entry block {} missing", prog.entry)))?;
    // See `run_vliw`: all dispatch levels of one branching cycle test the
    // pre-cycle condition registers.
    let mut branch_ccs: Option<Vec<bool>> = None;
    loop {
        let mut broke = false;
        for (i, cycle) in block.cycles.iter().enumerate() {
            if body_cycles >= max_cycles {
                return Err(SimError::CycleBudgetExceeded(max_cycles));
            }
            if i + 1 == block.cycles.len() {
                branch_ccs = Some(state.ccs.clone());
            }
            record(
                &mut events,
                &state,
                Phase::Body(block.id),
                i,
                cycle,
                total_cycles,
            )?;
            body_cycles += 1;
            total_cycles += 1;
            let (b, _) = state.step_cycle(cycle)?;
            if b {
                broke = true;
                break;
            }
        }
        if broke {
            return finish(prog, state, body_cycles, total_cycles, iterations, events);
        }
        let succ = match block.term {
            VliwTerm::Jump(s) => s,
            VliwTerm::Branch {
                cc,
                on_true,
                on_false,
            } => {
                let v = match &branch_ccs {
                    Some(snap) => *snap
                        .get(cc.0 as usize)
                        .ok_or_else(|| SimError::BadRegister(format!("{cc}")))?,
                    None => state.cc(cc)?,
                };
                if v {
                    on_true
                } else {
                    on_false
                }
            }
            VliwTerm::Exit => {
                return finish(prog, state, body_cycles, total_cycles, iterations, events)
            }
        };
        if succ.back_edge {
            iterations += 1;
        }
        block = prog
            .blocks
            .get(succ.block)
            .ok_or_else(|| SimError::Malformed(format!("block {} missing", succ.block)))?;
        if !block.cycles.is_empty() {
            branch_ccs = None;
        }
    }
}

fn finish(
    prog: &VliwLoop,
    mut state: MachineState,
    body_cycles: u64,
    mut total_cycles: u64,
    iterations: u64,
    events: Vec<TraceEvent>,
) -> Result<(VliwRun, Vec<TraceEvent>), SimError> {
    for cycle in &prog.epilogue {
        total_cycles += 1;
        state.step_cycle(cycle)?;
    }
    Ok((
        VliwRun {
            state,
            body_cycles,
            total_cycles,
            iterations,
        },
        events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vliw_run::run_vliw;
    use psp_ir::op::build::*;
    use psp_ir::{CcReg, Guard, Operation, Reg};
    use psp_machine::{Succ, VliwBlock};
    use psp_predicate::PredicateMatrix;

    fn counting_loop() -> VliwLoop {
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![
                vec![
                    add(Reg(0), Reg(0), 1i64),
                    Operation {
                        guard: Some(Guard::when(CcReg(0))),
                        ..copy(Reg(1), Reg(0))
                    },
                ],
                vec![ge(CcReg(0), Reg(0), Reg(2)), break_(CcReg(1))],
                vec![ge(CcReg(1), Reg(0), Reg(3))],
            ],
            term: VliwTerm::Jump(Succ::back(0)),
        };
        VliwLoop {
            name: "count".into(),
            prologue: vec![vec![copy(Reg(0), 0i64)]],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        }
    }

    #[test]
    fn trace_matches_untraced_run() {
        let prog = counting_loop();
        let mut st = MachineState::new(4, 2);
        st.regs[2] = 3;
        st.regs[3] = 5;
        let plain = run_vliw(&prog, st.clone(), 10_000).unwrap();
        let (traced, events) = trace_vliw(&prog, st, 10_000, usize::MAX).unwrap();
        assert_eq!(plain.state, traced.state);
        assert_eq!(plain.body_cycles, traced.body_cycles);
        assert_eq!(plain.total_cycles, traced.total_cycles);
        assert_eq!(events.len() as u64, traced.total_cycles);
        // First event is the prologue.
        assert_eq!(events[0].phase, Phase::Prologue);
        // The guarded copy is squashed until CC0 becomes true.
        let squashed = events
            .iter()
            .filter(|e| e.ops.iter().any(|(o, ex)| o.guard.is_some() && !ex))
            .count();
        assert!(squashed >= 1);
        // Exactly one event carries the exit.
        assert_eq!(events.iter().filter(|e| e.broke).count(), 1);
    }

    #[test]
    fn event_display_marks_squashes_and_exit() {
        let prog = counting_loop();
        let mut st = MachineState::new(4, 2);
        st.regs[2] = 1;
        st.regs[3] = 1;
        let (_, events) = trace_vliw(&prog, st, 10_000, usize::MAX).unwrap();
        let text: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        assert!(text.iter().any(|l| l.contains("~~")), "squash markers");
        assert!(text.iter().any(|l| l.contains("→ EXIT")));
        assert!(text[0].contains("pre"));
    }

    #[test]
    fn max_events_truncates_recording_not_execution() {
        let prog = counting_loop();
        let mut st = MachineState::new(4, 2);
        st.regs[2] = 50;
        st.regs[3] = 80;
        let (run, events) = trace_vliw(&prog, st, 100_000, 5).unwrap();
        assert_eq!(events.len(), 5);
        assert!(run.total_cycles > 5);
    }
}
