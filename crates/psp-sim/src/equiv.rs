//! Semantic equivalence checking between a source loop and compiled code.
//!
//! The transformed loop may freely clobber registers that are not live-out
//! (renaming introduces many), so only live-out registers and the full
//! array memory are compared.
//!
//! Two engines can drive the check:
//!
//! * **decoded** (default) — the pre-decoded engine of [`crate::decode`]:
//!   programs are lowered once, trials run over reusable scratch state, and
//!   [`check_equivalence_batch`] shards a whole trial set across threads;
//! * **interpreter** — the original `step_cycle`/`run_items` interpreters,
//!   the trusted reference. `PSP_SIM_ENGINE=interpreter` forces it
//!   everywhere; the psp-verify validators and repro replay always use it.
//!
//! Both produce bit-identical observables (enforced by the differential
//! suites), so which engine ran is a performance detail, not a semantic
//! one.

use crate::decode::{DecodedRef, DecodedVliw, Scratch};
use crate::reference::{run_reference, RefRun};
use crate::state::{MachineState, SimError};
use crate::stats;
use crate::vliw_run::{run_vliw, VliwRun};
use psp_ir::{LoopSpec, RegRef};
use psp_machine::VliwLoop;
use rayon::prelude::*;
use std::fmt;

/// Mismatch found by [`check_equivalence`].
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceError {
    /// The simulation itself failed.
    Sim(SimError),
    /// A live-out register differs.
    Register {
        /// Which register.
        reg: RegRef,
        /// Reference value.
        expected: i64,
        /// Compiled-code value.
        actual: i64,
    },
    /// Array contents differ.
    Array {
        /// Array index.
        array: usize,
        /// First differing element.
        element: usize,
        /// Reference value.
        expected: i64,
        /// Compiled-code value.
        actual: i64,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::Sim(e) => write!(f, "simulation failed: {e}"),
            EquivalenceError::Register {
                reg,
                expected,
                actual,
            } => write!(f, "live-out {reg}: expected {expected}, got {actual}"),
            EquivalenceError::Array {
                array,
                element,
                expected,
                actual,
            } => write!(
                f,
                "array a{array}[{element}]: expected {expected}, got {actual}"
            ),
        }
    }
}

impl From<SimError> for EquivalenceError {
    fn from(e: SimError) -> Self {
        EquivalenceError::Sim(e)
    }
}

/// Which execution engine drives a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The pre-decoded engine ([`crate::decode`]); the default.
    Decoded,
    /// The original `step_cycle` interpreters; the trusted reference.
    Interpreter,
}

impl EngineKind {
    /// The engine selected by the `PSP_SIM_ENGINE` environment variable
    /// (`interpreter`/`interp` forces the reference; anything else, or
    /// unset, selects the decoded engine).
    pub fn from_env() -> Self {
        match std::env::var("PSP_SIM_ENGINE").as_deref() {
            Ok("interpreter") | Ok("interp") => EngineKind::Interpreter,
            _ => EngineKind::Decoded,
        }
    }

    /// Display label (matches [`crate::stats::SimStats::engine`]).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Decoded => "decoded",
            EngineKind::Interpreter => "interpreter",
        }
    }
}

/// The canonical trial-length ladder: the smallest interesting trip counts
/// plus sizes that exercise several pipelined passes. Trial `i` uses
/// `TRIAL_LENS[i % 6]`.
pub const TRIAL_LENS: [usize; 6] = [1, 2, 7, 33, 64, 257];

/// Centralized equivalence-trial configuration, replacing per-call-site
/// hardcoded `(seed, len)` tables in the driver, baselines, fuzzer,
/// kernel-generator, and bench callers.
#[derive(Debug, Clone)]
pub struct EquivConfig {
    /// Number of random trials.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Per-trial cycle budget.
    pub max_cycles: u64,
    /// Execution engine.
    pub engine: EngineKind,
    /// Worker threads for [`check_equivalence_batch`] (1 = sequential;
    /// 0 = available parallelism).
    pub threads: usize,
    /// Trial-length ladder; trial `i` uses `lens[i % lens.len()]`.
    /// Defaults to [`TRIAL_LENS`].
    pub lens: Vec<usize>,
}

impl EquivConfig {
    /// A configuration honouring the environment: `PSP_EQUIV_TRIALS`
    /// overrides the trial count (CI can widen or narrow every caller at
    /// once) and `PSP_SIM_ENGINE` selects the engine.
    pub fn new(trials: usize, seed: u64) -> Self {
        let trials = std::env::var("PSP_EQUIV_TRIALS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(trials);
        Self {
            trials,
            ..Self::fixed(trials, seed)
        }
    }

    /// A configuration that ignores environment overrides (benchmarks need
    /// fixed trial counts to stay comparable).
    pub fn fixed(trials: usize, seed: u64) -> Self {
        Self {
            trials,
            seed,
            max_cycles: 10_000_000,
            engine: EngineKind::from_env(),
            threads: 1,
            lens: TRIAL_LENS.to_vec(),
        }
    }

    /// Replace the per-trial cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Force an engine regardless of `PSP_SIM_ENGINE`.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Set the worker-thread count for batched checks.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replace the trial-length ladder (benchmarks use longer,
    /// simulation-bound lengths; correctness suites keep the default
    /// ladder's tiny trip counts).
    pub fn with_lens(mut self, lens: &[usize]) -> Self {
        assert!(!lens.is_empty(), "trial-length ladder must be non-empty");
        self.lens = lens.to_vec();
        self
    }

    /// The `(seed, len)` pairs of the configured trials.
    pub fn trial_inputs(&self) -> Vec<(u64, usize)> {
        (0..self.trials)
            .map(|i| (self.seed + i as u64, self.lens[i % self.lens.len()]))
            .collect()
    }
}

/// Compact per-trial observables (cycle/iteration counts) from a batched
/// check; the full `RefRun`/`VliwRun` materialization is skipped on the
/// batch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivRun {
    /// Sequential reference cycles.
    pub ref_cycles: u64,
    /// Reference iterations.
    pub ref_iterations: u64,
    /// VLIW body cycles.
    pub body_cycles: u64,
    /// VLIW prologue + body + epilogue cycles.
    pub total_cycles: u64,
    /// VLIW iterations.
    pub vliw_iterations: u64,
}

/// Result of [`check_equivalence_batch`].
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-trial counters, in trial order.
    pub trials: Vec<EquivRun>,
    /// Engine that ran the batch.
    pub engine: EngineKind,
}

impl BatchRun {
    /// Total simulated cycles across all trials and both sides.
    pub fn total_cycles(&self) -> u64 {
        self.trials
            .iter()
            .map(|t| t.ref_cycles + t.total_cycles)
            .sum()
    }
}

/// A trial failure from [`check_equivalence_batch`], tagged with the trial
/// input that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// RNG seed of the failing trial.
    pub seed: u64,
    /// Input length of the failing trial.
    pub len: usize,
    /// The underlying mismatch.
    pub error: EquivalenceError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "len {} seed {}: {}", self.len, self.seed, self.error)
    }
}

impl std::error::Error for BatchError {}

/// Compare live-out registers and full array memory; shared by both
/// engines so the first-mismatch report is identical.
fn compare_observables(
    live_out: &[RegRef],
    golden: &MachineState,
    run: &MachineState,
) -> Result<(), EquivalenceError> {
    for &lo in live_out {
        let (expected, actual) = match lo {
            RegRef::Gpr(r) => (golden.regs[r.0 as usize], run.regs[r.0 as usize]),
            RegRef::Cc(c) => (
                golden.ccs[c.0 as usize] as i64,
                run.ccs[c.0 as usize] as i64,
            ),
        };
        if expected != actual {
            return Err(EquivalenceError::Register {
                reg: lo,
                expected,
                actual,
            });
        }
    }
    for (ai, (ga, ra)) in golden.arrays.iter().zip(run.arrays.iter()).enumerate() {
        for (ei, (g, r)) in ga.iter().zip(ra.iter()).enumerate() {
            if g != r {
                return Err(EquivalenceError::Array {
                    array: ai,
                    element: ei,
                    expected: *g,
                    actual: *r,
                });
            }
        }
    }
    Ok(())
}

/// A decoded spec/program pair plus reusable run state: decode once, check
/// any number of trial inputs with zero per-trial allocation.
#[derive(Debug, Clone)]
pub struct EquivEngine {
    dref: DecodedRef,
    dvliw: DecodedVliw,
    live_out: Vec<RegRef>,
    max_reg: u32,
    max_cc: u32,
    ref_state: MachineState,
    vliw_state: MachineState,
    scratch: Scratch,
}

impl EquivEngine {
    /// Decode `spec` and `prog` for repeated checking.
    pub fn new(spec: &LoopSpec, prog: &VliwLoop) -> Self {
        let (prog_regs, prog_ccs) = prog.register_demand();
        EquivEngine {
            dref: DecodedRef::decode(spec),
            dvliw: DecodedVliw::decode(prog),
            live_out: spec.live_out.clone(),
            max_reg: prog_regs.max(spec.n_regs),
            max_cc: prog_ccs.max(spec.n_ccs),
            ref_state: MachineState::new(0, 0),
            vliw_state: MachineState::new(0, 0),
            scratch: Scratch::default(),
        }
    }

    /// Check one trial input, returning compact counters (no
    /// `RefRun`/`VliwRun` materialization, no trace).
    pub fn check(
        &mut self,
        initial: &MachineState,
        max_cycles: u64,
    ) -> Result<EquivRun, EquivalenceError> {
        stats::count_trial();
        self.ref_state.copy_from(initial);
        let rc = self
            .dref
            .run(&mut self.ref_state, &mut self.scratch, max_cycles, None)?;
        self.vliw_state.copy_from(initial);
        self.vliw_state.grow(self.max_reg, self.max_cc);
        let vc = self
            .dvliw
            .run(&mut self.vliw_state, &mut self.scratch, max_cycles)?;
        compare_observables(&self.live_out, &self.ref_state, &self.vliw_state)?;
        Ok(EquivRun {
            ref_cycles: rc.cycles,
            ref_iterations: rc.iterations,
            body_cycles: vc.body_cycles,
            total_cycles: vc.total_cycles,
            vliw_iterations: vc.iterations,
        })
    }

    /// Check one trial input and materialize the full runs (including the
    /// reference IF-outcome trace), for API parity with
    /// [`check_equivalence`].
    pub fn check_full(
        &mut self,
        initial: &MachineState,
        max_cycles: u64,
    ) -> Result<(RefRun, VliwRun), EquivalenceError> {
        stats::count_trial();
        self.ref_state.copy_from(initial);
        let mut trace = Vec::new();
        let rc = self.dref.run(
            &mut self.ref_state,
            &mut self.scratch,
            max_cycles,
            Some(&mut trace),
        )?;
        self.vliw_state.copy_from(initial);
        self.vliw_state.grow(self.max_reg, self.max_cc);
        let vc = self
            .dvliw
            .run(&mut self.vliw_state, &mut self.scratch, max_cycles)?;
        compare_observables(&self.live_out, &self.ref_state, &self.vliw_state)?;
        Ok((
            RefRun {
                state: self.ref_state.clone(),
                iterations: rc.iterations,
                cycles: rc.cycles,
                trace,
            },
            VliwRun {
                state: self.vliw_state.clone(),
                body_cycles: vc.body_cycles,
                total_cycles: vc.total_cycles,
                iterations: vc.iterations,
            },
        ))
    }
}

/// Run `spec` (reference) and `prog` (compiled) from the same initial state
/// and compare observable results. Returns both runs on success so callers
/// can also compare cycle counts. Engine selection honours
/// `PSP_SIM_ENGINE`; use [`check_equivalence_with`] to pin one.
pub fn check_equivalence(
    spec: &LoopSpec,
    prog: &VliwLoop,
    initial: &MachineState,
    max_cycles: u64,
) -> Result<(RefRun, VliwRun), EquivalenceError> {
    check_equivalence_with(spec, prog, initial, max_cycles, EngineKind::from_env())
}

/// [`check_equivalence`] with an explicit engine.
pub fn check_equivalence_with(
    spec: &LoopSpec,
    prog: &VliwLoop,
    initial: &MachineState,
    max_cycles: u64,
    engine: EngineKind,
) -> Result<(RefRun, VliwRun), EquivalenceError> {
    match engine {
        EngineKind::Decoded => EquivEngine::new(spec, prog).check_full(initial, max_cycles),
        EngineKind::Interpreter => {
            stats::count_trial();
            let golden = run_reference(spec, initial.clone(), max_cycles)?;
            let mut start = initial.clone();
            // Compiled code may use renamed registers beyond the spec's
            // count.
            let (prog_regs, prog_ccs) = prog.register_demand();
            start.grow(prog_regs.max(spec.n_regs), prog_ccs.max(spec.n_ccs));
            let run = run_vliw(prog, start, max_cycles)?;
            compare_observables(&spec.live_out, &golden.state, &run.state)?;
            Ok((golden, run))
        }
    }
}

/// Check a whole trial set: decode once, run every `(seed, len)` input of
/// `cfg`, sharded across `cfg.threads` workers on the decoded engine.
/// `mk_init` builds the initial state for one trial; it may return an
/// owned `MachineState` or any `Borrow` of one (e.g. `&MachineState` from
/// a pre-built input table — both engines read the trial input without
/// consuming it, so a zero-copy provider skips one full state clone per
/// trial). The first failure (in trial order — shards are contiguous, so
/// the report is deterministic) is returned tagged with its trial input.
pub fn check_equivalence_batch<F, S>(
    spec: &LoopSpec,
    prog: &VliwLoop,
    cfg: &EquivConfig,
    mk_init: F,
) -> Result<BatchRun, BatchError>
where
    F: Fn(u64, usize) -> S + Sync,
    S: std::borrow::Borrow<MachineState>,
{
    let inputs = cfg.trial_inputs();
    stats::count_batch(inputs.len());
    let run_shard = |mut eng: EquivEngine, shard: &[(u64, usize)]| {
        let mut out = Vec::with_capacity(shard.len());
        for &(seed, len) in shard {
            let init = mk_init(seed, len);
            out.push(
                eng.check(init.borrow(), cfg.max_cycles)
                    .map_err(|error| BatchError { seed, len, error })?,
            );
        }
        Ok::<_, BatchError>(out)
    };
    let trials = match cfg.engine {
        EngineKind::Interpreter => {
            let mut trials = Vec::with_capacity(inputs.len());
            for &(seed, len) in &inputs {
                let init = mk_init(seed, len);
                let (g, r) =
                    check_equivalence_with(spec, prog, init.borrow(), cfg.max_cycles, cfg.engine)
                        .map_err(|error| BatchError { seed, len, error })?;
                trials.push(EquivRun {
                    ref_cycles: g.cycles,
                    ref_iterations: g.iterations,
                    body_cycles: r.body_cycles,
                    total_cycles: r.total_cycles,
                    vliw_iterations: r.iterations,
                });
            }
            trials
        }
        EngineKind::Decoded => {
            let threads = match cfg.threads {
                0 => rayon::current_num_threads(),
                n => n,
            };
            let eng = EquivEngine::new(spec, prog);
            if threads <= 1 || inputs.len() <= 1 {
                run_shard(eng, &inputs)?
            } else {
                let chunk = inputs.len().div_ceil(threads);
                let shards: Vec<Vec<(u64, usize)>> =
                    inputs.chunks(chunk).map(|c| c.to_vec()).collect();
                let results: Vec<Result<Vec<EquivRun>, BatchError>> = shards
                    .into_par_iter()
                    .with_threads(threads)
                    .map(|shard| run_shard(eng.clone(), &shard))
                    .collect();
                let mut trials = Vec::with_capacity(inputs.len());
                for r in results {
                    trials.extend(r?);
                }
                trials
            }
        }
    };
    Ok(BatchRun {
        trials,
        engine: cfg.engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp, Guard, LoopBuilder, Operation, Reg};
    use psp_machine::{Succ, VliwBlock, VliwTerm};
    use psp_predicate::PredicateMatrix;

    fn vecmin_spec() -> LoopSpec {
        let mut b = LoopBuilder::new("vecmin");
        let x = b.array("x");
        let one = b.reg();
        let n = b.reg();
        let k = b.reg();
        let m = b.reg();
        let xk = b.reg();
        let xm = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(load(xm, x, m));
        b.op(cmp(CmpOp::Lt, cc0, xk, xm));
        b.if_else(
            cc0,
            |b| {
                b.op(copy(m, k));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        b.finish([one, n, k, m], [m])
    }

    fn fig1b_prog() -> VliwLoop {
        let x = ArrayId(0);
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![
                vec![
                    load(Reg(4), x, Reg(2)),
                    load(Reg(5), x, Reg(3)),
                    add(Reg(6), Reg(2), Reg(0)),
                ],
                vec![
                    cmp(CmpOp::Lt, CcReg(0), Reg(4), Reg(5)),
                    cmp(CmpOp::Ge, CcReg(1), Reg(6), Reg(1)),
                ],
                vec![
                    if_(CcReg(0)),
                    Operation {
                        guard: Some(Guard::when(CcReg(0))),
                        ..copy(Reg(3), Reg(2))
                    },
                    break_(CcReg(1)),
                    copy(Reg(2), Reg(6)),
                ],
            ],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(0),
                on_false: Succ::back(0),
            },
        };
        VliwLoop {
            name: "fig1b".into(),
            prologue: vec![],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        }
    }

    fn initial(data: Vec<i64>) -> MachineState {
        let mut s = MachineState::new(8, 2);
        s.regs[0] = 1;
        s.regs[1] = data.len() as i64;
        s.push_array(data);
        s
    }

    fn random_data(seed: u64, len: usize) -> Vec<i64> {
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        (0..len)
            .map(|_| {
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                (x % 201) as i64 - 100
            })
            .collect()
    }

    #[test]
    fn fig1b_is_equivalent_and_faster() {
        let (gold, run) = check_equivalence(
            &vecmin_spec(),
            &fig1b_prog(),
            &initial(vec![5, 3, 8, 1, 9, 1, 4, 0, 2]),
            100_000,
        )
        .unwrap();
        assert_eq!(gold.state.regs[3], run.state.regs[3]);
        assert!(run.body_cycles < gold.cycles);
    }

    #[test]
    fn detects_wrong_result() {
        let mut bad = fig1b_prog();
        // Sabotage: invert the guard on the COPY.
        if let Some(op) = bad.blocks[0].cycles[2].get_mut(1) {
            op.guard = Some(Guard::unless(CcReg(0)));
        }
        let err = check_equivalence(&vecmin_spec(), &bad, &initial(vec![5, 3, 8, 1]), 100_000)
            .unwrap_err();
        assert!(matches!(err, EquivalenceError::Register { .. }));
    }

    #[test]
    fn detects_array_corruption() {
        let mut bad = fig1b_prog();
        bad.blocks[0].cycles[0].push(store(ArrayId(0), Reg(2), 99i64));
        let err = check_equivalence(&vecmin_spec(), &bad, &initial(vec![5, 3, 8, 1]), 100_000)
            .unwrap_err();
        assert!(matches!(err, EquivalenceError::Array { .. }));
    }

    #[test]
    fn grows_register_file_for_renamed_code() {
        // Compiled code uses R6 while the initial state only has 8 regs —
        // also exercise a program using a brand-new high register.
        let mut prog = fig1b_prog();
        prog.blocks[0].cycles[0].push(copy(Reg(31), 0i64));
        check_equivalence(&vecmin_spec(), &prog, &initial(vec![3, 1, 2]), 100_000).unwrap();
    }

    #[test]
    fn engines_agree_on_success_and_failure() {
        let spec = vecmin_spec();
        let good = fig1b_prog();
        let init = initial(vec![5, 3, 8, 1, 9, 1]);
        let (gd, rd) =
            check_equivalence_with(&spec, &good, &init, 100_000, EngineKind::Decoded).unwrap();
        let (gi, ri) =
            check_equivalence_with(&spec, &good, &init, 100_000, EngineKind::Interpreter).unwrap();
        assert_eq!(gd.state, gi.state);
        assert_eq!(gd.trace, gi.trace);
        assert_eq!(rd.state, ri.state);
        assert_eq!(
            (rd.body_cycles, rd.total_cycles, rd.iterations),
            (ri.body_cycles, ri.total_cycles, ri.iterations)
        );

        let mut bad = fig1b_prog();
        if let Some(op) = bad.blocks[0].cycles[2].get_mut(1) {
            op.guard = Some(Guard::unless(CcReg(0)));
        }
        let ed =
            check_equivalence_with(&spec, &bad, &init, 100_000, EngineKind::Decoded).unwrap_err();
        let ei = check_equivalence_with(&spec, &bad, &init, 100_000, EngineKind::Interpreter)
            .unwrap_err();
        assert_eq!(ed, ei);
    }

    #[test]
    fn batch_matches_per_trial_checks_on_both_engines() {
        let spec = vecmin_spec();
        let prog = fig1b_prog();
        let mk = |seed: u64, len: usize| initial(random_data(seed, len.max(1)));
        for engine in [EngineKind::Decoded, EngineKind::Interpreter] {
            let cfg = EquivConfig::fixed(8, 42).with_engine(engine);
            let batch = check_equivalence_batch(&spec, &prog, &cfg, mk).unwrap();
            assert_eq!(batch.trials.len(), 8);
            for (&(seed, len), trial) in cfg.trial_inputs().iter().zip(&batch.trials) {
                let (g, r) = check_equivalence_with(
                    &spec,
                    &prog,
                    &mk(seed, len),
                    cfg.max_cycles,
                    EngineKind::Interpreter,
                )
                .unwrap();
                assert_eq!(trial.ref_cycles, g.cycles);
                assert_eq!(trial.ref_iterations, g.iterations);
                assert_eq!(trial.body_cycles, r.body_cycles);
                assert_eq!(trial.total_cycles, r.total_cycles);
                assert_eq!(trial.vliw_iterations, r.iterations);
            }
        }
    }

    #[test]
    fn batch_sharding_is_deterministic() {
        let spec = vecmin_spec();
        let prog = fig1b_prog();
        let mk = |seed: u64, len: usize| initial(random_data(seed, len.max(1)));
        let seq = check_equivalence_batch(&spec, &prog, &EquivConfig::fixed(12, 7), mk).unwrap();
        for threads in [2, 3, 8] {
            let par = check_equivalence_batch(
                &spec,
                &prog,
                &EquivConfig::fixed(12, 7).with_threads(threads),
                mk,
            )
            .unwrap();
            assert_eq!(seq.trials, par.trials);
        }
    }

    #[test]
    fn batch_reports_first_failing_trial() {
        let spec = vecmin_spec();
        let mut bad = fig1b_prog();
        if let Some(op) = bad.blocks[0].cycles[2].get_mut(1) {
            op.guard = Some(Guard::unless(CcReg(0)));
        }
        let mk = |seed: u64, len: usize| initial(random_data(seed, len.max(1)));
        let cfg = EquivConfig::fixed(6, 100);
        let seq_err = check_equivalence_batch(&spec, &bad, &cfg, mk).unwrap_err();
        let par_err =
            check_equivalence_batch(&spec, &bad, &cfg.clone().with_threads(3), mk).unwrap_err();
        assert_eq!(seq_err, par_err);
        assert!(seq_err
            .to_string()
            .contains(&format!("seed {}", seq_err.seed)));
    }

    #[test]
    fn trial_inputs_follow_the_ladder() {
        let cfg = EquivConfig::fixed(8, 10);
        let inputs = cfg.trial_inputs();
        assert_eq!(inputs.len(), 8);
        assert_eq!(inputs[0], (10, 1));
        assert_eq!(inputs[1], (11, 2));
        assert_eq!(inputs[5], (15, 257));
        assert_eq!(inputs[6], (16, 1)); // ladder wraps
    }
}
