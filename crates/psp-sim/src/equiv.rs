//! Semantic equivalence checking between a source loop and compiled code.
//!
//! The transformed loop may freely clobber registers that are not live-out
//! (renaming introduces many), so only live-out registers and the full
//! array memory are compared.

use crate::reference::{run_reference, RefRun};
use crate::state::{MachineState, SimError};
use crate::vliw_run::{run_vliw, VliwRun};
use psp_ir::{LoopSpec, RegRef};
use psp_machine::VliwLoop;
use std::fmt;

/// Mismatch found by [`check_equivalence`].
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceError {
    /// The simulation itself failed.
    Sim(SimError),
    /// A live-out register differs.
    Register {
        /// Which register.
        reg: RegRef,
        /// Reference value.
        expected: i64,
        /// Compiled-code value.
        actual: i64,
    },
    /// Array contents differ.
    Array {
        /// Array index.
        array: usize,
        /// First differing element.
        element: usize,
        /// Reference value.
        expected: i64,
        /// Compiled-code value.
        actual: i64,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::Sim(e) => write!(f, "simulation failed: {e}"),
            EquivalenceError::Register {
                reg,
                expected,
                actual,
            } => write!(f, "live-out {reg}: expected {expected}, got {actual}"),
            EquivalenceError::Array {
                array,
                element,
                expected,
                actual,
            } => write!(
                f,
                "array a{array}[{element}]: expected {expected}, got {actual}"
            ),
        }
    }
}

impl From<SimError> for EquivalenceError {
    fn from(e: SimError) -> Self {
        EquivalenceError::Sim(e)
    }
}

/// Run `spec` (reference) and `prog` (compiled) from the same initial state
/// and compare observable results. Returns both runs on success so callers
/// can also compare cycle counts.
pub fn check_equivalence(
    spec: &LoopSpec,
    prog: &VliwLoop,
    initial: &MachineState,
    max_cycles: u64,
) -> Result<(RefRun, VliwRun), EquivalenceError> {
    let golden = run_reference(spec, initial.clone(), max_cycles)?;
    let mut start = initial.clone();
    // Compiled code may use renamed registers beyond the spec's count.
    let (prog_regs, prog_ccs) = prog.register_demand();
    let max_reg = prog_regs.max(spec.n_regs);
    let max_cc = prog_ccs.max(spec.n_ccs);
    start.grow(max_reg, max_cc);
    let run = run_vliw(prog, start, max_cycles)?;

    for &lo in &spec.live_out {
        let (expected, actual) = match lo {
            RegRef::Gpr(r) => (
                golden.state.regs[r.0 as usize],
                run.state.regs[r.0 as usize],
            ),
            RegRef::Cc(c) => (
                golden.state.ccs[c.0 as usize] as i64,
                run.state.ccs[c.0 as usize] as i64,
            ),
        };
        if expected != actual {
            return Err(EquivalenceError::Register {
                reg: lo,
                expected,
                actual,
            });
        }
    }
    for (ai, (ga, ra)) in golden
        .state
        .arrays
        .iter()
        .zip(run.state.arrays.iter())
        .enumerate()
    {
        for (ei, (g, r)) in ga.iter().zip(ra.iter()).enumerate() {
            if g != r {
                return Err(EquivalenceError::Array {
                    array: ai,
                    element: ei,
                    expected: *g,
                    actual: *r,
                });
            }
        }
    }
    Ok((golden, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp, Guard, LoopBuilder, Operation, Reg};
    use psp_machine::{Succ, VliwBlock, VliwTerm};
    use psp_predicate::PredicateMatrix;

    fn vecmin_spec() -> LoopSpec {
        let mut b = LoopBuilder::new("vecmin");
        let x = b.array("x");
        let one = b.reg();
        let n = b.reg();
        let k = b.reg();
        let m = b.reg();
        let xk = b.reg();
        let xm = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(load(xm, x, m));
        b.op(cmp(CmpOp::Lt, cc0, xk, xm));
        b.if_else(
            cc0,
            |b| {
                b.op(copy(m, k));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        b.finish([one, n, k, m], [m])
    }

    fn fig1b_prog() -> VliwLoop {
        let x = ArrayId(0);
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![
                vec![
                    load(Reg(4), x, Reg(2)),
                    load(Reg(5), x, Reg(3)),
                    add(Reg(6), Reg(2), Reg(0)),
                ],
                vec![
                    cmp(CmpOp::Lt, CcReg(0), Reg(4), Reg(5)),
                    cmp(CmpOp::Ge, CcReg(1), Reg(6), Reg(1)),
                ],
                vec![
                    if_(CcReg(0)),
                    Operation {
                        guard: Some(Guard::when(CcReg(0))),
                        ..copy(Reg(3), Reg(2))
                    },
                    break_(CcReg(1)),
                    copy(Reg(2), Reg(6)),
                ],
            ],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(0),
                on_false: Succ::back(0),
            },
        };
        VliwLoop {
            name: "fig1b".into(),
            prologue: vec![],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        }
    }

    fn initial(data: Vec<i64>) -> MachineState {
        let mut s = MachineState::new(8, 2);
        s.regs[0] = 1;
        s.regs[1] = data.len() as i64;
        s.push_array(data);
        s
    }

    #[test]
    fn fig1b_is_equivalent_and_faster() {
        let (gold, run) = check_equivalence(
            &vecmin_spec(),
            &fig1b_prog(),
            &initial(vec![5, 3, 8, 1, 9, 1, 4, 0, 2]),
            100_000,
        )
        .unwrap();
        assert_eq!(gold.state.regs[3], run.state.regs[3]);
        assert!(run.body_cycles < gold.cycles);
    }

    #[test]
    fn detects_wrong_result() {
        let mut bad = fig1b_prog();
        // Sabotage: invert the guard on the COPY.
        if let Some(op) = bad.blocks[0].cycles[2].get_mut(1) {
            op.guard = Some(Guard::unless(CcReg(0)));
        }
        let err = check_equivalence(&vecmin_spec(), &bad, &initial(vec![5, 3, 8, 1]), 100_000)
            .unwrap_err();
        assert!(matches!(err, EquivalenceError::Register { .. }));
    }

    #[test]
    fn detects_array_corruption() {
        let mut bad = fig1b_prog();
        bad.blocks[0].cycles[0].push(store(ArrayId(0), Reg(2), 99i64));
        let err = check_equivalence(&vecmin_spec(), &bad, &initial(vec![5, 3, 8, 1]), 100_000)
            .unwrap_err();
        assert!(matches!(err, EquivalenceError::Array { .. }));
    }

    #[test]
    fn grows_register_file_for_renamed_code() {
        // Compiled code uses R6 while the initial state only has 8 regs —
        // also exercise a program using a brand-new high register.
        let mut prog = fig1b_prog();
        prog.blocks[0].cycles[0].push(copy(Reg(31), 0i64));
        check_equivalence(&vecmin_spec(), &prog, &initial(vec![3, 1, 2]), 100_000).unwrap();
    }
}
