//! Reference interpreter: strict sequential execution of a structured loop.
//!
//! One operation costs one cycle, mirroring the paper's §1.1 sequential
//! baseline ("if executed on a sequential machine, the latency of one loop
//! iteration … is 7 and 8 clock cycles for the two paths"). The interpreter
//! produces the golden final state for equivalence checking, cycle counts,
//! and a per-iteration trace of IF outcomes for profiling.

use crate::state::{MachineState, SimError};
use crate::stats;
use psp_ir::{Item, LoopSpec};
use std::collections::BTreeMap;
use std::time::Instant;

/// Result of a reference run.
#[derive(Debug, Clone)]
pub struct RefRun {
    /// Final architectural state.
    pub state: MachineState,
    /// Completed iterations (the iteration in which `BREAK` fires counts).
    pub iterations: u64,
    /// Total sequential cycles (= executed operations).
    pub cycles: u64,
    /// Per-iteration IF outcomes: `trace[i][if_id]` is the outcome of IF
    /// `if_id` in iteration `i`, absent when the IF did not execute.
    pub trace: Vec<BTreeMap<u32, bool>>,
}

impl RefRun {
    /// Mean sequential cycles per iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.iterations as f64
        }
    }
}

/// Execute the loop until a `BREAK` fires, at most `max_cycles` operations.
pub fn run_reference(
    spec: &LoopSpec,
    mut state: MachineState,
    max_cycles: u64,
) -> Result<RefRun, SimError> {
    let t0 = Instant::now();
    state.grow(spec.n_regs, spec.n_ccs);
    let mut cycles: u64 = 0;
    let mut iterations: u64 = 0;
    let mut trace = Vec::new();

    'outer: loop {
        iterations += 1;
        let mut outcomes = BTreeMap::new();
        let broke = run_items(
            &spec.items,
            &mut state,
            &mut cycles,
            max_cycles,
            &mut outcomes,
        )?;
        trace.push(outcomes);
        if broke {
            break 'outer;
        }
        if cycles > max_cycles {
            return Err(SimError::CycleBudgetExceeded(max_cycles));
        }
    }

    stats::count_interp_run(cycles, t0.elapsed().as_micros() as u64);
    Ok(RefRun {
        state,
        iterations,
        cycles,
        trace,
    })
}

/// Execute a list of items; returns whether a `BREAK` fired.
fn run_items(
    items: &[Item],
    state: &mut MachineState,
    cycles: &mut u64,
    max_cycles: u64,
    outcomes: &mut BTreeMap<u32, bool>,
) -> Result<bool, SimError> {
    for item in items {
        if *cycles > max_cycles {
            return Err(SimError::CycleBudgetExceeded(max_cycles));
        }
        match item {
            Item::Op(op) => {
                *cycles += 1;
                // A bare op's BREAK/IF outcome is deliberately discarded,
                // exactly as `commit` discarded it here before.
                state.step_op(op)?;
            }
            Item::If(i) => {
                *cycles += 1; // the IF itself costs a cycle
                let taken = state.cc(i.cc)?;
                outcomes.insert(i.if_id, taken);
                let branch = if taken { &i.then_items } else { &i.else_items };
                if run_items(branch, state, cycles, max_cycles, outcomes)? {
                    return Ok(true);
                }
            }
            Item::Break(b) => {
                *cycles += 1;
                if state.cc(b.cc)? {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{CmpOp, LoopBuilder};

    /// The paper's vecmin loop.
    fn vecmin() -> LoopSpec {
        let mut b = LoopBuilder::new("vecmin");
        let x = b.array("x");
        let one = b.named_reg("one");
        let n = b.named_reg("n");
        let k = b.named_reg("k");
        let m = b.named_reg("m");
        let xk = b.reg();
        let xm = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(load(xm, x, m));
        b.op(cmp(CmpOp::Lt, cc0, xk, xm));
        b.if_else(
            cc0,
            |b| {
                b.op(copy(m, k));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        b.finish([one, n, k, m], [m])
    }

    fn initial(data: Vec<i64>) -> MachineState {
        let mut s = MachineState::new(8, 2);
        s.regs[0] = 1; // one
        s.regs[1] = data.len() as i64; // n
        s.regs[2] = 0; // k
        s.regs[3] = 0; // m
        s.push_array(data);
        s
    }

    #[test]
    fn vecmin_finds_minimum_index() {
        let data = vec![5, 3, 8, 1, 9, 1];
        let run = run_reference(&vecmin(), initial(data), 10_000).unwrap();
        assert_eq!(run.state.regs[3], 3); // first minimum at index 3
        assert_eq!(run.iterations, 6);
    }

    #[test]
    fn paper_cycle_counts_per_path() {
        // One iteration costs 8 cycles on the True path, 7 on the False
        // path (paper §1.1). Construct single-iteration runs for each.
        // True path: x[0] < x[m=0] is false on iteration with equal elems…
        // use 2-element arrays to pin the outcomes.
        let run = run_reference(&vecmin(), initial(vec![5, 9]), 10_000).unwrap();
        // iter1: x[0]<x[0] false -> 7 cycles; iter2: x[1]<x[0] false -> 7.
        assert_eq!(run.cycles, 14);
        let run = run_reference(&vecmin(), initial(vec![5, 2]), 10_000).unwrap();
        // iter1 false (7), iter2: 2<5 true -> 8 cycles.
        assert_eq!(run.cycles, 15);
        assert_eq!(run.state.regs[3], 1);
    }

    #[test]
    fn trace_records_if_outcomes() {
        let run = run_reference(&vecmin(), initial(vec![5, 2, 7]), 10_000).unwrap();
        assert_eq!(run.trace.len(), 3);
        assert_eq!(run.trace[0].get(&0), Some(&false)); // 5<5 false
        assert_eq!(run.trace[1].get(&0), Some(&true)); // 2<5 true
        assert_eq!(run.trace[2].get(&0), Some(&false)); // 7<2 false
    }

    #[test]
    fn budget_guard_catches_infinite_loops() {
        let mut b = LoopBuilder::new("inf");
        let cc = b.cc();
        let r = b.reg();
        b.op(cmp(CmpOp::Lt, cc, r, -1i64)); // always false
        b.break_(cc);
        let spec = b.finish([r], [r]);
        let st = MachineState::new(1, 1);
        let res = run_reference(&spec, st, 100);
        assert!(matches!(res, Err(SimError::CycleBudgetExceeded(_))));
    }

    #[test]
    fn cycles_per_iteration_average() {
        let run = run_reference(&vecmin(), initial(vec![5, 9]), 10_000).unwrap();
        assert!((run.cycles_per_iteration() - 7.0).abs() < 1e-9);
    }
}
