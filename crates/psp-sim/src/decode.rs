//! Pre-decoded execution engine.
//!
//! The `step_cycle` interpreters re-match `Operation` enums and re-resolve
//! registers, guards, and branch successors on every simulated cycle. This
//! module lowers a program *once* into a flat, dense form — struct-of-arrays
//! micro-ops with every register/cc/array index, guard, and branch target
//! resolved to plain integers — and executes it with a tight dispatch loop
//! over reusable scratch state, so a batch of equivalence trials pays for
//! decoding once and allocates nothing per trial.
//!
//! The engine is **bit-identical** to the interpreters by construction:
//! evaluation order, effect commit order, write-conflict detection, cycle
//! budget placement, the pre-cycle condition-register snapshot for branch
//! dispatch, and every `SimError` message are replicated exactly. That
//! contract is enforced by the differential suites
//! (`tests/engine_differential.rs`, `tests/sim_edge_cases.rs`); the
//! interpreter remains the trusted reference and the only engine the
//! psp-verify validators use, mirroring the packed-vs-sparse predicate
//! split.

use crate::reference::RefRun;
use crate::state::{MachineState, SimError};
use crate::stats;
use crate::vliw_run::VliwRun;
use psp_ir::{AluOp, CmpOp, Item, LoopSpec, OpKind, Operand, Operation};
use psp_machine::{VliwLoop, VliwTerm};
use std::collections::BTreeMap;
use std::time::Instant;

/// Micro-opcode: one fieldless-ish discriminant per operation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UOpc {
    Alu(AluOp),
    Copy,
    Select,
    Cmp(CmpOp),
    CcAnd,
    Load,
    Store,
    If,
    Break,
}

/// `guard[i]` sentinel for unguarded micro-ops.
const NO_GUARD: u32 = u32::MAX;
/// `flags[i]`: operand `a` is an immediate (else a register index).
const A_IMM: u8 = 1;
/// `flags[i]`: operand `b` is an immediate.
const B_IMM: u8 = 2;
/// `flags[i]`: memory access has no index register.
const NO_INDEX: u8 = 4;

/// Struct-of-arrays micro-op storage shared by both decoded forms.
///
/// Field use per opcode (unused fields are zero):
///
/// | opcode  | `dst`        | `a`            | `b`        | `aux`            |
/// |---------|--------------|----------------|------------|------------------|
/// | Alu/Cmp | dest reg/cc  | operand        | operand    | —                |
/// | Copy    | dest reg     | operand        | —          | —                |
/// | Select  | dest reg     | true operand   | false op.  | selecting cc     |
/// | CcAnd   | dest cc      | cc `a`         | cc `b`     | required values  |
/// | Load    | dest reg     | index reg      | disp       | array            |
/// | Store   | index reg    | source operand | disp       | array            |
/// | If      | tested cc    | —              | —          | `if_id`          |
/// | Break   | tested cc    | —              | —          | —                |
#[derive(Debug, Clone, Default)]
struct UOps {
    opc: Vec<UOpc>,
    guard: Vec<u32>,
    dst: Vec<u32>,
    a: Vec<i64>,
    b: Vec<i64>,
    aux: Vec<u32>,
    flags: Vec<u8>,
}

/// Pending effect of one evaluated micro-op (the decoded analogue of
/// [`crate::state::Effect`]).
#[derive(Debug, Clone, Copy)]
enum PEff {
    Gpr(u32, i64),
    Cc(u32, bool),
    Mem(u32, usize, i64),
    Break,
    If,
    Squash,
}

/// A statically-known storage slot a micro-op reads or writes, for the
/// decode-time hazard analysis behind cycle fusion. Memory is tracked at
/// array granularity: element indices are runtime values, so any two
/// accesses of the same array are conservatively assumed to alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Gpr(u32),
    Cc(u32),
    Arr(u32),
}

/// Flat single-level opcodes of the packed fast path: ALU and compare
/// sub-opcodes are pre-expanded so dispatch is one jump, not two. Values
/// mirror the declaration order of [`AluOp`] and [`CmpOp`].
mod fop {
    pub const ADD: u8 = 0;
    pub const SUB: u8 = 1;
    pub const MUL: u8 = 2;
    pub const MIN: u8 = 3;
    pub const MAX: u8 = 4;
    pub const AND: u8 = 5;
    pub const OR: u8 = 6;
    pub const XOR: u8 = 7;
    pub const SHL: u8 = 8;
    pub const SHR: u8 = 9;
    pub const CMP_LT: u8 = 10;
    pub const CMP_LE: u8 = 11;
    pub const CMP_GT: u8 = 12;
    pub const CMP_GE: u8 = 13;
    pub const CMP_EQ: u8 = 14;
    pub const CMP_NE: u8 = 15;
    pub const COPY: u8 = 16;
    pub const SELECT: u8 = 17;
    pub const CCAND: u8 = 18;
    pub const LOAD: u8 = 19;
    pub const STORE: u8 = 20;
    pub const BREAK: u8 = 21;
    pub const IF: u8 = 22;
    /// Guarded variants live at `opc | GBASE`: guardedness is folded into
    /// the opcode at pack time so the unguarded specialisation of
    /// [`super::exec_pop`] carries no guard load, no `take` computation
    /// and no write selects at all.
    pub const GBASE: u8 = 32;
}

/// One packed fast-path micro-op: a single 32-byte record per op (one
/// cache line holds two), consumed by [`exec_pop`]. The struct-of-arrays
/// [`UOps`] form remains the canonical decoded program (and drives the
/// general two-phase path); `POp` streams are execution schedules derived
/// from it at decode time.
#[derive(Debug, Clone, Copy)]
struct POp {
    opc: u8,
    flags: u8,
    guard: u32,
    dst: u32,
    aux: u32,
    a: i64,
    b: i64,
}

/// Read an operand without a bounds check.
///
/// # Safety
/// `v` must index into `regs` when `imm` is false (guaranteed when the
/// state meets the program's static demand).
#[inline(always)]
unsafe fn opnd(regs: &[i64], v: i64, imm: bool) -> i64 {
    if imm {
        v
    } else {
        debug_assert!((v as usize) < regs.len());
        unsafe { *regs.get_unchecked(v as usize) }
    }
}

/// Out-of-line fault constructor: `format!` machinery in the hot
/// function costs more than the branch that guards it.
#[cold]
#[inline(never)]
fn store_fault(aux: u32, elem: i64, len: usize) -> SimError {
    SimError::BadStore(format!("a{aux}[{elem}] out of bounds (len {len})"))
}

/// Branch-free select: `if take { v } else { old }` lowered to mask
/// arithmetic so the compiler emits a conditional move, never a
/// data-dependent branch (guard condition registers hold random trial
/// data, so a branch here mispredicts constantly).
#[inline(always)]
fn sel_i64(take: bool, v: i64, old: i64) -> i64 {
    let m = -(take as i64);
    (v & m) | (old & !m)
}

#[inline(always)]
fn sel_bool(take: bool, v: bool, old: bool) -> bool {
    (take & v) | (!take & old)
}

/// Evaluate one packed micro-op and apply its effect in place, returning
/// whether a `BREAK` fired. The fused fast path: no pending-effect buffer,
/// no conflict stamps, no bounds checks on register/cc/array access, and
/// **branch-free predication** — pure ops compute unconditionally and the
/// guard selects between the new value and the old slot contents (a
/// squashed op rewrites the value already there, which is unobservable),
/// stores select between the real element and a dummy stack slot. The
/// state is passed as pre-split slices so the loops driving a packed
/// stream keep the data pointers in registers instead of reloading them
/// from `MachineState` on every op.
///
/// # Safety
/// The caller must have established that (a) the state meets the
/// program's static demand ([`UOps::demand`]) — every register/cc/array
/// index the op can touch is covered by [`UOps::read_slots`]/
/// [`UOps::write_slot`], so all of them are in bounds and unconditional
/// evaluation of a squashed op cannot fault — and (b) the op runs
/// sequentially or inside a [`UOps::fuse_order`]-scheduled cycle, so
/// immediate commits are unobservable within the cycle (a squashed op's
/// old-value rewrite is a no-op on the slot's current contents either
/// way). Out-of-bounds stores are the only reachable error, raised in the
/// same order with the same message as [`UOps::eval`].
///
/// `inline(always)`: the callers are the three hot stream loops; an
/// outlined call returns `Result<bool, SimError>` through memory (the
/// error variant is a `String`), which roughly doubles per-op cost.
#[inline(always)]
unsafe fn exec_pop(
    p: &POp,
    regs: &mut [i64],
    ccs: &mut [bool],
    arrays: &mut [Vec<i64>],
) -> Result<bool, SimError> {
    // Guardedness is part of the opcode (`fop::GBASE`): this branch is a
    // per-op constant in a periodic stream, so it predicts, and each side
    // monomorphises to a specialised body — the unguarded one has no
    // guard load, no `take`, and blind destination stores (a predicated
    // write would turn them into read-modify-write chains).
    if p.opc < fop::GBASE {
        unsafe { exec_pop_g::<false>(p, p.opc, regs, ccs, arrays) }
    } else {
        unsafe { exec_pop_g::<true>(p, p.opc - fop::GBASE, regs, ccs, arrays) }
    }
}

/// The guardedness-specialised body of [`exec_pop`]; `opc` is the base
/// opcode with `GBASE` already stripped.
///
/// # Safety
/// As [`exec_pop`].
#[inline(always)]
unsafe fn exec_pop_g<const GD: bool>(
    p: &POp,
    opc: u8,
    regs: &mut [i64],
    ccs: &mut [bool],
    arrays: &mut [Vec<i64>],
) -> Result<bool, SimError> {
    // The cc *value* only ever feeds `take` as data: squashing is mask
    // selection, never a branch (guards carry random trial data).
    let take = if GD {
        let g = p.guard;
        debug_assert!(((g >> 1) as usize) < ccs.len());
        unsafe { *ccs.get_unchecked((g >> 1) as usize) == (g & 1 != 0) }
    } else {
        true
    };
    let gd = GD;
    let dst = p.dst as usize;
    if opc <= fop::CMP_NE {
        let x = unsafe { opnd(regs, p.a, p.flags & A_IMM != 0) };
        let y = unsafe { opnd(regs, p.b, p.flags & B_IMM != 0) };
        if opc <= fop::SHR {
            let v = match opc {
                fop::ADD => x.wrapping_add(y),
                fop::SUB => x.wrapping_sub(y),
                fop::MUL => x.wrapping_mul(y),
                fop::MIN => x.min(y),
                fop::MAX => x.max(y),
                fop::AND => x & y,
                fop::OR => x | y,
                fop::XOR => x ^ y,
                fop::SHL => x.wrapping_shl((y & 63) as u32),
                _ => x.wrapping_shr((y & 63) as u32),
            };
            debug_assert!(dst < regs.len());
            unsafe {
                let slot = regs.get_unchecked_mut(dst);
                *slot = if gd { sel_i64(take, v, *slot) } else { v };
            }
        } else {
            let v = match opc {
                fop::CMP_LT => x < y,
                fop::CMP_LE => x <= y,
                fop::CMP_GT => x > y,
                fop::CMP_GE => x >= y,
                fop::CMP_EQ => x == y,
                _ => x != y,
            };
            debug_assert!(dst < ccs.len());
            unsafe {
                let slot = ccs.get_unchecked_mut(dst);
                *slot = if gd { sel_bool(take, v, *slot) } else { v };
            }
        }
        return Ok(false);
    }
    match opc {
        fop::COPY => {
            debug_assert!(dst < regs.len());
            unsafe {
                let v = opnd(regs, p.a, p.flags & A_IMM != 0);
                let slot = regs.get_unchecked_mut(dst);
                *slot = if gd { sel_i64(take, v, *slot) } else { v };
            }
        }
        fop::SELECT => {
            // The interpreter reads only the taken operand; here both are
            // in bounds, so reading both is unobservable — and the
            // data-dependent cc select becomes a conditional move.
            debug_assert!((p.aux as usize) < ccs.len() && dst < regs.len());
            unsafe {
                let c = *ccs.get_unchecked(p.aux as usize);
                let va = opnd(regs, p.a, p.flags & A_IMM != 0);
                let vb = opnd(regs, p.b, p.flags & B_IMM != 0);
                let v = sel_i64(c, va, vb);
                let slot = regs.get_unchecked_mut(dst);
                *slot = if gd { sel_i64(take, v, *slot) } else { v };
            }
        }
        fop::CCAND => {
            // The interpreter's `&&` short-circuit is unobservable here
            // (both reads are in bounds), so evaluate both conjuncts.
            debug_assert!((p.a as usize) < ccs.len() && (p.b as usize) < ccs.len());
            debug_assert!(dst < ccs.len());
            unsafe {
                let v = (*ccs.get_unchecked(p.a as usize) == (p.aux & 1 != 0))
                    & (*ccs.get_unchecked(p.b as usize) == (p.aux & 2 != 0));
                let slot = ccs.get_unchecked_mut(dst);
                *slot = if gd { sel_bool(take, v, *slot) } else { v };
            }
        }
        fop::LOAD => {
            let idx = if p.flags & NO_INDEX != 0 {
                0
            } else {
                debug_assert!((p.a as usize) < regs.len());
                unsafe { *regs.get_unchecked(p.a as usize) }
            };
            let elem = idx + p.b;
            debug_assert!((p.aux as usize) < arrays.len());
            let data = unsafe { arrays.get_unchecked(p.aux as usize) };
            // `elem < 0` folds into the unsigned compare; OOB loads read 0
            // (speculative loads never fault), making LOAD total here.
            let inb = (elem as usize) < data.len();
            let v = if inb {
                unsafe { *data.get_unchecked(elem as usize) }
            } else {
                0
            };
            debug_assert!(dst < regs.len());
            unsafe {
                let slot = regs.get_unchecked_mut(dst);
                *slot = if gd { sel_i64(take, v, *slot) } else { v };
            }
        }
        fop::STORE => {
            let idx = if p.flags & NO_INDEX != 0 {
                0
            } else {
                debug_assert!(dst < regs.len());
                unsafe { *regs.get_unchecked(dst) }
            };
            let elem = idx + p.b;
            debug_assert!((p.aux as usize) < arrays.len());
            let data = unsafe { arrays.get_unchecked_mut(p.aux as usize) };
            let inb = (elem as usize) < data.len();
            if gd {
                if take & !inb {
                    return Err(store_fault(p.aux, elem, data.len()));
                }
                // The memory write itself cannot be value-selected (a
                // squashed store's element index may be garbage), so
                // select the *target*: the real element when taken, a
                // dummy stack slot when squashed. The wrapping pointer
                // offset is computed but never dereferenced on the
                // squashed path.
                let mut dummy = 0i64;
                let tgt = if take {
                    data.as_mut_ptr().wrapping_add(elem as usize)
                } else {
                    &mut dummy as *mut i64
                };
                unsafe {
                    *tgt = opnd(regs, p.a, p.flags & A_IMM != 0);
                }
            } else {
                if !inb {
                    return Err(store_fault(p.aux, elem, data.len()));
                }
                unsafe {
                    *data.get_unchecked_mut(elem as usize) = opnd(regs, p.a, p.flags & A_IMM != 0);
                }
            }
        }
        fop::BREAK => {
            debug_assert!(dst < ccs.len());
            return Ok(take & unsafe { *ccs.get_unchecked(dst) });
        }
        // fop::IF — the cc read can no longer fault (demand is met) and
        // VLIW code records no outcomes, so IF is a no-op here.
        _ => {}
    }
    Ok(false)
}

/// The self-loop fast path of [`DecodedVliw::run`]: iterate a uniformly
/// self-succeeding merged block as one fused stream until a BREAK fires
/// or the next iteration could overrun the budget, returning whether it
/// broke. The head/tail split and inter-stream cc snapshot of the generic
/// merged path vanish here: `merged` eligibility keeps BREAKs out of the
/// head (every other opcode returns `false`), and the snapshot only feeds
/// terminator dispatch, which a uniform self-successor never reads.
/// Outlined deliberately: the enclosing run loop keeps a dozen values
/// live, and inlining this loop there makes the register allocator spill
/// the stream cursors and state pointers on every micro-op — measured at
/// nearly 2× the per-op cost.
///
/// # Safety
/// Same preconditions as [`exec_pop`]: the state meets the program's
/// static demand and the stream is a `fuse_order` schedule.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
unsafe fn superloop(
    body: &[POp],
    regs: &mut [i64],
    ccs: &mut [bool],
    arrays: &mut [Vec<i64>],
    n: u64,
    back: u64,
    max_cycles: u64,
    body_cycles: &mut u64,
    iterations: &mut u64,
) -> Result<bool, SimError> {
    let mut broke = false;
    let mut cycles = *body_cycles;
    let mut iters = *iterations;
    while !broke && cycles.saturating_add(n) <= max_cycles {
        for p in body {
            // SAFETY: forwarded from the caller.
            broke |= unsafe { exec_pop(p, regs, ccs, arrays) }?;
        }
        cycles += n;
        // A breaking iteration does not dispatch the terminator, so it
        // takes no back edge.
        iters += (!broke) as u64 * back;
    }
    // An error return skips the write-back: errors discard all state, so
    // only error identity matters.
    *body_cycles = cycles;
    *iterations = iters;
    Ok(broke)
}

/// Exit reason of [`vliw_dispatchloop`].
enum DispatchExit {
    /// A BREAK fired; the body is complete.
    Broke,
    /// An `Exit` terminator was dispatched; the body is complete.
    Exited,
    /// The next block could overrun the budget: resume the generic loop
    /// at this block index for exact per-cycle accounting.
    Bail(usize),
}

/// The multi-block fast path of [`DecodedVliw::run`]: iterate a CFG whose
/// non-empty blocks are all `merged` (checked once at decode as
/// `dispatch_ok`), with the budget check hoisted to one comparison per
/// block and no malformedness tests. This is where condition-carrying
/// loops live — PSP lowers their conditions to data-dependent block
/// succession, so the generic loop's per-block bookkeeping is pure
/// overhead paid on every source iteration. Same outlining rationale as
/// [`superloop`].
///
/// # Safety
/// Same preconditions as [`exec_pop`]: the state meets the program's
/// static demand (terminator ccs included) and the streams are
/// `fuse_order` schedules. `snap` must cover the cc demand.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
unsafe fn vliw_dispatchloop(
    blocks: &[DBlock],
    pexec: &[POp],
    snap: &mut [bool],
    regs: &mut [i64],
    ccs: &mut [bool],
    arrays: &mut [Vec<i64>],
    mut bi: usize,
    max_cycles: u64,
    have_snap: &mut bool,
    body_cycles: &mut u64,
    iterations: &mut u64,
) -> Result<DispatchExit, SimError> {
    let mut cycles = *body_cycles;
    let mut iters = *iterations;
    let mut snapped = *have_snap;
    let exit = loop {
        let block = &blocks[bi];
        let n = block.cycles.len() as u64;
        if cycles.saturating_add(n) > max_cycles {
            // Only a non-empty block can land here (an empty one adds no
            // cost), so the generic loop re-snapshots before reading.
            break DispatchExit::Bail(bi);
        }
        if let Some((head_lo, tail_lo, tail_hi)) = block.merged {
            for p in &pexec[head_lo as usize..tail_lo as usize] {
                // SAFETY: forwarded from the caller.
                unsafe { exec_pop(p, regs, ccs, arrays) }?;
            }
            for &cc in &block.snap_ccs {
                snap[cc as usize] = ccs[cc as usize];
            }
            snapped = true;
            let mut broke = false;
            for p in &pexec[tail_lo as usize..tail_hi as usize] {
                // SAFETY: as above.
                broke |= unsafe { exec_pop(p, regs, ccs, arrays) }?;
            }
            cycles += n;
            if broke {
                break DispatchExit::Broke;
            }
        }
        let succ = match block.term {
            DTerm::Jump(s) => s,
            DTerm::Branch { cc, t, f } => {
                let v = if snapped {
                    snap[cc as usize]
                } else {
                    // Entry dispatch before any body cycle: committed
                    // state is the right one (demand keeps it in bounds).
                    ccs[cc as usize]
                };
                DSucc::sel(v, t, f)
            }
            DTerm::Exit => break DispatchExit::Exited,
        };
        iters += succ.back();
        bi = succ.tgt();
    };
    // An error return skips the write-back: errors discard all state.
    *body_cycles = cycles;
    *iterations = iters;
    *have_snap = snapped;
    Ok(exit)
}

/// [`ref_superloop`] for a body that collapsed to a [`FusedRef`]: one pop
/// stream per iteration, zero instruction dispatch, costs and loop exits
/// settled by a post-walk read of path predicates. Same contract and
/// outlining rationale as [`ref_superloop`]. `ccs` is the scratch buffer
/// described on [`FusedRef`], not the machine state's cc file.
///
/// # Safety
/// Same preconditions as [`exec_pop`]; additionally every `terms`/`breaks`
/// cc must be within `ccs` ([`FusedRef::cc_len`] covers them).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
unsafe fn ref_fusedloop(
    pops: &[POp],
    terms: &[CostTerm],
    breaks: &[u32],
    base_cost: u64,
    regs: &mut [i64],
    ccs: &mut [bool],
    arrays: &mut [Vec<i64>],
    iter_cost_bound: u64,
    max_cycles: u64,
    cycles: &mut u64,
    iterations: &mut u64,
) -> Result<bool, SimError> {
    let mut cyc = *cycles;
    let mut iters = *iterations;
    let mut broke = false;
    while !broke && cyc.saturating_add(iter_cost_bound) <= max_cycles {
        iters += 1;
        for p in pops {
            // SAFETY: forwarded from the caller; stray BREAK results from
            // bare `Item::Op` wrappers are discarded, and untaken region
            // arms are squashed by their (possibly synthetic) guards.
            unsafe { exec_pop(p, regs, ccs, arrays) }?;
        }
        cyc += base_cost;
        for t in terms {
            // SAFETY: `cc_len` covers every cost cc; the builder only
            // reads a cc directly when nothing after its test point can
            // rewrite it, and routes every other path through a synthetic
            // conjunction cc that is written exactly once per iteration.
            let v = unsafe { *ccs.get_unchecked(t.cc as usize) };
            cyc += (v == t.pol) as u64 * t.len;
        }
        for &bc in breaks {
            // SAFETY: as above; each entry is `reached AND tested-cc` for
            // one `Break`, already conjoined with its reach path.
            broke |= unsafe { *ccs.get_unchecked(bc as usize) };
        }
    }
    // An error return skips the write-back: errors discard all state.
    *cycles = cyc;
    *iterations = iters;
    Ok(broke)
}

/// The trace-free fast path of [`DecodedRef::run`]: execute whole source
/// iterations with every budget check hoisted behind the program's
/// [`DecodedRef::iter_cost_bound`] and no outcome recording. Returns
/// `true` when a `BREAK` fired (the run is complete) and `false` when the
/// remaining budget no longer guarantees a checkless iteration — the
/// caller's generic loop then finishes with exact per-instruction checks
/// and raises any exhaustion error at the interpreter's exact cycle.
/// Outlined for the same register-pressure reason as [`superloop`].
///
/// # Safety
/// Same preconditions as [`exec_pop`]: the state meets the program's
/// static demand (including every `If`/`PredRun`/`Break` condition
/// register) and execution is sequential.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
unsafe fn ref_superloop(
    code: &[RefInstr],
    pops: &[POp],
    regs: &mut [i64],
    ccs: &mut [bool],
    arrays: &mut [Vec<i64>],
    iter_cost_bound: u64,
    max_cycles: u64,
    cycles: &mut u64,
    iterations: &mut u64,
) -> Result<bool, SimError> {
    let mut cyc = *cycles;
    let mut iters = *iterations;
    let mut broke = false;
    while !broke && cyc.saturating_add(iter_cost_bound) <= max_cycles {
        iters += 1;
        let mut pc = 0usize;
        while pc < code.len() {
            match code[pc] {
                RefInstr::Run { lo, hi } => {
                    cyc += (hi - lo) as u64;
                    for p in &pops[lo as usize..hi as usize] {
                        // SAFETY: forwarded from the caller; a stray BREAK
                        // from a bare `Item::Op` wrapper is discarded.
                        unsafe { exec_pop(p, regs, ccs, arrays) }?;
                    }
                }
                RefInstr::If { cc, else_pc, .. } => {
                    cyc += 1;
                    // SAFETY: demand covers every tested cc.
                    let taken = unsafe { *ccs.get_unchecked(cc as usize) };
                    pc = if taken { pc + 1 } else { else_pc as usize };
                    continue;
                }
                RefInstr::PredRun {
                    cc,
                    t_lo,
                    t_hi,
                    f_hi,
                    ..
                } => {
                    // SAFETY: as above.
                    let taken = unsafe { *ccs.get_unchecked(cc as usize) } as u64;
                    // `taken` is random trial data: select the taken-arm
                    // cost arithmetically rather than mispredicting a
                    // branch on it every iteration.
                    cyc += 1 + taken * (t_hi - t_lo) as u64 + (1 - taken) * (f_hi - t_hi) as u64;
                    for p in &pops[t_lo as usize..f_hi as usize] {
                        // SAFETY: forwarded; the untaken arm is squashed by
                        // its guard and cannot fault.
                        unsafe { exec_pop(p, regs, ccs, arrays) }?;
                    }
                }
                RefInstr::Break { cc } => {
                    cyc += 1;
                    // SAFETY: as above.
                    if unsafe { *ccs.get_unchecked(cc as usize) } {
                        broke = true;
                        break;
                    }
                }
                RefInstr::Goto(t) => {
                    pc = t as usize;
                    continue;
                }
            }
            pc += 1;
        }
    }
    // An error return skips the write-back: errors discard all state.
    *cycles = cyc;
    *iterations = iters;
    Ok(broke)
}

fn bad_reg(r: u32) -> SimError {
    SimError::BadRegister(format!("R{r}"))
}

fn bad_cc(c: u32) -> SimError {
    SimError::BadRegister(format!("CC{c}"))
}

#[inline]
fn read_reg(st: &MachineState, r: u32) -> Result<i64, SimError> {
    st.regs.get(r as usize).copied().ok_or_else(|| bad_reg(r))
}

#[inline]
fn read_cc(st: &MachineState, c: u32) -> Result<bool, SimError> {
    st.ccs.get(c as usize).copied().ok_or_else(|| bad_cc(c))
}

#[inline]
fn read_operand(st: &MachineState, v: i64, imm: bool) -> Result<i64, SimError> {
    if imm {
        Ok(v)
    } else {
        read_reg(st, v as u32)
    }
}

fn operand_parts(o: Operand) -> (i64, bool) {
    match o {
        Operand::Reg(r) => (r.0 as i64, false),
        Operand::Imm(v) => (v, true),
    }
}

impl UOps {
    fn len(&self) -> usize {
        self.opc.len()
    }

    /// Lower one source operation; `if_id` is only meaningful for `If`
    /// micro-ops in the reference form (VLIW code passes 0).
    fn push_op(&mut self, op: &Operation, if_id: u32) -> u32 {
        let guard = match op.guard {
            None => NO_GUARD,
            Some(g) => (g.cc.0 << 1) | g.on_true as u32,
        };
        let (opc, dst, a, b, aux, flags) = match op.kind {
            OpKind::Alu { op: o, dst, a, b } => {
                let (av, ai) = operand_parts(a);
                let (bv, bi) = operand_parts(b);
                let f = if ai { A_IMM } else { 0 } | if bi { B_IMM } else { 0 };
                (UOpc::Alu(o), dst.0, av, bv, 0, f)
            }
            OpKind::Copy { dst, src } => {
                let (av, ai) = operand_parts(src);
                (UOpc::Copy, dst.0, av, 0, 0, if ai { A_IMM } else { 0 })
            }
            OpKind::Select {
                dst,
                cc,
                on_true,
                on_false,
            } => {
                let (av, ai) = operand_parts(on_true);
                let (bv, bi) = operand_parts(on_false);
                let f = if ai { A_IMM } else { 0 } | if bi { B_IMM } else { 0 };
                (UOpc::Select, dst.0, av, bv, cc.0, f)
            }
            OpKind::Cmp { op: o, dst, a, b } => {
                let (av, ai) = operand_parts(a);
                let (bv, bi) = operand_parts(b);
                let f = if ai { A_IMM } else { 0 } | if bi { B_IMM } else { 0 };
                (UOpc::Cmp(o), dst.0, av, bv, 0, f)
            }
            OpKind::CcAnd {
                dst,
                a,
                a_val,
                b,
                b_val,
            } => {
                let aux = a_val as u32 | (b_val as u32) << 1;
                (UOpc::CcAnd, dst.0, a.0 as i64, b.0 as i64, aux, 0)
            }
            OpKind::Load { dst, addr } => {
                let (idx, f) = match addr.index {
                    Some(r) => (r.0 as i64, 0),
                    None => (0, NO_INDEX),
                };
                (UOpc::Load, dst.0, idx, addr.disp, addr.array.0, f)
            }
            OpKind::Store { src, addr } => {
                let (av, ai) = operand_parts(src);
                let (idx, f) = match addr.index {
                    Some(r) => (r.0, 0),
                    None => (0, NO_INDEX),
                };
                let f = f | if ai { A_IMM } else { 0 };
                (UOpc::Store, idx, av, addr.disp, addr.array.0, f)
            }
            OpKind::If { cc } => (UOpc::If, cc.0, 0, 0, if_id, 0),
            OpKind::Break { cc } => (UOpc::Break, cc.0, 0, 0, 0, 0),
        };
        self.opc.push(opc);
        self.guard.push(guard);
        self.dst.push(dst);
        self.a.push(a);
        self.b.push(b);
        self.aux.push(aux);
        self.flags.push(flags);
        (self.len() - 1) as u32
    }

    /// Evaluate micro-op `i` against pre-cycle state. Mirrors
    /// [`MachineState::effect_of`] exactly, including evaluation order and
    /// error messages.
    #[inline]
    fn eval(&self, i: usize, st: &MachineState) -> Result<PEff, SimError> {
        let g = self.guard[i];
        if g != NO_GUARD && read_cc(st, g >> 1)? != (g & 1 != 0) {
            return Ok(PEff::Squash);
        }
        let (a, b, dst, aux, flags) = (
            self.a[i],
            self.b[i],
            self.dst[i],
            self.aux[i],
            self.flags[i],
        );
        Ok(match self.opc[i] {
            UOpc::Alu(o) => {
                let x = read_operand(st, a, flags & A_IMM != 0)?;
                let y = read_operand(st, b, flags & B_IMM != 0)?;
                PEff::Gpr(dst, o.eval(x, y))
            }
            UOpc::Copy => PEff::Gpr(dst, read_operand(st, a, flags & A_IMM != 0)?),
            UOpc::Select => {
                let v = if read_cc(st, aux)? {
                    read_operand(st, a, flags & A_IMM != 0)?
                } else {
                    read_operand(st, b, flags & B_IMM != 0)?
                };
                PEff::Gpr(dst, v)
            }
            UOpc::Cmp(o) => {
                let x = read_operand(st, a, flags & A_IMM != 0)?;
                let y = read_operand(st, b, flags & B_IMM != 0)?;
                PEff::Cc(dst, o.eval(x, y))
            }
            UOpc::CcAnd => {
                // Mirror the interpreter's `&&`: the second condition
                // register is only read when the first conjunct holds.
                let v = if read_cc(st, a as u32)? == (aux & 1 != 0) {
                    read_cc(st, b as u32)? == (aux & 2 != 0)
                } else {
                    false
                };
                PEff::Cc(dst, v)
            }
            UOpc::Load => {
                let idx = if flags & NO_INDEX != 0 {
                    0
                } else {
                    read_reg(st, a as u32)?
                };
                let elem = idx + b;
                let data = st
                    .arrays
                    .get(aux as usize)
                    .ok_or_else(|| SimError::BadRegister(format!("array a{aux} not present")))?;
                let v = if elem < 0 || elem as usize >= data.len() {
                    0 // speculative loads never fault
                } else {
                    data[elem as usize]
                };
                PEff::Gpr(dst, v)
            }
            UOpc::Store => {
                let idx = if flags & NO_INDEX != 0 {
                    0
                } else {
                    read_reg(st, dst)?
                };
                let elem = idx + b;
                let len = st
                    .arrays
                    .get(aux as usize)
                    .ok_or_else(|| SimError::BadStore(format!("array a{aux} not present")))?
                    .len();
                if elem < 0 || elem as usize >= len {
                    return Err(SimError::BadStore(format!(
                        "a{aux}[{elem}] out of bounds (len {len})"
                    )));
                }
                PEff::Mem(aux, elem as usize, read_operand(st, a, flags & A_IMM != 0)?)
            }
            UOpc::If => {
                read_cc(st, dst)?; // an unreadable cc must still fault
                PEff::If
            }
            UOpc::Break => {
                if read_cc(st, dst)? {
                    PEff::Break
                } else {
                    PEff::Squash
                }
            }
        })
    }

    /// The slot micro-op `i` writes when it commits (`None` for pure
    /// control ops). Guards are ignored: a squashed write is a subset of
    /// the conservative answer.
    fn write_slot(&self, i: usize) -> Option<Slot> {
        match self.opc[i] {
            UOpc::Alu(_) | UOpc::Copy | UOpc::Select | UOpc::Load => Some(Slot::Gpr(self.dst[i])),
            UOpc::Cmp(_) | UOpc::CcAnd => Some(Slot::Cc(self.dst[i])),
            UOpc::Store => Some(Slot::Arr(self.aux[i])),
            UOpc::If | UOpc::Break => None,
        }
    }

    /// Every slot micro-op `i` may read: guard cc, register/cc operands,
    /// index registers, loaded arrays. Conservative — `Select` counts both
    /// operands even though only the taken one is read at runtime.
    fn read_slots(&self, i: usize) -> Vec<Slot> {
        let mut r = Vec::new();
        let g = self.guard[i];
        if g != NO_GUARD {
            r.push(Slot::Cc(g >> 1));
        }
        let flags = self.flags[i];
        let reg_ops = |r: &mut Vec<Slot>| {
            if flags & A_IMM == 0 {
                r.push(Slot::Gpr(self.a[i] as u32));
            }
            if flags & B_IMM == 0 {
                r.push(Slot::Gpr(self.b[i] as u32));
            }
        };
        match self.opc[i] {
            UOpc::Alu(_) | UOpc::Cmp(_) => reg_ops(&mut r),
            UOpc::Copy => {
                if flags & A_IMM == 0 {
                    r.push(Slot::Gpr(self.a[i] as u32));
                }
            }
            UOpc::Select => {
                r.push(Slot::Cc(self.aux[i]));
                reg_ops(&mut r);
            }
            UOpc::CcAnd => {
                r.push(Slot::Cc(self.a[i] as u32));
                r.push(Slot::Cc(self.b[i] as u32));
            }
            UOpc::Load => {
                if flags & NO_INDEX == 0 {
                    r.push(Slot::Gpr(self.a[i] as u32));
                }
                r.push(Slot::Arr(self.aux[i]));
            }
            UOpc::Store => {
                if flags & NO_INDEX == 0 {
                    r.push(Slot::Gpr(self.dst[i]));
                }
                if flags & A_IMM == 0 {
                    r.push(Slot::Gpr(self.a[i] as u32));
                }
            }
            UOpc::If | UOpc::Break => r.push(Slot::Cc(self.dst[i])),
        }
        r
    }

    /// Whether micro-ops `i` and `j` are guarded on opposite senses of the
    /// same condition register, so at most one of them ever executes in a
    /// given cycle — unless the write under consideration targets that
    /// very cc, in which case a fused commit could flip the other op's
    /// guard mid-cycle and the exclusion no longer holds.
    fn guards_disjoint_for(&self, i: usize, j: usize, w: Slot) -> bool {
        let (gi, gj) = (self.guard[i], self.guard[j]);
        gi != NO_GUARD
            && gj != NO_GUARD
            && gi >> 1 == gj >> 1
            && gi & 1 != gj & 1
            && w != Slot::Cc(gi >> 1)
    }

    /// Try to order the parallel cycle `ops[lo..hi]` so it can run as one
    /// fused eval-and-commit pass with pre-cycle read semantics intact.
    ///
    /// Every pair where one op writes a slot another reads gets a
    /// *reader-runs-first* constraint (a fused commit must not leak into a
    /// same-cycle read), pairs writing the same slot cannot fuse at all
    /// (the fused pass performs no write-conflict detection), and pairs
    /// with statically disjoint guards are exempt from both — at runtime
    /// one of them is always squashed. Stores additionally keep their
    /// original relative order so a batch of faulting stores reports the
    /// same first error as the two-phase engine (under the run-time
    /// `fast` precondition, stores are the only ops that can fault).
    ///
    /// Returns the op execution order, or `None` when the constraints are
    /// cyclic (software-pipelined kernels in this repo never are, but the
    /// fuzzer's adversarial programs can be).
    fn fuse_order(&self, lo: u32, hi: u32) -> Option<Vec<u32>> {
        let n = (hi - lo) as usize;
        if n > 64 {
            return None;
        }
        // pred[j]: bitmask of cycle-local ops that must run before op j.
        let mut pred = vec![0u64; n];
        for (i, pi) in pred.iter_mut().enumerate() {
            let oi = lo as usize + i;
            let Some(w) = self.write_slot(oi) else {
                continue;
            };
            for j in 0..n {
                if j == i {
                    continue;
                }
                let oj = lo as usize + j;
                if self.guards_disjoint_for(oi, oj, w) {
                    continue;
                }
                if self.write_slot(oj) == Some(w) {
                    return None;
                }
                if self.read_slots(oj).contains(&w) {
                    *pi |= 1 << j;
                }
            }
        }
        let mut last_store: Option<usize> = None;
        for (i, pi) in pred.iter_mut().enumerate() {
            if self.opc[lo as usize + i] == UOpc::Store {
                if let Some(p) = last_store {
                    *pi |= 1 << p;
                }
                last_store = Some(i);
            }
        }
        // Kahn's algorithm by repeated in-order sweeps: hazard-free cycles
        // come out in identity order.
        let mut order = Vec::with_capacity(n);
        let mut placed = 0u64;
        while order.len() < n {
            let before = order.len();
            for (i, &p) in pred.iter().enumerate() {
                if placed & (1 << i) == 0 && p & !placed == 0 {
                    placed |= 1 << i;
                    order.push(lo + i as u32);
                }
            }
            if order.len() == before {
                return None; // cyclic constraints
            }
        }
        Some(order)
    }

    /// Smallest register/cc/array file sizes under which every static
    /// index in the program is in bounds. A run whose state meets this
    /// demand can never raise a `BadRegister` error (and loads can never
    /// fault), which licenses the unchecked indexing in [`exec_pop`] and
    /// the store-only fault ordering of [`Self::fuse_order`].
    fn demand(&self) -> (u32, u32, u32) {
        let (mut regs, mut ccs, mut arrs) = (0u32, 0u32, 0u32);
        let mut need = |s: Slot| match s {
            Slot::Gpr(r) => regs = regs.max(r + 1),
            Slot::Cc(c) => ccs = ccs.max(c + 1),
            Slot::Arr(a) => arrs = arrs.max(a + 1),
        };
        for i in 0..self.len() {
            if let Some(w) = self.write_slot(i) {
                need(w);
            }
            for s in self.read_slots(i) {
                need(s);
            }
        }
        (regs, ccs, arrs)
    }

    /// Pack micro-op `i` into its flat fast-path record.
    fn pack(&self, i: usize) -> POp {
        let opc = match self.opc[i] {
            UOpc::Alu(o) => fop::ADD + o as u8,
            UOpc::Cmp(o) => fop::CMP_LT + o as u8,
            UOpc::Copy => fop::COPY,
            UOpc::Select => fop::SELECT,
            UOpc::CcAnd => fop::CCAND,
            UOpc::Load => fop::LOAD,
            UOpc::Store => fop::STORE,
            UOpc::Break => fop::BREAK,
            UOpc::If => fop::IF,
        };
        let opc = opc
            | if self.guard[i] != NO_GUARD {
                fop::GBASE
            } else {
                0
            };
        POp {
            opc,
            flags: self.flags[i],
            guard: self.guard[i],
            dst: self.dst[i],
            aux: self.aux[i],
            a: self.a[i],
            b: self.b[i],
        }
    }
}

/// Reusable per-thread execution scratch: the pending-effect buffer,
/// generation-stamped write-conflict maps (replacing the interpreter's
/// per-cycle `Vec::contains` scans), the branch-dispatch cc snapshot, and
/// the per-iteration IF-outcome buffer. One `Scratch` serves any number of
/// runs of any number of programs.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    eff: Vec<PEff>,
    gen: u64,
    gpr_gen: Vec<u64>,
    cc_gen: Vec<u64>,
    mem_gen: Vec<Vec<u64>>,
    snap: Vec<bool>,
    outcomes: Vec<(u32, bool)>,
    /// Scratch cc buffer for [`FusedRef`] runs (real ccs plus synthetic
    /// path predicates).
    fccs: Vec<bool>,
}

impl Scratch {
    /// Size the conflict maps for a run over `st`. Stamps are compared
    /// against a monotonically increasing generation, so stale entries from
    /// earlier runs never alias (the counter starts at 1).
    fn prepare(&mut self, st: &MachineState) {
        if self.gpr_gen.len() < st.regs.len() {
            self.gpr_gen.resize(st.regs.len(), 0);
        }
        if self.cc_gen.len() < st.ccs.len() {
            self.cc_gen.resize(st.ccs.len(), 0);
        }
        if self.mem_gen.len() < st.arrays.len() {
            self.mem_gen.resize_with(st.arrays.len(), Vec::new);
        }
        for (g, a) in self.mem_gen.iter_mut().zip(st.arrays.iter()) {
            if g.len() < a.len() {
                g.resize(a.len(), 0);
            }
        }
        // The fast path writes targeted snapshot entries by index.
        if self.snap.len() < st.ccs.len() {
            self.snap.resize(st.ccs.len(), false);
        }
    }
}

/// One decoded VLIW cycle: a micro-op range plus the decode-time verdict
/// of the hazard analysis.
#[derive(Debug, Clone, Copy)]
struct Cyc {
    lo: u32,
    hi: u32,
    /// Start/length of this cycle's packed execution schedule in the
    /// owning program's `pexec` pool (meaningful only when `fused`; `IF`
    /// no-ops are dropped, so `slen` may be shorter than the range).
    slo: u32,
    slen: u32,
    /// Hazards resolved at decode time ([`UOps::fuse_order`]): eligible
    /// for the fused single-pass executor when the run's state also meets
    /// the program's static demand.
    fused: bool,
}

/// Execute one cycle, choosing the fused single-pass executor when the
/// decode-time analysis and the run-time bounds check (`fast`) both allow
/// it, and the general two-phase path otherwise.
#[inline]
fn exec_cycle(
    ops: &UOps,
    pexec: &[POp],
    c: Cyc,
    fast: bool,
    st: &mut MachineState,
    scr: &mut Scratch,
) -> Result<bool, SimError> {
    if fast && c.fused {
        let mut broke = false;
        let MachineState {
            regs, ccs, arrays, ..
        } = st;
        for p in &pexec[c.slo as usize..(c.slo + c.slen) as usize] {
            // SAFETY: `fast` asserts the state meets the static demand and
            // the stream is a `fuse_order` schedule.
            broke |= unsafe { exec_pop(p, regs, ccs, arrays) }?;
        }
        Ok(broke)
    } else {
        step_decoded_cycle(ops, c.lo, c.hi, st, scr)
    }
}

/// Execute one parallel cycle (`ops[lo..hi]`): evaluate everything against
/// pre-cycle state, then commit in op order with same-cycle conflict
/// detection. Returns whether a `BREAK` fired. Mirrors
/// [`MachineState::step_cycle`] + [`MachineState::commit`].
fn step_decoded_cycle(
    ops: &UOps,
    lo: u32,
    hi: u32,
    st: &mut MachineState,
    scr: &mut Scratch,
) -> Result<bool, SimError> {
    scr.eff.clear();
    for i in lo..hi {
        match ops.eval(i as usize, st)? {
            PEff::Squash => {}
            e => scr.eff.push(e),
        }
    }
    scr.gen += 1;
    let gen = scr.gen;
    let Scratch {
        eff,
        gpr_gen,
        cc_gen,
        mem_gen,
        ..
    } = scr;
    let mut broke = false;
    for e in eff.iter() {
        match *e {
            PEff::Gpr(r, v) => {
                if let Some(g) = gpr_gen.get_mut(r as usize) {
                    if *g == gen {
                        return Err(SimError::WriteConflict(format!("R{r}")));
                    }
                    *g = gen;
                }
                let slot = st.regs.get_mut(r as usize).ok_or_else(|| bad_reg(r))?;
                *slot = v;
            }
            PEff::Cc(c, v) => {
                if let Some(g) = cc_gen.get_mut(c as usize) {
                    if *g == gen {
                        return Err(SimError::WriteConflict(format!("CC{c}")));
                    }
                    *g = gen;
                }
                let slot = st.ccs.get_mut(c as usize).ok_or_else(|| bad_cc(c))?;
                *slot = v;
            }
            PEff::Mem(arr, elem, v) => {
                // Bounds were established at evaluation time.
                let g = &mut mem_gen[arr as usize][elem];
                if *g == gen {
                    return Err(SimError::WriteConflict(format!("a{arr}[{elem}]")));
                }
                *g = gen;
                st.arrays[arr as usize][elem] = v;
            }
            PEff::Break => broke = true,
            PEff::If | PEff::Squash => {}
        }
    }
    Ok(broke)
}

/// Cycle/iteration counters of a decoded reference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefCounts {
    /// Completed iterations (the iteration in which `BREAK` fires counts).
    pub iterations: u64,
    /// Total sequential cycles.
    pub cycles: u64,
}

/// One flat instruction of the decoded reference program. Structured
/// control flow is compiled to `else_pc`/`Goto` offsets; `Goto` is a free
/// control transfer (structure navigation never cost cycles in the
/// interpreter either).
#[derive(Debug, Clone, Copy)]
enum RefInstr {
    /// Execute micro-ops `lo..hi` back to back; costs `hi - lo` cycles.
    /// Consecutive straight-line ops merge into one run so the hot loop
    /// pays one dispatch and one budget comparison per basic block.
    Run { lo: u32, hi: u32 },
    /// Test `cc`; fall through when true, jump to `else_pc` when false.
    /// Costs one cycle and records the outcome under `if_id`.
    If { cc: u32, if_id: u32, else_pc: u32 },
    /// An if-converted conditional: an `If` whose arms are straight-line
    /// unguarded ops (none writing `cc`) lowered to predicated micro-ops —
    /// then-arm `t_lo..t_hi` guarded on `cc` true, else-arm `t_hi..f_hi`
    /// guarded on `cc` false. The fast path executes *both* arms
    /// back-to-back and lets the guards squash the untaken one, turning a
    /// mispredicting data-dependent branch into data flow; only the taken
    /// arm's ops are costed. Costs one cycle for the test itself.
    PredRun {
        cc: u32,
        if_id: u32,
        t_lo: u32,
        t_hi: u32,
        f_hi: u32,
    },
    /// Exit the iteration when `cc` is true; costs one cycle.
    Break { cc: u32 },
    /// Unconditional transfer; free.
    Goto(u32),
}

/// Whether an `If` arm can be if-converted: straight-line unguarded ops
/// that leave the tested condition register alone (a write to it would
/// change what later arm ops' injected guards read). Bare `If`/`Break`
/// wrapper ops qualify too — they write nothing, and their stray outcomes
/// are discarded under sequential execution either way.
fn arm_foldable(items: &[Item], cc: u32) -> bool {
    items.iter().all(|item| match item {
        Item::Op(op) => {
            op.guard.is_none()
                && !matches!(
                    op.kind,
                    OpKind::Cmp { dst, .. } | OpKind::CcAnd { dst, .. } if dst.0 == cc
                )
        }
        _ => false,
    })
}

/// One conditional cycle-count correction for [`FusedRef`]: after the pop
/// walk, `len` cycles are charged iff cc `cc` reads as `pol`. Selected
/// arithmetically — these predicates carry random data, and a branch here
/// would mispredict constantly.
#[derive(Debug, Clone, Copy)]
struct CostTerm {
    cc: u32,
    pol: bool,
    len: u64,
}

/// A whole source iteration collapsed to one straight-line predicated
/// micro-op stream — the paper's if-conversion applied to the reference
/// engine itself. The builder walks the structured item tree and guards
/// every region op on its *path predicate*: the tested cc directly for a
/// top-level `If` arm whose condition nothing later can rewrite, or a
/// synthetic conjunction cc (a `CCAND` micro-op materialised at exactly
/// the source test point, indexed above the program's real cc space)
/// for nested arms, rewritten conditions, and code following a mid-body
/// `Break` (predicated on the break not having fired). Guards squash the
/// untaken side, so the executor needs zero instruction dispatch;
/// per-iteration cost is `base_cost` plus one [`CostTerm`] read per
/// conditional region, and the loop exits when any `breaks` cc — each
/// already `reached AND tested` — reads true after the walk.
///
/// Synthetic ccs spill past the machine state's cc file, so the fast
/// path runs against a scratch cc buffer of at least `cc_len` slots
/// (real ccs copied in before, committed back after).
#[derive(Debug, Clone)]
struct FusedRef {
    /// The iteration's own pop stream (source ops re-lowered with path
    /// guards, plus synthetic `CCAND`s) — distinct from the identity-order
    /// [`DecodedRef::pops`] that the generic path executes.
    pops: Vec<POp>,
    /// Cycles charged unconditionally: every op and test on the
    /// always-reached spine of the body.
    base_cost: u64,
    terms: Box<[CostTerm]>,
    /// Loop-exit predicates, one per `Break` item.
    breaks: Box<[u32]>,
    /// Scratch cc buffer demand (real cc demand plus synthetics).
    cc_len: u32,
}

/// Condition registers syntactically written anywhere in `items`, as a
/// bitmask. `None` when a written cc is ≥ 64 (fusion bails; no kernel
/// comes close).
fn cc_writes_mask(items: &[Item]) -> Option<u64> {
    let mut m = 0u64;
    for item in items {
        match item {
            Item::Op(op) => {
                if let OpKind::Cmp { dst, .. } | OpKind::CcAnd { dst, .. } = op.kind {
                    if dst.0 >= 64 {
                        return None;
                    }
                    m |= 1u64 << dst.0;
                }
            }
            Item::If(f) => {
                m |= cc_writes_mask(&f.then_items)? | cc_writes_mask(&f.else_items)?;
            }
            Item::Break(_) => {}
        }
    }
    Some(m)
}

/// Builder for [`FusedRef`]: one recursive walk over the item tree,
/// emitting guarded pops and accumulating the cost/exit algebra.
struct FusedBuilder {
    ops: UOps,
    base_cost: u64,
    terms: Vec<CostTerm>,
    breaks: Vec<u32>,
    /// Next synthetic cc index; starts above the real program's demand.
    next_cc: u32,
}

impl FusedBuilder {
    /// Emit `dst := (a.0 == a.1) && (b.0 == b.1)` into a fresh synthetic
    /// cc at the current stream position and return it (polarity true).
    fn synth(&mut self, a: (u32, bool), b: (u32, bool)) -> (u32, bool) {
        let dst = self.next_cc;
        self.next_cc += 1;
        let o = &mut self.ops;
        o.opc.push(UOpc::CcAnd);
        o.guard.push(NO_GUARD);
        o.dst.push(dst);
        o.a.push(a.0 as i64);
        o.b.push(b.0 as i64);
        o.aux.push(a.1 as u32 | (b.1 as u32) << 1);
        o.flags.push(0);
        (dst, true)
    }

    /// The path predicate for an `If` arm: conjoin `path` with `(cc,
    /// pol)`. Reads the tested cc directly only when the path is empty
    /// AND no op syntactically after the test (`later`, arms included)
    /// rewrites it — otherwise the value must be captured at test time
    /// into a synthetic cc (`cc && cc` doubles as a snapshot copy).
    fn compose(
        &mut self,
        path: Option<(u32, bool)>,
        cc: u32,
        pol: bool,
        later: u64,
    ) -> (u32, bool) {
        match path {
            None if cc < 64 && later & (1u64 << cc) == 0 => (cc, pol),
            None => self.synth((cc, pol), (cc, pol)),
            Some(p) => self.synth(p, (cc, pol)),
        }
    }

    /// Charge `n` cycles on the current path (unconditional → base cost;
    /// adjacent same-path charges coalesce into one term).
    fn cost(&mut self, path: Option<(u32, bool)>, n: u64) {
        match path {
            None => self.base_cost += n,
            Some((cc, pol)) => {
                if let Some(t) = self.terms.last_mut() {
                    if t.cc == cc && t.pol == pol {
                        t.len += n;
                        return;
                    }
                }
                self.terms.push(CostTerm { cc, pol, len: n });
            }
        }
    }

    /// Lower `items` under path predicate `path`. `after` is the cc-write
    /// mask of everything syntactically following this slice at enclosing
    /// levels; `top` marks the outermost level, the only place a `Break`
    /// may appear (a break nested in an arm would need its own arm-local
    /// reach algebra — no kernel has one, so fusion bails instead).
    fn emit(
        &mut self,
        items: &[Item],
        path: Option<(u32, bool)>,
        after: u64,
        top: bool,
    ) -> Option<()> {
        let mut suffix = vec![0u64; items.len() + 1];
        for (k, item) in items.iter().enumerate().rev() {
            suffix[k] = suffix[k + 1] | cc_writes_mask(std::slice::from_ref(item))?;
        }
        // The path only evolves at top level, where each `Break` conjoins
        // "didn't fire" onto everything after it.
        let mut cur = path;
        for (k, item) in items.iter().enumerate() {
            let later = after | suffix[k + 1];
            match item {
                Item::Op(op) => {
                    // A source guard under a path predicate would need a
                    // three-way conjunction; none of the kernels guard ops
                    // inside regions, so bail rather than model it.
                    if cur.is_some() && op.guard.is_some() {
                        return None;
                    }
                    let i = self.ops.push_op(op, 0);
                    if let Some((cc, pol)) = cur {
                        self.ops.guard[i as usize] = (cc << 1) | pol as u32;
                    }
                    self.cost(cur, 1);
                }
                Item::If(f) => {
                    self.cost(cur, 1);
                    let arm_w = cc_writes_mask(&f.then_items)? | cc_writes_mask(&f.else_items)?;
                    let later_full = later | arm_w;
                    // Both arm predicates are materialised *before* either
                    // arm's ops: a then-arm write to the tested cc must not
                    // leak into the else predicate's conjunction.
                    let tg = (!f.then_items.is_empty())
                        .then(|| self.compose(cur, f.cc.0, true, later_full));
                    let eg = (!f.else_items.is_empty())
                        .then(|| self.compose(cur, f.cc.0, false, later_full));
                    if let Some(tg) = tg {
                        self.emit(&f.then_items, Some(tg), later, false)?;
                    }
                    if let Some(eg) = eg {
                        self.emit(&f.else_items, Some(eg), later, false)?;
                    }
                }
                Item::Break(brk) => {
                    if !top {
                        return None;
                    }
                    self.cost(cur, 1);
                    let cc = brk.cc.0;
                    let clob = cc >= 64 || later & (1u64 << cc) != 0;
                    // fired := reached && cc. With `cur = reached`, the
                    // path for the rest of the body is `reached && !fired
                    // = reached && !cc`, which a single conjunction (or
                    // the untouched cc itself at top level) expresses.
                    cur = Some(match (cur, clob) {
                        (None, false) => {
                            self.breaks.push(cc);
                            (cc, false)
                        }
                        (p, _) => {
                            let fired = match p {
                                None => self.synth((cc, true), (cc, true)),
                                Some(p) => self.synth(p, (cc, true)),
                            };
                            self.breaks.push(fired.0);
                            (fired.0, false)
                        }
                    });
                }
            }
        }
        Some(())
    }
}

impl FusedRef {
    /// Attempt to collapse `spec`'s body. `real_cc_demand` is the decoded
    /// program's cc demand — synthetic predicates are allocated above it.
    fn build(spec: &LoopSpec, real_cc_demand: u32) -> Option<FusedRef> {
        let mut b = FusedBuilder {
            ops: UOps::default(),
            base_cost: 0,
            terms: Vec::new(),
            breaks: Vec::new(),
            next_cc: real_cc_demand,
        };
        b.emit(&spec.items, None, 0, true)?;
        let pops = (0..b.ops.len()).map(|i| b.ops.pack(i)).collect();
        let (_, cc_demand, _) = b.ops.demand();
        Some(FusedRef {
            pops,
            base_cost: b.base_cost,
            terms: b.terms.into_boxed_slice(),
            breaks: b.breaks.into_boxed_slice(),
            // Break/term ccs are either real (≤ real demand: the decoded
            // code's cc fold covers every tested cc) or synthetic (< next_cc).
            cc_len: cc_demand.max(b.next_cc).max(real_cc_demand),
        })
    }
}

/// A [`LoopSpec`] lowered to a flat sequential program.
#[derive(Debug, Clone)]
pub struct DecodedRef {
    code: Vec<RefInstr>,
    ops: UOps,
    /// Identity-order packed records for the sequential fast path.
    pops: Vec<POp>,
    n_regs: u32,
    n_ccs: u32,
    /// Static register/cc/array demand ([`UOps::demand`]); sequential
    /// execution takes the direct-apply fast path whenever the grown
    /// state meets it (arrays included: the branch-free [`exec_pop`]
    /// evaluates squashed loads/stores unconditionally, which must not
    /// fault on a missing array).
    reg_demand: u32,
    cc_demand: u32,
    arr_demand: u32,
    /// Worst-case costed cycles of one source iteration (every instruction
    /// executed, conditionals taking their dearer arm). While at least
    /// this much budget remains, an iteration cannot trip any budget
    /// check, so the fast path hoists them all.
    iter_cost_bound: u64,
    /// The iteration as one fused pop stream, when the body shape allows.
    fused: Option<FusedRef>,
}

impl DecodedRef {
    /// Lower a spec. Decoding never fails; anything the interpreter would
    /// reject at runtime is rejected identically at decoded runtime.
    pub fn decode(spec: &LoopSpec) -> Self {
        let mut d = DecodedRef {
            code: Vec::new(),
            ops: UOps::default(),
            pops: Vec::new(),
            n_regs: spec.n_regs,
            n_ccs: spec.n_ccs,
            reg_demand: 0,
            cc_demand: 0,
            arr_demand: 0,
            iter_cost_bound: 0,
            fused: None,
        };
        d.lower_items(&spec.items);
        d.pops = (0..d.ops.len()).map(|i| d.ops.pack(i)).collect();
        let (reg_demand, cc_demand, arr_demand) = d.ops.demand();
        // `If`/`Break` items read ccs outside the micro-op stream.
        d.reg_demand = reg_demand;
        d.arr_demand = arr_demand;
        d.cc_demand = cc_demand.max(d.code.iter().fold(0, |m, instr| match *instr {
            RefInstr::If { cc, .. } | RefInstr::Break { cc } | RefInstr::PredRun { cc, .. } => {
                m.max(cc + 1)
            }
            _ => m,
        }));
        d.iter_cost_bound = d
            .code
            .iter()
            .map(|instr| match *instr {
                RefInstr::Run { lo, hi } => (hi - lo) as u64,
                RefInstr::If { .. } | RefInstr::Break { cc: _ } => 1,
                RefInstr::PredRun {
                    t_lo, t_hi, f_hi, ..
                } => 1 + (t_hi - t_lo).max(f_hi - t_hi) as u64,
                RefInstr::Goto(_) => 0,
            })
            .sum();
        d.fused = FusedRef::build(spec, d.cc_demand);
        stats::count_decode(d.ops.len());
        d
    }

    fn lower_items(&mut self, items: &[Item]) {
        // Only adjacent ops at the SAME nesting level merge into a run: an
        // op following an `If` must start fresh, or it would be absorbed
        // into the then/else branch and skipped on the other path.
        let mut prev_op = false;
        for item in items {
            match item {
                Item::Op(op) => {
                    let i = self.ops.push_op(op, 0);
                    match self.code.last_mut() {
                        Some(RefInstr::Run { hi, .. }) if prev_op => *hi = i + 1,
                        _ => self.code.push(RefInstr::Run { lo: i, hi: i + 1 }),
                    }
                    prev_op = true;
                }
                Item::If(f)
                    if arm_foldable(&f.then_items, f.cc.0)
                        && arm_foldable(&f.else_items, f.cc.0) =>
                {
                    // If-conversion: predicate both arms on the condition
                    // instead of branching over them. Sound because the
                    // arms are plain unguarded ops and none of them writes
                    // the condition register, so every op's guard reads
                    // the same value the `If` tested.
                    let cc = f.cc.0;
                    let ops = &mut self.ops;
                    let mut lower_arm = |items: &[Item], on_true: u32| {
                        for item in items {
                            let Item::Op(op) = item else { unreachable!() };
                            let i = ops.push_op(op, 0);
                            ops.guard[i as usize] = (cc << 1) | on_true;
                        }
                        ops.len() as u32
                    };
                    let t_lo = lower_arm(&[], 0);
                    let t_hi = lower_arm(&f.then_items, 1);
                    let f_hi = lower_arm(&f.else_items, 0);
                    self.code.push(RefInstr::PredRun {
                        cc,
                        if_id: f.if_id,
                        t_lo,
                        t_hi,
                        f_hi,
                    });
                    prev_op = false;
                }
                Item::If(f) => {
                    let if_pc = self.code.len();
                    self.code.push(RefInstr::If {
                        cc: f.cc.0,
                        if_id: f.if_id,
                        else_pc: 0, // patched below
                    });
                    self.lower_items(&f.then_items);
                    let else_pc = if f.else_items.is_empty() {
                        self.code.len() as u32
                    } else {
                        let goto_pc = self.code.len();
                        self.code.push(RefInstr::Goto(0)); // patched below
                        let else_start = self.code.len() as u32;
                        self.lower_items(&f.else_items);
                        self.code[goto_pc] = RefInstr::Goto(self.code.len() as u32);
                        else_start
                    };
                    if let RefInstr::If { else_pc: e, .. } = &mut self.code[if_pc] {
                        *e = else_pc;
                    }
                    prev_op = false;
                }
                Item::Break(b) => {
                    self.code.push(RefInstr::Break { cc: b.cc.0 });
                    prev_op = false;
                }
            }
        }
    }

    /// Execute until `BREAK`, at most `max_cycles` costed instructions,
    /// mirroring [`crate::reference::run_reference`] (state growth, budget
    /// placement, trace contents) exactly. Pass `trace` to collect
    /// per-iteration IF outcomes; batch callers skip it.
    pub fn run(
        &self,
        st: &mut MachineState,
        scr: &mut Scratch,
        max_cycles: u64,
        mut trace: Option<&mut Vec<BTreeMap<u32, bool>>>,
    ) -> Result<RefCounts, SimError> {
        let t0 = Instant::now();
        st.grow(self.n_regs, self.n_ccs);
        let fast = self.reg_demand as usize <= st.regs.len()
            && self.cc_demand as usize <= st.ccs.len()
            && self.arr_demand as usize <= st.arrays.len();
        let mut cycles: u64 = 0;
        let mut iterations: u64 = 0;
        // IF outcomes exist only to feed the trace; batch callers pass
        // `None` and skip the bookkeeping entirely.
        let record = trace.is_some();
        // Trace-free fast path: run whole iterations with the budget checks
        // hoisted behind `iter_cost_bound`. On a budget bail the generic
        // loop below finishes from the carried counters and raises any
        // exhaustion error at the interpreter's exact cycle. (A zero bound
        // means a costless body; the generic loop handles it identically.)
        if fast && !record && self.iter_cost_bound > 0 {
            let broke = if let Some(f) = &self.fused {
                // The fused stream's synthetic predicates live above the
                // real cc file, so it runs against a scratch cc buffer:
                // real ccs in, walk, real ccs back out. Errors skip the
                // write-back — they discard all state anyway.
                scr.fccs.clear();
                scr.fccs.extend_from_slice(&st.ccs);
                if scr.fccs.len() < f.cc_len as usize {
                    scr.fccs.resize(f.cc_len as usize, false);
                }
                let MachineState { regs, arrays, .. } = &mut *st;
                // SAFETY: `fast` asserts the state meets the static demand
                // (cc_demand covers every tested condition register), the
                // buffer meets `cc_len`, and execution is sequential.
                let broke = unsafe {
                    ref_fusedloop(
                        &f.pops,
                        &f.terms,
                        &f.breaks,
                        f.base_cost,
                        regs,
                        &mut scr.fccs,
                        arrays,
                        self.iter_cost_bound,
                        max_cycles,
                        &mut cycles,
                        &mut iterations,
                    )?
                };
                let n = st.ccs.len();
                st.ccs.copy_from_slice(&scr.fccs[..n]);
                broke
            } else {
                let MachineState {
                    regs, ccs, arrays, ..
                } = &mut *st;
                // SAFETY: as above, minus the buffer (no synthetics here).
                unsafe {
                    ref_superloop(
                        &self.code,
                        &self.pops,
                        regs,
                        ccs,
                        arrays,
                        self.iter_cost_bound,
                        max_cycles,
                        &mut cycles,
                        &mut iterations,
                    )?
                }
            };
            if broke {
                let counts = RefCounts { iterations, cycles };
                stats::count_decoded_run(cycles, t0.elapsed().as_micros() as u64);
                return Ok(counts);
            }
        }
        loop {
            iterations += 1;
            if record {
                scr.outcomes.clear();
            }
            let mut pc = 0usize;
            let mut broke = false;
            while pc < self.code.len() {
                match self.code[pc] {
                    RefInstr::Run { lo, hi } => {
                        let n = (hi - lo) as u64;
                        // The interpreter errors before op `j` of the run
                        // iff `cycles + j > max_cycles`; when even the last
                        // op clears the budget, one comparison covers the
                        // whole run. (Errors discard state, so the partial
                        // commits of the exhaustion fallback are fine —
                        // only error identity matters, and op order is
                        // unchanged.)
                        if cycles.saturating_add(n - 1) <= max_cycles {
                            cycles += n;
                            if fast {
                                // Sequential execution always commits
                                // immediately, so direct apply is sound as
                                // soon as the bounds precondition holds. A
                                // stray BREAK from a bare `Item::Op`
                                // wrapper is discarded, exactly like
                                // `exec_seq`.
                                let MachineState {
                                    regs, ccs, arrays, ..
                                } = &mut *st;
                                for p in &self.pops[lo as usize..hi as usize] {
                                    // SAFETY: `fast` asserts the state
                                    // meets the static demand; execution
                                    // is sequential.
                                    unsafe { exec_pop(p, regs, ccs, arrays) }?;
                                }
                            } else {
                                for i in lo..hi {
                                    self.exec_seq(i as usize, st)?;
                                }
                            }
                        } else {
                            for i in lo..hi {
                                if cycles > max_cycles {
                                    return Err(SimError::CycleBudgetExceeded(max_cycles));
                                }
                                cycles += 1;
                                if fast {
                                    let MachineState {
                                        regs, ccs, arrays, ..
                                    } = &mut *st;
                                    // SAFETY: as above.
                                    unsafe { exec_pop(&self.pops[i as usize], regs, ccs, arrays) }?;
                                } else {
                                    self.exec_seq(i as usize, st)?;
                                }
                            }
                        }
                        pc += 1;
                    }
                    RefInstr::If { cc, if_id, else_pc } => {
                        if cycles > max_cycles {
                            return Err(SimError::CycleBudgetExceeded(max_cycles));
                        }
                        cycles += 1;
                        let taken = read_cc(st, cc)?;
                        if record {
                            scr.outcomes.push((if_id, taken));
                        }
                        pc = if taken { pc + 1 } else { else_pc as usize };
                    }
                    RefInstr::PredRun {
                        cc,
                        if_id,
                        t_lo,
                        t_hi,
                        f_hi,
                    } => {
                        // The test itself: same budget placement, cc read,
                        // and outcome recording as `If`.
                        if cycles > max_cycles {
                            return Err(SimError::CycleBudgetExceeded(max_cycles));
                        }
                        cycles += 1;
                        let taken = read_cc(st, cc)?;
                        if record {
                            scr.outcomes.push((if_id, taken));
                        }
                        let n = if taken { t_hi - t_lo } else { f_hi - t_hi } as u64;
                        if fast && (n == 0 || cycles.saturating_add(n - 1) <= max_cycles) {
                            cycles += n;
                            let MachineState {
                                regs, ccs, arrays, ..
                            } = &mut *st;
                            for p in &self.pops[t_lo as usize..f_hi as usize] {
                                // SAFETY: `fast` asserts the state meets
                                // the static demand; execution is
                                // sequential. The untaken arm is squashed
                                // by its guard (its value-select rewrites
                                // are unobservable and squashed stores
                                // cannot fault), so only the taken arm's
                                // effects and errors surface — in the
                                // interpreter's order.
                                unsafe { exec_pop(p, regs, ccs, arrays) }?;
                            }
                        } else {
                            // Near budget exhaustion (or demand unmet):
                            // step the taken arm alone, per-op, exactly
                            // like the interpreter.
                            let (lo, hi) = if taken { (t_lo, t_hi) } else { (t_hi, f_hi) };
                            for i in lo..hi {
                                if cycles > max_cycles {
                                    return Err(SimError::CycleBudgetExceeded(max_cycles));
                                }
                                cycles += 1;
                                if fast {
                                    let MachineState {
                                        regs, ccs, arrays, ..
                                    } = &mut *st;
                                    // SAFETY: as above.
                                    unsafe { exec_pop(&self.pops[i as usize], regs, ccs, arrays) }?;
                                } else {
                                    self.exec_seq(i as usize, st)?;
                                }
                            }
                        }
                        pc += 1;
                    }
                    RefInstr::Break { cc } => {
                        if cycles > max_cycles {
                            return Err(SimError::CycleBudgetExceeded(max_cycles));
                        }
                        cycles += 1;
                        if read_cc(st, cc)? {
                            broke = true;
                            break;
                        }
                        pc += 1;
                    }
                    RefInstr::Goto(t) => pc = t as usize,
                }
            }
            if let Some(tr) = trace.as_mut() {
                tr.push(scr.outcomes.iter().copied().collect());
            }
            if broke {
                break;
            }
            if cycles > max_cycles {
                return Err(SimError::CycleBudgetExceeded(max_cycles));
            }
        }
        let counts = RefCounts { iterations, cycles };
        stats::count_decoded_run(cycles, t0.elapsed().as_micros() as u64);
        Ok(counts)
    }

    /// Sequential execution applies each effect immediately (one op per
    /// cycle can never conflict). `Break`/`If` effects arising from bare
    /// `Item::Op` wrappers are discarded, exactly as the interpreter's
    /// `run_items` discards `commit`'s outcome for plain ops.
    #[inline]
    fn exec_seq(&self, i: usize, st: &mut MachineState) -> Result<(), SimError> {
        match self.ops.eval(i, st)? {
            PEff::Gpr(r, v) => {
                let slot = st.regs.get_mut(r as usize).ok_or_else(|| bad_reg(r))?;
                *slot = v;
            }
            PEff::Cc(c, v) => {
                let slot = st.ccs.get_mut(c as usize).ok_or_else(|| bad_cc(c))?;
                *slot = v;
            }
            PEff::Mem(arr, elem, v) => st.arrays[arr as usize][elem] = v,
            PEff::Break | PEff::If | PEff::Squash => {}
        }
        Ok(())
    }
}

/// Cycle/iteration counters of a decoded VLIW run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VliwCounts {
    /// Cycles spent in the body, excluding prologue/epilogue.
    pub body_cycles: u64,
    /// Prologue + body + epilogue cycles.
    pub total_cycles: u64,
    /// Transformed-loop iterations entered (back edges + 1).
    pub iterations: u64,
}

/// A packed block successor: `(target << 1) | back_edge`. Packing lets a
/// data-dependent branch terminator pick its successor with a conditional
/// move instead of a branch — which block runs next is a function of
/// random trial data, so a branch here mispredicts on nearly every
/// dispatch of a condition-carrying loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DSucc(u64);

impl DSucc {
    fn new(tgt: usize, back: bool) -> Self {
        DSucc(((tgt as u64) << 1) | back as u64)
    }

    fn tgt(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn back(self) -> u64 {
        self.0 & 1
    }

    /// Branch-free select between two successors.
    fn sel(take: bool, t: DSucc, f: DSucc) -> DSucc {
        let m = (take as u64).wrapping_neg();
        DSucc((t.0 & m) | (f.0 & !m))
    }
}

/// Decoded block terminator; successors are packed [`DSucc`] words
/// (resolved from [`psp_machine::Succ`] at decode time).
#[derive(Debug, Clone, Copy)]
enum DTerm {
    Jump(DSucc),
    Branch { cc: u32, t: DSucc, f: DSucc },
    Exit,
}

#[derive(Debug, Clone)]
struct DBlock {
    /// Micro-op ranges, one per cycle.
    cycles: Vec<Cyc>,
    term: DTerm,
    /// Condition registers read by any terminator reachable from this
    /// block through zero-cycle dispatch chains: the fast path snapshots
    /// exactly these before the block's last cycle instead of copying the
    /// whole cc file.
    snap_ccs: Vec<u32>,
    /// `(head_lo, tail_lo, tail_hi)` into the packed pool when the whole
    /// block can run as two straight-line streams (all cycles fused,
    /// contiguous in the pool, no BREAK before the last cycle): the fast
    /// path executes `head_lo..tail_lo`, snapshots, then `tail_lo..tail_hi`,
    /// paying block-loop overhead once per block instead of once per cycle.
    merged: Option<(u32, u32, u32)>,
    /// `Some(back_edge_weight)` when every terminator successor is this
    /// block itself (a `Jump` to self, or a `Branch` whose arms agree —
    /// pipelined single-block kernels end in exactly that shape). Combined
    /// with `merged`, the run loop collapses into a superloop: stream
    /// slices, budget bound, and state pointers hoisted once, no snapshot
    /// (no reachable terminator reads one), no per-iteration block
    /// dispatch. The uniform-`Branch` cc read is skipped — under the
    /// `fast` demand precondition it cannot fault and its value picks
    /// between identical successors.
    self_loop: Option<u64>,
}

/// A [`VliwLoop`] lowered to flat micro-op ranges and integer successors.
#[derive(Debug, Clone)]
pub struct DecodedVliw {
    ops: UOps,
    /// Packed execution schedules of all fusible cycles, concatenated
    /// ([`Cyc::slo`]/[`Cyc::slen`] index into this pool).
    pexec: Vec<POp>,
    prologue: Vec<Cyc>,
    epilogue: Vec<Cyc>,
    blocks: Vec<DBlock>,
    entry: usize,
    /// Static register/cc/array demand ([`UOps::demand`] plus terminator
    /// ccs); runs whose state meets it take the fused fast path on
    /// hazard-free cycles.
    reg_demand: u32,
    cc_demand: u32,
    arr_demand: u32,
    /// Whether the whole CFG qualifies for [`vliw_dispatchloop`]: every
    /// non-empty block is `merged` and every successor index is in range,
    /// so the fast path can iterate blocks with budget checks hoisted and
    /// no per-block malformedness tests. (Multi-block programs — the
    /// condition-dependent block successions PSP emits for loops with
    /// conditions — spend their whole life in this dispatch.)
    dispatch_ok: bool,
}

impl DecodedVliw {
    /// Lower a compiled loop. Like the interpreter, malformed successor
    /// indices only fault when actually taken.
    pub fn decode(prog: &VliwLoop) -> Self {
        let mut ops = UOps::default();
        let mut pexec: Vec<POp> = Vec::new();
        let mut lower_cycle = |cycle: &[Operation]| {
            let lo = ops.len() as u32;
            for op in cycle {
                ops.push_op(op, 0);
            }
            let hi = ops.len() as u32;
            match ops.fuse_order(lo, hi) {
                Some(order) => {
                    let slo = pexec.len() as u32;
                    pexec.extend(
                        order
                            .iter()
                            .filter(|&&k| ops.opc[k as usize] != UOpc::If)
                            .map(|&k| ops.pack(k as usize)),
                    );
                    Cyc {
                        lo,
                        hi,
                        slo,
                        slen: pexec.len() as u32 - slo,
                        fused: true,
                    }
                }
                None => Cyc {
                    lo,
                    hi,
                    slo: 0,
                    slen: 0,
                    fused: false,
                },
            }
        };
        let prologue: Vec<_> = prog.prologue.iter().map(|c| lower_cycle(c)).collect();
        let mut blocks: Vec<_> = prog
            .blocks
            .iter()
            .map(|b| DBlock {
                cycles: b.cycles.iter().map(|c| lower_cycle(c)).collect(),
                term: match b.term {
                    VliwTerm::Jump(s) => DTerm::Jump(DSucc::new(s.block, s.back_edge)),
                    VliwTerm::Branch {
                        cc,
                        on_true,
                        on_false,
                    } => DTerm::Branch {
                        cc: cc.0,
                        t: DSucc::new(on_true.block, on_true.back_edge),
                        f: DSucc::new(on_false.block, on_false.back_edge),
                    },
                    VliwTerm::Exit => DTerm::Exit,
                },
                snap_ccs: Vec::new(),
                merged: None,
                self_loop: None,
            })
            .collect();
        // A snapshot taken before block B's last cycle serves B's own
        // terminator and, because zero-cycle blocks dispatch without
        // refreshing it, every terminator reachable from B through chains
        // of empty blocks. Collect those ccs per block.
        for bi in 0..blocks.len() {
            let mut ccs: Vec<u32> = Vec::new();
            let mut stack = vec![bi];
            let mut seen = vec![false; blocks.len()];
            while let Some(b) = stack.pop() {
                if std::mem::replace(&mut seen[b], true) {
                    continue;
                }
                let succ = |t: usize, stack: &mut Vec<usize>| {
                    if blocks.get(t).is_some_and(|nb| nb.cycles.is_empty()) {
                        stack.push(t);
                    }
                };
                match blocks[b].term {
                    DTerm::Branch { cc, t, f } => {
                        if !ccs.contains(&cc) {
                            ccs.push(cc);
                        }
                        succ(t.tgt(), &mut stack);
                        succ(f.tgt(), &mut stack);
                    }
                    DTerm::Jump(s) => succ(s.tgt(), &mut stack),
                    DTerm::Exit => {}
                }
            }
            blocks[bi].snap_ccs = ccs;
        }
        let epilogue: Vec<_> = prog.epilogue.iter().map(|c| lower_cycle(c)).collect();
        // Block merging: a BREAK exits after its own cycle, so any BREAK
        // before the last cycle forces per-cycle stepping; fused cycles of
        // one block are contiguous in the pool by construction (checked
        // defensively anyway).
        for b in &mut blocks {
            let n = b.cycles.len();
            let all_fused = n > 0
                && b.cycles.iter().all(|c| c.fused)
                && b.cycles
                    .windows(2)
                    .all(|w| w[0].slo + w[0].slen == w[1].slo);
            let head_breakless = b.cycles[..n.saturating_sub(1)]
                .iter()
                .all(|c| (c.lo..c.hi).all(|k| ops.opc[k as usize] != UOpc::Break));
            if all_fused && head_breakless {
                let last = b.cycles[n - 1];
                b.merged = Some((b.cycles[0].slo, last.slo, last.slo + last.slen));
            }
        }
        for (bi, b) in blocks.iter_mut().enumerate() {
            b.self_loop = match b.term {
                DTerm::Jump(s) if s.tgt() == bi => Some(s.back()),
                DTerm::Branch { t, f, .. } if t == f && t.tgt() == bi => Some(t.back()),
                _ => None,
            };
        }
        let (reg_demand, mut cc_demand, arr_demand) = ops.demand();
        // Terminator ccs join the demand so the fast path may index the
        // snapshot directly.
        for b in &blocks {
            if let DTerm::Branch { cc, .. } = b.term {
                cc_demand = cc_demand.max(cc + 1);
            }
        }
        let dispatch_ok = !blocks.is_empty()
            && blocks.iter().all(|b| {
                let succs_ok = match b.term {
                    DTerm::Jump(s) => s.tgt() < blocks.len(),
                    DTerm::Branch { t, f, .. } => t.tgt() < blocks.len() && f.tgt() < blocks.len(),
                    DTerm::Exit => true,
                };
                succs_ok && (b.cycles.is_empty() || b.merged.is_some())
            });
        let d = DecodedVliw {
            ops,
            pexec,
            prologue,
            epilogue,
            blocks,
            entry: prog.entry,
            reg_demand,
            cc_demand,
            arr_demand,
            dispatch_ok,
        };
        stats::count_decode(d.ops.len());
        d
    }

    /// Execute to completion (at most `max_cycles` body cycles), mirroring
    /// [`crate::vliw_run::run_vliw`] exactly: prologue break short-circuit,
    /// pre-cycle cc snapshot for branch dispatch chains, budget placement,
    /// iteration counting, and epilogue-on-exit.
    pub fn run(
        &self,
        st: &mut MachineState,
        scr: &mut Scratch,
        max_cycles: u64,
    ) -> Result<VliwCounts, SimError> {
        let t0 = Instant::now();
        scr.prepare(st);
        let fast = self.reg_demand as usize <= st.regs.len()
            && self.cc_demand as usize <= st.ccs.len()
            && self.arr_demand as usize <= st.arrays.len();
        let mut body_cycles: u64 = 0;
        let mut total_cycles: u64 = 0;
        let mut iterations: u64 = 1;

        for &c in &self.prologue {
            total_cycles += 1;
            if exec_cycle(&self.ops, &self.pexec, c, fast, st, scr)? {
                return self.finish(st, scr, fast, 0, total_cycles, 0, t0);
            }
        }

        let mut bi = self.entry;
        let mut block = self
            .blocks
            .get(self.entry)
            .ok_or_else(|| SimError::Malformed(format!("entry block {} missing", self.entry)))?;
        let mut have_snap = false;

        // Hop through empty Jump-only blocks once up front (e.g. an empty
        // entry dispatch block in front of a self-loop kernel): the steady
        // state then reaches the superloop instead of paying per-iteration
        // dispatch. A Jump reads no cc, costs no cycle, and counts its
        // back-edge exactly like both loops below; the hop bound only
        // matters for an all-empty cycle, which diverges identically in
        // the generic loop.
        let mut hops = 0;
        while block.cycles.is_empty() && hops <= self.blocks.len() {
            let DTerm::Jump(s) = block.term else { break };
            let Some(next) = self.blocks.get(s.tgt()) else {
                break;
            };
            iterations += s.back();
            bi = s.tgt();
            block = next;
            hops += 1;
        }

        loop {
            if fast {
                if let (Some(back), Some((head_lo, tail_lo, tail_hi))) =
                    (block.self_loop, block.merged)
                {
                    // Superloop: the block's only successor is itself, so
                    // iterate the two streams with everything else hoisted
                    // out — ends on BREAK or hands the last few cycles to
                    // the generic path when the budget gets close (which
                    // then raises the exact exhaustion error).
                    let n = block.cycles.len() as u64;
                    let _ = tail_lo;
                    let body = &self.pexec[head_lo as usize..tail_hi as usize];
                    let body_before = body_cycles;
                    let broke = {
                        let MachineState {
                            regs, ccs, arrays, ..
                        } = &mut *st;
                        // SAFETY: `fast` asserts the state meets the
                        // static demand; the stream is a `fuse_order`
                        // schedule.
                        unsafe {
                            superloop(
                                body,
                                regs,
                                ccs,
                                arrays,
                                n,
                                back,
                                max_cycles,
                                &mut body_cycles,
                                &mut iterations,
                            )?
                        }
                    };
                    total_cycles += body_cycles - body_before;
                    if broke {
                        return self.finish(
                            st,
                            scr,
                            fast,
                            body_cycles,
                            total_cycles,
                            iterations,
                            t0,
                        );
                    }
                } else if self.dispatch_ok {
                    // Multi-block fast path: condition-dependent block
                    // succession with the bookkeeping hoisted. Bails to the
                    // generic loop when the next block nears the budget.
                    let body_before = body_cycles;
                    let exit = {
                        let MachineState {
                            regs, ccs, arrays, ..
                        } = &mut *st;
                        // SAFETY: `fast` asserts the state meets the static
                        // demand (terminator ccs included, and `prepare`
                        // sized the snapshot to match); the streams are
                        // `fuse_order` schedules.
                        unsafe {
                            vliw_dispatchloop(
                                &self.blocks,
                                &self.pexec,
                                &mut scr.snap,
                                regs,
                                ccs,
                                arrays,
                                bi,
                                max_cycles,
                                &mut have_snap,
                                &mut body_cycles,
                                &mut iterations,
                            )?
                        }
                    };
                    total_cycles += body_cycles - body_before;
                    match exit {
                        DispatchExit::Broke | DispatchExit::Exited => {
                            return self.finish(
                                st,
                                scr,
                                fast,
                                body_cycles,
                                total_cycles,
                                iterations,
                                t0,
                            );
                        }
                        DispatchExit::Bail(nbi) => {
                            bi = nbi;
                            block = &self.blocks[bi];
                        }
                    }
                }
            }
            let mut broke = false;
            let n = block.cycles.len();
            // One budget comparison per block covers every cycle in it;
            // the per-cycle check only runs near exhaustion.
            let budget_ok = body_cycles.saturating_add(n as u64) <= max_cycles;
            let merged = if fast && budget_ok {
                block.merged
            } else {
                None
            };
            if let Some((head_lo, tail_lo, tail_hi)) = merged {
                // Whole-block fast path: head stream, targeted snapshot,
                // tail stream — identical op order and per-cycle semantics
                // (no head BREAK, budget pre-cleared), one pass of loop
                // bookkeeping.
                let MachineState {
                    regs, ccs, arrays, ..
                } = &mut *st;
                for p in &self.pexec[head_lo as usize..tail_lo as usize] {
                    // SAFETY: `fast` asserts the state meets the static
                    // demand and the streams are `fuse_order` schedules.
                    unsafe { exec_pop(p, regs, ccs, arrays) }?;
                }
                for &cc in &block.snap_ccs {
                    scr.snap[cc as usize] = ccs[cc as usize];
                }
                have_snap = true;
                for p in &self.pexec[tail_lo as usize..tail_hi as usize] {
                    // SAFETY: as above.
                    broke |= unsafe { exec_pop(p, regs, ccs, arrays) }?;
                }
                body_cycles += n as u64;
                total_cycles += n as u64;
            } else {
                for (i, &c) in block.cycles.iter().enumerate() {
                    if !budget_ok && body_cycles >= max_cycles {
                        return Err(SimError::CycleBudgetExceeded(max_cycles));
                    }
                    if i + 1 == n {
                        if fast {
                            // Targeted snapshot: only the ccs a reachable
                            // terminator can read (demand keeps them in
                            // bounds).
                            for &cc in &block.snap_ccs {
                                scr.snap[cc as usize] = st.ccs[cc as usize];
                            }
                        } else {
                            scr.snap.clear();
                            scr.snap.extend_from_slice(&st.ccs);
                        }
                        have_snap = true;
                    }
                    body_cycles += 1;
                    total_cycles += 1;
                    if exec_cycle(&self.ops, &self.pexec, c, fast, st, scr)? {
                        broke = true;
                        break;
                    }
                }
            }
            if broke {
                return self.finish(st, scr, fast, body_cycles, total_cycles, iterations, t0);
            }
            let succ = match block.term {
                DTerm::Jump(s) => s,
                DTerm::Branch { cc, t, f } => {
                    let v = if have_snap {
                        if fast {
                            scr.snap[cc as usize]
                        } else {
                            *scr.snap.get(cc as usize).ok_or_else(|| bad_cc(cc))?
                        }
                    } else {
                        // Entry dispatch before any body cycle: committed
                        // state is the right one.
                        read_cc(st, cc)?
                    };
                    // Branch-free: the successor is a function of random
                    // trial data, so a branch here mispredicts on nearly
                    // every dispatch.
                    DSucc::sel(v, t, f)
                }
                DTerm::Exit => {
                    return self.finish(st, scr, fast, body_cycles, total_cycles, iterations, t0);
                }
            };
            iterations += succ.back();
            let tgt = succ.tgt();
            bi = tgt;
            block = self
                .blocks
                .get(tgt)
                .ok_or_else(|| SimError::Malformed(format!("block {tgt} missing")))?;
            if !block.cycles.is_empty() {
                have_snap = false;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        st: &mut MachineState,
        scr: &mut Scratch,
        fast: bool,
        body_cycles: u64,
        mut total_cycles: u64,
        iterations: u64,
        t0: Instant,
    ) -> Result<VliwCounts, SimError> {
        for &c in &self.epilogue {
            total_cycles += 1;
            exec_cycle(&self.ops, &self.pexec, c, fast, st, scr)?;
        }
        stats::count_decoded_run(total_cycles, t0.elapsed().as_micros() as u64);
        Ok(VliwCounts {
            body_cycles,
            total_cycles,
            iterations,
        })
    }
}

/// Decoded-engine counterpart of [`crate::reference::run_reference`]:
/// decodes, runs once, and materializes a full [`RefRun`] (including the
/// IF-outcome trace). Bit-identical by the differential suites.
pub fn run_reference_decoded(
    spec: &LoopSpec,
    state: MachineState,
    max_cycles: u64,
) -> Result<RefRun, SimError> {
    let d = DecodedRef::decode(spec);
    let mut st = state;
    let mut scr = Scratch::default();
    let mut trace = Vec::new();
    let c = d.run(&mut st, &mut scr, max_cycles, Some(&mut trace))?;
    Ok(RefRun {
        state: st,
        iterations: c.iterations,
        cycles: c.cycles,
        trace,
    })
}

/// Decoded-engine counterpart of [`crate::vliw_run::run_vliw`].
pub fn run_vliw_decoded(
    prog: &VliwLoop,
    state: MachineState,
    max_cycles: u64,
) -> Result<VliwRun, SimError> {
    let d = DecodedVliw::decode(prog);
    let mut st = state;
    let mut scr = Scratch::default();
    let c = d.run(&mut st, &mut scr, max_cycles)?;
    Ok(VliwRun {
        state: st,
        body_cycles: c.body_cycles,
        total_cycles: c.total_cycles,
        iterations: c.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::vliw_run::run_vliw;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp, Guard, LoopBuilder, Operation, Reg};
    use psp_machine::{Succ, VliwBlock, VliwTerm};
    use psp_predicate::PredicateMatrix;

    fn vecmin() -> LoopSpec {
        let mut b = LoopBuilder::new("vecmin");
        let x = b.array("x");
        let one = b.named_reg("one");
        let n = b.named_reg("n");
        let k = b.named_reg("k");
        let m = b.named_reg("m");
        let xk = b.reg();
        let xm = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(load(xm, x, m));
        b.op(cmp(CmpOp::Lt, cc0, xk, xm));
        b.if_else(
            cc0,
            |b| {
                b.op(copy(m, k));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        b.finish([one, n, k, m], [m])
    }

    fn initial(data: Vec<i64>) -> MachineState {
        let mut s = MachineState::new(8, 2);
        s.regs[0] = 1;
        s.regs[1] = data.len() as i64;
        s.push_array(data);
        s
    }

    fn fig1b() -> VliwLoop {
        let x = ArrayId(0);
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![
                vec![
                    load(Reg(4), x, Reg(2)),
                    load(Reg(5), x, Reg(3)),
                    add(Reg(6), Reg(2), Reg(0)),
                ],
                vec![
                    cmp(CmpOp::Lt, CcReg(0), Reg(4), Reg(5)),
                    cmp(CmpOp::Ge, CcReg(1), Reg(6), Reg(1)),
                ],
                vec![
                    if_(CcReg(0)),
                    Operation {
                        guard: Some(Guard::when(CcReg(0))),
                        ..copy(Reg(3), Reg(2))
                    },
                    break_(CcReg(1)),
                    copy(Reg(2), Reg(6)),
                ],
            ],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(0),
                on_false: Succ::back(0),
            },
        };
        VliwLoop {
            name: "fig1b".into(),
            prologue: vec![],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        }
    }

    #[test]
    fn decoded_reference_matches_interpreter() {
        for data in [vec![5, 3, 8, 1, 9, 1], vec![7], vec![2, 2, 2]] {
            let spec = vecmin();
            let a = run_reference(&spec, initial(data.clone()), 10_000).unwrap();
            let b = run_reference_decoded(&spec, initial(data), 10_000).unwrap();
            assert_eq!(a.state, b.state);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.trace, b.trace);
        }
    }

    #[test]
    fn decoded_vliw_matches_interpreter() {
        let prog = fig1b();
        let mut init = initial(vec![5, 3, 8, 1, 9, 1]);
        init.grow(8, 2);
        let a = run_vliw(&prog, init.clone(), 100_000).unwrap();
        let b = run_vliw_decoded(&prog, init, 100_000).unwrap();
        assert_eq!(a.state, b.state);
        assert_eq!(a.body_cycles, b.body_cycles);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn decoded_errors_are_bit_identical() {
        // Budget exhaustion.
        let mut b = LoopBuilder::new("inf");
        let cc = b.cc();
        let r = b.reg();
        b.op(cmp(CmpOp::Lt, cc, r, -1i64));
        b.break_(cc);
        let spec = b.finish([r], [r]);
        let a = run_reference(&spec, MachineState::new(1, 1), 100).unwrap_err();
        let d = run_reference_decoded(&spec, MachineState::new(1, 1), 100).unwrap_err();
        assert_eq!(a, d);

        // Out-of-bounds store, message and all.
        let prog = VliwLoop {
            name: "oob".into(),
            prologue: vec![],
            blocks: vec![VliwBlock {
                id: 0,
                matrix: PredicateMatrix::universe(),
                cycles: vec![vec![store(ArrayId(0), Reg(0), 1i64)]],
                term: VliwTerm::Exit,
            }],
            entry: 0,
            epilogue: vec![],
        };
        let mut s = MachineState::new(1, 1);
        s.regs[0] = 99;
        s.push_array(vec![0; 3]);
        let a = run_vliw(&prog, s.clone(), 100).unwrap_err();
        let d = run_vliw_decoded(&prog, s, 100).unwrap_err();
        assert_eq!(a, d);
        assert_eq!(a.to_string(), "bad store: a0[99] out of bounds (len 3)");

        // Same-cycle write conflict.
        let prog = VliwLoop {
            name: "conflict".into(),
            prologue: vec![],
            blocks: vec![VliwBlock {
                id: 0,
                matrix: PredicateMatrix::universe(),
                cycles: vec![vec![copy(Reg(0), 1i64), copy(Reg(0), 2i64)]],
                term: VliwTerm::Exit,
            }],
            entry: 0,
            epilogue: vec![],
        };
        let a = run_vliw(&prog, MachineState::new(2, 1), 100).unwrap_err();
        let d = run_vliw_decoded(&prog, MachineState::new(2, 1), 100).unwrap_err();
        assert_eq!(a, d);
        assert!(matches!(a, SimError::WriteConflict(_)));

        // Missing block, only when taken.
        let prog = VliwLoop {
            name: "missing".into(),
            prologue: vec![],
            blocks: vec![VliwBlock {
                id: 0,
                matrix: PredicateMatrix::universe(),
                cycles: vec![vec![copy(Reg(0), 1i64)]],
                term: VliwTerm::Jump(Succ::fall(7)),
            }],
            entry: 0,
            epilogue: vec![],
        };
        let a = run_vliw(&prog, MachineState::new(1, 1), 100).unwrap_err();
        let d = run_vliw_decoded(&prog, MachineState::new(1, 1), 100).unwrap_err();
        assert_eq!(a, d);
        assert_eq!(a.to_string(), "malformed code: block 7 missing");
    }

    #[test]
    fn scratch_reuse_is_clean_across_runs() {
        // The same Scratch serves many runs; conflict stamps must never
        // leak between them.
        let spec = vecmin();
        let d = DecodedRef::decode(&spec);
        let dv = DecodedVliw::decode(&fig1b());
        let mut scr = Scratch::default();
        for data in [vec![5, 3, 8], vec![1], vec![4, 4, 4, 4]] {
            let mut st = initial(data.clone());
            d.run(&mut st, &mut scr, 10_000, None).unwrap();
            let gold = run_reference(&spec, initial(data.clone()), 10_000).unwrap();
            assert_eq!(st, gold.state);

            let mut st = initial(data.clone());
            st.grow(8, 2);
            let c = dv.run(&mut st, &mut scr, 10_000).unwrap();
            let mut init = initial(data);
            init.grow(8, 2);
            let gold = run_vliw(&fig1b(), init, 10_000).unwrap();
            assert_eq!(st, gold.state);
            assert_eq!(c.body_cycles, gold.body_cycles);
        }
    }
}
