//! Branch profiling — the paper's §4 extension.
//!
//! "The probabilities could be obtained by profiling, and a mapping from
//! path sets … to their probabilities would enable exact calculation of
//! estimated mean (dynamic) II of each intermediate schedule." A
//! [`BranchProfile`] holds per-IF truth probabilities estimated from a
//! reference-run trace; combined with [`psp_predicate::PathSet::probability`]
//! it assigns a measure to any path set, assuming outcomes independent
//! across iterations (a stationary model).

use crate::reference::RefRun;
use psp_predicate::PathSet;

/// Per-IF probability of the True outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchProfile {
    /// `p_true[i]` is the estimated probability that IF `i` takes its True
    /// branch.
    pub p_true: Vec<f64>,
    /// Number of iterations observed.
    pub samples: u64,
}

impl BranchProfile {
    /// A uniform profile (every branch 50/50) for `n_ifs` IFs — the static
    /// assumption used when no profile is available.
    pub fn uniform(n_ifs: u32) -> Self {
        Self {
            p_true: vec![0.5; n_ifs as usize],
            samples: 0,
        }
    }

    /// A profile with explicitly given probabilities.
    pub fn with_probs(p_true: Vec<f64>) -> Self {
        Self { p_true, samples: 0 }
    }

    /// Estimate from a reference-run trace. IFs that never executed get
    /// probability 0.5.
    pub fn from_run(run: &RefRun, n_ifs: u32) -> Self {
        let mut taken = vec![0u64; n_ifs as usize];
        let mut seen = vec![0u64; n_ifs as usize];
        for iter in &run.trace {
            for (&if_id, &outcome) in iter {
                if (if_id as usize) < seen.len() {
                    seen[if_id as usize] += 1;
                    if outcome {
                        taken[if_id as usize] += 1;
                    }
                }
            }
        }
        let p_true = taken
            .iter()
            .zip(&seen)
            .map(|(&t, &s)| if s == 0 { 0.5 } else { t as f64 / s as f64 })
            .collect();
        Self {
            p_true,
            samples: run.trace.len() as u64,
        }
    }

    /// Probability that IF `row` is True (any iteration column — the model
    /// is stationary).
    pub fn prob(&self, row: u32) -> f64 {
        self.p_true.get(row as usize).copied().unwrap_or(0.5)
    }

    /// Measure of a path set under this profile.
    pub fn path_probability(&self, set: &PathSet) -> f64 {
        set.probability(|row, _col| self.prob(row))
    }

    /// Expected value over `(path set, value)` pairs, e.g. the estimated
    /// mean dynamic II from per-path IIs. The path sets should partition
    /// the universe; any residual probability mass is ignored.
    pub fn expected_value(&self, paths: &[(PathSet, f64)]) -> f64 {
        paths
            .iter()
            .map(|(s, v)| self.path_probability(s) * v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::state::MachineState;
    use psp_ir::op::build::*;
    use psp_ir::{CmpOp, LoopBuilder};
    use psp_predicate::PredicateMatrix;

    #[test]
    fn uniform_profile() {
        let p = BranchProfile::uniform(3);
        assert_eq!(p.p_true, vec![0.5; 3]);
        assert_eq!(p.prob(0), 0.5);
        assert_eq!(p.prob(9), 0.5); // out of range defaults
    }

    #[test]
    fn from_run_counts_outcomes() {
        // Loop over x: if (x[k] > 0) taken; 3 of 4 elements positive.
        let mut b = LoopBuilder::new("p");
        let x = b.array("x");
        let one = b.reg();
        let n = b.reg();
        let k = b.reg();
        let acc = b.reg();
        let xk = b.reg();
        let cc0 = b.cc();
        let cc1 = b.cc();
        b.op(load(xk, x, k));
        b.op(cmp(CmpOp::Gt, cc0, xk, 0i64));
        b.if_else(
            cc0,
            |b| {
                b.op(add(acc, acc, xk));
            },
            |_| {},
        );
        b.op(add(k, k, one));
        b.op(cmp(CmpOp::Ge, cc1, k, n));
        b.break_(cc1);
        let spec = b.finish([one, n, k, acc], [acc]);

        let mut s = MachineState::new(8, 2);
        s.regs[0] = 1;
        s.regs[1] = 4;
        s.push_array(vec![5, -2, 3, 7]);
        let run = run_reference(&spec, s, 10_000).unwrap();
        let prof = BranchProfile::from_run(&run, 1);
        assert_eq!(prof.samples, 4);
        assert!((prof.prob(0) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn path_probability_uses_profile() {
        let prof = BranchProfile::with_probs(vec![0.9]);
        let true_path = PathSet::from_matrix(PredicateMatrix::single(0, 0, true));
        assert!((prof.path_probability(&true_path) - 0.9).abs() < 1e-9);
        let both = PathSet::universe();
        assert!((prof.path_probability(&both) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_ii_of_variable_ii_loop() {
        // True path II 2 with prob 0.25, false path II 3 with prob 0.75.
        let prof = BranchProfile::with_probs(vec![0.25]);
        let paths = vec![
            (
                PathSet::from_matrix(PredicateMatrix::single(0, 0, true)),
                2.0,
            ),
            (
                PathSet::from_matrix(PredicateMatrix::single(0, 0, false)),
                3.0,
            ),
        ];
        let e = prof.expected_value(&paths);
        assert!((e - 2.75).abs() < 1e-9);
    }
}
