//! Interpreter for compiled [`VliwLoop`]s.
//!
//! Per-cycle semantics: every operation of a cycle reads the pre-cycle
//! state (including guard condition registers — the tree-VLIW property that
//! lets an operation share a cycle with the IF resolving its guard), all
//! writes commit at end of cycle, and a fired `BREAK` transfers control to
//! the epilogue after the cycle completes.
//!
//! Branch terminators test the value the ending IF *saw* (the pre-cycle
//! value of its condition register), so a compare writing the same register
//! in the IF's own cycle does not affect the taken direction.

use crate::state::{Effect, MachineState, SimError};
use crate::stats;
use psp_machine::{VliwLoop, VliwTerm};
use std::time::Instant;

/// Result of running a compiled loop.
#[derive(Debug, Clone)]
pub struct VliwRun {
    /// Final architectural state.
    pub state: MachineState,
    /// Cycles spent in the body (steady state), excluding prologue/epilogue.
    pub body_cycles: u64,
    /// Prologue + body + epilogue cycles.
    pub total_cycles: u64,
    /// Number of transformed-loop iterations entered (back edges + 1).
    pub iterations: u64,
}

impl VliwRun {
    /// Mean body cycles per transformed iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.body_cycles as f64 / self.iterations as f64
        }
    }
}

/// Execute the loop to completion (at most `max_cycles` body cycles).
pub fn run_vliw(
    prog: &VliwLoop,
    mut state: MachineState,
    max_cycles: u64,
) -> Result<VliwRun, SimError> {
    let t0 = Instant::now();
    let mut body_cycles: u64 = 0;
    let mut total_cycles: u64 = 0;
    let mut iterations: u64 = 1;
    // One effect buffer for the whole run; every cycle reuses it.
    let mut effects: Vec<Effect> = Vec::new();

    for cycle in &prog.prologue {
        total_cycles += 1;
        let (broke, _) = state.step_cycle_into(cycle, &mut effects)?;
        if broke {
            // A BREAK may legitimately fire during startup for very short
            // trip counts.
            return finish(prog, state, 0, total_cycles, 0, &mut effects, t0);
        }
    }

    let mut block = prog
        .blocks
        .get(prog.entry)
        .ok_or_else(|| SimError::Malformed(format!("entry block {} missing", prog.entry)))?;
    // Condition-register snapshot taken just before a block's branching
    // cycle executes. A row with several IFs fans out through zero-cycle
    // dispatch blocks, and the whole multiway decision belongs to that one
    // tree instruction: every dispatch level must test the *pre-cycle*
    // values, even if the cycle itself overwrote a condition register
    // (e.g. recomputing a predicate for the next iteration). The snapshot
    // buffer is reused across blocks; `have_snap` plays the old `Option`.
    let mut snap: Vec<bool> = Vec::new();
    let mut have_snap = false;

    loop {
        let mut broke = false;
        for (i, cycle) in block.cycles.iter().enumerate() {
            if body_cycles >= max_cycles {
                return Err(SimError::CycleBudgetExceeded(max_cycles));
            }
            if i + 1 == block.cycles.len() {
                snap.clear();
                snap.extend_from_slice(&state.ccs);
                have_snap = true;
            }
            body_cycles += 1;
            total_cycles += 1;
            let (b, _) = state.step_cycle_into(cycle, &mut effects)?;
            if b {
                broke = true;
                break;
            }
        }
        if broke {
            return finish(
                prog,
                state,
                body_cycles,
                total_cycles,
                iterations,
                &mut effects,
                t0,
            );
        }
        let succ = match block.term {
            VliwTerm::Jump(s) => s,
            VliwTerm::Branch {
                cc,
                on_true,
                on_false,
            } => {
                let v = if have_snap {
                    *snap
                        .get(cc.0 as usize)
                        .ok_or_else(|| SimError::BadRegister(format!("{cc}")))?
                } else {
                    // No snapshot yet (entry dispatch before any body
                    // cycle): the committed state is the right one.
                    state.cc(cc)?
                };
                if v {
                    on_true
                } else {
                    on_false
                }
            }
            VliwTerm::Exit => {
                return finish(
                    prog,
                    state,
                    body_cycles,
                    total_cycles,
                    iterations,
                    &mut effects,
                    t0,
                );
            }
        };
        if succ.back_edge {
            iterations += 1;
        }
        block = prog
            .blocks
            .get(succ.block)
            .ok_or_else(|| SimError::Malformed(format!("block {} missing", succ.block)))?;
        if !block.cycles.is_empty() {
            // Leaving the dispatch fan-out: the next decision belongs to
            // the next branching cycle.
            have_snap = false;
        }
    }
}

fn finish(
    prog: &VliwLoop,
    mut state: MachineState,
    body_cycles: u64,
    mut total_cycles: u64,
    iterations: u64,
    effects: &mut Vec<Effect>,
    t0: Instant,
) -> Result<VliwRun, SimError> {
    for cycle in &prog.epilogue {
        total_cycles += 1;
        state.step_cycle_into(cycle, effects)?;
    }
    stats::count_interp_run(total_cycles, t0.elapsed().as_micros() as u64);
    Ok(VliwRun {
        state,
        body_cycles,
        total_cycles,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp, Guard, Operation, Reg};
    use psp_machine::{Succ, VliwBlock, VliwTerm};
    use psp_predicate::PredicateMatrix;

    /// Hand-compiled Figure 1(b): local schedule of vecmin, II = 3.
    ///
    /// Registers: R0=1, R1=n, R2=k, R3=m, R4=x[k], R5=x[m].
    /// C1: LOAD R4,x[R2]; LOAD R5,x[R3]; ADD R6,R2,R0   (renamed k')
    /// C2: LT CC0,R4,R5; GE CC1,R6,R1; COPY R2,R6
    /// C3: IF CC0 {COPY R3,R2old?…}
    /// For simulator testing we keep the untransformed order:
    /// C1: loads + ADD into R6; C2: compares (on old k for COPY);
    /// C3: guarded COPY m=k_old, BREAK, commit k=R6.
    fn fig1b() -> psp_machine::VliwLoop {
        let x = ArrayId(0);
        let c1 = vec![
            load(Reg(4), x, Reg(2)),
            load(Reg(5), x, Reg(3)),
            add(Reg(6), Reg(2), Reg(0)),
        ];
        let c2 = vec![
            cmp(CmpOp::Lt, CcReg(0), Reg(4), Reg(5)),
            cmp(CmpOp::Ge, CcReg(1), Reg(6), Reg(1)),
        ];
        let c3 = vec![
            if_(CcReg(0)),
            Operation {
                guard: Some(Guard::when(CcReg(0))),
                ..copy(Reg(3), Reg(2))
            },
            break_(CcReg(1)),
            copy(Reg(2), Reg(6)),
        ];
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![c1, c2, c3],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::back(0),
                on_false: Succ::back(0),
            },
        };
        psp_machine::VliwLoop {
            name: "fig1b".into(),
            prologue: vec![],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        }
    }

    fn initial(data: Vec<i64>) -> MachineState {
        let mut s = MachineState::new(8, 2);
        s.regs[0] = 1;
        s.regs[1] = data.len() as i64;
        s.regs[2] = 0;
        s.regs[3] = 0;
        s.push_array(data);
        s
    }

    #[test]
    fn fig1b_computes_vecmin_at_ii_3() {
        let prog = fig1b();
        assert_eq!(prog.ii_range(), Some((3, 3)));
        let run = run_vliw(&prog, initial(vec![5, 3, 8, 1, 9, 1]), 100_000).unwrap();
        assert_eq!(run.state.regs[3], 3);
        assert_eq!(run.iterations, 6);
        assert_eq!(run.body_cycles, 18); // 6 iterations × II 3
        assert!((run.cycles_per_iteration() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn break_mid_block_goes_to_epilogue() {
        // Loop whose BREAK fires in cycle 1 of 3; the remaining cycles of
        // the block must not execute.
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![break_(CcReg(0))], vec![copy(Reg(0), 42i64)]],
            term: VliwTerm::Jump(Succ::back(0)),
        };
        let prog = psp_machine::VliwLoop {
            name: "brk".into(),
            prologue: vec![],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![vec![copy(Reg(1), 7i64)]],
        };
        let mut s = MachineState::new(2, 1);
        s.ccs[0] = true;
        let run = run_vliw(&prog, s, 100).unwrap();
        assert_eq!(run.state.regs[0], 0); // squashed by break
        assert_eq!(run.state.regs[1], 7); // epilogue ran
        assert_eq!(run.body_cycles, 1);
        assert_eq!(run.total_cycles, 2);
    }

    #[test]
    fn branch_uses_pre_cycle_cc_value() {
        // Last cycle both tests CC0 (IF) and overwrites it (CMP). The
        // branch must follow the old value.
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![
                if_(CcReg(0)),
                cmp(CmpOp::Lt, CcReg(0), Reg(0), Reg(0)), // writes false
            ]],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::fall(1),
                on_false: Succ::fall(2),
            },
        };
        let done = |id: usize, v: i64| VliwBlock {
            id,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![copy(Reg(1), v)]],
            term: VliwTerm::Exit,
        };
        let prog = psp_machine::VliwLoop {
            name: "precc".into(),
            prologue: vec![],
            blocks: vec![b0, done(1, 111), done(2, 222)],
            entry: 0,
            epilogue: vec![],
        };
        let mut s = MachineState::new(2, 1);
        s.ccs[0] = true; // pre-cycle value
        let run = run_vliw(&prog, s, 100).unwrap();
        assert_eq!(run.state.regs[1], 111);
        assert!(!run.state.ccs[0]); // the overwrite did commit
    }

    #[test]
    fn prologue_break_short_circuits() {
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![copy(Reg(0), 1i64)]],
            term: VliwTerm::Jump(Succ::back(0)),
        };
        let prog = psp_machine::VliwLoop {
            name: "pb".into(),
            prologue: vec![vec![break_(CcReg(0))]],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        };
        let mut s = MachineState::new(1, 1);
        s.ccs[0] = true;
        let run = run_vliw(&prog, s, 100).unwrap();
        assert_eq!(run.state.regs[0], 0); // body never ran
        assert_eq!(run.body_cycles, 0);
    }

    #[test]
    fn cycle_budget_enforced() {
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![copy(Reg(0), 1i64)]],
            term: VliwTerm::Jump(Succ::back(0)),
        };
        let prog = psp_machine::VliwLoop {
            name: "inf".into(),
            prologue: vec![],
            blocks: vec![b0],
            entry: 0,
            epilogue: vec![],
        };
        let res = run_vliw(&prog, MachineState::new(1, 1), 50);
        assert!(matches!(res, Err(SimError::CycleBudgetExceeded(_))));
    }

    #[test]
    fn dispatch_chain_uses_pre_cycle_ccs() {
        // Regression: a branching cycle that *recomputes* a condition
        // register used by a later dispatch level (multi-IF tree
        // instruction). The whole multiway decision must see pre-cycle
        // values.
        let b0 = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![
                if_(CcReg(0)),
                if_(CcReg(1)),
                // Overwrites CC1 for the "next iteration".
                cmp(CmpOp::Lt, CcReg(1), Reg(0), Reg(0)), // false
            ]],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::fall(1),
                on_false: Succ::fall(2),
            },
        };
        // Dispatch level 2 on CC1.
        let dispatch = |id: usize, t: usize, f: usize| VliwBlock {
            id,
            matrix: PredicateMatrix::universe(),
            cycles: vec![],
            term: VliwTerm::Branch {
                cc: CcReg(1),
                on_true: Succ::fall(t),
                on_false: Succ::fall(f),
            },
        };
        let leaf = |id: usize, v: i64| VliwBlock {
            id,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![copy(Reg(1), v)]],
            term: VliwTerm::Exit,
        };
        let prog = psp_machine::VliwLoop {
            name: "dispatch2".into(),
            prologue: vec![],
            blocks: vec![
                b0,
                dispatch(1, 3, 4),
                dispatch(2, 5, 6),
                leaf(3, 11),
                leaf(4, 10),
                leaf(5, 1),
                leaf(6, 0),
            ],
            entry: 0,
            epilogue: vec![],
        };
        // CC0 = true, CC1 = true before the cycle; the cycle sets CC1 to
        // false, but the decision must use the old true → leaf 3 (11).
        let mut s = MachineState::new(2, 2);
        s.ccs[0] = true;
        s.ccs[1] = true;
        let run = run_vliw(&prog, s, 100).unwrap();
        assert_eq!(run.state.regs[1], 11);
        assert!(!run.state.ccs[1], "the overwrite itself committed");
    }

    #[test]
    fn empty_dispatch_block_reads_committed_cc() {
        // Dispatch block with no cycles branches on the current state.
        let dispatch = VliwBlock {
            id: 0,
            matrix: PredicateMatrix::universe(),
            cycles: vec![],
            term: VliwTerm::Branch {
                cc: CcReg(0),
                on_true: Succ::fall(1),
                on_false: Succ::fall(2),
            },
        };
        let done = |id: usize, v: i64| VliwBlock {
            id,
            matrix: PredicateMatrix::universe(),
            cycles: vec![vec![copy(Reg(0), v)]],
            term: VliwTerm::Exit,
        };
        let prog = psp_machine::VliwLoop {
            name: "disp".into(),
            prologue: vec![],
            blocks: vec![dispatch, done(1, 1), done(2, 2)],
            entry: 0,
            epilogue: vec![],
        };
        let mut s = MachineState::new(1, 1);
        s.ccs[0] = false;
        let run = run_vliw(&prog, s, 100).unwrap();
        assert_eq!(run.state.regs[0], 2);
    }
}
