//! Process-global counters of simulation work.
//!
//! Every legality claim in the workspace bottoms out in simulation, so the
//! simulator's throughput is worth observing rather than asserting. These
//! counters mirror [`psp_predicate::stats::PredOpStats`]: plain relaxed
//! atomics that worker threads bump, sampled around a region with
//! [`snapshot`] + [`SimStats::delta`]. They are *not* part of any
//! determinism contract — concurrent work in the same process (parallel
//! tests, rayon shards) shows up in everyone's deltas.
//!
//! Two engines feed them: the pre-decoded engine ([`crate::decode`])
//! increments the `decoded_*` counters, the original `step_cycle`
//! interpreters increment `interp_*`. The busy-time counters accumulate
//! wall-clock microseconds spent inside runs, so `*_cycles_per_sec` is a
//! genuine throughput, comparable across engines.

use std::sync::atomic::{AtomicU64, Ordering};

static PROGRAMS_DECODED: AtomicU64 = AtomicU64::new(0);
static DECODED_OPS: AtomicU64 = AtomicU64::new(0);
static DECODED_CYCLES: AtomicU64 = AtomicU64::new(0);
static DECODED_BUSY_US: AtomicU64 = AtomicU64::new(0);
static INTERP_CYCLES: AtomicU64 = AtomicU64::new(0);
static INTERP_BUSY_US: AtomicU64 = AtomicU64::new(0);
static TRIALS: AtomicU64 = AtomicU64::new(0);
static BATCHES: AtomicU64 = AtomicU64::new(0);
static MAX_BATCH: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn count_decode(ops: usize) {
    PROGRAMS_DECODED.fetch_add(1, Ordering::Relaxed);
    DECODED_OPS.fetch_add(ops as u64, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_decoded_run(cycles: u64, busy_us: u64) {
    DECODED_CYCLES.fetch_add(cycles, Ordering::Relaxed);
    DECODED_BUSY_US.fetch_add(busy_us, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_interp_run(cycles: u64, busy_us: u64) {
    INTERP_CYCLES.fetch_add(cycles, Ordering::Relaxed);
    INTERP_BUSY_US.fetch_add(busy_us, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_trial() {
    TRIALS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_batch(size: usize) {
    BATCHES.fetch_add(1, Ordering::Relaxed);
    MAX_BATCH.fetch_max(size as u64, Ordering::Relaxed);
}

/// A snapshot (or delta) of the simulator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Programs lowered by the pre-decoder (reference + VLIW count
    /// separately).
    pub programs_decoded: u64,
    /// Micro-ops emitted by the pre-decoder.
    pub decoded_ops: u64,
    /// Cycles simulated by the decoded engine.
    pub decoded_cycles: u64,
    /// Wall-clock microseconds spent inside decoded-engine runs.
    pub decoded_busy_us: u64,
    /// Cycles simulated by the `step_cycle` interpreters.
    pub interp_cycles: u64,
    /// Wall-clock microseconds spent inside interpreter runs.
    pub interp_busy_us: u64,
    /// Equivalence trials executed (any engine).
    pub trials: u64,
    /// Batched equivalence calls.
    pub batches: u64,
    /// Largest batch seen (totals, not delta-meaningful).
    pub max_batch: u64,
}

impl SimStats {
    /// Counter increments since the `since` snapshot. `max_batch` is kept
    /// as the current high-water mark rather than subtracted.
    pub fn delta(&self, since: &SimStats) -> SimStats {
        SimStats {
            programs_decoded: self.programs_decoded.saturating_sub(since.programs_decoded),
            decoded_ops: self.decoded_ops.saturating_sub(since.decoded_ops),
            decoded_cycles: self.decoded_cycles.saturating_sub(since.decoded_cycles),
            decoded_busy_us: self.decoded_busy_us.saturating_sub(since.decoded_busy_us),
            interp_cycles: self.interp_cycles.saturating_sub(since.interp_cycles),
            interp_busy_us: self.interp_busy_us.saturating_sub(since.interp_busy_us),
            trials: self.trials.saturating_sub(since.trials),
            batches: self.batches.saturating_sub(since.batches),
            max_batch: self.max_batch,
        }
    }

    /// Which engine did the simulating in this snapshot/delta.
    pub fn engine(&self) -> &'static str {
        match (self.decoded_cycles > 0, self.interp_cycles > 0) {
            (true, true) => "mixed",
            (true, false) => "decoded",
            (false, true) => "interpreter",
            (false, false) => "none",
        }
    }

    /// Decoded-engine throughput in simulated cycles per second (0 when no
    /// busy time was recorded).
    pub fn decoded_cycles_per_sec(&self) -> f64 {
        rate(self.decoded_cycles, self.decoded_busy_us)
    }

    /// Interpreter throughput in simulated cycles per second.
    pub fn interp_cycles_per_sec(&self) -> f64 {
        rate(self.interp_cycles, self.interp_busy_us)
    }

    /// Hand-rolled JSON object (the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"engine\":\"{}\",\"programs_decoded\":{},\"decoded_ops\":{},",
                "\"decoded_cycles\":{},\"interp_cycles\":{},\"trials\":{},",
                "\"batches\":{},\"max_batch\":{},",
                "\"decoded_cycles_per_sec\":{:.0},\"interp_cycles_per_sec\":{:.0}}}"
            ),
            self.engine(),
            self.programs_decoded,
            self.decoded_ops,
            self.decoded_cycles,
            self.interp_cycles,
            self.trials,
            self.batches,
            self.max_batch,
            self.decoded_cycles_per_sec(),
            self.interp_cycles_per_sec(),
        )
    }
}

fn rate(cycles: u64, busy_us: u64) -> f64 {
    if busy_us == 0 {
        0.0
    } else {
        cycles as f64 / (busy_us as f64 / 1e6)
    }
}

/// Current totals since process start.
pub fn snapshot() -> SimStats {
    SimStats {
        programs_decoded: PROGRAMS_DECODED.load(Ordering::Relaxed),
        decoded_ops: DECODED_OPS.load(Ordering::Relaxed),
        decoded_cycles: DECODED_CYCLES.load(Ordering::Relaxed),
        decoded_busy_us: DECODED_BUSY_US.load(Ordering::Relaxed),
        interp_cycles: INTERP_CYCLES.load(Ordering::Relaxed),
        interp_busy_us: INTERP_BUSY_US.load(Ordering::Relaxed),
        trials: TRIALS.load(Ordering::Relaxed),
        batches: BATCHES.load(Ordering::Relaxed),
        max_batch: MAX_BATCH.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_engine_label() {
        let before = snapshot();
        count_decode(12);
        count_decoded_run(100, 5);
        count_trial();
        count_batch(3);
        let d = snapshot().delta(&before);
        // Other test threads may also count; deltas are lower-bounded.
        assert!(d.programs_decoded >= 1);
        assert!(d.decoded_ops >= 12);
        assert!(d.decoded_cycles >= 100);
        assert!(d.trials >= 1);
        assert!(d.batches >= 1);
        assert!(d.max_batch >= 3);

        let only_decoded = SimStats {
            decoded_cycles: 1,
            ..SimStats::default()
        };
        assert_eq!(only_decoded.engine(), "decoded");
        let only_interp = SimStats {
            interp_cycles: 1,
            ..SimStats::default()
        };
        assert_eq!(only_interp.engine(), "interpreter");
        assert_eq!(SimStats::default().engine(), "none");
        let both = SimStats {
            decoded_cycles: 1,
            interp_cycles: 1,
            ..SimStats::default()
        };
        assert_eq!(both.engine(), "mixed");
    }

    #[test]
    fn rates_are_cycles_per_second() {
        let s = SimStats {
            decoded_cycles: 2_000_000,
            decoded_busy_us: 1_000_000,
            ..SimStats::default()
        };
        assert!((s.decoded_cycles_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert_eq!(SimStats::default().interp_cycles_per_sec(), 0.0);
    }

    #[test]
    fn json_is_an_object() {
        let j = SimStats::default().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "engine",
            "programs_decoded",
            "decoded_ops",
            "decoded_cycles",
            "interp_cycles",
            "trials",
            "batches",
            "max_batch",
            "decoded_cycles_per_sec",
            "interp_cycles_per_sec",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
