//! Architectural state and single-operation evaluation.

use psp_ir::{Address, OpKind, Operand, Operation};
use std::fmt;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A register index exceeded the register file.
    BadRegister(String),
    /// A store targeted an out-of-bounds or unknown address.
    BadStore(String),
    /// Two operations wrote the same register in one cycle.
    WriteConflict(String),
    /// The run exceeded its cycle budget (probable livelock).
    CycleBudgetExceeded(u64),
    /// Malformed code reached the interpreter.
    Malformed(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadRegister(s) => write!(f, "bad register access: {s}"),
            SimError::BadStore(s) => write!(f, "bad store: {s}"),
            SimError::WriteConflict(s) => write!(f, "same-cycle write conflict: {s}"),
            SimError::CycleBudgetExceeded(n) => write!(f, "cycle budget {n} exceeded"),
            SimError::Malformed(s) => write!(f, "malformed code: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Register file, condition registers, and array memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    /// General-purpose registers.
    pub regs: Vec<i64>,
    /// Condition registers.
    pub ccs: Vec<bool>,
    /// Array memory, indexed by [`psp_ir::ArrayId`].
    pub arrays: Vec<Vec<i64>>,
}

/// Effect of one operation, to be committed at end of cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Write a general-purpose register.
    Gpr(u32, i64),
    /// Write a condition register.
    Cc(u32, bool),
    /// Store to memory.
    Mem(u32, usize, i64),
    /// A `BREAK` fired: exit the loop after this cycle.
    Break,
    /// An `IF` resolved; value recorded for terminator dispatch and
    /// profiling.
    IfOutcome(bool),
    /// Guard failed: no effect.
    Squashed,
}

impl MachineState {
    /// Fresh state with the given file sizes.
    pub fn new(n_regs: u32, n_ccs: u32) -> Self {
        Self {
            regs: vec![0; n_regs as usize],
            ccs: vec![false; n_ccs as usize],
            arrays: Vec::new(),
        }
    }

    /// Ensure the register files can hold `n_regs`/`n_ccs` entries
    /// (schedulers allocate fresh registers during renaming).
    pub fn grow(&mut self, n_regs: u32, n_ccs: u32) {
        if self.regs.len() < n_regs as usize {
            self.regs.resize(n_regs as usize, 0);
        }
        if self.ccs.len() < n_ccs as usize {
            self.ccs.resize(n_ccs as usize, false);
        }
    }

    /// Append an array and return nothing (ids are positional).
    pub fn push_array(&mut self, data: Vec<i64>) {
        self.arrays.push(data);
    }

    /// Become a copy of `other`, reusing this state's allocations (the
    /// batched equivalence checker resets the same state once per trial).
    pub fn copy_from(&mut self, other: &MachineState) {
        self.regs.clear();
        self.regs.extend_from_slice(&other.regs);
        self.ccs.clear();
        self.ccs.extend_from_slice(&other.ccs);
        self.arrays.truncate(other.arrays.len());
        while self.arrays.len() < other.arrays.len() {
            self.arrays.push(Vec::new());
        }
        for (dst, src) in self.arrays.iter_mut().zip(other.arrays.iter()) {
            dst.clear();
            dst.extend_from_slice(src);
        }
    }

    /// Read a general-purpose register.
    pub fn reg(&self, r: psp_ir::Reg) -> Result<i64, SimError> {
        self.regs
            .get(r.0 as usize)
            .copied()
            .ok_or_else(|| SimError::BadRegister(format!("{r}")))
    }

    /// Read a condition register.
    pub fn cc(&self, c: psp_ir::CcReg) -> Result<bool, SimError> {
        self.ccs
            .get(c.0 as usize)
            .copied()
            .ok_or_else(|| SimError::BadRegister(format!("{c}")))
    }

    /// Evaluate an operand.
    pub fn operand(&self, o: Operand) -> Result<i64, SimError> {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => Ok(v),
        }
    }

    /// Resolve an address to `(array, element)` without bounds checking.
    pub fn resolve(&self, a: Address) -> Result<(u32, i64), SimError> {
        let idx = match a.index {
            Some(r) => self.reg(r)?,
            None => 0,
        };
        Ok((a.array.0, idx + a.disp))
    }

    /// Load from memory. Out-of-bounds reads return 0: speculative loads
    /// (e.g. of iteration `n+1` issued before the exit test resolves) must
    /// not fault, mirroring non-faulting speculative loads on real ILP
    /// hardware.
    pub fn load(&self, a: Address) -> Result<i64, SimError> {
        let (arr, elem) = self.resolve(a)?;
        let data = self
            .arrays
            .get(arr as usize)
            .ok_or_else(|| SimError::BadRegister(format!("array a{arr} not present")))?;
        if elem < 0 || elem as usize >= data.len() {
            return Ok(0);
        }
        Ok(data[elem as usize])
    }

    /// Evaluate one operation against this (pre-cycle) state, producing its
    /// deferred effect. The guard is evaluated against pre-cycle condition
    /// registers.
    pub fn effect_of(&self, op: &Operation) -> Result<Effect, SimError> {
        if let Some(g) = op.guard {
            if self.cc(g.cc)? != g.on_true {
                return Ok(Effect::Squashed);
            }
        }
        Ok(match op.kind {
            OpKind::Alu {
                op: a,
                dst,
                a: x,
                b: y,
            } => Effect::Gpr(dst.0, a.eval(self.operand(x)?, self.operand(y)?)),
            OpKind::Copy { dst, src } => Effect::Gpr(dst.0, self.operand(src)?),
            OpKind::Select {
                dst,
                cc,
                on_true,
                on_false,
            } => {
                let v = if self.cc(cc)? {
                    self.operand(on_true)?
                } else {
                    self.operand(on_false)?
                };
                Effect::Gpr(dst.0, v)
            }
            OpKind::Cmp {
                op: c,
                dst,
                a: x,
                b: y,
            } => Effect::Cc(dst.0, c.eval(self.operand(x)?, self.operand(y)?)),
            OpKind::CcAnd {
                dst,
                a,
                a_val,
                b,
                b_val,
            } => Effect::Cc(dst.0, self.cc(a)? == a_val && self.cc(b)? == b_val),
            OpKind::Load { dst, addr } => Effect::Gpr(dst.0, self.load(addr)?),
            OpKind::Store { src, addr } => {
                let (arr, elem) = self.resolve(addr)?;
                let len = self
                    .arrays
                    .get(arr as usize)
                    .ok_or_else(|| SimError::BadStore(format!("array a{arr} not present")))?
                    .len();
                if elem < 0 || elem as usize >= len {
                    return Err(SimError::BadStore(format!(
                        "a{arr}[{elem}] out of bounds (len {len})"
                    )));
                }
                Effect::Mem(arr, elem as usize, self.operand(src)?)
            }
            OpKind::If { cc } => Effect::IfOutcome(self.cc(cc)?),
            OpKind::Break { cc } => {
                if self.cc(cc)? {
                    Effect::Break
                } else {
                    Effect::Squashed
                }
            }
        })
    }

    /// Commit a batch of effects produced from the same pre-cycle state,
    /// rejecting same-cycle write conflicts. Returns whether a `BREAK`
    /// fired and the last `IF` outcome seen, if any.
    pub fn commit(&mut self, effects: &[Effect]) -> Result<(bool, Option<bool>), SimError> {
        let mut wrote_gpr: Vec<u32> = Vec::new();
        let mut wrote_cc: Vec<u32> = Vec::new();
        let mut wrote_mem: Vec<(u32, usize)> = Vec::new();
        let mut broke = false;
        let mut if_outcome = None;
        for e in effects {
            match *e {
                Effect::Gpr(r, v) => {
                    if wrote_gpr.contains(&r) {
                        return Err(SimError::WriteConflict(format!("R{r}")));
                    }
                    wrote_gpr.push(r);
                    let slot = self
                        .regs
                        .get_mut(r as usize)
                        .ok_or_else(|| SimError::BadRegister(format!("R{r}")))?;
                    *slot = v;
                }
                Effect::Cc(c, v) => {
                    if wrote_cc.contains(&c) {
                        return Err(SimError::WriteConflict(format!("CC{c}")));
                    }
                    wrote_cc.push(c);
                    let slot = self
                        .ccs
                        .get_mut(c as usize)
                        .ok_or_else(|| SimError::BadRegister(format!("CC{c}")))?;
                    *slot = v;
                }
                Effect::Mem(arr, elem, v) => {
                    if wrote_mem.contains(&(arr, elem)) {
                        return Err(SimError::WriteConflict(format!("a{arr}[{elem}]")));
                    }
                    wrote_mem.push((arr, elem));
                    self.arrays[arr as usize][elem] = v;
                }
                Effect::Break => broke = true,
                Effect::IfOutcome(v) => if_outcome = Some(v),
                Effect::Squashed => {}
            }
        }
        Ok((broke, if_outcome))
    }

    /// Execute one sequential operation: evaluate and apply its effect
    /// immediately (a single op can never conflict with itself). The
    /// reference interpreter's per-op path; allocation-free, and identical
    /// to `commit(&[effect_of(op)?])`.
    pub fn step_op(&mut self, op: &Operation) -> Result<(bool, Option<bool>), SimError> {
        let mut broke = false;
        let mut if_outcome = None;
        match self.effect_of(op)? {
            Effect::Gpr(r, v) => {
                let slot = self
                    .regs
                    .get_mut(r as usize)
                    .ok_or_else(|| SimError::BadRegister(format!("R{r}")))?;
                *slot = v;
            }
            Effect::Cc(c, v) => {
                let slot = self
                    .ccs
                    .get_mut(c as usize)
                    .ok_or_else(|| SimError::BadRegister(format!("CC{c}")))?;
                *slot = v;
            }
            Effect::Mem(arr, elem, v) => self.arrays[arr as usize][elem] = v,
            Effect::Break => broke = true,
            Effect::IfOutcome(v) => if_outcome = Some(v),
            Effect::Squashed => {}
        }
        Ok((broke, if_outcome))
    }

    /// Execute one whole cycle (parallel semantics): evaluate all effects
    /// against the pre-cycle state, then commit.
    pub fn step_cycle(&mut self, ops: &[Operation]) -> Result<(bool, Option<bool>), SimError> {
        let mut effects = Vec::with_capacity(ops.len());
        self.step_cycle_into(ops, &mut effects)
    }

    /// [`MachineState::step_cycle`] with a caller-owned effect buffer, so a
    /// run loop can reuse one allocation across all its cycles.
    pub fn step_cycle_into(
        &mut self,
        ops: &[Operation],
        effects: &mut Vec<Effect>,
    ) -> Result<(bool, Option<bool>), SimError> {
        effects.clear();
        for op in ops {
            effects.push(self.effect_of(op)?);
        }
        self.commit(effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psp_ir::op::build::*;
    use psp_ir::{ArrayId, CcReg, CmpOp, Guard, Reg};

    fn state() -> MachineState {
        let mut s = MachineState::new(8, 4);
        s.push_array(vec![10, 20, 30]);
        s
    }

    #[test]
    fn alu_and_copy_effects() {
        let mut s = state();
        s.regs[1] = 5;
        s.step_cycle(&[add(Reg(0), Reg(1), 3i64), copy(Reg(2), Reg(1))])
            .unwrap();
        assert_eq!(s.regs[0], 8);
        assert_eq!(s.regs[2], 5);
    }

    #[test]
    fn parallel_reads_see_pre_cycle_state() {
        let mut s = state();
        s.regs[0] = 1;
        s.regs[1] = 2;
        // Swap in one cycle — only possible with parallel semantics.
        s.step_cycle(&[copy(Reg(0), Reg(1)), copy(Reg(1), Reg(0))])
            .unwrap();
        assert_eq!((s.regs[0], s.regs[1]), (2, 1));
    }

    #[test]
    fn write_conflict_detected() {
        let mut s = state();
        let r = s.step_cycle(&[copy(Reg(0), 1i64), copy(Reg(0), 2i64)]);
        assert!(matches!(r, Err(SimError::WriteConflict(_))));
    }

    #[test]
    fn guarded_conflicting_writes_ok_when_one_squashes() {
        let mut s = state();
        s.ccs[0] = true;
        let t = psp_ir::Operation {
            guard: Some(Guard::when(CcReg(0))),
            ..copy(Reg(0), 1i64)
        };
        let e = psp_ir::Operation {
            guard: Some(Guard::unless(CcReg(0))),
            ..copy(Reg(0), 2i64)
        };
        s.step_cycle(&[t, e]).unwrap();
        assert_eq!(s.regs[0], 1);
    }

    #[test]
    fn load_in_bounds_and_speculative_oob() {
        let mut s = state();
        s.regs[1] = 2;
        s.step_cycle(&[load(Reg(0), ArrayId(0), Reg(1))]).unwrap();
        assert_eq!(s.regs[0], 30);
        s.regs[1] = 99; // speculative overshoot
        s.step_cycle(&[load(Reg(0), ArrayId(0), Reg(1))]).unwrap();
        assert_eq!(s.regs[0], 0);
        s.regs[1] = -1;
        s.step_cycle(&[load(Reg(0), ArrayId(0), Reg(1))]).unwrap();
        assert_eq!(s.regs[0], 0);
    }

    #[test]
    fn store_bounds_checked() {
        let mut s = state();
        s.regs[1] = 1;
        s.step_cycle(&[store(ArrayId(0), Reg(1), 77i64)]).unwrap();
        assert_eq!(s.arrays[0][1], 77);
        s.regs[1] = 5;
        let r = s.step_cycle(&[store(ArrayId(0), Reg(1), 9i64)]);
        assert!(matches!(r, Err(SimError::BadStore(_))));
    }

    #[test]
    fn cmp_writes_cc_and_break_fires() {
        let mut s = state();
        s.regs[0] = 3;
        s.regs[1] = 3;
        s.step_cycle(&[cmp(CmpOp::Ge, CcReg(1), Reg(0), Reg(1))])
            .unwrap();
        assert!(s.ccs[1]);
        let (broke, _) = s.step_cycle(&[break_(CcReg(1))]).unwrap();
        assert!(broke);
        s.ccs[1] = false;
        let (broke, _) = s.step_cycle(&[break_(CcReg(1))]).unwrap();
        assert!(!broke);
    }

    #[test]
    fn if_outcome_reported() {
        let mut s = state();
        s.ccs[0] = true;
        let (_, out) = s.step_cycle(&[if_(CcReg(0))]).unwrap();
        assert_eq!(out, Some(true));
    }

    #[test]
    fn select_picks_by_cc() {
        let mut s = state();
        s.ccs[0] = true;
        s.regs[1] = 10;
        s.regs[2] = 20;
        s.step_cycle(&[select(Reg(0), CcReg(0), Reg(1), Reg(2))])
            .unwrap();
        assert_eq!(s.regs[0], 10);
        s.ccs[0] = false;
        s.step_cycle(&[select(Reg(0), CcReg(0), Reg(1), Reg(2))])
            .unwrap();
        assert_eq!(s.regs[0], 20);
    }

    #[test]
    fn grow_extends_files() {
        let mut s = MachineState::new(2, 1);
        s.grow(5, 3);
        assert_eq!(s.regs.len(), 5);
        assert_eq!(s.ccs.len(), 3);
        s.grow(1, 1); // never shrinks
        assert_eq!(s.regs.len(), 5);
    }
}
