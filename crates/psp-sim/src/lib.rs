//! Execution substrate for the PSP reproduction.
//!
//! The paper evaluated its prototype on (a model of) the IBM tree-VLIW
//! architecture; no such hardware is available, so this crate provides a
//! deterministic, cycle-accurate *simulator* that measures exactly the
//! quantities the paper reports — per-path initiation intervals and dynamic
//! cycle counts — and additionally *verifies* that transformed loops are
//! semantically equivalent to their source loops.
//!
//! Three interpreters / services:
//!
//! * [`reference::run_reference`] — executes a structured [`psp_ir::LoopSpec`]
//!   with strict sequential semantics (one operation per cycle), producing
//!   the golden final state, the per-path sequential cycle counts, and the
//!   IF-outcome trace used for profiling;
//! * [`vliw_run::run_vliw`] — executes a compiled [`psp_machine::VliwLoop`]
//!   with parallel per-cycle semantics (all reads see pre-cycle state,
//!   guards resolve against pre-cycle condition registers, `BREAK` exits at
//!   end of cycle), counting body cycles and iterations;
//! * [`equiv::check_equivalence`] — runs both on the same initial state and
//!   compares live-out registers and all array contents;
//! * [`profile::BranchProfile`] — per-IF truth probabilities estimated from
//!   a reference trace, feeding the paper's §4 probability-driven
//!   heuristics.

pub mod equiv;
pub mod profile;
pub mod reference;
pub mod state;
pub mod trace;
pub mod vliw_run;

pub use equiv::{check_equivalence, EquivalenceError};
pub use profile::BranchProfile;
pub use reference::{run_reference, RefRun};
pub use state::{MachineState, SimError};
pub use trace::{trace_vliw, Phase, TraceEvent};
pub use vliw_run::{run_vliw, VliwRun};
