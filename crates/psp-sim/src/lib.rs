//! Execution substrate for the PSP reproduction.
//!
//! The paper evaluated its prototype on (a model of) the IBM tree-VLIW
//! architecture; no such hardware is available, so this crate provides a
//! deterministic, cycle-accurate *simulator* that measures exactly the
//! quantities the paper reports — per-path initiation intervals and dynamic
//! cycle counts — and additionally *verifies* that transformed loops are
//! semantically equivalent to their source loops.
//!
//! Execution services:
//!
//! * [`reference::run_reference`] — executes a structured [`psp_ir::LoopSpec`]
//!   with strict sequential semantics (one operation per cycle), producing
//!   the golden final state, the per-path sequential cycle counts, and the
//!   IF-outcome trace used for profiling;
//! * [`vliw_run::run_vliw`] — executes a compiled [`psp_machine::VliwLoop`]
//!   with parallel per-cycle semantics (all reads see pre-cycle state,
//!   guards resolve against pre-cycle condition registers, `BREAK` exits at
//!   end of cycle), counting body cycles and iterations;
//! * [`decode`] — the pre-decoded engine: both programs lowered once into
//!   flat struct-of-arrays micro-ops and run by a tight dispatch loop over
//!   reusable scratch, bit-identical to the interpreters but much faster;
//!   the default behind [`equiv::check_equivalence`] (`PSP_SIM_ENGINE=
//!   interpreter` forces the reference engine);
//! * [`equiv::check_equivalence`] — runs both sides on the same initial
//!   state and compares live-out registers and all array contents;
//!   [`equiv::check_equivalence_batch`] amortizes decoding over a whole
//!   [`equiv::EquivConfig`] trial set, sharded across threads;
//! * [`profile::BranchProfile`] — per-IF truth probabilities estimated from
//!   a reference trace, feeding the paper's §4 probability-driven
//!   heuristics;
//! * [`stats`] — process-global throughput counters ([`stats::SimStats`])
//!   covering both engines.

pub mod decode;
pub mod equiv;
pub mod profile;
pub mod reference;
pub mod state;
pub mod stats;
pub mod trace;
pub mod vliw_run;

pub use decode::{run_reference_decoded, run_vliw_decoded, DecodedRef, DecodedVliw, Scratch};
pub use equiv::{
    check_equivalence, check_equivalence_batch, check_equivalence_with, BatchError, BatchRun,
    EngineKind, EquivConfig, EquivEngine, EquivRun, EquivalenceError,
};
pub use profile::BranchProfile;
pub use reference::{run_reference, RefRun};
pub use state::{MachineState, SimError};
pub use stats::SimStats;
pub use trace::{trace_vliw, Phase, TraceEvent};
pub use vliw_run::{run_vliw, VliwRun};
