//! Recursive-descent parser.

use crate::ast::{cmp_from_str, BinOp, Expr, Kernel, Stmt};
use crate::lexer::Token;
use std::fmt;

/// Parse failure with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (token {})", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

struct P<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if &got == t => Ok(()),
            Some(got) => {
                self.pos -= 1;
                self.err(format!("expected `{t}`, found `{got}`"))
            }
            None => self.err(format!("expected `{t}`, found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(got) => {
                self.pos -= 1;
                self.err(format!("expected identifier, found `{got}`"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let name = self.ident()?;
        if name == kw {
            Ok(())
        } else {
            self.pos -= 1;
            self.err(format!("expected keyword `{kw}`, found `{name}`"))
        }
    }

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        self.keyword("kernel")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut scalars = Vec::new();
        let mut arrays = Vec::new();
        // Scalars up to `;` (optional), then arrays with `[]`.
        loop {
            match self.peek() {
                Some(Token::RParen) => break,
                Some(Token::Semi) => {
                    self.next();
                }
                Some(Token::Comma) => {
                    self.next();
                }
                _ => {
                    let id = self.ident()?;
                    if self.peek() == Some(&Token::LBracket) {
                        self.next();
                        self.expect(&Token::RBracket)?;
                        arrays.push(id);
                    } else {
                        scalars.push(id);
                    }
                }
            }
        }
        self.expect(&Token::RParen)?;
        let mut outs = Vec::new();
        if self.peek() == Some(&Token::Arrow) {
            self.next();
            loop {
                outs.push(self.ident()?);
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::LBrace)?;
        let body = self.stmts()?;
        self.expect(&Token::RBrace)?;
        Ok(Kernel {
            name,
            scalars,
            arrays,
            outs,
            body,
        })
    }

    fn stmts(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !matches!(self.peek(), Some(Token::RBrace) | None) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Ident(id)) if id == "if" => {
                self.next();
                self.expect(&Token::LParen)?;
                let (cmp, lhs, rhs) = self.condition()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::LBrace)?;
                let then_body = self.stmts()?;
                self.expect(&Token::RBrace)?;
                let mut else_body = Vec::new();
                if matches!(self.peek(), Some(Token::Ident(id)) if id == "else") {
                    self.next();
                    if matches!(self.peek(), Some(Token::Ident(id)) if id == "if") {
                        // `else if …` sugar: the else branch is the nested if.
                        else_body = vec![self.stmt()?];
                    } else {
                        self.expect(&Token::LBrace)?;
                        else_body = self.stmts()?;
                        self.expect(&Token::RBrace)?;
                    }
                }
                Ok(Stmt::If {
                    cmp,
                    lhs,
                    rhs,
                    then_body,
                    else_body,
                })
            }
            Some(Token::Ident(id)) if id == "break" => {
                self.next();
                self.keyword("if")?;
                self.expect(&Token::LParen)?;
                let (cmp, lhs, rhs) = self.condition()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::BreakIf { cmp, lhs, rhs })
            }
            Some(Token::Ident(_)) => {
                let id = self.ident()?;
                if self.peek() == Some(&Token::LBracket) {
                    // array store
                    self.next();
                    let idx = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    self.expect(&Token::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Store(id, idx, value))
                } else {
                    self.expect(&Token::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Assign(id, value))
                }
            }
            other => self.err(format!("expected statement, found {other:?}")),
        }
    }

    fn condition(&mut self) -> Result<(psp_ir::CmpOp, Expr, Expr), ParseError> {
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(Token::Op(s)) => match cmp_from_str(&s) {
                Some(c) => c,
                None => {
                    self.pos -= 1;
                    return self.err(format!("`{s}` is not a comparison"));
                }
            },
            other => {
                return self.err(format!("expected comparison, found {other:?}"));
            }
        };
        let rhs = self.expr()?;
        Ok((op, lhs, rhs))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            // `min`/`max` spelled as identifiers act as infix operators.
            let op = match self.peek() {
                Some(Token::Op(s)) => match BinOp::from_str(s) {
                    Some(op) => op,
                    None => break, // comparison operator: not ours
                },
                Some(Token::Ident(s)) if s == "min" || s == "max" => {
                    BinOp::from_str(s).expect("min/max are operators")
                }
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                if self.peek() == Some(&Token::LBracket) {
                    self.next();
                    let idx = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    Ok(Expr::Index(id, Box::new(idx)))
                } else {
                    Ok(Expr::Var(id))
                }
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }
}

/// Parse a token stream into a kernel.
pub fn parse(toks: &[Token]) -> Result<Kernel, ParseError> {
    let mut p = P { toks, pos: 0 };
    let k = p.kernel()?;
    if p.pos != toks.len() {
        return p.err("trailing input after kernel");
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Kernel, ParseError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_vecmin() {
        let k = parse_src(
            "kernel vecmin(n, k, m; x[]) -> m {
                xk = x[k]; xm = x[m];
                if (xk < xm) { m = k; }
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        assert_eq!(k.name, "vecmin");
        assert_eq!(k.scalars, vec!["n", "k", "m"]);
        assert_eq!(k.arrays, vec!["x"]);
        assert_eq!(k.outs, vec!["m"]);
        assert_eq!(k.body.len(), 5);
        assert!(matches!(k.body[2], Stmt::If { .. }));
        assert!(matches!(k.body[4], Stmt::BreakIf { .. }));
    }

    #[test]
    fn parses_if_else_and_stores() {
        let k = parse_src(
            "kernel s(n, k; x[], y[]) {
                v = x[k];
                if (v < 0) { y[k] = -1; } else { y[k] = 1; }
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        match &k.body[1] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
                assert!(matches!(then_body[0], Stmt::Store(..)));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn left_associative_expressions() {
        let k = parse_src("kernel e(a,b,c) { r = a + b * c + 1; break if (r >= 0); }").unwrap();
        // ((a+b)*c)+1 under flat left-assoc (no precedence by design).
        match &k.body[0] {
            Stmt::Assign(_, Expr::Bin(_, lhs, rhs)) => {
                assert!(matches!(**rhs, Expr::Int(1)));
                assert!(matches!(**lhs, Expr::Bin(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_max_infix() {
        let k = parse_src("kernel m(a,b) -> a { a = a max b; break if (a >= 0); }").unwrap();
        assert!(matches!(
            &k.body[0],
            Stmt::Assign(_, Expr::Bin(BinOp(psp_ir::AluOp::Max), _, _))
        ));
    }

    #[test]
    fn else_if_chains() {
        let k = parse_src(
            "kernel c(v, r) -> r {
                if (v < 0) { r = 0 - 1; }
                else if (v > 0) { r = 1; }
                else { r = 0; }
                break if (v >= 0);
            }",
        )
        .unwrap();
        match &k.body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                match &else_body[0] {
                    Stmt::If { else_body, .. } => assert_eq!(else_body.len(), 1),
                    other => panic!("expected nested if, got {other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let e = parse_src("kernel b(a) { a = ; }").unwrap_err();
        assert!(e.msg.contains("expected expression"), "{e}");
        let e = parse_src("kernel b(a) { if (a) { } }").unwrap_err();
        assert!(e.msg.contains("comparison"), "{e}");
        let e = parse_src("loop b(a) { }").unwrap_err();
        assert!(e.msg.contains("kernel"), "{e}");
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse_src("kernel b(a) { a = 1; } extra").unwrap_err();
        assert!(e.msg.contains("trailing"));
    }
}
