//! Pretty-printer: [`Kernel`] AST → concrete syntax that re-parses to the
//! identical AST.
//!
//! Round-trip contract (`parse(print(k)) == k`) relies on three facts about
//! the front end:
//!
//! - the parser is flat left-associative with **no precedence**, so a `Bin`
//!   left operand prints unparenthesized (chains re-associate back), while a
//!   `Bin` right operand must be parenthesized;
//! - parentheses produce no AST node, so the extra grouping is invisible;
//! - the lexer only reads `-N` as a negative literal after `(`, `[`, `,`,
//!   `=`, or an operator — every position where this printer emits an
//!   expression head — so `{}` formatting of negative [`Expr::Int`] is safe.

use crate::ast::{BinOp, Expr, Kernel, Stmt};
use psp_ir::{AluOp, CmpOp};
use std::fmt::Write;

/// Operator spelling for an ALU opcode (inverse of [`BinOp::from_str`]).
pub fn alu_spelling(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "+",
        AluOp::Sub => "-",
        AluOp::Mul => "*",
        AluOp::And => "&",
        AluOp::Or => "|",
        AluOp::Xor => "^",
        AluOp::Shl => "<<",
        AluOp::Shr => ">>",
        AluOp::Min => "min",
        AluOp::Max => "max",
    }
}

/// Comparison spelling (inverse of [`crate::ast::cmp_from_str`]).
pub fn cmp_spelling(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

/// Print an expression. `parenthesize` wraps a `Bin` (used for right
/// operands, where flat re-parsing would steal the subtree).
fn write_expr(out: &mut String, e: &Expr, parenthesize: bool) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(name) => out.push_str(name),
        Expr::Index(arr, idx) => {
            out.push_str(arr);
            out.push('[');
            write_expr(out, idx, false);
            out.push(']');
        }
        Expr::Bin(BinOp(op), lhs, rhs) => {
            if parenthesize {
                out.push('(');
            }
            write_expr(out, lhs, false);
            let _ = write!(out, " {} ", alu_spelling(*op));
            write_expr(out, rhs, matches!(**rhs, Expr::Bin(..)));
            if parenthesize {
                out.push(')');
            }
        }
    }
}

/// Print one expression to a string (right-operand grouping applied inside).
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, false);
    s
}

fn write_condition(out: &mut String, cmp: CmpOp, lhs: &Expr, rhs: &Expr) {
    out.push('(');
    write_expr(out, lhs, false);
    let _ = write!(out, " {} ", cmp_spelling(cmp));
    write_expr(out, rhs, matches!(rhs, Expr::Bin(..)));
    out.push(')');
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Assign(name, value) => {
            out.push_str(name);
            out.push_str(" = ");
            write_expr(out, value, false);
            out.push_str(";\n");
        }
        Stmt::Store(arr, idx, value) => {
            out.push_str(arr);
            out.push('[');
            write_expr(out, idx, false);
            out.push_str("] = ");
            write_expr(out, value, false);
            out.push_str(";\n");
        }
        Stmt::BreakIf { cmp, lhs, rhs } => {
            out.push_str("break if ");
            write_condition(out, *cmp, lhs, rhs);
            out.push_str(";\n");
        }
        Stmt::If { .. } => write_if(out, stmt, depth),
    }
}

/// Print an `if`, folding a single-`If` else body into `else if` (the exact
/// shape the parser's sugar produces).
fn write_if(out: &mut String, stmt: &Stmt, depth: usize) {
    let Stmt::If {
        cmp,
        lhs,
        rhs,
        then_body,
        else_body,
    } = stmt
    else {
        unreachable!("write_if called on non-if");
    };
    out.push_str("if ");
    write_condition(out, *cmp, lhs, rhs);
    out.push_str(" {\n");
    for s in then_body {
        write_stmt(out, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
    match else_body.as_slice() {
        [] => out.push('\n'),
        [only @ Stmt::If { .. }] => {
            out.push_str(" else ");
            write_if(out, only, depth);
        }
        _ => {
            out.push_str(" else {\n");
            for s in else_body {
                write_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// Print a kernel back to source accepted by [`crate::parse`].
pub fn print_kernel(k: &Kernel) -> String {
    let mut out = String::new();
    let _ = write!(out, "kernel {}(", k.name);
    out.push_str(&k.scalars.join(", "));
    if !k.arrays.is_empty() {
        out.push_str("; ");
        let arrays: Vec<String> = k.arrays.iter().map(|a| format!("{a}[]")).collect();
        out.push_str(&arrays.join(", "));
    }
    out.push(')');
    if !k.outs.is_empty() {
        let _ = write!(out, " -> {}", k.outs.join(", "));
    }
    out.push_str(" {\n");
    for s in &k.body {
        write_stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};

    fn roundtrip(src: &str) -> (Kernel, Kernel) {
        let k1 = parse(&lex(src).unwrap()).unwrap();
        let printed = print_kernel(&k1);
        let k2 = parse(&lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        (k1, k2)
    }

    #[test]
    fn roundtrips_vecmin() {
        let (k1, k2) = roundtrip(
            "kernel vecmin(n, k, m; x[]) -> m {
                xk = x[k]; xm = x[m];
                if (xk < xm) { m = k; }
                k = k + 1;
                break if (k >= n);
            }",
        );
        assert_eq!(k1, k2);
    }

    #[test]
    fn roundtrips_else_if_and_negative_literals() {
        let (k1, k2) = roundtrip(
            "kernel c(v, r; y[]) -> r {
                if (v < -3) { r = -1; }
                else if (v > 0) { y[v] = v + -2; }
                else { r = 0; }
                break if (v >= 0);
            }",
        );
        assert_eq!(k1, k2);
    }

    #[test]
    fn roundtrips_flat_left_assoc_chains() {
        // `a + b * c + 1` parses as ((a+b)*c)+1; printing must not introduce
        // grouping that changes the tree, and explicit right-grouping must
        // survive.
        let (k1, k2) = roundtrip(
            "kernel e(a, b, c) -> a {
                a = a + b * c + 1;
                b = a + (b * c);
                c = a min b max (c + 1);
                break if (a >= 0);
            }",
        );
        assert_eq!(k1, k2);
    }

    #[test]
    fn header_without_arrays_or_outs() {
        let (k1, k2) = roundtrip("kernel h(a) { a = a - 1; break if (a <= 0); }");
        assert_eq!(k1, k2);
        assert!(print_kernel(&k1).starts_with("kernel h(a) {"));
    }
}
