//! Lowering the AST to a [`psp_ir::LoopSpec`].
//!
//! Scalars become registers (parameters are live-in; assigned names are
//! allocated on first definition); compound expressions lower through fresh
//! temporaries; each comparison gets its own condition register; array
//! index expressions must reduce to a register or literal.

use crate::ast::{BinOp, Expr, Kernel, Stmt};
use psp_ir::op::build;
use psp_ir::{Address, ArrayId, LoopBuilder, Operand, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A name is used before any value is assigned to it and is not a
    /// parameter.
    Undefined(String),
    /// A name is used both as an array and a scalar.
    NotAnArray(String),
    /// Live-out name never defined.
    UnknownOut(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Undefined(n) => write!(f, "`{n}` used before definition"),
            LowerError::NotAnArray(n) => write!(f, "`{n}` is not an array"),
            LowerError::UnknownOut(n) => write!(f, "live-out `{n}` is never defined"),
        }
    }
}

impl std::error::Error for LowerError {}

struct Ctx {
    b: LoopBuilder,
    regs: BTreeMap<String, Reg>,
    arrays: BTreeMap<String, ArrayId>,
    params: Vec<String>,
}

impl Ctx {
    fn reg_of(&mut self, name: &str) -> Result<Reg, LowerError> {
        if self.arrays.contains_key(name) {
            return Err(LowerError::NotAnArray(name.into()));
        }
        match self.regs.get(name) {
            Some(&r) => Ok(r),
            None => Err(LowerError::Undefined(name.into())),
        }
    }

    fn def_reg(&mut self, name: &str) -> Reg {
        if let Some(&r) = self.regs.get(name) {
            return r;
        }
        let r = self.b.named_reg(name);
        self.regs.insert(name.into(), r);
        r
    }

    fn array_of(&self, name: &str) -> Result<ArrayId, LowerError> {
        self.arrays
            .get(name)
            .copied()
            .ok_or_else(|| LowerError::NotAnArray(name.into()))
    }

    /// Lower an expression to an operand, emitting ops for subterms.
    fn operand(&mut self, e: &Expr) -> Result<Operand, LowerError> {
        Ok(match e {
            Expr::Int(v) => Operand::Imm(*v),
            Expr::Var(name) => Operand::Reg(self.reg_of(name)?),
            Expr::Index(..) | Expr::Bin(..) => {
                let t = self.b.reg();
                self.lower_into(t, e)?;
                Operand::Reg(t)
            }
        })
    }

    /// Lower an array address: the index must reduce to a register plus an
    /// optional literal displacement.
    fn address(&mut self, array: &str, idx: &Expr) -> Result<Address, LowerError> {
        let array = self.array_of(array)?;
        Ok(match idx {
            Expr::Int(v) => Address::constant(array, *v),
            Expr::Var(n) => Address::indexed(array, self.reg_of(n)?),
            Expr::Bin(BinOp(psp_ir::AluOp::Add), a, b) => match (&**a, &**b) {
                (Expr::Var(n), Expr::Int(d)) => {
                    Address::indexed(array, self.reg_of(n)?).displaced(*d)
                }
                (Expr::Int(d), Expr::Var(n)) => {
                    Address::indexed(array, self.reg_of(n)?).displaced(*d)
                }
                _ => {
                    let t = self.b.reg();
                    self.lower_into(t, idx)?;
                    Address::indexed(array, t)
                }
            },
            _ => {
                let t = self.b.reg();
                self.lower_into(t, idx)?;
                Address::indexed(array, t)
            }
        })
    }

    /// Lower `dst = e`.
    fn lower_into(&mut self, dst: Reg, e: &Expr) -> Result<(), LowerError> {
        match e {
            Expr::Int(v) => {
                self.b.op(build::copy(dst, *v));
            }
            Expr::Var(name) => {
                let src = self.reg_of(name)?;
                self.b.op(build::copy(dst, src));
            }
            Expr::Index(array, idx) => {
                let addr = self.address(array, idx)?;
                self.b.op(build::load_addr(dst, addr));
            }
            Expr::Bin(BinOp(op), a, bx) => {
                let a = self.operand(a)?;
                let bo = self.operand(bx)?;
                self.b.op(build::alu(*op, dst, a, bo));
            }
        }
        Ok(())
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        for s in stmts {
            match s {
                Stmt::Assign(name, e) => {
                    // Evaluate the RHS *before* allocating the destination
                    // (so `v = v + 1` reads the old register — here they are
                    // the same register, which is exactly right).
                    match e {
                        // Direct forms avoid a temporary + copy.
                        Expr::Bin(BinOp(op), a, bx) => {
                            let a = self.operand(a)?;
                            let bo = self.operand(bx)?;
                            let dst = self.def_reg(name);
                            self.b.op(build::alu(*op, dst, a, bo));
                        }
                        Expr::Index(array, idx) => {
                            let addr = self.address(array, idx)?;
                            let dst = self.def_reg(name);
                            self.b.op(build::load_addr(dst, addr));
                        }
                        Expr::Int(v) => {
                            let dst = self.def_reg(name);
                            self.b.op(build::copy(dst, *v));
                        }
                        Expr::Var(src) => {
                            let src = self.reg_of(src)?;
                            let dst = self.def_reg(name);
                            self.b.op(build::copy(dst, src));
                        }
                    }
                }
                Stmt::Store(array, idx, value) => {
                    let addr = self.address(array, idx)?;
                    let v = self.operand(value)?;
                    self.b.op(build::store_addr(addr, v));
                }
                Stmt::If {
                    cmp,
                    lhs,
                    rhs,
                    then_body,
                    else_body,
                } => {
                    let a = self.operand(lhs)?;
                    let bo = self.operand(rhs)?;
                    let cc = self.b.cc();
                    self.b.op(build::cmp(*cmp, cc, a, bo));
                    self.b.begin_if(cc);
                    self.lower_stmts(then_body)?;
                    self.b.begin_else();
                    self.lower_stmts(else_body)?;
                    self.b.end_if();
                }
                Stmt::BreakIf { cmp, lhs, rhs } => {
                    let a = self.operand(lhs)?;
                    let bo = self.operand(rhs)?;
                    let cc = self.b.cc();
                    self.b.op(build::cmp(*cmp, cc, a, bo));
                    self.b.break_(cc);
                }
            }
        }
        Ok(())
    }
}

/// Lower a parsed kernel.
pub fn lower(k: &Kernel) -> Result<psp_ir::LoopSpec, LowerError> {
    let mut ctx = Ctx {
        b: LoopBuilder::new(k.name.clone()),
        regs: BTreeMap::new(),
        arrays: BTreeMap::new(),
        params: k.scalars.clone(),
    };
    for a in &k.arrays {
        let id = ctx.b.array(a.clone());
        ctx.arrays.insert(a.clone(), id);
    }
    for s in &k.scalars {
        let r = ctx.b.named_reg(s.clone());
        ctx.regs.insert(s.clone(), r);
    }
    ctx.lower_stmts(&k.body)?;
    let live_in: Vec<Reg> = ctx.params.iter().map(|p| ctx.regs[p]).collect();
    let mut live_out = Vec::new();
    for o in &k.outs {
        match ctx.regs.get(o) {
            Some(&r) => live_out.push(r),
            None => return Err(LowerError::UnknownOut(o.clone())),
        }
    }
    Ok(ctx.b.finish(live_in, live_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileError};
    use psp_sim::{run_reference, MachineState};

    #[test]
    fn vecmin_from_source_matches_handbuilt_shape() {
        let spec = compile(
            "kernel vecmin(n, k, m; x[]) -> m {
                xk = x[k]; xm = x[m];
                if (xk < xm) { m = k; }
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        assert_eq!(spec.n_ifs, 1);
        assert_eq!(spec.op_count(), 8);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn compiled_kernel_executes_correctly() {
        let spec = compile(
            "kernel condsum(n, k, acc, t; x[]) -> acc {
                v = x[k];
                if (v > t) { acc = acc + v; }
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        let mut st = MachineState::new(spec.n_regs, spec.n_ccs);
        let data = vec![5, -3, 8, 0, 7];
        st.regs[0] = data.len() as i64; // n
        st.regs[3] = 0; // t
        st.push_array(data.clone());
        let run = run_reference(&spec, st, 100_000).unwrap();
        let expected: i64 = data.iter().filter(|&&v| v > 0).sum();
        // acc register index: n,k,acc,t => acc = R2.
        assert_eq!(run.state.regs[2], expected);
    }

    #[test]
    fn nested_if_and_else_lower() {
        let spec = compile(
            "kernel clamp(n, k, lo, hi; x[], y[]) {
                v = x[k];
                if (v < lo) { v = lo; } else {
                    if (v > hi) { v = hi; }
                }
                y[k] = v;
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        assert_eq!(spec.n_ifs, 2);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn displaced_addresses_lower_directly() {
        let spec = compile(
            "kernel d(n, k; x[], y[]) {
                y[k] = x[k + 1];
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        let flat = psp_ir::flatten(&spec);
        let load = flat
            .iter()
            .find_map(|f| match f.op.kind {
                psp_ir::OpKind::Load { addr, .. } => Some(addr),
                _ => None,
            })
            .unwrap();
        assert_eq!(load.disp, 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            compile("kernel e(n) { a = b + 1; break if (n >= 0); }"),
            Err(CompileError::Lower(LowerError::Undefined(_)))
        ));
        assert!(matches!(
            compile("kernel e(n; x[]) -> q { k = x[0]; break if (n >= 0); }"),
            Err(CompileError::Lower(LowerError::UnknownOut(_)))
        ));
        assert!(matches!(
            compile("kernel e(n) { a = n[0]; break if (n >= 0); }"),
            Err(CompileError::Lower(LowerError::NotAnArray(_)))
        ));
    }

    #[test]
    fn complex_expressions_make_temporaries() {
        let spec = compile(
            "kernel t(n, k, acc; x[], y[]) -> acc {
                acc = acc + (x[k] * y[k]);
                k = k + 1;
                break if (k >= n);
            }",
        )
        .unwrap();
        assert!(spec.validate().is_ok());
        // Two loads, mul, acc add, k add, cmp, break = 7 ops.
        assert_eq!(spec.op_count(), 7);
    }
}
