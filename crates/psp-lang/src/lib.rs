//! A small C-like loop language for writing kernels the way the paper
//! writes them (`for (k=0;k<n;k++) if (x[k]<x[m]) m=k;`), lowered to
//! [`psp_ir::LoopSpec`].
//!
//! Grammar (one do-while loop body):
//!
//! ```text
//! kernel <name>(<scalar>, ... ; <array>[], ...) -> <scalar>, ... {
//!     <stmt>*
//! }
//!
//! stmt := <reg> = <expr> ;
//!       | <array> [ <expr> ] = <expr> ;
//!       | if ( <expr> <cmp> <expr> ) { <stmt>* } [ else { <stmt>* } ]
//!       | break if ( <expr> <cmp> <expr> ) ;
//!
//! expr := <term> ( (+|-|*|&|'|'|^|<<|>>|min|max) <term> )*   (left assoc)
//! term := <int> | <reg> | <array> [ <expr> ] | ( <expr> )
//! cmp  := < | <= | > | >= | == | !=
//! ```
//!
//! Scalars named in the parameter list are live-in registers; names after
//! `->` are live-out. Compound expressions lower through fresh temporary
//! registers; comparisons lower to condition registers.
//!
//! ```
//! let src = r#"
//!     kernel vecmin(n, k, m; x[]) -> m {
//!         xk = x[k];
//!         xm = x[m];
//!         if (xk < xm) { m = k; }
//!         k = k + 1;
//!         break if (k >= n);
//!     }
//! "#;
//! let spec = psp_lang::compile(src).unwrap();
//! assert_eq!(spec.name, "vecmin");
//! assert_eq!(spec.n_ifs, 1);
//! assert!(spec.validate().is_ok());
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod print;

pub use ast::{BinOp, Expr, Kernel, Stmt};
pub use lexer::{lex, LexError, Token};
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};
pub use print::{print_expr, print_kernel};

/// Parse and lower a kernel in one step.
pub fn compile(src: &str) -> Result<psp_ir::LoopSpec, CompileError> {
    let tokens = lex(src).map_err(CompileError::Lex)?;
    let kernel = parse(&tokens).map_err(CompileError::Parse)?;
    lower(&kernel).map_err(CompileError::Lower)
}

/// Any front-end failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Tokenization failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Lowering failed.
    Lower(LowerError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}
