//! Abstract syntax tree.

use psp_ir::{AluOp, CmpOp};

/// Binary operator spelling → ALU opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinOp(pub AluOp);

impl BinOp {
    /// Parse an operator spelling (not the `FromStr` trait: this returns
    /// `Option` and accepts identifier operators like `min`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        Some(BinOp(match s {
            "+" => AluOp::Add,
            "-" => AluOp::Sub,
            "*" => AluOp::Mul,
            "&" => AluOp::And,
            "|" => AluOp::Or,
            "^" => AluOp::Xor,
            "<<" => AluOp::Shl,
            ">>" => AluOp::Shr,
            "min" => AluOp::Min,
            "max" => AluOp::Max,
            _ => return None,
        }))
    }
}

/// Comparison spelling → compare opcode.
pub fn cmp_from_str(s: &str) -> Option<CmpOp> {
    Some(match s {
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        _ => return None,
    })
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Scalar variable.
    Var(String),
    /// Array element `array[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var = expr;`
    Assign(String, Expr),
    /// `array[index] = expr;`
    Store(String, Expr, Expr),
    /// `if (a cmp b) { … } else { … }`
    If {
        /// Comparison opcode.
        cmp: psp_ir::CmpOp,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Not-taken branch.
        else_body: Vec<Stmt>,
    },
    /// `break if (a cmp b);`
    BreakIf {
        /// Comparison opcode.
        cmp: psp_ir::CmpOp,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
}

/// A parsed kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Live-in scalar parameters.
    pub scalars: Vec<String>,
    /// Array parameters.
    pub arrays: Vec<String>,
    /// Live-out scalars.
    pub outs: Vec<String>,
    /// Loop body.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_table() {
        assert_eq!(BinOp::from_str("+"), Some(BinOp(AluOp::Add)));
        assert_eq!(BinOp::from_str(">>"), Some(BinOp(AluOp::Shr)));
        assert_eq!(BinOp::from_str("min"), Some(BinOp(AluOp::Min)));
        assert_eq!(BinOp::from_str("%"), None);
        assert_eq!(cmp_from_str("<="), Some(CmpOp::Le));
        assert_eq!(cmp_from_str("=>"), None);
    }
}
