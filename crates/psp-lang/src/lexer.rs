//! Tokenizer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier (register, array, or kernel name, or keyword).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `->`.
    Arrow,
    /// Binary operator or comparison spelling (`+ - * & | ^ << >> < <= > >= == !=`).
    Op(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, "="),
            Token::Arrow => write!(f, "->"),
            Token::Op(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// The character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} at byte {}", self.ch, self.at)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`. Comments run from `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' | '*' | '&' | '|' | '^' => {
                out.push(Token::Op(c.to_string()));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Arrow);
                    i += 2;
                } else if bytes
                    .get(i + 1)
                    .map(|d| d.is_ascii_digit())
                    .unwrap_or(false)
                    && matches!(
                        out.last(),
                        None | Some(
                            Token::Op(_)
                                | Token::Assign
                                | Token::LParen
                                | Token::LBracket
                                | Token::Comma
                        )
                    )
                {
                    // Negative literal in operand position.
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let text: String = bytes[start..j].iter().collect();
                    out.push(Token::Int(-text.parse::<i64>().unwrap()));
                    i = j;
                } else {
                    out.push(Token::Op("-".into()));
                    i += 1;
                }
            }
            '<' | '>' => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                if two == "<=" || two == ">=" || two == "<<" || two == ">>" {
                    out.push(Token::Op(two));
                    i += 2;
                } else {
                    out.push(Token::Op(c.to_string()));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Op("==".into()));
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Op("!=".into()));
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Token::Int(text.parse().unwrap()));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            _ => return Err(LexError { at: i, ch: c }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_vecmin_kernel() {
        let toks = lex("kernel v(n; x[]) -> m { m = x[k]; break if (k >= n); }").unwrap();
        assert!(toks.contains(&Token::Ident("kernel".into())));
        assert!(toks.contains(&Token::Arrow));
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::LBracket));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("a = 1; // trailing words $!\nb = 2;").unwrap();
        assert_eq!(toks.len(), 8);
    }

    #[test]
    fn negative_literals_in_operand_position() {
        let toks = lex("a = -5;").unwrap();
        assert!(toks.contains(&Token::Int(-5)));
        // Subtraction keeps its operator meaning.
        let toks = lex("a = b - 5;").unwrap();
        assert!(toks.contains(&Token::Op("-".into())));
        assert!(toks.contains(&Token::Int(5)));
    }

    #[test]
    fn two_char_operators() {
        for op in ["<=", ">=", "==", "!=", "<<", ">>"] {
            let toks = lex(&format!("a {op} b")).unwrap();
            assert!(toks.contains(&Token::Op(op.into())), "{op}");
        }
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a = #;").unwrap_err();
        assert_eq!(err.ch, '#');
    }
}
