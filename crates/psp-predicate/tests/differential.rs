//! Packed-vs-sparse differential suite.
//!
//! Every operation of the predicate algebra must produce *identical*
//! results under the packed bitplane backend and the sparse `BTreeMap`
//! reference — including observable representation details (equality,
//! ordering, hashing, `Debug`) that the scheduler's determinism rests on.
//! Key ranges deliberately straddle the packed window so the spill
//! fallback is exercised alongside the word-op fast paths.

use proptest::prelude::*;
use psp_predicate::backend::with_backend;
use psp_predicate::matrix::{PACKED_COL_HI, PACKED_COL_LO, PACKED_ROWS};
use psp_predicate::{PathSet, PredElem, PredicateMatrix};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Entry keys straddling the packed window: rows up to `PACKED_ROWS + 2`,
/// columns past both window edges.
fn arb_entries() -> impl Strategy<Value = Vec<(u32, i32, bool)>> {
    proptest::collection::vec(
        (
            0..PACKED_ROWS + 3,
            PACKED_COL_LO - 4..PACKED_COL_HI + 5,
            any::<bool>(),
        ),
        0..8,
    )
}

/// In-window-only entries (the pure word-op path).
fn arb_entries_inwindow() -> impl Strategy<Value = Vec<(u32, i32, bool)>> {
    proptest::collection::vec(
        (
            0..PACKED_ROWS,
            PACKED_COL_LO..PACKED_COL_HI + 1,
            any::<bool>(),
        ),
        0..8,
    )
}

fn both_modes(entries: &[(u32, i32, bool)]) -> (PredicateMatrix, PredicateMatrix) {
    let packed = with_backend(true, || {
        PredicateMatrix::from_entries(entries.iter().copied())
    });
    let sparse = with_backend(false, || {
        PredicateMatrix::from_entries(entries.iter().copied())
    });
    (packed, sparse)
}

fn hash_of(m: &PredicateMatrix) -> u64 {
    let mut h = DefaultHasher::new();
    m.hash(&mut h);
    h.finish()
}

/// The full observable surface of one matrix.
fn observe(m: &PredicateMatrix) -> (Vec<(u32, i32, bool)>, usize, bool, String, String, u64) {
    (
        m.constrained().collect(),
        m.constrained_len(),
        m.is_universe(),
        format!("{m:?}"),
        format!("{m}"),
        hash_of(m),
    )
}

fn assert_same(p: &PredicateMatrix, s: &PredicateMatrix) {
    assert_eq!(p, s);
    assert_eq!(observe(p), observe(s));
}

proptest! {
    #[test]
    fn construction_is_mode_independent(e in arb_entries()) {
        let (p, s) = both_modes(&e);
        assert_same(&p, &s);
        for &(r, c, _) in &e {
            prop_assert_eq!(p.get(r, c), s.get(r, c));
        }
    }

    #[test]
    fn binary_ops_are_mode_independent(ea in arb_entries(), eb in arb_entries()) {
        let (pa, sa) = both_modes(&ea);
        let (pb, sb) = both_modes(&eb);
        prop_assert_eq!(pa.is_disjoint(&pb), sa.is_disjoint(&sb));
        prop_assert_eq!(pa.subsumes(&pb), sa.subsumes(&sb));
        prop_assert_eq!(pb.subsumes(&pa), sb.subsumes(&sa));
        prop_assert_eq!(pa.unify(&pb), sa.unify(&sb));
        match (pa.conjoin(&pb), sa.conjoin(&sb)) {
            (Some(pc), Some(sc)) => assert_same(&pc, &sc),
            (None, None) => {}
            (pc, sc) => prop_assert!(false, "conjoin diverged: {:?} vs {:?}", pc, sc),
        }
        // Interchangeability: mixed-representation operands agree too.
        prop_assert_eq!(pa.is_disjoint(&sb), sa.is_disjoint(&pb));
        prop_assert_eq!(pa.subsumes(&sb), sa.subsumes(&pb));
        prop_assert_eq!(pa.conjoin(&sb), sa.conjoin(&pb));
        // Ordering is content-based — PathSet normalization sorts by it.
        prop_assert_eq!(pa.cmp(&pb), sa.cmp(&sb));
        prop_assert_eq!(pa.cmp(&sb), std::cmp::Ordering::Equal.then(pa.cmp(&pb)));
    }

    #[test]
    fn cached_queries_match_direct(ea in arb_entries(), eb in arb_entries()) {
        let (pa, sa) = both_modes(&ea);
        let (pb, sb) = both_modes(&eb);
        for (a, b) in [(&pa, &pb), (&sa, &sb), (&pa, &sb)] {
            prop_assert_eq!(psp_predicate::intern::cached_disjoint(a, b), a.is_disjoint(b));
            prop_assert_eq!(psp_predicate::intern::cached_subsumes(a, b), a.subsumes(b));
        }
    }

    #[test]
    fn shift_is_mode_independent(e in arb_entries(), d in -20i32..=20) {
        let (p, s) = both_modes(&e);
        assert_same(&p.shifted(d), &s.shifted(d));
        assert_same(&p.shifted(d).shifted(-d), &s);
    }

    #[test]
    fn shift_within_window_uses_same_results(e in arb_entries_inwindow(), d in -3i32..=3) {
        // The lane-shift fast path vs the sparse rebuild.
        let (p, s) = both_modes(&e);
        assert_same(&p.shifted(d), &s.shifted(d));
    }

    #[test]
    fn split_is_mode_independent(e in arb_entries(), r in 0..PACKED_ROWS + 3, c in -10i32..=10) {
        let (p, s) = both_modes(&e);
        match (p.split(r, c), s.split(r, c)) {
            (Some((pf, pt)), Some((sf, st))) => {
                assert_same(&pf, &sf);
                assert_same(&pt, &st);
                prop_assert_eq!(pf.unify(&pt), sf.unify(&st));
            }
            (None, None) => {}
            _ => prop_assert!(false, "split diverged"),
        }
    }

    #[test]
    fn with_and_set_are_mode_independent(e in arb_entries(), r in 0..PACKED_ROWS + 3, c in -10i32..=10, v in any::<bool>()) {
        let (p, s) = both_modes(&e);
        assert_same(&p.with(r, c, PredElem::from_bool(v)), &s.with(r, c, PredElem::from_bool(v)));
        assert_same(&p.with(r, c, PredElem::Both), &s.with(r, c, PredElem::Both));
    }

    #[test]
    fn pathset_algebra_is_mode_independent(
        es_a in proptest::collection::vec(arb_entries(), 0..4),
        es_b in proptest::collection::vec(arb_entries(), 0..4),
    ) {
        let build = |packed: bool, es: &[Vec<(u32, i32, bool)>]| {
            with_backend(packed, || {
                PathSet::from_matrices(
                    es.iter().map(|e| PredicateMatrix::from_entries(e.iter().copied())),
                )
            })
        };
        let (pa, sa) = (build(true, &es_a), build(false, &es_a));
        let (pb, sb) = (build(true, &es_b), build(false, &es_b));
        // PathSet equality is member-wise matrix equality, which is
        // content-based; normalization must have produced the same members
        // in the same (sorted) order.
        prop_assert_eq!(&pa, &sa);
        prop_assert_eq!(&pb, &sb);
        prop_assert_eq!(pa.union(&pb), sa.union(&sb));
        prop_assert_eq!(pa.intersect(&pb), sa.intersect(&sb));
        prop_assert_eq!(pa.subtract(&pb), sa.subtract(&sb));
        prop_assert_eq!(pa.subsumes(&pb), sa.subsumes(&sb));
        prop_assert_eq!(pb.subsumes(&pa), sb.subsumes(&sa));
        prop_assert_eq!(pa.is_universe(), sa.is_universe());
        prop_assert_eq!(pa.disjointify(), sa.disjointify());
        if let Some(m) = pb.matrices().first() {
            prop_assert_eq!(pa.intersect_matrix(m), sa.intersect_matrix(m));
        }
        // Probability sums f64 terms in member order; identical members in
        // identical order make it bit-identical, which candidate scoring
        // relies on.
        let prob = |r: u32, c: i32| 1.0 / (2.0 + r as f64 + (c.unsigned_abs() % 3) as f64);
        prop_assert_eq!(pa.probability(prob).to_bits(), sa.probability(prob).to_bits());
    }
}

#[test]
fn window_edges_spill_exactly_outside() {
    let inside = [
        (0u32, PACKED_COL_LO, true),
        (0, PACKED_COL_HI, false),
        (PACKED_ROWS - 1, 0, true),
    ];
    let (p, s) = both_modes(&inside);
    assert!(p.is_word_packed(), "window-edge keys must not spill");
    assert_same(&p, &s);

    let outside = [
        (0u32, PACKED_COL_LO - 1, true),
        (0, PACKED_COL_HI + 1, false),
        (PACKED_ROWS, 0, true),
    ];
    let (p, s) = both_modes(&outside);
    assert!(!p.is_word_packed(), "out-of-window keys must spill");
    assert_same(&p, &s);
}

#[test]
fn subtract_matrix_pieces_match_across_modes() {
    // The staircase decomposition drives subtract/disjointify/covers; pin
    // one overlapping case in both modes, with one spilled key.
    let mk = |packed| {
        with_backend(packed, || {
            let a = PredicateMatrix::from_entries([(0, 0, true), (1, PACKED_COL_HI + 2, true)]);
            let b = PredicateMatrix::from_entries([(0, 0, true), (2, 0, false)]);
            PathSet::from_matrix(a).subtract(&PathSet::from_matrix(b))
        })
    };
    let (p, s) = (mk(true), mk(false));
    assert_eq!(p, s);
    assert_eq!(p.len(), 1);
    assert_eq!(
        p.matrices()[0],
        PredicateMatrix::from_entries([(0, 0, true), (1, PACKED_COL_HI + 2, true), (2, 0, true)])
    );
}
