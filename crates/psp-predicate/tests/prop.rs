//! Property-based tests for the predicate-matrix / path-set algebra.
//!
//! Strategy: generate small random matrices over a bounded window of rows
//! and columns, plus total outcome assignments over the same window, and
//! check the set-algebra operations against their membership semantics.

use proptest::prelude::*;
use psp_predicate::{OutcomeMap, PathSet, PredElem, PredicateMatrix};

const ROWS: u32 = 3;
const COL_LO: i32 = -2;
const COL_HI: i32 = 2;

fn arb_matrix() -> impl Strategy<Value = PredicateMatrix> {
    proptest::collection::vec(((0..ROWS), (COL_LO..=COL_HI), any::<bool>()), 0..6)
        .prop_map(PredicateMatrix::from_entries)
}

fn arb_pathset() -> impl Strategy<Value = PathSet> {
    proptest::collection::vec(arb_matrix(), 0..4).prop_map(PathSet::from_matrices)
}

fn arb_outcomes() -> impl Strategy<Value = OutcomeMap> {
    proptest::collection::vec(
        any::<bool>(),
        (ROWS as usize) * ((COL_HI - COL_LO + 1) as usize),
    )
    .prop_map(|bits| {
        let mut i = 0;
        OutcomeMap::from_fn(ROWS, COL_LO, COL_HI, |_, _| {
            let b = bits[i];
            i += 1;
            b
        })
    })
}

/// Enumerate all total outcome assignments over the window restricted to the
/// given support keys (exhaustive model checking on the relevant predicates).
fn outcomes_over(keys: &[(u32, i32)]) -> Vec<OutcomeMap> {
    let n = keys.len();
    assert!(n <= 12, "support too large for exhaustive enumeration");
    (0..(1usize << n))
        .map(|bits| {
            let mut o = OutcomeMap::new();
            for (i, &(r, c)) in keys.iter().enumerate() {
                o.set(r, c, bits & (1 << i) != 0);
            }
            o
        })
        .collect()
}

fn support_of(sets: &[&PathSet]) -> Vec<(u32, i32)> {
    let mut keys: Vec<(u32, i32)> = sets
        .iter()
        .flat_map(|s| s.matrices().iter().flat_map(|m| m.keys()))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

proptest! {
    #[test]
    fn conjoin_is_commutative(a in arb_matrix(), b in arb_matrix()) {
        prop_assert_eq!(a.conjoin(&b), b.conjoin(&a));
    }

    #[test]
    fn conjoin_with_universe_is_identity(a in arb_matrix()) {
        prop_assert_eq!(a.conjoin(&PredicateMatrix::universe()), Some(a.clone()));
    }

    #[test]
    fn conjoin_is_associative(a in arb_matrix(), b in arb_matrix(), c in arb_matrix()) {
        let left = a.conjoin(&b).and_then(|ab| ab.conjoin(&c));
        let right = b.conjoin(&c).and_then(|bc| a.conjoin(&bc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn disjoint_iff_conjoin_none(a in arb_matrix(), b in arb_matrix()) {
        prop_assert_eq!(a.is_disjoint(&b), a.conjoin(&b).is_none());
    }

    #[test]
    fn conjoin_models_intersection(a in arb_matrix(), b in arb_matrix(), o in arb_outcomes()) {
        let both = a.admits(&o) && b.admits(&o);
        match a.conjoin(&b) {
            Some(c) => prop_assert_eq!(c.admits(&o), both),
            None => prop_assert!(!both),
        }
    }

    #[test]
    fn subsumes_models_superset(a in arb_matrix(), b in arb_matrix(), o in arb_outcomes()) {
        if a.subsumes(&b) && b.admits(&o) {
            prop_assert!(a.admits(&o));
        }
    }

    #[test]
    fn shift_roundtrip(a in arb_matrix(), d in -3i32..=3) {
        prop_assert_eq!(a.shifted(d).shifted(-d), a);
    }

    #[test]
    fn shift_commutes_with_conjoin(a in arb_matrix(), b in arb_matrix(), d in -3i32..=3) {
        let lhs = a.conjoin(&b).map(|m| m.shifted(d));
        let rhs = a.shifted(d).conjoin(&b.shifted(d));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn split_partitions_the_matrix(a in arb_matrix(), row in 0..ROWS, col in COL_LO..=COL_HI) {
        if let Some((f, t)) = a.split(row, col) {
            prop_assert!(f.is_disjoint(&t));
            prop_assert_eq!(f.get(row, col), PredElem::False);
            prop_assert_eq!(t.get(row, col), PredElem::True);
            // Union of the halves is the original set.
            let u = PathSet::from_matrices([f.clone(), t.clone()]);
            prop_assert!(u.equivalent(&PathSet::from_matrix(a.clone())));
            // unify is the inverse.
            prop_assert_eq!(f.unify(&t), Some(a.clone()));
        } else {
            prop_assert!(a.get(row, col).is_constrained());
        }
    }

    #[test]
    fn pathset_union_models_or(a in arb_pathset(), b in arb_pathset(), o in arb_outcomes()) {
        let u = a.union(&b);
        prop_assert_eq!(u.admits(&o), a.admits(&o) || b.admits(&o));
    }

    #[test]
    fn pathset_intersect_models_and(a in arb_pathset(), b in arb_pathset(), o in arb_outcomes()) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.admits(&o), a.admits(&o) && b.admits(&o));
    }

    #[test]
    fn pathset_subtract_models_and_not(a in arb_pathset(), b in arb_pathset(), o in arb_outcomes()) {
        let d = a.subtract(&b);
        prop_assert_eq!(d.admits(&o), a.admits(&o) && !b.admits(&o));
    }

    #[test]
    fn pathset_complement_models_not(a in arb_pathset(), o in arb_outcomes()) {
        prop_assert_eq!(a.complement().admits(&o), !a.admits(&o));
    }

    #[test]
    fn pathset_subsumes_exhaustive(a in arb_pathset(), b in arb_pathset()) {
        let keys = support_of(&[&a, &b]);
        if keys.len() <= 10 {
            let model = outcomes_over(&keys)
                .iter()
                .all(|o| !b.admits(o) || a.admits(o));
            prop_assert_eq!(a.subsumes(&b), model);
        }
    }

    #[test]
    fn disjointify_is_disjoint_and_equal(a in arb_pathset()) {
        let d = a.disjointify();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                prop_assert!(d[i].is_disjoint(&d[j]));
            }
        }
        let rebuilt = PathSet::from_matrices(d);
        prop_assert!(rebuilt.equivalent(&a));
    }

    #[test]
    fn probability_is_a_measure(a in arb_pathset(), b in arb_pathset(), p in 0.0f64..=1.0) {
        let pa = a.probability(|_, _| p);
        let pb = b.probability(|_, _| p);
        let pu = a.union(&b).probability(|_, _| p);
        let pi = a.intersect(&b).probability(|_, _| p);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&pa));
        // Inclusion–exclusion.
        prop_assert!((pu + pi - (pa + pb)).abs() < 1e-9);
    }

    #[test]
    fn probability_matches_exhaustive_count_at_half(a in arb_pathset()) {
        let keys = support_of(&[&a]);
        if keys.len() <= 10 {
            let outs = outcomes_over(&keys);
            let frac = outs.iter().filter(|o| a.admits(o)).count() as f64 / outs.len() as f64;
            prop_assert!((a.probability(|_, _| 0.5) - frac).abs() < 1e-9);
        }
    }

    #[test]
    fn normalization_preserves_semantics(ms in proptest::collection::vec(arb_matrix(), 0..4), o in arb_outcomes()) {
        let s = PathSet::from_matrices(ms.clone());
        let raw = ms.iter().any(|m| m.admits(&o));
        prop_assert_eq!(s.admits(&o), raw);
    }
}
