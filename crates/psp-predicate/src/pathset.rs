//! Finite unions of predicate matrices — *path sets*.
//!
//! A single matrix suffices for the *formal* path set of an operation, but
//! *actual* path sets (the paths on which a speculatively scheduled
//! operation really executes) generally need a union of matrices (paper §2,
//! the `[1 b]` ∪ `[0 1]` example). [`PathSet`] provides the set algebra on
//! such unions, plus a probability measure used by the profile-driven
//! heuristics of the paper's §4.

use crate::elem::PredElem;
use crate::matrix::PredicateMatrix;
use crate::outcome::OutcomeMap;
use std::fmt;

/// A union of predicate matrices, kept normalized (no empty members, no
/// member subsumed by another, complementary pairs merged).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSet {
    matrices: Vec<PredicateMatrix>,
}

impl PathSet {
    /// The empty path set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The set of all paths.
    pub fn universe() -> Self {
        Self {
            matrices: vec![PredicateMatrix::universe()],
        }
    }

    /// Singleton union.
    pub fn from_matrix(m: PredicateMatrix) -> Self {
        Self { matrices: vec![m] }
    }

    /// Build from matrices, normalizing.
    pub fn from_matrices<I: IntoIterator<Item = PredicateMatrix>>(it: I) -> Self {
        let mut s = Self {
            matrices: it.into_iter().collect(),
        };
        s.normalize();
        s
    }

    /// The member matrices (normalized form).
    pub fn matrices(&self) -> &[PredicateMatrix] {
        &self.matrices
    }

    /// Whether the set contains no paths.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Whether the set is all paths (semantic check: the representation is
    /// not canonical, so a covering union may have several members).
    pub fn is_universe(&self) -> bool {
        self.matrices.iter().any(|m| m.is_universe())
            || self.covers_matrix(&PredicateMatrix::universe())
    }

    /// Number of member matrices.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// Add one matrix to the union.
    pub fn insert(&mut self, m: PredicateMatrix) {
        self.matrices.push(m);
        self.normalize();
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = Self {
            matrices: self
                .matrices
                .iter()
                .chain(other.matrices.iter())
                .cloned()
                .collect(),
        };
        s.normalize();
        s
    }

    /// Set intersection (pairwise conjoin).
    pub fn intersect(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        for a in &self.matrices {
            for b in &other.matrices {
                if let Some(c) = a.conjoin(b) {
                    out.push(c);
                }
            }
        }
        let mut s = Self { matrices: out };
        s.normalize();
        s
    }

    /// Intersection with a single matrix (no clone/round-trip through a
    /// singleton set: conjoin each member directly).
    pub fn intersect_matrix(&self, m: &PredicateMatrix) -> Self {
        let mut s = Self {
            matrices: self.matrices.iter().filter_map(|a| a.conjoin(m)).collect(),
        };
        s.normalize();
        s
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &Self) -> Self {
        let mut rest: Vec<PredicateMatrix> = self.matrices.clone();
        for sub in &other.matrices {
            let mut next = Vec::new();
            for m in rest {
                next.extend(subtract_matrix(&m, sub));
            }
            rest = next;
        }
        let mut s = Self { matrices: rest };
        s.normalize();
        s
    }

    /// Complement within the universe.
    pub fn complement(&self) -> Self {
        Self::universe().subtract(self)
    }

    /// Whether every path of `other` lies in `self`.
    pub fn subsumes(&self, other: &Self) -> bool {
        other.matrices.iter().all(|m| self.covers_matrix(m))
    }

    /// Whether every path of the single matrix `m` lies in `self`.
    ///
    /// Same staircase subtraction as [`subtract`](Self::subtract) (so the
    /// answer is exact), but per-member, skipping the allocation of a full
    /// difference set, with an early exit once nothing of `m` remains and a
    /// quick sufficient check for the common single-witness case.
    fn covers_matrix(&self, m: &PredicateMatrix) -> bool {
        if self.matrices.iter().any(|s| s.subsumes(m)) {
            return true;
        }
        let mut pieces = vec![m.clone()];
        for sub in &self.matrices {
            let mut next = Vec::new();
            for p in pieces {
                next.extend(subtract_matrix(&p, sub));
            }
            pieces = next;
            if pieces.is_empty() {
                return true;
            }
        }
        false
    }

    /// Semantic equality: the two unions denote the same path set.
    ///
    /// The normal form kept by this type is not canonical (it is a
    /// DNF-like representation), so structurally different values may be
    /// equivalent.
    pub fn equivalent(&self, other: &Self) -> bool {
        self.subsumes(other) && other.subsumes(self)
    }

    /// Whether the two sets share no path.
    pub fn is_disjoint_from(&self, other: &Self) -> bool {
        self.intersect(other).is_empty()
    }

    /// Shift all member matrices' columns by `delta`.
    pub fn shifted(&self, delta: i32) -> Self {
        Self {
            matrices: self.matrices.iter().map(|m| m.shifted(delta)).collect(),
        }
    }

    /// Whether the concrete path lies in the set.
    pub fn admits(&self, outcomes: &OutcomeMap) -> bool {
        self.matrices.iter().any(|m| m.admits(outcomes))
    }

    /// Probability measure of the set under an independent per-predicate
    /// model: `prob(row, col)` is the probability that the IF at `row`
    /// takes its True outcome in iteration `col`.
    ///
    /// The union is first disjointified so member measures simply add.
    pub fn probability(&self, mut prob: impl FnMut(u32, i32) -> f64) -> f64 {
        let disjoint = self.disjointify();
        disjoint
            .iter()
            .map(|m| {
                m.constrained()
                    .map(|(r, c, v)| {
                        let p = prob(r, c).clamp(0.0, 1.0);
                        if v {
                            p
                        } else {
                            1.0 - p
                        }
                    })
                    .product::<f64>()
            })
            .sum()
    }

    /// Rewrite the union as a list of pairwise-disjoint matrices covering
    /// the same path set.
    pub fn disjointify(&self) -> Vec<PredicateMatrix> {
        let mut out: Vec<PredicateMatrix> = Vec::new();
        for m in &self.matrices {
            // Subtract everything already emitted from m, emit the pieces.
            let mut pieces = vec![m.clone()];
            for prev in &out {
                let mut next = Vec::new();
                for p in pieces {
                    next.extend(subtract_matrix(&p, prev));
                }
                pieces = next;
                if pieces.is_empty() {
                    break;
                }
            }
            out.extend(pieces);
        }
        out
    }

    /// Normal form: drop subsumed members and merge complementary pairs.
    fn normalize(&mut self) {
        loop {
            // Drop members subsumed by another member, in one marking pass
            // (no quadratic `remove` churn). The surviving set is the same
            // as removing one at a time: subsumption is transitive, so a
            // member subsumed by a removed witness is also subsumed by
            // whatever kept that witness out, and the lower-index tie-break
            // always leaves the first of an equal group standing.
            let n = self.matrices.len();
            let mut keep = vec![true; n];
            for (i, ki) in keep.iter_mut().enumerate() {
                for j in 0..n {
                    if i != j
                        && self.matrices[j].subsumes(&self.matrices[i])
                        && (self.matrices[j] != self.matrices[i] || j < i)
                    {
                        *ki = false;
                        break;
                    }
                }
            }
            if keep.iter().any(|k| !k) {
                let mut it = keep.iter();
                self.matrices.retain(|_| *it.next().unwrap());
            }
            // Merge one complementary pair, if any, then re-run.
            let mut merged = None;
            'outer: for i in 0..self.matrices.len() {
                for j in (i + 1)..self.matrices.len() {
                    if let Some(u) = self.matrices[i].unify(&self.matrices[j]) {
                        merged = Some((i, j, u));
                        break 'outer;
                    }
                }
            }
            match merged {
                Some((i, j, u)) => {
                    self.matrices.remove(j);
                    self.matrices.remove(i);
                    self.matrices.push(u);
                }
                None => break,
            }
        }
        self.matrices.sort();
        self.matrices.dedup();
    }
}

/// `m \ sub` as a list of disjoint matrices.
fn subtract_matrix(m: &PredicateMatrix, sub: &PredicateMatrix) -> Vec<PredicateMatrix> {
    if m.is_disjoint(sub) {
        return vec![m.clone()];
    }
    // Entries of `sub` not already constrained (identically) in `m`.
    let extra: Vec<(u32, i32, bool)> = sub
        .constrained()
        .filter(|&(r, c, _)| !m.get(r, c).is_constrained())
        .collect();
    if extra.is_empty() {
        // m ⊆ sub: nothing remains.
        return Vec::new();
    }
    // Standard "staircase" decomposition: piece i agrees with sub on the
    // first i extra entries and disagrees on the (i+1)-th.
    let mut out = Vec::with_capacity(extra.len());
    let mut base = m.clone();
    for &(r, c, v) in &extra {
        out.push(base.with(r, c, PredElem::from_bool(!v)));
        base.set(r, c, PredElem::from_bool(v));
    }
    out
}

impl fmt::Display for PathSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.matrices.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (i, m) in self.matrices.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl From<PredicateMatrix> for PathSet {
    fn from(m: PredicateMatrix) -> Self {
        Self::from_matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(entries: &[(u32, i32, bool)]) -> PredicateMatrix {
        PredicateMatrix::from_entries(entries.iter().copied())
    }

    #[test]
    fn empty_and_universe() {
        assert!(PathSet::empty().is_empty());
        assert!(PathSet::universe().is_universe());
        assert!(!PathSet::universe().is_empty());
    }

    #[test]
    fn union_of_complements_is_universe() {
        let a = PathSet::from_matrix(m(&[(0, 0, true)]));
        let b = PathSet::from_matrix(m(&[(0, 0, false)]));
        let u = a.union(&b);
        assert!(u.is_universe());
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn union_drops_subsumed_member() {
        let wide = m(&[(0, 0, true)]);
        let narrow = m(&[(0, 0, true), (1, 0, false)]);
        let s = PathSet::from_matrices([narrow, wide.clone()]);
        assert_eq!(s.matrices(), &[wide]);
    }

    #[test]
    fn intersect_distributes() {
        let a = PathSet::from_matrices([m(&[(0, 0, true)]), m(&[(0, 0, false), (1, 0, true)])]);
        let b = PathSet::from_matrix(m(&[(1, 0, true)]));
        let i = a.intersect(&b);
        // = [1 ; 1] ∪ [0 ; 1] which normalizes to [b ; 1] i.e. row1=1.
        assert_eq!(i.matrices(), &[m(&[(1, 0, true)])]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = PathSet::from_matrix(m(&[(0, 0, true)]));
        let b = PathSet::from_matrix(m(&[(0, 0, false)]));
        assert!(a.intersect(&b).is_empty());
        assert!(a.is_disjoint_from(&b));
    }

    #[test]
    fn subtract_within_single_row() {
        let u = PathSet::universe();
        let a = PathSet::from_matrix(m(&[(0, 0, true)]));
        let c = u.subtract(&a);
        assert_eq!(c.matrices(), &[m(&[(0, 0, false)])]);
    }

    #[test]
    fn subtract_multi_entry() {
        // universe \ [1 1] = [0 b] ∪ [1 0]
        let u = PathSet::universe();
        let a = PathSet::from_matrix(m(&[(0, 0, true), (0, 1, true)]));
        let c = u.subtract(&a);
        assert!(c.admits(&outcome(&[((0, 0), false), ((0, 1), true)])));
        assert!(c.admits(&outcome(&[((0, 0), true), ((0, 1), false)])));
        assert!(!c.admits(&outcome(&[((0, 0), true), ((0, 1), true)])));
        // Re-union must give back the universe.
        assert!(c.union(&a).is_universe());
    }

    #[test]
    fn complement_involution() {
        let a = PathSet::from_matrices([m(&[(0, 0, true)]), m(&[(1, -1, false)])]);
        assert!(a.complement().complement().equivalent(&a));
        assert!(a.complement().is_disjoint_from(&a));
        assert!(a.complement().union(&a).is_universe());
    }

    #[test]
    fn subsumes_reflexive_and_universe_top() {
        let a = PathSet::from_matrix(m(&[(0, 0, true)]));
        assert!(a.subsumes(&a));
        assert!(PathSet::universe().subsumes(&a));
        assert!(!a.subsumes(&PathSet::universe()));
        assert!(a.subsumes(&PathSet::empty()));
    }

    #[test]
    fn paper_actual_set_example() {
        // Actual set {[1 b], [0 1]}: executed on both outcomes of the
        // current IF when the previous outcome was True, else only on True
        // of the current. Columns here: -1 = previous, 0 = current.
        let s = PathSet::from_matrices([m(&[(0, -1, true)]), m(&[(0, -1, false), (0, 0, true)])]);
        assert_eq!(s.len(), 2);
        assert!(s.admits(&outcome(&[((0, -1), true), ((0, 0), false)])));
        assert!(s.admits(&outcome(&[((0, -1), false), ((0, 0), true)])));
        assert!(!s.admits(&outcome(&[((0, -1), false), ((0, 0), false)])));
        // Formal set is [b 1] (True of current IF); actual ⊇ formal.
        let formal = PathSet::from_matrix(m(&[(0, 0, true)]));
        assert!(s.subsumes(&formal));
    }

    #[test]
    fn disjointify_preserves_membership_and_is_disjoint() {
        let s = PathSet::from_matrices([m(&[(0, 0, true)]), m(&[(0, 1, true)])]);
        let d = s.disjointify();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                assert!(d[i].is_disjoint(&d[j]), "{} vs {}", d[i], d[j]);
            }
        }
        // Same set: compare membership on the full 2x2 outcome window.
        for a in [false, true] {
            for b in [false, true] {
                let o = outcome(&[((0, 0), a), ((0, 1), b)]);
                let in_s = s.admits(&o);
                let in_d = d.iter().any(|mm| mm.admits(&o));
                assert_eq!(in_s, in_d);
            }
        }
    }

    #[test]
    fn probability_uniform_single_if() {
        let a = PathSet::from_matrix(m(&[(0, 0, true)]));
        assert!((a.probability(|_, _| 0.5) - 0.5).abs() < 1e-12);
        let u = PathSet::universe();
        assert!((u.probability(|_, _| 0.3) - 1.0).abs() < 1e-12);
        assert!((PathSet::empty().probability(|_, _| 0.5)).abs() < 1e-12);
    }

    #[test]
    fn probability_of_overlapping_union() {
        // [1 b] ∪ [b 1] with p = 0.5 each: P = 0.5 + 0.5 - 0.25 = 0.75.
        let s = PathSet::from_matrices([m(&[(0, 0, true)]), m(&[(0, 1, true)])]);
        assert!((s.probability(|_, _| 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shifted_distributes_over_union() {
        let s = PathSet::from_matrices([m(&[(0, 0, true)]), m(&[(1, 1, false)])]);
        let sh = s.shifted(2);
        assert!(sh
            .matrices()
            .iter()
            .any(|mm| mm.get(0, 2) == PredElem::True));
        assert!(sh
            .matrices()
            .iter()
            .any(|mm| mm.get(1, 3) == PredElem::False));
    }

    #[test]
    fn display_renders_union() {
        let s = PathSet::from_matrices([m(&[(0, 0, true)])]);
        assert_eq!(s.to_string(), "{[_1_]}");
        assert_eq!(PathSet::empty().to_string(), "{}");
    }

    fn outcome(assignments: &[((u32, i32), bool)]) -> OutcomeMap {
        let mut o = OutcomeMap::new();
        for &((r, c), v) in assignments {
            o.set(r, c, v);
        }
        o
    }
}
