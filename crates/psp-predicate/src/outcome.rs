//! Concrete IF-outcome assignments (one execution path).

use std::collections::BTreeMap;

/// A concrete assignment of outcomes to predicates — one execution path
/// through (a window of) the loop.
///
/// Used to test membership of a path in a path set, both in unit/property
/// tests and when the simulator maps a dynamic trace back onto the formal
/// path sets for profile-driven heuristics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeMap {
    outcomes: BTreeMap<(u32, i32), bool>,
}

impl OutcomeMap {
    /// Empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the outcome of IF row `row` in iteration column `col`.
    pub fn set(&mut self, row: u32, col: i32, outcome: bool) {
        self.outcomes.insert((row, col), outcome);
    }

    /// The recorded outcome, if this predicate was assigned.
    pub fn get(&self, row: u32, col: i32) -> Option<bool> {
        self.outcomes.get(&(row, col)).copied()
    }

    /// Build a total assignment over `rows × [lo, hi]` from a function.
    pub fn from_fn(rows: u32, lo: i32, hi: i32, mut f: impl FnMut(u32, i32) -> bool) -> Self {
        let mut o = Self::new();
        for r in 0..rows {
            for c in lo..=hi {
                o.set(r, c, f(r, c));
            }
        }
        o
    }

    /// Shift all columns by `delta`, e.g. to re-center a trace window on a
    /// different iteration.
    pub fn shifted(&self, delta: i32) -> Self {
        Self {
            outcomes: self
                .outcomes
                .iter()
                .map(|(&(r, c), &v)| ((r, c + delta), v))
                .collect(),
        }
    }

    /// Number of assigned predicates.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no predicate is assigned.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterate over `(row, col, outcome)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, i32, bool)> + '_ {
        self.outcomes.iter().map(|(&(r, c), &v)| (r, c, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let mut o = OutcomeMap::new();
        assert!(o.is_empty());
        o.set(0, -1, true);
        o.set(0, -1, false); // overwrite
        assert_eq!(o.get(0, -1), Some(false));
        assert_eq!(o.get(1, 0), None);
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn from_fn_builds_window() {
        let o = OutcomeMap::from_fn(2, -1, 1, |r, c| (r as i32 + c) % 2 == 0);
        assert_eq!(o.len(), 6);
        assert_eq!(o.get(0, 0), Some(true));
        assert_eq!(o.get(1, 0), Some(false));
    }

    #[test]
    fn shift_recenters() {
        let mut o = OutcomeMap::new();
        o.set(0, 0, true);
        let s = o.shifted(2);
        assert_eq!(s.get(0, 2), Some(true));
        assert_eq!(s.get(0, 0), None);
    }
}
