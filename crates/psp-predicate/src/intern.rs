//! Hash-consing of predicate matrices and path sets, with memoized
//! pairwise disjoint/subsume queries.
//!
//! The iterative technique re-tests the same matrix pairs across every
//! candidate trial (the dependence tester alone runs `O(n²)` pair checks
//! per compaction, over a formal-matrix population that barely changes
//! between trials). [`PredInterner`] deduplicates matrices into dense
//! `u32` ids — so an interned [`PathSet`] handle is a `u32` copy — and
//! answers pairwise queries from id-keyed memo tables.
//!
//! # Two-tier policy
//!
//! Memoizing *every* disjoint test would be a pessimization: on two fully
//! in-window packed matrices the test is ~6 word instructions, cheaper
//! than a single hash-map probe. [`cached_disjoint`]/[`cached_subsumes`]
//! therefore test [`PredicateMatrix::is_word_packed`] pairs directly and
//! route only the expensive operands — sparse-mode matrices (the
//! reference backend) and spilled packed matrices — through a
//! thread-local interner. The sparse backend is exactly where the memo
//! pays: that is what `table_predbench` measures.
//!
//! The thread-local interner is capacity-bounded ([`TLS_CAP`]): interning
//! is keyed by matrix *content*, so clearing it is always safe — the next
//! query re-interns and re-computes.

use crate::matrix::PredicateMatrix;
use crate::pathset::PathSet;
use crate::stats;
use std::cell::RefCell;
use std::collections::HashMap;

/// Dense id of an interned [`PredicateMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixId(pub u32);

/// Dense id of an interned [`PathSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathSetId(pub u32);

/// Hash-consing table for matrices and path sets plus pairwise memos.
#[derive(Default)]
pub struct PredInterner {
    mats: Vec<PredicateMatrix>,
    mat_ids: HashMap<PredicateMatrix, u32>,
    sets: Vec<PathSet>,
    set_ids: HashMap<Vec<u32>, u32>,
    disjoint_memo: HashMap<(u32, u32), bool>,
    subsume_memo: HashMap<(u32, u32), bool>,
}

impl PredInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a matrix; equal matrices (across representations — equality
    /// is content-based) get the same id.
    pub fn intern(&mut self, m: &PredicateMatrix) -> MatrixId {
        if let Some(&id) = self.mat_ids.get(m) {
            return MatrixId(id);
        }
        let id = self.mats.len() as u32;
        self.mats.push(m.clone());
        self.mat_ids.insert(m.clone(), id);
        MatrixId(id)
    }

    /// The matrix behind an id.
    pub fn matrix(&self, id: MatrixId) -> &PredicateMatrix {
        &self.mats[id.0 as usize]
    }

    /// Intern a path set by the ids of its (normalized) members, so a
    /// consumer can carry a `u32` handle instead of cloning member vectors.
    pub fn intern_pathset(&mut self, s: &PathSet) -> PathSetId {
        let key: Vec<u32> = s.matrices().iter().map(|m| self.intern(m).0).collect();
        if let Some(&id) = self.set_ids.get(&key) {
            return PathSetId(id);
        }
        let id = self.sets.len() as u32;
        self.sets.push(s.clone());
        self.set_ids.insert(key, id);
        PathSetId(id)
    }

    /// The path set behind an id.
    pub fn pathset(&self, id: PathSetId) -> &PathSet {
        &self.sets[id.0 as usize]
    }

    /// Memoized `is_disjoint` (symmetric, so keys are normalized).
    pub fn disjoint(&mut self, a: MatrixId, b: MatrixId) -> bool {
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&v) = self.disjoint_memo.get(&key) {
            stats::count_memo_hit();
            return v;
        }
        stats::count_memo_miss();
        let v = self.mats[a.0 as usize].is_disjoint(&self.mats[b.0 as usize]);
        self.disjoint_memo.insert(key, v);
        v
    }

    /// Memoized `a.subsumes(b)` (directional, so keys keep their order).
    pub fn subsumes(&mut self, a: MatrixId, b: MatrixId) -> bool {
        let key = (a.0, b.0);
        if let Some(&v) = self.subsume_memo.get(&key) {
            stats::count_memo_hit();
            return v;
        }
        stats::count_memo_miss();
        let v = self.mats[a.0 as usize].subsumes(&self.mats[b.0 as usize]);
        self.subsume_memo.insert(key, v);
        v
    }

    /// Number of distinct matrices interned so far.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Drop all interned values and memos (ids become invalid).
    pub fn clear(&mut self) {
        self.mats.clear();
        self.mat_ids.clear();
        self.sets.clear();
        self.set_ids.clear();
        self.disjoint_memo.clear();
        self.subsume_memo.clear();
    }
}

/// Growth bound for the per-thread interner; content-keyed, so clearing
/// and re-interning is always safe.
const TLS_CAP: usize = 1 << 15;

thread_local! {
    static TLS: RefCell<PredInterner> = RefCell::new(PredInterner::new());
}

#[inline]
fn with_tls<T>(f: impl FnOnce(&mut PredInterner) -> T) -> T {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.len() > TLS_CAP {
            t.clear();
        }
        f(&mut t)
    })
}

/// Disjointness with the two-tier policy (see module docs): direct word
/// test for cheap pairs, thread-local intern + memo for expensive ones.
pub fn cached_disjoint(a: &PredicateMatrix, b: &PredicateMatrix) -> bool {
    if a.is_word_packed() && b.is_word_packed() {
        return a.is_disjoint(b);
    }
    with_tls(|t| {
        let (ia, ib) = (t.intern(a), t.intern(b));
        t.disjoint(ia, ib)
    })
}

/// `a.subsumes(b)` with the same two-tier policy as [`cached_disjoint`].
pub fn cached_subsumes(a: &PredicateMatrix, b: &PredicateMatrix) -> bool {
    if a.is_word_packed() && b.is_word_packed() {
        return a.subsumes(b);
    }
    with_tls(|t| {
        let (ia, ib) = (t.intern(a), t.intern(b));
        t.subsumes(ia, ib)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend;

    fn m(entries: &[(u32, i32, bool)]) -> PredicateMatrix {
        PredicateMatrix::from_entries(entries.iter().copied())
    }

    #[test]
    fn interning_dedups_by_content_across_backends() {
        let mut it = PredInterner::new();
        let packed = backend::with_backend(true, || m(&[(0, 0, true)]));
        let sparse = backend::with_backend(false, || m(&[(0, 0, true)]));
        let other = m(&[(0, 0, false)]);
        assert_eq!(it.intern(&packed), it.intern(&sparse));
        assert_ne!(it.intern(&packed), it.intern(&other));
        assert_eq!(it.len(), 2);
        let id = it.intern(&packed);
        assert_eq!(it.matrix(id), &packed);
    }

    #[test]
    fn memoized_queries_match_direct_ones() {
        let mut it = PredInterner::new();
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 0, false), (0, 1, true)]);
        let (ia, ib) = (it.intern(&a), it.intern(&b));
        for _ in 0..3 {
            assert_eq!(it.disjoint(ia, ib), a.is_disjoint(&b));
            assert_eq!(it.disjoint(ib, ia), a.is_disjoint(&b));
            assert_eq!(it.subsumes(ia, ib), a.subsumes(&b));
            assert_eq!(it.subsumes(ib, ia), b.subsumes(&a));
        }
    }

    #[test]
    fn pathset_interning_is_stable() {
        let mut it = PredInterner::new();
        let s = PathSet::from_matrices([m(&[(0, 0, true)]), m(&[(1, 0, false)])]);
        let id = it.intern_pathset(&s);
        assert_eq!(it.intern_pathset(&s.clone()), id);
        assert_eq!(it.pathset(id), &s);
        let t = PathSet::from_matrix(m(&[(0, 0, true)]));
        assert_ne!(it.intern_pathset(&t), id);
    }

    #[test]
    fn cached_helpers_agree_with_direct_ops_in_both_modes() {
        for packed in [true, false] {
            backend::with_backend(packed, || {
                let a = m(&[(0, 0, true), (20, 0, false)]); // row 20 spills
                let b = m(&[(0, 0, false)]);
                let c = m(&[(0, 0, true)]);
                for (x, y) in [(&a, &b), (&a, &c), (&b, &c), (&a, &a)] {
                    assert_eq!(cached_disjoint(x, y), x.is_disjoint(y));
                    assert_eq!(cached_subsumes(x, y), x.subsumes(y));
                    assert_eq!(cached_subsumes(y, x), y.subsumes(x));
                }
            });
        }
    }
}
