//! Predicate matrices and path-set algebra for Predicated Software Pipelining.
//!
//! This crate implements the formal core of Milicev & Jovanovic's PSP
//! framework (IPPS 1998): execution paths through a loop with conditional
//! branches are represented by *predicate matrices*. A matrix has one row per
//! IF operation of the original loop body and one (conceptually infinite)
//! column per iteration, indexed relative to the *current* transformed
//! iteration (column `0` = current, `-1` = previous, `+1` = next). Each
//! element is one of `1` (the IF took its True outcome), `0` (False), or `b`
//! ("both" — the path set is unconstrained at that predicate).
//!
//! A single matrix denotes the (infinite) set of all concrete execution
//! paths consistent with its constrained elements; the default element is
//! `b`, so the empty matrix denotes *all* paths. Unions of such sets — needed
//! for *actual* path sets of speculatively scheduled operations — are
//! represented by [`PathSet`], a finite union of matrices.
//!
//! The crate provides the set operations the scheduler and code generator
//! rely on:
//!
//! * [`PredicateMatrix::conjoin`] — intersection of two path sets (or `None`
//!   when they are *disjoined*, i.e. contain complementary elements);
//! * [`PredicateMatrix::is_disjoint`] — the test that exempts operation
//!   pairs from dependence analysis;
//! * [`PredicateMatrix::subsumes`] — the superset relation used to link
//!   loop-back edges during code generation;
//! * [`PredicateMatrix::shifted`] — column shift applied when an operation
//!   instance moves across the loop boundary;
//! * [`PredicateMatrix::split`] — the elementary *split* transformation on
//!   one `b` element;
//! * [`PathSet`] union/intersection/complement/subtraction with
//!   normalization (subsumption pruning and complementary-pair merging);
//! * [`IfLog`] — the auxiliary structure tracing where IF instances are
//!   scheduled, which links predicates to the operations that compute them.
//!
//! Two interchangeable matrix layouts back this API: packed bitplanes (the
//! default — set algebra as word ops over a fixed row/column window, with a
//! sparse spill outside it) and the original sparse `BTreeMap`, kept as a
//! reference for differential testing. See [`matrix`] for the layout,
//! [`backend`] for the construction-time switch, [`intern`] for
//! hash-consing + memoized pairwise queries, and [`stats`] for the global
//! predicate-op counters surfaced in the driver's `PspStats`.

pub mod backend;
pub mod elem;
pub mod iflog;
pub mod intern;
pub mod matrix;
pub mod outcome;
pub mod pathset;
pub mod stats;

pub use elem::PredElem;
pub use iflog::{IfLog, IfLogEntry, PredAvailability};
pub use intern::{MatrixId, PathSetId, PredInterner};
pub use matrix::{PredKey, PredicateMatrix};
pub use outcome::OutcomeMap;
pub use pathset::PathSet;
pub use stats::PredOpStats;
