//! Process-global selection of the predicate-algebra backend.
//!
//! The packed bitplane representation (see [`crate::matrix`]) is the
//! default; the sparse `BTreeMap` representation is kept as the reference
//! implementation for differential testing and as the honest baseline of
//! the `table_predbench` experiment. The flag is consulted at
//! *construction* time only: matrices built in either mode interoperate
//! (every operation falls back to a generic element-wise path on mixed
//! inputs), so flipping the flag mid-process changes performance, never
//! results.

use std::sync::atomic::{AtomicBool, Ordering};

static PACKED: AtomicBool = AtomicBool::new(true);

/// Whether newly constructed matrices use the packed bitplane layout.
#[inline]
pub fn is_packed() -> bool {
    PACKED.load(Ordering::Relaxed)
}

/// Select the backend for subsequently constructed matrices.
pub fn set_packed(on: bool) {
    PACKED.store(on, Ordering::Relaxed);
}

/// Run `f` with the chosen backend, restoring the previous one afterwards
/// (also on unwind, so a failing test cannot leak its mode).
pub fn with_backend<T>(packed: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_packed(self.0);
        }
    }
    let _restore = Restore(is_packed());
    set_packed(packed);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_backend_restores_previous_mode() {
        let before = is_packed();
        let inside = with_backend(!before, is_packed);
        assert_eq!(inside, !before);
        assert_eq!(is_packed(), before);
    }
}
