//! The three-valued predicate element: `1`, `0`, or `b` ("both").

use std::fmt;

/// One element of a predicate matrix.
///
/// `True`/`False` constrain the corresponding IF outcome on every path of
/// the set; `Both` leaves it unconstrained. `Both` is the default value of
/// every element not explicitly stored in a [`crate::PredicateMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredElem {
    /// `b` — both outcomes admitted (the default).
    #[default]
    Both,
    /// `1` — the IF outcome is True on every path of the set.
    True,
    /// `0` — the IF outcome is False on every path of the set.
    False,
}

impl PredElem {
    /// Element for a concrete boolean outcome.
    #[inline]
    pub fn from_bool(v: bool) -> Self {
        if v {
            PredElem::True
        } else {
            PredElem::False
        }
    }

    /// The constrained boolean value, if any.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            PredElem::Both => None,
            PredElem::True => Some(true),
            PredElem::False => Some(false),
        }
    }

    /// Whether this element constrains the path set (`1` or `0`).
    #[inline]
    pub fn is_constrained(self) -> bool {
        !matches!(self, PredElem::Both)
    }

    /// Intersection of the two element constraints.
    ///
    /// Returns `None` when the elements are complementary (`1` ∧ `0`),
    /// meaning the intersected path set is empty.
    #[inline]
    pub fn meet(self, other: PredElem) -> Option<PredElem> {
        match (self, other) {
            (PredElem::Both, x) => Some(x),
            (x, PredElem::Both) => Some(x),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// Whether the two elements are complementary (`1` vs `0`).
    #[inline]
    pub fn conflicts(self, other: PredElem) -> bool {
        matches!(
            (self, other),
            (PredElem::True, PredElem::False) | (PredElem::False, PredElem::True)
        )
    }

    /// The opposite constrained element; `b` is its own negation under the
    /// set interpretation (the complement of "both" is handled at the
    /// [`crate::PathSet`] level, not element-wise).
    #[inline]
    pub fn negate(self) -> PredElem {
        match self {
            PredElem::Both => PredElem::Both,
            PredElem::True => PredElem::False,
            PredElem::False => PredElem::True,
        }
    }

    /// `self` admits every path that `other` admits (i.e. as a constraint,
    /// `self` is equal to or weaker than `other`).
    #[inline]
    pub fn subsumes(self, other: PredElem) -> bool {
        self == PredElem::Both || self == other
    }

    /// Single-character notation used throughout the paper.
    #[inline]
    pub fn symbol(self) -> char {
        match self {
            PredElem::Both => 'b',
            PredElem::True => '1',
            PredElem::False => '0',
        }
    }
}

impl fmt::Display for PredElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

impl From<bool> for PredElem {
    fn from(v: bool) -> Self {
        PredElem::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_both() {
        assert_eq!(PredElem::default(), PredElem::Both);
    }

    #[test]
    fn from_bool_roundtrip() {
        assert_eq!(PredElem::from_bool(true).as_bool(), Some(true));
        assert_eq!(PredElem::from_bool(false).as_bool(), Some(false));
        assert_eq!(PredElem::Both.as_bool(), None);
    }

    #[test]
    fn meet_identity_with_both() {
        for e in [PredElem::Both, PredElem::True, PredElem::False] {
            assert_eq!(PredElem::Both.meet(e), Some(e));
            assert_eq!(e.meet(PredElem::Both), Some(e));
        }
    }

    #[test]
    fn meet_conflict_is_empty() {
        assert_eq!(PredElem::True.meet(PredElem::False), None);
        assert_eq!(PredElem::False.meet(PredElem::True), None);
    }

    #[test]
    fn meet_idempotent() {
        for e in [PredElem::Both, PredElem::True, PredElem::False] {
            assert_eq!(e.meet(e), Some(e));
        }
    }

    #[test]
    fn conflicts_only_on_complements() {
        assert!(PredElem::True.conflicts(PredElem::False));
        assert!(PredElem::False.conflicts(PredElem::True));
        assert!(!PredElem::True.conflicts(PredElem::True));
        assert!(!PredElem::Both.conflicts(PredElem::True));
        assert!(!PredElem::Both.conflicts(PredElem::Both));
    }

    #[test]
    fn negate_involution() {
        for e in [PredElem::Both, PredElem::True, PredElem::False] {
            assert_eq!(e.negate().negate(), e);
        }
    }

    #[test]
    fn subsumption_ordering() {
        assert!(PredElem::Both.subsumes(PredElem::True));
        assert!(PredElem::Both.subsumes(PredElem::False));
        assert!(PredElem::Both.subsumes(PredElem::Both));
        assert!(PredElem::True.subsumes(PredElem::True));
        assert!(!PredElem::True.subsumes(PredElem::Both));
        assert!(!PredElem::True.subsumes(PredElem::False));
    }

    #[test]
    fn display_symbols() {
        assert_eq!(PredElem::Both.to_string(), "b");
        assert_eq!(PredElem::True.to_string(), "1");
        assert_eq!(PredElem::False.to_string(), "0");
    }
}
