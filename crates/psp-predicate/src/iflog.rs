//! IFLog — the auxiliary structure linking predicates to the IF instances
//! that compute them.
//!
//! During scheduling, an IF operation instance with original row `r` and
//! operation index `i` computes the predicate `p(r, i)` (paper §2: the
//! instance `IF (CC0) (+1) [0]` computes `p(+1)`). Because the schedule
//! repeats every transformed iteration, the *same* instance also computed
//! `p(r, i - k)` during the transformed iteration `k` steps earlier. The
//! IFLog records where every IF instance sits in the schedule — including
//! its own (possibly constrained) predicate matrix, since IFs may execute
//! conditionally — so that the scheduler and code generator can decide, for
//! any predicate an operation is control-dependent on, whether its outcome
//! is already available (and hence whether the operation is speculative).

use crate::matrix::PredicateMatrix;

/// One scheduled IF instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfLogEntry {
    /// Row of the IF operation in the original loop body (predicate row).
    pub if_row: u32,
    /// Operation index of the instance (iteration offset; the instance
    /// computes predicate column `index`).
    pub index: i32,
    /// Schedule cycle (row) the instance occupies.
    pub cycle: usize,
    /// Formal predicate matrix of the IF instance itself — the paths on
    /// which it executes (IFs are never speculative per paper §2, so its
    /// formal and actual paths coincide).
    pub matrix: PredicateMatrix,
}

/// Where (relative to a consumer in the current transformed iteration) a
/// predicate's outcome is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredAvailability {
    /// Computed `delta ≥ 1` transformed iterations ago: the outcome is
    /// available on loop-body entry.
    PreviousIteration { delta: u32, entry: IfLogEntry },
    /// Computed in the current transformed iteration at `cycle`.
    SameIteration { cycle: usize, entry: IfLogEntry },
    /// Will only be computed `delta ≥ 1` transformed iterations later: any
    /// consumer in the current iteration is necessarily speculative.
    FutureIteration { delta: u32, entry: IfLogEntry },
    /// No IF instance in the schedule computes this predicate row.
    NotComputed,
}

/// Log of all scheduled IF instances.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IfLog {
    entries: Vec<IfLogEntry>,
}

impl IfLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a scheduled IF instance.
    pub fn record(&mut self, entry: IfLogEntry) {
        self.entries.push(entry);
    }

    /// Remove the record of an instance (e.g. after a transformation moved
    /// it); identified by `(if_row, index)`.
    pub fn remove(&mut self, if_row: u32, index: i32) {
        self.entries
            .retain(|e| !(e.if_row == if_row && e.index == index));
    }

    /// Clear the log (before re-tracing a schedule).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// All recorded instances.
    pub fn entries(&self) -> &[IfLogEntry] {
        &self.entries
    }

    /// Instances of IF row `if_row`.
    pub fn instances_of(&self, if_row: u32) -> impl Iterator<Item = &IfLogEntry> {
        self.entries.iter().filter(move |e| e.if_row == if_row)
    }

    /// How the outcome of predicate `(row, col)` — as referenced by an
    /// operation in the current transformed iteration — becomes available.
    ///
    /// In steady state the schedule repeats each transformed iteration, so
    /// an instance with index `i` computes column `col` during the
    /// transformed iteration `col - i` (0 = current, negative = earlier).
    /// When several instances of the row exist (after splits), the one
    /// computing the predicate *earliest* is reported; conditional execution
    /// of the IF itself is visible through `entry.matrix`.
    pub fn availability(&self, row: u32, col: i32) -> PredAvailability {
        let mut best: Option<PredAvailability> = None;
        for e in self.instances_of(row) {
            let delta = col - e.index; // transformed iteration producing col
            let cand = if delta < 0 {
                PredAvailability::PreviousIteration {
                    delta: (-delta) as u32,
                    entry: e.clone(),
                }
            } else if delta == 0 {
                PredAvailability::SameIteration {
                    cycle: e.cycle,
                    entry: e.clone(),
                }
            } else {
                PredAvailability::FutureIteration {
                    delta: delta as u32,
                    entry: e.clone(),
                }
            };
            best = Some(match best.take() {
                None => cand,
                Some(b) => earlier(b, cand),
            });
        }
        best.unwrap_or(PredAvailability::NotComputed)
    }

    /// Whether predicate `(row, col)`'s outcome is known before `cycle` of
    /// the current transformed iteration (on the paths where its IF runs).
    pub fn available_before(&self, row: u32, col: i32, cycle: usize) -> bool {
        match self.availability(row, col) {
            PredAvailability::PreviousIteration { .. } => true,
            PredAvailability::SameIteration { cycle: c, .. } => c < cycle,
            _ => false,
        }
    }
}

/// Pick the availability that resolves earlier in time.
fn earlier(a: PredAvailability, b: PredAvailability) -> PredAvailability {
    use PredAvailability as P;
    let rank = |x: &P| -> (i64, i64) {
        match x {
            P::PreviousIteration { delta, entry } => (-(*delta as i64), entry.cycle as i64),
            P::SameIteration { cycle, .. } => (0, *cycle as i64),
            P::FutureIteration { delta, entry } => (*delta as i64, entry.cycle as i64),
            P::NotComputed => (i64::MAX, i64::MAX),
        }
    };
    if rank(&a) <= rank(&b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(if_row: u32, index: i32, cycle: usize) -> IfLogEntry {
        IfLogEntry {
            if_row,
            index,
            cycle,
            matrix: PredicateMatrix::universe(),
        }
    }

    #[test]
    fn empty_log_reports_not_computed() {
        let log = IfLog::new();
        assert_eq!(log.availability(0, 0), PredAvailability::NotComputed);
        assert!(!log.available_before(0, 0, 10));
    }

    #[test]
    fn paper_fig2_availability() {
        // Fig. 2: the only IF instance is IF(CC0) (1)[b] at cycle 7 — it
        // computes p(+1). Column 0 was therefore computed one transformed
        // iteration ago; column 1 is computed this iteration at cycle 7.
        let mut log = IfLog::new();
        log.record(entry(0, 1, 7));
        match log.availability(0, 0) {
            PredAvailability::PreviousIteration { delta, .. } => assert_eq!(delta, 1),
            other => panic!("expected PreviousIteration, got {other:?}"),
        }
        match log.availability(0, 1) {
            PredAvailability::SameIteration { cycle, .. } => assert_eq!(cycle, 7),
            other => panic!("expected SameIteration, got {other:?}"),
        }
        match log.availability(0, 2) {
            PredAvailability::FutureIteration { delta, .. } => assert_eq!(delta, 1),
            other => panic!("expected FutureIteration, got {other:?}"),
        }
        // A consumer at cycle 1 constrained on p(0): outcome available.
        assert!(log.available_before(0, 0, 1));
        // Constrained on p(1): not available before cycle 7 => speculative.
        assert!(!log.available_before(0, 1, 7));
        assert!(log.available_before(0, 1, 8));
    }

    #[test]
    fn earliest_instance_wins() {
        let mut log = IfLog::new();
        log.record(entry(0, 0, 5)); // computes col 0 this iteration
        log.record(entry(0, 1, 2)); // computes col 0 one iteration ago
        match log.availability(0, 0) {
            PredAvailability::PreviousIteration { delta, .. } => assert_eq!(delta, 1),
            other => panic!("expected PreviousIteration, got {other:?}"),
        }
    }

    #[test]
    fn remove_and_clear() {
        let mut log = IfLog::new();
        log.record(entry(0, 0, 3));
        log.record(entry(1, 0, 4));
        log.remove(0, 0);
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.availability(0, 0), PredAvailability::NotComputed);
        log.clear();
        assert!(log.entries().is_empty());
    }

    #[test]
    fn instances_of_filters_by_row() {
        let mut log = IfLog::new();
        log.record(entry(0, 0, 1));
        log.record(entry(1, 0, 2));
        log.record(entry(0, 1, 3));
        assert_eq!(log.instances_of(0).count(), 2);
        assert_eq!(log.instances_of(1).count(), 1);
    }
}
