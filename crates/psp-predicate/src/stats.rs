//! Process-global counters of predicate-algebra work.
//!
//! The scheduler's hot loops bottom out in `conjoin`/`is_disjoint`/
//! `subsumes`; these counters make that work observable (driver stats,
//! `table_predbench`) instead of asserted. They are plain relaxed atomics:
//! increments from rayon worker threads land in the same totals, and a
//! caller measures a region with [`snapshot`] + [`PredOpStats::delta`].
//! Like the driver's cache telemetry, they are *not* part of any
//! determinism contract — concurrent work in the same process (e.g.
//! parallel tests) shows up in everyone's deltas.

use std::sync::atomic::{AtomicU64, Ordering};

static CONJOINS: AtomicU64 = AtomicU64::new(0);
static DISJOINT_TESTS: AtomicU64 = AtomicU64::new(0);
static SUBSUME_TESTS: AtomicU64 = AtomicU64::new(0);
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn count_conjoin() {
    CONJOINS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_disjoint_test() {
    DISJOINT_TESTS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_subsume_test() {
    SUBSUME_TESTS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_memo_hit() {
    MEMO_HITS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_memo_miss() {
    MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot (or delta) of the predicate-op counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredOpStats {
    /// `PredicateMatrix::conjoin` calls.
    pub conjoins: u64,
    /// `PredicateMatrix::is_disjoint` calls (including memo misses).
    pub disjoint_tests: u64,
    /// `PredicateMatrix::subsumes` calls (including memo misses).
    pub subsume_tests: u64,
    /// Memoized disjoint/subsume queries answered from the interner.
    pub memo_hits: u64,
    /// Memoized queries that had to run the underlying test.
    pub memo_misses: u64,
}

impl PredOpStats {
    /// Counter increments since the `since` snapshot.
    pub fn delta(&self, since: &PredOpStats) -> PredOpStats {
        PredOpStats {
            conjoins: self.conjoins.saturating_sub(since.conjoins),
            disjoint_tests: self.disjoint_tests.saturating_sub(since.disjoint_tests),
            subsume_tests: self.subsume_tests.saturating_sub(since.subsume_tests),
            memo_hits: self.memo_hits.saturating_sub(since.memo_hits),
            memo_misses: self.memo_misses.saturating_sub(since.memo_misses),
        }
    }

    /// Fraction of memoized queries answered from the memo (0 when none ran).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Hand-rolled JSON object (the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"conjoins\":{},\"disjoint_tests\":{},\"subsume_tests\":{},",
                "\"memo_hits\":{},\"memo_misses\":{},\"memo_hit_rate\":{:.4}}}"
            ),
            self.conjoins,
            self.disjoint_tests,
            self.subsume_tests,
            self.memo_hits,
            self.memo_misses,
            self.memo_hit_rate(),
        )
    }
}

/// Current totals since process start.
pub fn snapshot() -> PredOpStats {
    PredOpStats {
        conjoins: CONJOINS.load(Ordering::Relaxed),
        disjoint_tests: DISJOINT_TESTS.load(Ordering::Relaxed),
        subsume_tests: SUBSUME_TESTS.load(Ordering::Relaxed),
        memo_hits: MEMO_HITS.load(Ordering::Relaxed),
        memo_misses: MEMO_MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_hit_rate() {
        let before = snapshot();
        count_conjoin();
        count_memo_hit();
        count_memo_hit();
        count_memo_miss();
        let d = snapshot().delta(&before);
        // Other test threads may also count; deltas are lower-bounded.
        assert!(d.conjoins >= 1);
        assert!(d.memo_hits >= 2);
        assert!(d.memo_misses >= 1);
        let s = PredOpStats {
            memo_hits: 3,
            memo_misses: 1,
            ..PredOpStats::default()
        };
        assert!((s.memo_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PredOpStats::default().memo_hit_rate(), 0.0);
    }

    #[test]
    fn json_is_an_object() {
        let j = PredOpStats::default().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "conjoins",
            "disjoint_tests",
            "subsume_tests",
            "memo_hits",
            "memo_misses",
            "memo_hit_rate",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
