//! Predicate matrices: packed bitplanes with a sparse reference fallback.
//!
//! A [`PredicateMatrix`] stores only its constrained elements; every other
//! element is implicitly `b`. Rows identify IF operations of the original
//! loop body (0-based), columns identify iterations relative to the current
//! transformed iteration (`0` = current, negative = earlier, positive =
//! later). A matrix denotes the set of all execution paths whose IF outcomes
//! agree with its constrained elements.
//!
//! # Representations
//!
//! Two interchangeable layouts sit behind the same API, selected at
//! construction time by [`crate::backend`]:
//!
//! - **Packed** (default): two bitplanes over a fixed window of
//!   [`PACKED_ROWS`] rows × columns [`PACKED_COL_LO`]`..=`[`PACKED_COL_HI`]
//!   — `mask` marks the constrained positions, `vals` the outcome at each
//!   (and is zero elsewhere, keeping the form canonical). One 16-bit lane
//!   per row, row-major, so the whole window is two `u64` words per plane
//!   and `conjoin`/`is_disjoint`/`subsumes` are a handful of AND/XOR/OR
//!   instructions. Keys outside the window spill into a sorted side map
//!   (correct, slower); the window covers every matrix the kernel suite and
//!   the scaling loops produce, so the spill is effectively a fuzz-only
//!   path.
//! - **Sparse**: the original `BTreeMap<PredKey, bool>`, kept as the
//!   reference implementation for differential tests and benchmarks.
//!
//! Equality, ordering, hashing and `Debug` are defined over the logical
//! element sequence, so a packed matrix and a sparse matrix with the same
//! constraints are fully interchangeable — mixed-representation operands
//! take a generic element-wise path. In particular `Ord` reproduces the
//! lexicographic `((row, col), value)` sequence order the sparse map used
//! to derive: `PathSet` normalization sorts by it, and the profile-driven
//! score sums member probabilities in that order, so changing it would
//! change f64 rounding and hence candidate selection.

use crate::backend;
use crate::elem::PredElem;
use crate::outcome::OutcomeMap;
use crate::stats;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Position of one predicate: `(IF row, iteration column)`.
pub type PredKey = (u32, i32);

/// Rows covered by the packed window (`0..PACKED_ROWS`).
pub const PACKED_ROWS: u32 = 8;
/// First column of the packed window.
pub const PACKED_COL_LO: i32 = -8;
/// Last column of the packed window (inclusive).
pub const PACKED_COL_HI: i32 = 7;
/// Bits per row lane.
const LANE: usize = (PACKED_COL_HI - PACKED_COL_LO + 1) as usize;
/// Words per bitplane.
const W: usize = PACKED_ROWS as usize * LANE / 64;

/// Bit index of an in-window key, `None` outside the window.
#[inline]
fn bit_of(row: u32, col: i32) -> Option<usize> {
    if row < PACKED_ROWS && (PACKED_COL_LO..=PACKED_COL_HI).contains(&col) {
        Some(row as usize * LANE + (col - PACKED_COL_LO) as usize)
    } else {
        None
    }
}

/// Inverse of [`bit_of`].
#[inline]
fn key_of(bit: usize) -> PredKey {
    ((bit / LANE) as u32, (bit % LANE) as i32 + PACKED_COL_LO)
}

/// Bitplane pair plus out-of-window spill.
///
/// Invariants: `vals ⊆ mask` word-wise; spill keys are strictly outside the
/// window; the spill is `None` rather than an empty map. Together these
/// make the representation canonical, so packed equality is plain word
/// comparison.
#[derive(Clone, Default)]
struct Packed {
    /// Constrained positions.
    mask: [u64; W],
    /// Outcome at constrained positions (`1` = True); zero elsewhere.
    vals: [u64; W],
    /// Constrained keys outside the window. Boxed deliberately: spill is
    /// almost always `None`, and the indirection keeps `Packed` (and so
    /// every matrix clone) at 40 bytes instead of 56.
    #[allow(clippy::box_collection)]
    spill: Option<Box<BTreeMap<PredKey, bool>>>,
}

#[derive(Clone)]
enum Repr {
    Packed(Packed),
    Sparse(BTreeMap<PredKey, bool>),
}

/// A sparse, conceptually infinite matrix of [`PredElem`]s.
///
/// The empty matrix denotes the universe (all paths admitted). Matrices are
/// ordered and hashable so they can key maps and be deduplicated in
/// [`crate::PathSet`]s.
#[derive(Clone)]
pub struct PredicateMatrix {
    repr: Repr,
}

impl PredicateMatrix {
    /// The unconstrained matrix `[b b … b]` (all paths).
    #[inline]
    pub fn universe() -> Self {
        if backend::is_packed() {
            Self {
                repr: Repr::Packed(Packed::default()),
            }
        } else {
            Self {
                repr: Repr::Sparse(BTreeMap::new()),
            }
        }
    }

    /// Empty matrix in the same representation mode as `self`, so derived
    /// results stay mode-stable regardless of the global backend flag.
    fn empty_like(&self) -> Self {
        match &self.repr {
            Repr::Packed(_) => Self {
                repr: Repr::Packed(Packed::default()),
            },
            Repr::Sparse(_) => Self {
                repr: Repr::Sparse(BTreeMap::new()),
            },
        }
    }

    /// Matrix with a single constrained element.
    pub fn single(row: u32, col: i32, outcome: bool) -> Self {
        let mut m = Self::universe();
        m.set(row, col, PredElem::from_bool(outcome));
        m
    }

    /// Build from an explicit list of constrained elements.
    ///
    /// Later duplicates of the same key overwrite earlier ones.
    pub fn from_entries<I: IntoIterator<Item = (u32, i32, bool)>>(it: I) -> Self {
        let mut m = Self::universe();
        for (row, col, v) in it {
            m.set(row, col, PredElem::from_bool(v));
        }
        m
    }

    /// The element at `(row, col)` (default `b`).
    #[inline]
    pub fn get(&self, row: u32, col: i32) -> PredElem {
        match &self.repr {
            Repr::Packed(p) => match bit_of(row, col) {
                Some(b) => {
                    let (w, i) = (b >> 6, b & 63);
                    if p.mask[w] >> i & 1 == 1 {
                        PredElem::from_bool(p.vals[w] >> i & 1 == 1)
                    } else {
                        PredElem::Both
                    }
                }
                None => match p.spill.as_ref().and_then(|s| s.get(&(row, col))) {
                    Some(&v) => PredElem::from_bool(v),
                    None => PredElem::Both,
                },
            },
            Repr::Sparse(m) => match m.get(&(row, col)) {
                Some(&v) => PredElem::from_bool(v),
                None => PredElem::Both,
            },
        }
    }

    /// Set the element at `(row, col)`; setting `b` removes the entry.
    pub fn set(&mut self, row: u32, col: i32, e: PredElem) {
        match &mut self.repr {
            Repr::Packed(p) => match bit_of(row, col) {
                Some(b) => {
                    let (w, i) = (b >> 6, b & 63);
                    match e.as_bool() {
                        Some(v) => {
                            p.mask[w] |= 1 << i;
                            if v {
                                p.vals[w] |= 1 << i;
                            } else {
                                p.vals[w] &= !(1 << i);
                            }
                        }
                        None => {
                            p.mask[w] &= !(1 << i);
                            p.vals[w] &= !(1 << i);
                        }
                    }
                }
                None => match e.as_bool() {
                    Some(v) => {
                        p.spill
                            .get_or_insert_with(Default::default)
                            .insert((row, col), v);
                    }
                    None => {
                        if let Some(s) = &mut p.spill {
                            s.remove(&(row, col));
                            if s.is_empty() {
                                p.spill = None;
                            }
                        }
                    }
                },
            },
            Repr::Sparse(m) => match e.as_bool() {
                Some(v) => {
                    m.insert((row, col), v);
                }
                None => {
                    m.remove(&(row, col));
                }
            },
        }
    }

    /// Copy of `self` with `(row, col)` set to `e`.
    pub fn with(&self, row: u32, col: i32, e: PredElem) -> Self {
        let mut m = self.clone();
        m.set(row, col, e);
        m
    }

    /// Number of constrained elements.
    #[inline]
    pub fn constrained_len(&self) -> usize {
        match &self.repr {
            Repr::Packed(p) => {
                p.mask
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>()
                    + p.spill.as_ref().map_or(0, |s| s.len())
            }
            Repr::Sparse(m) => m.len(),
        }
    }

    /// `true` when no element is constrained (the universe).
    #[inline]
    pub fn is_universe(&self) -> bool {
        match &self.repr {
            Repr::Packed(p) => p.mask == [0; W] && p.spill.is_none(),
            Repr::Sparse(m) => m.is_empty(),
        }
    }

    /// Whether this matrix is fully in-window packed: pairwise operations
    /// on two such matrices are a handful of word instructions (and thus
    /// cheaper than any memo lookup — see [`crate::intern`]).
    #[inline]
    pub fn is_word_packed(&self) -> bool {
        matches!(&self.repr, Repr::Packed(p) if p.spill.is_none())
    }

    /// Iterate over the constrained elements in `(row, col)` order.
    pub fn constrained(&self) -> ConstrainedIter<'_> {
        let inner = match &self.repr {
            Repr::Sparse(m) => Inner::Sparse(m.iter()),
            Repr::Packed(p) => {
                let bits = PackedBits {
                    mask: p.mask,
                    vals: p.vals,
                    w: 0,
                };
                match &p.spill {
                    None => Inner::Bits(bits),
                    Some(s) => {
                        let mut bits = bits;
                        let mut spill = s.iter();
                        Inner::Merged {
                            bits_next: bits.next(),
                            bits,
                            spill_next: spill.next().map(|(&k, &v)| (k, v)),
                            spill,
                        }
                    }
                }
            }
        };
        ConstrainedIter { inner }
    }

    /// Keys of the constrained elements.
    pub fn keys(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.constrained().map(|(r, c, _)| (r, c))
    }

    /// Intersection of the two path sets.
    ///
    /// `None` means the intersection is empty, i.e. the matrices are
    /// *disjoined* (the paper's term): they carry complementary elements at
    /// some position.
    pub fn conjoin(&self, other: &Self) -> Option<Self> {
        stats::count_conjoin();
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &other.repr) {
            for i in 0..W {
                if (a.vals[i] ^ b.vals[i]) & a.mask[i] & b.mask[i] != 0 {
                    return None;
                }
            }
            let mut out = Packed::default();
            for i in 0..W {
                out.mask[i] = a.mask[i] | b.mask[i];
                out.vals[i] = a.vals[i] | b.vals[i];
            }
            out.spill = match (&a.spill, &b.spill) {
                (None, None) => None,
                (Some(s), None) | (None, Some(s)) => Some(s.clone()),
                (Some(x), Some(y)) => {
                    let (small, large) = if x.len() <= y.len() { (x, y) } else { (y, x) };
                    for (k, v) in small.iter() {
                        if matches!(large.get(k), Some(w) if w != v) {
                            return None;
                        }
                    }
                    let mut merged = large.clone();
                    for (&k, &v) in small.iter() {
                        merged.insert(k, v);
                    }
                    Some(merged)
                }
            };
            return Some(Self {
                repr: Repr::Packed(out),
            });
        }
        // Generic path (sparse or mixed representations): iterate the
        // smaller entry set for the conflict scan, then overlay it.
        let (small, large) = if self.constrained_len() <= other.constrained_len() {
            (self, other)
        } else {
            (other, self)
        };
        for (r, c, v) in small.constrained() {
            if matches!(large.get(r, c).as_bool(), Some(w) if w != v) {
                return None;
            }
        }
        let mut out = large.clone();
        for (r, c, v) in small.constrained() {
            out.set(r, c, PredElem::from_bool(v));
        }
        Some(out)
    }

    /// Whether the path sets are disjoint (complementary at some position).
    ///
    /// Operations with disjoined matrices lie on different formal paths and
    /// are never tested for data or control dependence.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        stats::count_disjoint_test();
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &other.repr) {
            for i in 0..W {
                if (a.vals[i] ^ b.vals[i]) & a.mask[i] & b.mask[i] != 0 {
                    return true;
                }
            }
            if let (Some(x), Some(y)) = (&a.spill, &b.spill) {
                let (small, large) = if x.len() <= y.len() { (x, y) } else { (y, x) };
                return small
                    .iter()
                    .any(|(k, v)| matches!(large.get(k), Some(w) if w != v));
            }
            return false;
        }
        let (small, large) = if self.constrained_len() <= other.constrained_len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .constrained()
            .any(|(r, c, v)| matches!(large.get(r, c).as_bool(), Some(w) if w != v))
    }

    /// Superset relation: every path admitted by `other` is admitted by
    /// `self` (i.e. `self`'s constraints are a subset of `other`'s).
    pub fn subsumes(&self, other: &Self) -> bool {
        stats::count_subsume_test();
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &other.repr) {
            for i in 0..W {
                if a.mask[i] & !b.mask[i] != 0 {
                    return false;
                }
                if (a.vals[i] ^ b.vals[i]) & a.mask[i] != 0 {
                    return false;
                }
            }
            return match (&a.spill, &b.spill) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(x), Some(y)) => {
                    x.len() <= y.len() && x.iter().all(|(k, v)| y.get(k) == Some(v))
                }
            };
        }
        if self.constrained_len() > other.constrained_len() {
            return false;
        }
        self.constrained()
            .all(|(r, c, v)| other.get(r, c).as_bool() == Some(v))
    }

    /// Shift all columns by `delta` (positive = later iterations).
    ///
    /// Applied when an operation instance crosses the loop boundary: moving
    /// into the *previous* transformed iteration increments its index and
    /// shifts its matrix one place **right** (`delta = +1`), preserving
    /// relative references.
    pub fn shifted(&self, delta: i32) -> Self {
        if delta == 0 {
            return self.clone();
        }
        if let Repr::Packed(p) = &self.repr {
            if p.spill.is_none() {
                if let Some(s) = shift_lanes(p, delta) {
                    return Self {
                        repr: Repr::Packed(s),
                    };
                }
            }
        }
        let mut out = self.empty_like();
        for (r, c, v) in self.constrained() {
            out.set(r, c + delta, PredElem::from_bool(v));
        }
        out
    }

    /// The *split* of this matrix at a `b` element: two clones with the
    /// element set to `0` and `1` respectively.
    ///
    /// Returns `None` when the element is already constrained.
    pub fn split(&self, row: u32, col: i32) -> Option<(Self, Self)> {
        if self.get(row, col).is_constrained() {
            return None;
        }
        Some((
            self.with(row, col, PredElem::False),
            self.with(row, col, PredElem::True),
        ))
    }

    /// Inverse of [`split`](Self::split): when the two matrices differ in
    /// exactly one element and that element is complementary, return the
    /// merged matrix with the element reset to `b`.
    pub fn unify(&self, other: &Self) -> Option<Self> {
        if let (Repr::Packed(a), Repr::Packed(b)) = (&self.repr, &other.repr) {
            if a.mask != b.mask {
                return None;
            }
            let mut diffs = 0u32;
            let mut at: Option<PredKey> = None;
            for i in 0..W {
                // vals ⊆ mask on both sides and the masks are equal, so
                // every xor bit is a complementary constrained pair.
                let d = a.vals[i] ^ b.vals[i];
                diffs += d.count_ones();
                if at.is_none() && d != 0 {
                    at = Some(key_of(i * 64 + d.trailing_zeros() as usize));
                }
            }
            match (&a.spill, &b.spill) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    if x.len() != y.len() {
                        return None;
                    }
                    for ((kx, vx), (ky, vy)) in x.iter().zip(y.iter()) {
                        if kx != ky {
                            return None;
                        }
                        if vx != vy {
                            diffs += 1;
                            if at.is_none() {
                                at = Some(*kx);
                            }
                        }
                    }
                }
                _ => return None,
            }
            if diffs != 1 {
                return None;
            }
            let (r, c) = at?;
            return Some(self.with(r, c, PredElem::Both));
        }
        // They must share every entry except exactly one complementary pair.
        if self.constrained_len() != other.constrained_len() {
            return None;
        }
        let mut diff: Option<PredKey> = None;
        for (r, c, v) in self.constrained() {
            match other.get(r, c).as_bool() {
                Some(w) if w == v => {}
                Some(_) => {
                    if diff.replace((r, c)).is_some() {
                        return None; // more than one differing position
                    }
                }
                None => return None, // keys differ
            }
        }
        let (r, c) = diff?;
        Some(self.with(r, c, PredElem::Both))
    }

    /// Whether the concrete outcome assignment lies in this path set.
    pub fn admits(&self, outcomes: &OutcomeMap) -> bool {
        self.constrained()
            .all(|(r, c, v)| outcomes.get(r, c) == Some(v))
    }

    /// Drop constraints outside the column window `[lo, hi]` (inclusive),
    /// widening the path set.
    pub fn widened_to_window(&self, lo: i32, hi: i32) -> Self {
        let mut out = self.empty_like();
        for (r, c, v) in self.constrained() {
            if (lo..=hi).contains(&c) {
                out.set(r, c, PredElem::from_bool(v));
            }
        }
        out
    }

    /// Smallest and largest constrained column, if any element is
    /// constrained.
    pub fn col_span(&self) -> Option<(i32, i32)> {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for (_, c, _) in self.constrained() {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Largest constrained row index, if any.
    pub fn max_row(&self) -> Option<u32> {
        self.constrained().map(|(r, _, _)| r).max()
    }

    /// Render one row over the column window `[lo, hi]`, underlining column
    /// 0 per the paper's notation (here marked with surrounding `_`).
    fn fmt_row(&self, row: u32, lo: i32, hi: i32, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for c in lo..=hi {
            if c > lo {
                write!(f, " ")?;
            }
            let sym = self.get(row, c).symbol();
            if c == 0 {
                write!(f, "_{sym}_")?;
            } else {
                write!(f, "{sym}")?;
            }
        }
        write!(f, "]")
    }

    /// Multi-row display over a chosen window and row count.
    pub fn display(&self, rows: u32, lo: i32, hi: i32) -> MatrixDisplay<'_> {
        MatrixDisplay {
            m: self,
            rows,
            lo,
            hi,
        }
    }
}

/// Shift a spill-free packed matrix within its lanes, `None` when any
/// constrained bit would leave its row window (the caller then rebuilds
/// element-wise, spilling as needed).
fn shift_lanes(p: &Packed, delta: i32) -> Option<Packed> {
    let d = delta.unsigned_abs() as usize;
    if d >= LANE {
        return None;
    }
    let lane_keep: u64 = if delta > 0 {
        (1 << (LANE - d)) - 1
    } else {
        ((1 << (LANE - d)) - 1) << d
    };
    let mut keep = 0u64;
    let mut lane = 0;
    while lane < 64 / LANE {
        keep |= lane_keep << (lane * LANE);
        lane += 1;
    }
    if p.mask.iter().any(|&w| w & !keep != 0) {
        return None;
    }
    // All surviving bits stay inside their lane, so a whole-word shift
    // cannot leak across lane or word boundaries.
    let mut out = Packed::default();
    for i in 0..W {
        (out.mask[i], out.vals[i]) = if delta > 0 {
            (p.mask[i] << d, p.vals[i] << d)
        } else {
            (p.mask[i] >> d, p.vals[i] >> d)
        };
    }
    Some(out)
}

/// Iterator over constrained elements in `(row, col)` order, across both
/// representations (bitplane bits merged with the sorted spill).
pub struct ConstrainedIter<'a> {
    inner: Inner<'a>,
}

struct PackedBits {
    mask: [u64; W],
    vals: [u64; W],
    w: usize,
}

impl Iterator for PackedBits {
    type Item = (PredKey, bool);

    fn next(&mut self) -> Option<Self::Item> {
        while self.w < W {
            let m = self.mask[self.w];
            if m != 0 {
                let b = m.trailing_zeros() as usize;
                self.mask[self.w] = m & (m - 1);
                let key = key_of(self.w * 64 + b);
                let v = self.vals[self.w] >> b & 1 == 1;
                return Some((key, v));
            }
            self.w += 1;
        }
        None
    }
}

enum Inner<'a> {
    Sparse(std::collections::btree_map::Iter<'a, PredKey, bool>),
    Bits(PackedBits),
    Merged {
        bits: PackedBits,
        bits_next: Option<(PredKey, bool)>,
        spill: std::collections::btree_map::Iter<'a, PredKey, bool>,
        spill_next: Option<(PredKey, bool)>,
    },
}

impl Iterator for ConstrainedIter<'_> {
    type Item = (u32, i32, bool);

    fn next(&mut self) -> Option<Self::Item> {
        let ((r, c), v) = match &mut self.inner {
            Inner::Sparse(it) => it.next().map(|(&k, &v)| (k, v))?,
            Inner::Bits(bits) => bits.next()?,
            Inner::Merged {
                bits,
                bits_next,
                spill,
                spill_next,
            } => {
                // Window and spill keys never collide, so plain ordering
                // decides which side emits next.
                let take_bits = match (&*bits_next, &*spill_next) {
                    (Some((bk, _)), Some((sk, _))) => bk < sk,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => return None,
                };
                if take_bits {
                    let out = bits_next.take()?;
                    *bits_next = bits.next();
                    out
                } else {
                    let out = spill_next.take()?;
                    *spill_next = spill.next().map(|(&k, &v)| (k, v));
                    out
                }
            }
        };
        Some((r, c, v))
    }
}

impl PartialEq for PredicateMatrix {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            // Both packed forms are canonical, so word compare suffices.
            (Repr::Packed(a), Repr::Packed(b)) => {
                a.mask == b.mask && a.vals == b.vals && a.spill == b.spill
            }
            (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
            _ => self.constrained().eq(other.constrained()),
        }
    }
}

impl Eq for PredicateMatrix {}

impl Hash for PredicateMatrix {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Element-wise so packed and sparse forms of the same matrix hash
        // identically (required by Eq).
        state.write_usize(self.constrained_len());
        for (r, c, v) in self.constrained() {
            r.hash(state);
            c.hash(state);
            v.hash(state);
        }
    }
}

impl Ord for PredicateMatrix {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic over the ((row, col), value) sequence in key order —
        // exactly the order the sparse BTreeMap representation derives.
        self.constrained()
            .map(|(r, c, v)| ((r, c), v))
            .cmp(other.constrained().map(|(r, c, v)| ((r, c), v)))
    }
}

impl PartialOrd for PredicateMatrix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for PredicateMatrix {
    fn default() -> Self {
        Self::universe()
    }
}

impl fmt::Debug for PredicateMatrix {
    /// Deterministic and injective over the constrained entry set (the
    /// schedule fingerprint keys a memo on it), identical across
    /// representations.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PM[")?;
        for (i, (r, c, v)) in self.constrained().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "({r},{c})={}", v as u8)?;
        }
        write!(f, "]")
    }
}

/// Display adapter produced by [`PredicateMatrix::display`].
pub struct MatrixDisplay<'a> {
    m: &'a PredicateMatrix,
    rows: u32,
    lo: i32,
    hi: i32,
}

impl fmt::Display for MatrixDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows.max(1) {
            if r > 0 {
                write!(f, " ")?;
            }
            self.m.fmt_row(r, self.lo, self.hi, f)?;
        }
        Ok(())
    }
}

impl fmt::Display for PredicateMatrix {
    /// Default display: rows up to the max constrained row, columns spanning
    /// the constrained window (always including column 0).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = self.max_row().map(|r| r + 1).unwrap_or(1);
        let (lo, hi) = self
            .col_span()
            .map(|(a, b)| (a.min(0), b.max(0)))
            .unwrap_or((0, 0));
        self.display(rows, lo, hi).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(entries: &[(u32, i32, bool)]) -> PredicateMatrix {
        PredicateMatrix::from_entries(entries.iter().copied())
    }

    #[test]
    fn universe_admits_everything_and_is_empty() {
        let u = PredicateMatrix::universe();
        assert!(u.is_universe());
        assert_eq!(u.constrained_len(), 0);
        assert_eq!(u.get(3, -7), PredElem::Both);
    }

    #[test]
    fn set_both_removes_entry() {
        let mut a = PredicateMatrix::single(0, 0, true);
        assert_eq!(a.constrained_len(), 1);
        a.set(0, 0, PredElem::Both);
        assert!(a.is_universe());
    }

    #[test]
    fn conjoin_with_universe_is_identity() {
        let a = m(&[(0, 0, true), (1, 1, false)]);
        let u = PredicateMatrix::universe();
        assert_eq!(a.conjoin(&u), Some(a.clone()));
        assert_eq!(u.conjoin(&a), Some(a));
    }

    #[test]
    fn conjoin_merges_disjoint_supports() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(1, -1, false)]);
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab, m(&[(0, 0, true), (1, -1, false)]));
    }

    #[test]
    fn conjoin_conflict_is_none() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 0, false)]);
        assert_eq!(a.conjoin(&b), None);
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
    }

    #[test]
    fn disjointness_requires_complementary_entry() {
        let a = m(&[(0, 0, true), (1, 0, false)]);
        let b = m(&[(0, 0, true)]);
        assert!(!a.is_disjoint(&b));
        let c = m(&[(1, 0, true)]);
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn paper_example_disjoined_matrices() {
        // [1 b] and [0 1]: complementary at (0, col 0) => disjoined.
        let m1 = m(&[(0, 0, true)]);
        let m2 = m(&[(0, 0, false), (0, 1, true)]);
        assert!(m1.is_disjoint(&m2));
    }

    #[test]
    fn subsumes_is_superset_of_paths() {
        let wide = m(&[(0, 0, true)]);
        let narrow = m(&[(0, 0, true), (1, 0, false)]);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(PredicateMatrix::universe().subsumes(&narrow));
        assert!(wide.subsumes(&wide));
    }

    #[test]
    fn subsumes_fails_on_conflicting_entry() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 0, false)]);
        assert!(!a.subsumes(&b));
    }

    #[test]
    fn shift_moves_columns() {
        let a = m(&[(0, 0, true), (1, -1, false)]);
        let s = a.shifted(1);
        assert_eq!(s, m(&[(0, 1, true), (1, 0, false)]));
        assert_eq!(s.shifted(-1), a);
    }

    #[test]
    fn shift_zero_is_identity() {
        let a = m(&[(0, 2, true)]);
        assert_eq!(a.shifted(0), a);
    }

    #[test]
    fn split_and_unify_roundtrip() {
        let a = m(&[(0, 0, true)]);
        let (f, t) = a.split(1, 0).unwrap();
        assert_eq!(f.get(1, 0), PredElem::False);
        assert_eq!(t.get(1, 0), PredElem::True);
        assert!(f.is_disjoint(&t));
        assert_eq!(f.unify(&t), Some(a.clone()));
        assert_eq!(t.unify(&f), Some(a));
    }

    #[test]
    fn split_constrained_element_fails() {
        let a = m(&[(0, 0, true)]);
        assert!(a.split(0, 0).is_none());
    }

    #[test]
    fn unify_rejects_multi_diff() {
        let a = m(&[(0, 0, true), (1, 0, true)]);
        let b = m(&[(0, 0, false), (1, 0, false)]);
        assert_eq!(a.unify(&b), None);
    }

    #[test]
    fn unify_rejects_equal_matrices() {
        let a = m(&[(0, 0, true)]);
        assert_eq!(a.unify(&a), None);
    }

    #[test]
    fn unify_rejects_different_supports() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 1, false)]);
        assert_eq!(a.unify(&b), None);
    }

    #[test]
    fn widen_to_window_drops_outside_columns() {
        let a = m(&[(0, -2, true), (0, 0, false), (0, 3, true)]);
        let w = a.widened_to_window(-1, 1);
        assert_eq!(w, m(&[(0, 0, false)]));
    }

    #[test]
    fn col_span_and_max_row() {
        let a = m(&[(0, -2, true), (2, 3, false)]);
        assert_eq!(a.col_span(), Some((-2, 3)));
        assert_eq!(a.max_row(), Some(2));
        assert_eq!(PredicateMatrix::universe().col_span(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        // Paper notation: current column underlined; we render `_x_`.
        let a = m(&[(0, -1, true), (0, 0, true), (0, 1, false)]);
        assert_eq!(a.to_string(), "[1 _1_ 0]");
        let u = PredicateMatrix::universe();
        assert_eq!(u.to_string(), "[_b_]");
    }

    #[test]
    fn admits_checks_constrained_entries_only() {
        let a = m(&[(0, 0, true), (1, 1, false)]);
        let mut o = OutcomeMap::new();
        o.set(0, 0, true);
        o.set(1, 1, false);
        o.set(5, 5, true);
        assert!(a.admits(&o));
        o.set(1, 1, true);
        assert!(!a.admits(&o));
    }

    // ---- packed-representation specifics ----

    #[test]
    fn out_of_window_keys_spill_and_roundtrip() {
        // Row beyond PACKED_ROWS and columns beyond the window must still
        // behave like any other entry.
        let a = m(&[
            (0, 0, true),
            (PACKED_ROWS + 3, 0, false),
            (1, PACKED_COL_HI + 5, true),
            (2, PACKED_COL_LO - 2, false),
        ]);
        assert_eq!(a.constrained_len(), 4);
        assert_eq!(a.get(PACKED_ROWS + 3, 0), PredElem::False);
        assert_eq!(a.get(1, PACKED_COL_HI + 5), PredElem::True);
        assert_eq!(a.get(2, PACKED_COL_LO - 2), PredElem::False);
        let keys: Vec<_> = a.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "constrained() must stay in key order");
        let mut b = a.clone();
        b.set(PACKED_ROWS + 3, 0, PredElem::Both);
        b.set(1, PACKED_COL_HI + 5, PredElem::Both);
        b.set(2, PACKED_COL_LO - 2, PredElem::Both);
        assert_eq!(b, m(&[(0, 0, true)]));
    }

    #[test]
    fn shift_across_window_edge_spills_and_roundtrips() {
        let a = m(&[(0, PACKED_COL_HI, true), (1, 0, false)]);
        let s = a.shifted(3); // (0, HI+3) leaves the window
        assert_eq!(s.get(0, PACKED_COL_HI + 3), PredElem::True);
        assert_eq!(s.get(1, 3), PredElem::False);
        assert_eq!(s.shifted(-3), a);
        let far = a.shifted(100).shifted(-100);
        assert_eq!(far, a);
    }

    #[test]
    fn ops_agree_across_spilled_operands() {
        let spilled = m(&[(0, 0, true), (0, PACKED_COL_HI + 2, true)]);
        let inwin = m(&[(0, 0, false)]);
        assert!(spilled.is_disjoint(&inwin));
        assert_eq!(spilled.conjoin(&inwin), None);
        let compat = m(&[(0, 0, true), (1, -1, false)]);
        let joined = spilled.conjoin(&compat).unwrap();
        assert_eq!(joined.constrained_len(), 3);
        assert!(spilled.subsumes(&joined));
        let other = m(&[(0, 0, true), (0, PACKED_COL_HI + 2, false)]);
        assert!(spilled.is_disjoint(&other));
        assert_eq!(spilled.unify(&other), Some(m(&[(0, 0, true)])));
    }

    #[test]
    fn packed_and_sparse_forms_are_interchangeable() {
        use std::collections::hash_map::DefaultHasher;
        let entries = [(0u32, 0i32, true), (2, -3, false), (9, 20, true)];
        let packed = crate::backend::with_backend(true, || m(&entries));
        let sparse = crate::backend::with_backend(false, || m(&entries));
        assert!(!packed.is_word_packed(), "(9,20) must spill");
        assert!(!sparse.is_word_packed());
        assert_eq!(packed, sparse);
        assert_eq!(packed.cmp(&sparse), Ordering::Equal);
        assert_eq!(format!("{packed:?}"), format!("{sparse:?}"));
        assert_eq!(format!("{packed}"), format!("{sparse}"));
        let h = |x: &PredicateMatrix| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&packed), h(&sparse));
        // Mixed-representation operations take the generic path.
        assert_eq!(packed.conjoin(&sparse), Some(packed.clone()));
        assert!(packed.subsumes(&sparse) && sparse.subsumes(&packed));
        assert!(!packed.is_disjoint(&sparse));
    }

    #[test]
    fn ord_matches_sparse_reference_order() {
        // The sparse derive ordered matrices by their ((r,c),v) sequence;
        // PathSet normalization (and thus probability summation order)
        // depends on it.
        let a = m(&[(0, 0, false)]);
        let b = m(&[(0, 0, true)]);
        let c = m(&[(0, 0, false), (1, 0, true)]);
        let u = PredicateMatrix::universe();
        assert!(u < a, "shorter prefix sorts first");
        assert!(a < b, "value breaks the tie at equal key");
        assert!(a < c, "prefix of a longer sequence sorts first");
        assert!(b > c, "first differing element decides");
    }
}
