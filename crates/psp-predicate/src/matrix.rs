//! Sparse predicate matrices.
//!
//! A [`PredicateMatrix`] stores only its constrained elements; every other
//! element is implicitly `b`. Rows identify IF operations of the original
//! loop body (0-based), columns identify iterations relative to the current
//! transformed iteration (`0` = current, negative = earlier, positive =
//! later). A matrix denotes the set of all execution paths whose IF outcomes
//! agree with its constrained elements.

use crate::elem::PredElem;
use crate::outcome::OutcomeMap;
use std::collections::BTreeMap;
use std::fmt;

/// Position of one predicate: `(IF row, iteration column)`.
pub type PredKey = (u32, i32);

/// A sparse, conceptually infinite matrix of [`PredElem`]s.
///
/// The empty matrix denotes the universe (all paths admitted). Matrices are
/// ordered and hashable so they can key maps and be deduplicated in
/// [`crate::PathSet`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PredicateMatrix {
    /// Constrained elements only; value is the IF outcome (`true` = `1`).
    entries: BTreeMap<PredKey, bool>,
}

impl PredicateMatrix {
    /// The unconstrained matrix `[b b … b]` (all paths).
    #[inline]
    pub fn universe() -> Self {
        Self::default()
    }

    /// Matrix with a single constrained element.
    pub fn single(row: u32, col: i32, outcome: bool) -> Self {
        let mut m = Self::universe();
        m.set(row, col, PredElem::from_bool(outcome));
        m
    }

    /// Build from an explicit list of constrained elements.
    ///
    /// Later duplicates of the same key overwrite earlier ones.
    pub fn from_entries<I: IntoIterator<Item = (u32, i32, bool)>>(it: I) -> Self {
        let mut m = Self::universe();
        for (row, col, v) in it {
            m.set(row, col, PredElem::from_bool(v));
        }
        m
    }

    /// The element at `(row, col)` (default `b`).
    #[inline]
    pub fn get(&self, row: u32, col: i32) -> PredElem {
        match self.entries.get(&(row, col)) {
            Some(&v) => PredElem::from_bool(v),
            None => PredElem::Both,
        }
    }

    /// Set the element at `(row, col)`; setting `b` removes the entry.
    pub fn set(&mut self, row: u32, col: i32, e: PredElem) {
        match e.as_bool() {
            Some(v) => {
                self.entries.insert((row, col), v);
            }
            None => {
                self.entries.remove(&(row, col));
            }
        }
    }

    /// Copy of `self` with `(row, col)` set to `e`.
    pub fn with(&self, row: u32, col: i32, e: PredElem) -> Self {
        let mut m = self.clone();
        m.set(row, col, e);
        m
    }

    /// Number of constrained elements.
    #[inline]
    pub fn constrained_len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no element is constrained (the universe).
    #[inline]
    pub fn is_universe(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the constrained elements in `(row, col)` order.
    pub fn constrained(&self) -> impl Iterator<Item = (u32, i32, bool)> + '_ {
        self.entries.iter().map(|(&(r, c), &v)| (r, c, v))
    }

    /// Keys of the constrained elements.
    pub fn keys(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.entries.keys().copied()
    }

    /// Intersection of the two path sets.
    ///
    /// `None` means the intersection is empty, i.e. the matrices are
    /// *disjoined* (the paper's term): they carry complementary elements at
    /// some position.
    pub fn conjoin(&self, other: &Self) -> Option<Self> {
        // Iterate over the smaller entry set for the conflict scan.
        let (small, large) = if self.entries.len() <= other.entries.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (&(r, c), &v) in &small.entries {
            if let Some(&w) = large.entries.get(&(r, c)) {
                if v != w {
                    return None;
                }
            }
        }
        let mut out = large.clone();
        for (&k, &v) in &small.entries {
            out.entries.insert(k, v);
        }
        Some(out)
    }

    /// Whether the path sets are disjoint (complementary at some position).
    ///
    /// Operations with disjoined matrices lie on different formal paths and
    /// are never tested for data or control dependence.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        let (small, large) = if self.entries.len() <= other.entries.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .entries
            .iter()
            .any(|(&k, &v)| matches!(large.entries.get(&k), Some(&w) if w != v))
    }

    /// Superset relation: every path admitted by `other` is admitted by
    /// `self` (i.e. `self`'s constraints are a subset of `other`'s).
    pub fn subsumes(&self, other: &Self) -> bool {
        if self.entries.len() > other.entries.len() {
            return false;
        }
        self.entries
            .iter()
            .all(|(&k, &v)| other.entries.get(&k) == Some(&v))
    }

    /// Shift all columns by `delta` (positive = later iterations).
    ///
    /// Applied when an operation instance crosses the loop boundary: moving
    /// into the *previous* transformed iteration increments its index and
    /// shifts its matrix one place **right** (`delta = +1`), preserving
    /// relative references.
    pub fn shifted(&self, delta: i32) -> Self {
        if delta == 0 {
            return self.clone();
        }
        let entries = self
            .entries
            .iter()
            .map(|(&(r, c), &v)| ((r, c + delta), v))
            .collect();
        Self { entries }
    }

    /// The *split* of this matrix at a `b` element: two clones with the
    /// element set to `0` and `1` respectively.
    ///
    /// Returns `None` when the element is already constrained.
    pub fn split(&self, row: u32, col: i32) -> Option<(Self, Self)> {
        if self.get(row, col).is_constrained() {
            return None;
        }
        Some((
            self.with(row, col, PredElem::False),
            self.with(row, col, PredElem::True),
        ))
    }

    /// Inverse of [`split`](Self::split): when the two matrices differ in
    /// exactly one element and that element is complementary, return the
    /// merged matrix with the element reset to `b`.
    pub fn unify(&self, other: &Self) -> Option<Self> {
        // They must share every entry except exactly one complementary pair.
        if self.entries.len() != other.entries.len() {
            return None;
        }
        let mut diff: Option<PredKey> = None;
        for (&k, &v) in &self.entries {
            match other.entries.get(&k) {
                Some(&w) if w == v => {}
                Some(_) => {
                    if diff.replace(k).is_some() {
                        return None; // more than one differing position
                    }
                }
                None => return None, // keys differ
            }
        }
        let (r, c) = diff?;
        Some(self.with(r, c, PredElem::Both))
    }

    /// Whether the concrete outcome assignment lies in this path set.
    pub fn admits(&self, outcomes: &OutcomeMap) -> bool {
        self.entries
            .iter()
            .all(|(&(r, c), &v)| outcomes.get(r, c) == Some(v))
    }

    /// Drop constraints outside the column window `[lo, hi]` (inclusive),
    /// widening the path set.
    pub fn widened_to_window(&self, lo: i32, hi: i32) -> Self {
        let entries = self
            .entries
            .iter()
            .filter(|(&(_, c), _)| (lo..=hi).contains(&c))
            .map(|(&k, &v)| (k, v))
            .collect();
        Self { entries }
    }

    /// Smallest and largest constrained column, if any element is
    /// constrained.
    pub fn col_span(&self) -> Option<(i32, i32)> {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for &(_, c) in self.entries.keys() {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Largest constrained row index, if any.
    pub fn max_row(&self) -> Option<u32> {
        self.entries.keys().map(|&(r, _)| r).max()
    }

    /// Render one row over the column window `[lo, hi]`, underlining column
    /// 0 per the paper's notation (here marked with surrounding `_`).
    fn fmt_row(&self, row: u32, lo: i32, hi: i32, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for c in lo..=hi {
            if c > lo {
                write!(f, " ")?;
            }
            let sym = self.get(row, c).symbol();
            if c == 0 {
                write!(f, "_{sym}_")?;
            } else {
                write!(f, "{sym}")?;
            }
        }
        write!(f, "]")
    }

    /// Multi-row display over a chosen window and row count.
    pub fn display(&self, rows: u32, lo: i32, hi: i32) -> MatrixDisplay<'_> {
        MatrixDisplay {
            m: self,
            rows,
            lo,
            hi,
        }
    }
}

/// Display adapter produced by [`PredicateMatrix::display`].
pub struct MatrixDisplay<'a> {
    m: &'a PredicateMatrix,
    rows: u32,
    lo: i32,
    hi: i32,
}

impl fmt::Display for MatrixDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows.max(1) {
            if r > 0 {
                write!(f, " ")?;
            }
            self.m.fmt_row(r, self.lo, self.hi, f)?;
        }
        Ok(())
    }
}

impl fmt::Display for PredicateMatrix {
    /// Default display: rows up to the max constrained row, columns spanning
    /// the constrained window (always including column 0).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = self.max_row().map(|r| r + 1).unwrap_or(1);
        let (lo, hi) = self
            .col_span()
            .map(|(a, b)| (a.min(0), b.max(0)))
            .unwrap_or((0, 0));
        self.display(rows, lo, hi).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(entries: &[(u32, i32, bool)]) -> PredicateMatrix {
        PredicateMatrix::from_entries(entries.iter().copied())
    }

    #[test]
    fn universe_admits_everything_and_is_empty() {
        let u = PredicateMatrix::universe();
        assert!(u.is_universe());
        assert_eq!(u.constrained_len(), 0);
        assert_eq!(u.get(3, -7), PredElem::Both);
    }

    #[test]
    fn set_both_removes_entry() {
        let mut a = PredicateMatrix::single(0, 0, true);
        assert_eq!(a.constrained_len(), 1);
        a.set(0, 0, PredElem::Both);
        assert!(a.is_universe());
    }

    #[test]
    fn conjoin_with_universe_is_identity() {
        let a = m(&[(0, 0, true), (1, 1, false)]);
        let u = PredicateMatrix::universe();
        assert_eq!(a.conjoin(&u), Some(a.clone()));
        assert_eq!(u.conjoin(&a), Some(a));
    }

    #[test]
    fn conjoin_merges_disjoint_supports() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(1, -1, false)]);
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab, m(&[(0, 0, true), (1, -1, false)]));
    }

    #[test]
    fn conjoin_conflict_is_none() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 0, false)]);
        assert_eq!(a.conjoin(&b), None);
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
    }

    #[test]
    fn disjointness_requires_complementary_entry() {
        let a = m(&[(0, 0, true), (1, 0, false)]);
        let b = m(&[(0, 0, true)]);
        assert!(!a.is_disjoint(&b));
        let c = m(&[(1, 0, true)]);
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn paper_example_disjoined_matrices() {
        // [1 b] and [0 1]: complementary at (0, col 0) => disjoined.
        let m1 = m(&[(0, 0, true)]);
        let m2 = m(&[(0, 0, false), (0, 1, true)]);
        assert!(m1.is_disjoint(&m2));
    }

    #[test]
    fn subsumes_is_superset_of_paths() {
        let wide = m(&[(0, 0, true)]);
        let narrow = m(&[(0, 0, true), (1, 0, false)]);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(PredicateMatrix::universe().subsumes(&narrow));
        assert!(wide.subsumes(&wide));
    }

    #[test]
    fn subsumes_fails_on_conflicting_entry() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 0, false)]);
        assert!(!a.subsumes(&b));
    }

    #[test]
    fn shift_moves_columns() {
        let a = m(&[(0, 0, true), (1, -1, false)]);
        let s = a.shifted(1);
        assert_eq!(s, m(&[(0, 1, true), (1, 0, false)]));
        assert_eq!(s.shifted(-1), a);
    }

    #[test]
    fn shift_zero_is_identity() {
        let a = m(&[(0, 2, true)]);
        assert_eq!(a.shifted(0), a);
    }

    #[test]
    fn split_and_unify_roundtrip() {
        let a = m(&[(0, 0, true)]);
        let (f, t) = a.split(1, 0).unwrap();
        assert_eq!(f.get(1, 0), PredElem::False);
        assert_eq!(t.get(1, 0), PredElem::True);
        assert!(f.is_disjoint(&t));
        assert_eq!(f.unify(&t), Some(a.clone()));
        assert_eq!(t.unify(&f), Some(a));
    }

    #[test]
    fn split_constrained_element_fails() {
        let a = m(&[(0, 0, true)]);
        assert!(a.split(0, 0).is_none());
    }

    #[test]
    fn unify_rejects_multi_diff() {
        let a = m(&[(0, 0, true), (1, 0, true)]);
        let b = m(&[(0, 0, false), (1, 0, false)]);
        assert_eq!(a.unify(&b), None);
    }

    #[test]
    fn unify_rejects_equal_matrices() {
        let a = m(&[(0, 0, true)]);
        assert_eq!(a.unify(&a), None);
    }

    #[test]
    fn unify_rejects_different_supports() {
        let a = m(&[(0, 0, true)]);
        let b = m(&[(0, 1, false)]);
        assert_eq!(a.unify(&b), None);
    }

    #[test]
    fn widen_to_window_drops_outside_columns() {
        let a = m(&[(0, -2, true), (0, 0, false), (0, 3, true)]);
        let w = a.widened_to_window(-1, 1);
        assert_eq!(w, m(&[(0, 0, false)]));
    }

    #[test]
    fn col_span_and_max_row() {
        let a = m(&[(0, -2, true), (2, 3, false)]);
        assert_eq!(a.col_span(), Some((-2, 3)));
        assert_eq!(a.max_row(), Some(2));
        assert_eq!(PredicateMatrix::universe().col_span(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        // Paper notation: current column underlined; we render `_x_`.
        let a = m(&[(0, -1, true), (0, 0, true), (0, 1, false)]);
        assert_eq!(a.to_string(), "[1 _1_ 0]");
        let u = PredicateMatrix::universe();
        assert_eq!(u.to_string(), "[_b_]");
    }

    #[test]
    fn admits_checks_constrained_entries_only() {
        let a = m(&[(0, 0, true), (1, 1, false)]);
        let mut o = OutcomeMap::new();
        o.set(0, 0, true);
        o.set(1, 1, false);
        o.set(5, 5, true);
        assert!(a.admits(&o));
        o.set(1, 1, true);
        assert!(!a.admits(&o));
    }
}
