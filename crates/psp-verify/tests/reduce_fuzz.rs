//! The reducer and the fuzz driver: minimization power, reproducer
//! round-trips, and a tiny smoke campaign.

use psp_verify::grammar::{self, stmt_count, S};
use psp_verify::{fuzz, reduce_with, FuzzConfig};

/// A deliberately bloated failing input (14 statements); the "failure" is
/// a synthetic predicate — a store nested under two conditions — standing
/// in for an oracle stage. The reducer must strip all noise.
#[test]
fn reducer_shrinks_a_seeded_failure_below_eight_statements() {
    fn has_double_nested_store(stmts: &[S]) -> bool {
        fn nested(stmts: &[S], depth: u32) -> bool {
            stmts.iter().any(|s| match s {
                S::StoreY(_) => depth >= 2,
                S::If(_, _, _, t, e) => nested(t, depth + 1) || nested(e, depth + 1),
                _ => false,
            })
        }
        nested(stmts, 0)
    }

    let noisy = vec![
        S::LoadX(0),
        S::Alu(2, 1, 9, 14),
        S::AccAdd(33),
        S::If(
            1,
            0,
            1,
            vec![
                S::LoadY(2),
                S::If(
                    4,
                    8,
                    2,
                    vec![S::Alu(7, 0, 3, 4), S::StoreY(19)],
                    vec![S::AccAdd(5)],
                ),
                S::Alu(3, 2, 2, 2),
            ],
            vec![S::LoadX(1), S::AccAdd(90)],
        ),
        S::StoreY(7),
        S::Alu(6, 0, 11, 12),
    ];
    assert_eq!(stmt_count(&noisy), 14);
    assert!(has_double_nested_store(&noisy));

    let reduced = reduce_with(&noisy, &|s| has_double_nested_store(s));
    assert!(
        has_double_nested_store(&reduced),
        "failure lost in reduction"
    );
    assert!(
        stmt_count(&reduced) <= 8,
        "reducer left {} statements: {reduced:?}",
        stmt_count(&reduced)
    );

    // The minimized input must survive the disk round-trip: render, write,
    // re-compile, and match the direct lowering.
    let dir = std::env::temp_dir().join("psp-verify-reduce-test");
    let failure = psp_verify::Failure {
        stage: "synthetic".into(),
        detail: "double-nested store".into(),
    };
    let path = fuzz::write_repro(&dir, &failure, &reduced).unwrap();
    let src = std::fs::read_to_string(&path).unwrap();
    let spec = psp_lang::compile(&src).unwrap();
    assert_eq!(spec, grammar::build_spec(&reduced));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Canonicalization turns byte soup into the smallest codes.
#[test]
fn reducer_canonicalizes_codes() {
    // Failure: any StoreY at top level. Everything else about the
    // statement is noise and must collapse to canonical codes.
    let input = vec![S::StoreY(201), S::Alu(135, 77, 91, 222)];
    let reduced = reduce_with(&input, &|s| s.iter().any(|x| matches!(x, S::StoreY(_))));
    assert_eq!(reduced, vec![S::StoreY(0)], "expected canonical store");
}

/// Mutation keeps inputs well-formed: every surviving `if` has a nonempty
/// then-arm, so rendering and re-lowering can never fail.
#[test]
fn mutations_preserve_well_formedness() {
    let mut rng = grammar::SplitMix64(42);
    let mut cur = grammar::random_body(&mut rng);
    for _ in 0..500 {
        cur = grammar::mutate(&cur, &mut rng);
        fn wf(stmts: &[S]) -> bool {
            stmts.iter().all(|s| match s {
                S::If(_, _, _, t, e) => !t.is_empty() && wf(t) && wf(e),
                _ => true,
            })
        }
        assert!(wf(&cur), "ill-formed after mutation: {cur:?}");
        assert!(!cur.is_empty());
        // And it really lowers + renders.
        let spec = grammar::build_spec(&cur);
        assert!(spec.validate().is_ok());
        let src = grammar::to_source(&cur);
        assert_eq!(psp_lang::compile(&src).unwrap(), spec);
    }
}

/// A miniature campaign end-to-end: a few oracle runs, no findings, and a
/// growing corpus. (The CI smoke job runs the full campaign in release.)
#[test]
fn smoke_campaign_runs_clean() {
    let cfg = FuzzConfig {
        seed: 0xfeed,
        iters: if cfg!(debug_assertions) { 4 } else { 60 },
        budget: Some(std::time::Duration::from_secs(120)),
        repro_dir: None,
        max_failures: 1,
    };
    let outcome = fuzz::fuzz(&cfg);
    assert!(outcome.executed >= 1);
    assert!(
        outcome.findings.is_empty(),
        "fuzz found a real failure: {:?}",
        outcome.findings
    );
    assert!(outcome.corpus >= 1, "first input must enter the corpus");
}

/// Deterministic replay: the same seed yields the same campaign.
#[test]
fn campaigns_are_reproducible() {
    let cfg = FuzzConfig {
        seed: 7,
        iters: 3,
        budget: None,
        repro_dir: None,
        max_failures: 1,
    };
    let a = fuzz::fuzz(&cfg);
    let b = fuzz::fuzz(&cfg);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.corpus, b.corpus);
}
