//! The independent validators against every kernel and every producer —
//! and against deliberately corrupted artifacts, which they must reject
//! with a precise violation.

use psp_core::{pipeline_loop, PspConfig};
use psp_machine::MachineConfig;
use psp_opt::{certify, Certification, ExactConfig};
use psp_verify::{validate_modulo, validate_schedule, validate_vliw, Violation};

fn renamed_live_out(spec: &psp_ir::LoopSpec) -> Vec<psp_ir::RegRef> {
    let mut ic = psp_baselines::if_convert(spec);
    psp_baselines::rename::rename_inductions(&mut ic.ops, &mut ic.spec);
    ic.spec.live_out
}

#[test]
fn psp_schedules_of_all_kernels_validate() {
    let wide = MachineConfig::paper_default();
    for k in psp_kernels::all_kernels() {
        let res = pipeline_loop(&k.spec, &PspConfig::with_machine(wide.clone()))
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let v = validate_schedule(&k.spec, &wide, &res.schedule);
        assert!(v.is_empty(), "{}: {:?}", k.name, v);
        let v = validate_vliw(&k.spec, &wide, &res.program);
        assert!(v.is_empty(), "{}: {:?}", k.name, v);
    }
}

#[test]
fn psp_schedules_validate_on_the_narrow_machine() {
    let narrow = MachineConfig::narrow(2, 1, 1);
    for k in psp_kernels::all_kernels() {
        let res = pipeline_loop(&k.spec, &PspConfig::with_machine(narrow.clone()))
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let v = validate_schedule(&k.spec, &narrow, &res.schedule);
        assert!(v.is_empty(), "{}: {:?}", k.name, v);
        let v = validate_vliw(&k.spec, &narrow, &res.program);
        assert!(v.is_empty(), "{}: {:?}", k.name, v);
    }
}

#[test]
fn ems_schedules_of_all_kernels_validate() {
    let wide = MachineConfig::paper_default();
    for k in psp_kernels::all_kernels() {
        let ems = psp_baselines::modulo_schedule(&k.spec, &wide);
        let v = validate_modulo(&renamed_live_out(&k.spec), &wide, &ems);
        assert!(v.is_empty(), "{}: {:?}", k.name, v);
    }
}

#[test]
fn certifier_witnesses_validate() {
    let wide = MachineConfig::paper_default();
    for k in psp_kernels::all_kernels() {
        let ems = psp_baselines::modulo_schedule(&k.spec, &wide);
        let cfg = ExactConfig {
            max_nodes: 50_000,
            ..ExactConfig::default()
        };
        let exact = certify(&k.spec, &wide, &cfg, Some(ems.ii));
        if let Certification::Certified(ii) = exact.outcome {
            assert!(ii <= ems.ii, "{}: certified {ii} > ems {}", k.name, ems.ii);
        }
        if let Some(w) = &exact.schedule {
            let v = validate_modulo(&renamed_live_out(&k.spec), &wide, w);
            assert!(v.is_empty(), "{}: {:?}", k.name, v);
        }
    }
}

#[test]
fn baseline_compilations_validate() {
    let wide = MachineConfig::paper_default();
    for k in psp_kernels::all_kernels() {
        let seq = psp_baselines::compile_sequential(&k.spec);
        let v = validate_vliw(&k.spec, &MachineConfig::sequential(), &seq);
        assert!(v.is_empty(), "{} seq: {:?}", k.name, v);
        let local = psp_baselines::compile_local(&k.spec, &wide);
        let v = validate_vliw(&k.spec, &wide, &local);
        assert!(v.is_empty(), "{} local: {:?}", k.name, v);
        let unrolled = psp_baselines::compile_unrolled(&k.spec, 3, &wide);
        let v = validate_vliw(&k.spec, &wide, &unrolled);
        assert!(v.is_empty(), "{} unroll: {:?}", k.name, v);
    }
}

/// Injected defect #1: hoist a consumer above its producer. The validator
/// must answer with a precise flow-order violation naming the register.
#[test]
fn corrupted_schedule_broken_flow_is_rejected() {
    let wide = MachineConfig::paper_default();
    let k = psp_kernels::by_name("vecmin").unwrap();
    let res = pipeline_loop(&k.spec, &PspConfig::with_machine(wide.clone())).unwrap();
    let mut corrupted = 0;
    // Find any instance in a row > 0 whose producer (same frame) sits in a
    // strictly earlier row, and hoist the consumer to row 0.
    'outer: for row in (1..res.schedule.n_rows()).rev() {
        let ids: Vec<_> = res.schedule.rows[row].iter().map(|i| i.id).collect();
        for id in ids {
            let mut sched = res.schedule.clone();
            let inst = sched.remove(id).unwrap();
            sched.insert(0, inst);
            let v = validate_schedule(&k.spec, &wide, &sched);
            if v.iter().any(|v| {
                matches!(
                    v,
                    Violation::RegisterOrder { kind: "flow", .. }
                        | Violation::Speculation { .. }
                        | Violation::BreakProtocol { .. }
                )
            }) {
                corrupted += 1;
                break 'outer;
            }
        }
    }
    assert!(
        corrupted > 0,
        "no hoist of any instance produced an order violation"
    );
}

/// Injected defect #2: resource oversubscription — a program compiled for
/// the wide machine cannot fit the 1-wide machine, and the validator must
/// say exactly which cycle overflows.
#[test]
fn corrupted_resources_are_rejected() {
    let wide = MachineConfig::paper_default();
    let one = MachineConfig::narrow(1, 1, 1);
    let k = psp_kernels::by_name("vecmin").unwrap();
    let prog = psp_baselines::compile_local(&k.spec, &wide);
    let v = validate_vliw(&k.spec, &one, &prog);
    assert!(
        v.iter().any(
            |v| matches!(v, Violation::Resource { used, limit, .. } if *used > *limit as usize)
        ),
        "expected a Resource violation, got {v:?}"
    );
}

/// Injected defect #3: a dropped dependence in a modulo schedule — pull an
/// operation to time 0 so some re-derived edge breaks.
#[test]
fn corrupted_modulo_schedule_is_rejected() {
    let wide = MachineConfig::paper_default();
    let k = psp_kernels::by_name("vecmin").unwrap();
    let live_out = renamed_live_out(&k.spec);
    let ems = psp_baselines::modulo_schedule(&k.spec, &wide);
    assert!(validate_modulo(&live_out, &wide, &ems).is_empty());
    let last = (0..ems.ops.len())
        .max_by_key(|&i| ems.time[i])
        .expect("nonempty");
    assert!(ems.time[last] > 0, "schedule too flat to corrupt");
    let mut bad = ems.clone();
    bad.time[last] = 0;
    bad.stages = bad.time.iter().map(|&t| t as u32 / bad.ii).max().unwrap() + 1;
    let v = validate_modulo(&live_out, &wide, &bad);
    assert!(
        v.iter().any(|v| matches!(v, Violation::ModuloEdge { .. })),
        "expected a ModuloEdge violation, got {v:?}"
    );
}

/// Injected defect #4: a dropped operation.
#[test]
fn dropped_instance_is_rejected() {
    let wide = MachineConfig::paper_default();
    let k = psp_kernels::by_name("vecmin").unwrap();
    let res = pipeline_loop(&k.spec, &PspConfig::with_machine(wide.clone())).unwrap();
    let id = res.schedule.rows[0][0].id;
    let mut sched = res.schedule.clone();
    sched.remove(id).unwrap();
    let v = validate_schedule(&k.spec, &wide, &sched);
    assert!(
        v.iter()
            .any(|v| matches!(v, Violation::DroppedOp { .. } | Violation::Coverage { .. })),
        "expected DroppedOp/Coverage, got {v:?}"
    );
}

/// The hooks fire in debug builds: installing the validators and compiling
/// every kernel end-to-end must not panic (each producer calls its hook).
#[test]
fn hooks_accept_all_producers() {
    psp_verify::install();
    let wide = MachineConfig::paper_default();
    for k in psp_kernels::all_kernels() {
        let _ = pipeline_loop(&k.spec, &PspConfig::with_machine(wide.clone())).unwrap();
        let _ = psp_baselines::modulo_schedule(&k.spec, &wide);
        let _ = psp_baselines::compile_local(&k.spec, &wide);
        let _ = psp_baselines::compile_sequential(&k.spec);
        let _ = psp_baselines::compile_unrolled(&k.spec, 2, &wide);
    }
}
