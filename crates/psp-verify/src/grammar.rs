//! The fuzz grammar: a tiny statement AST over a fixed register universe
//! (`n`, `k`, `acc`, three scratch registers, arrays `x` and `y`) that every
//! generated loop is built from.
//!
//! This mirrors the proptest strategies of the repo's differential suites
//! (`tests/common/mod.rs`) — same encodings, same lowering — but is
//! self-contained: generation and mutation run off a deterministic
//! [`SplitMix64`] stream so a corpus entry is reproducible from its seed
//! alone, and [`to_source`] renders any statement list as `psp-lang` text,
//! which is how minimized reproducers are stored on disk.

use psp_ir::op::build;
use psp_ir::{AluOp, ArrayId, CmpOp, LoopBuilder, LoopSpec, Operand, Reg};
use psp_kernels::KernelData;
use psp_sim::MachineState;

/// Register universe of a generated loop: R0=n, R1=k, R2=acc, R3..=scratch.
pub const N: Reg = Reg(0);
/// Induction register.
pub const K: Reg = Reg(1);
/// Accumulator (the live-out).
pub const ACC: Reg = Reg(2);
/// First scratch register.
pub const SCRATCH: u32 = 3;
/// Number of scratch registers.
pub const N_SCRATCH: u32 = 3;

/// One statement. Field bytes are free codes; [`operand`], [`alu`] and
/// [`cmp`] fold them into the finite universe, so every byte pattern is a
/// valid program — the property that makes blind mutation productive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S {
    /// `s<d%3> = operand(a) aluop(op) operand(b)`.
    Alu(u8, u8, u8, u8),
    /// `s<d%3> = x[k]`.
    LoadX(u8),
    /// `s<d%3> = y[k]`.
    LoadY(u8),
    /// `acc = acc + operand(src)`.
    AccAdd(u8),
    /// `y[k] = operand(src)`.
    StoreY(u8),
    /// `if operand(a) cmp(c) operand(b) { then } else { else }`.
    If(u8, u8, u8, Vec<S>, Vec<S>),
}

/// Decode an operand byte.
pub fn operand(code: u8) -> Operand {
    match code % 6 {
        0 => Operand::Reg(K),
        1 => Operand::Reg(ACC),
        2 => Operand::Reg(Reg(SCRATCH)),
        3 => Operand::Reg(Reg(SCRATCH + 1)),
        4 => Operand::Reg(Reg(SCRATCH + 2)),
        _ => Operand::Imm((code as i64 % 7) - 3),
    }
}

/// Decode an ALU opcode byte.
pub fn alu(code: u8) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
    ][code as usize % 8]
}

/// Decode a comparison byte.
pub fn cmp(code: u8) -> CmpOp {
    [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ][code as usize % 6]
}

fn emit(b: &mut LoopBuilder, stmts: &[S], x: ArrayId, y: ArrayId) {
    for s in stmts {
        match s {
            S::Alu(op, d, a2, b2) => {
                let dst = Reg(SCRATCH + (*d as u32 % N_SCRATCH));
                b.op(build::alu(alu(*op), dst, operand(*a2), operand(*b2)));
            }
            S::LoadX(d) => {
                let dst = Reg(SCRATCH + (*d as u32 % N_SCRATCH));
                b.op(build::load(dst, x, K));
            }
            S::LoadY(d) => {
                let dst = Reg(SCRATCH + (*d as u32 % N_SCRATCH));
                b.op(build::load(dst, y, K));
            }
            S::AccAdd(src) => {
                b.op(build::add(ACC, ACC, operand(*src)));
            }
            S::StoreY(src) => {
                b.op(build::store(y, K, operand(*src)));
            }
            S::If(c, a2, b2, t, e) => {
                let cc = b.cc();
                b.op(build::cmp(cmp(*c), cc, operand(*a2), operand(*b2)));
                b.begin_if(cc);
                emit(b, t, x, y);
                b.begin_else();
                emit(b, e, x, y);
                b.end_if();
            }
        }
    }
}

/// Lower a statement list to a [`LoopSpec`] with the standard epilogue
/// (`k = k + 1; break if (k >= n)`).
pub fn build_spec(stmts: &[S]) -> LoopSpec {
    let mut b = LoopBuilder::new("fuzz");
    let x = b.array("x");
    let y = b.array("y");
    let n = b.named_reg("n");
    let k = b.named_reg("k");
    let acc = b.named_reg("acc");
    let s0 = b.named_reg("s0");
    let s1 = b.named_reg("s1");
    let s2 = b.named_reg("s2");
    assert_eq!((n, k, acc), (N, K, ACC));
    emit(&mut b, stmts, x, y);
    b.op(build::add(K, K, 1i64));
    let ccb = b.cc();
    b.op(build::cmp(CmpOp::Ge, ccb, K, N));
    b.break_(ccb);
    b.finish([n, k, acc, s0, s1, s2], [acc])
}

/// Build an initial machine state for a generated loop: `n = len`, random
/// `x`/`y` contents, everything else zero.
pub fn initial(spec: &LoopSpec, len: usize, seed: u64) -> MachineState {
    let data = KernelData::random(seed, len);
    let mut st = MachineState::new(spec.n_regs.max(8), spec.n_ccs.max(4));
    st.regs[N.0 as usize] = len as i64;
    st.push_array(data.x);
    st.push_array(data.y);
    st
}

// --- deterministic randomness ------------------------------------------

/// SplitMix64: tiny, fast, and good enough for fuzz scheduling decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
    /// A free byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }
}

fn random_leaf(rng: &mut SplitMix64) -> S {
    match rng.below(5) {
        0 => S::Alu(rng.byte(), rng.byte(), rng.byte(), rng.byte()),
        1 => S::LoadX(rng.byte()),
        2 => S::LoadY(rng.byte()),
        3 => S::AccAdd(rng.byte()),
        _ => S::StoreY(rng.byte()),
    }
}

fn random_stmt(rng: &mut SplitMix64, depth: u32) -> S {
    if depth > 0 && rng.below(4) == 0 {
        let t = (0..1 + rng.below(2))
            .map(|_| random_stmt(rng, depth - 1))
            .collect();
        let e = (0..rng.below(2))
            .map(|_| random_stmt(rng, depth - 1))
            .collect();
        S::If(rng.byte(), rng.byte(), rng.byte(), t, e)
    } else {
        random_leaf(rng)
    }
}

/// A fresh random loop body: 2–6 statements, conditions nested ≤ 2 deep.
pub fn random_body(rng: &mut SplitMix64) -> Vec<S> {
    let n = 2 + rng.below(5);
    (0..n).map(|_| random_stmt(rng, 2)).collect()
}

// --- mutation ----------------------------------------------------------

/// Number of statements, counting nested ones.
pub fn stmt_count(stmts: &[S]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            S::If(_, _, _, t, e) => 1 + stmt_count(t) + stmt_count(e),
            _ => 1,
        })
        .sum()
}

pub(crate) fn remove_nth(stmts: &mut Vec<S>, n: &mut usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *n == 0 {
            stmts.remove(i);
            return true;
        }
        *n -= 1;
        if let S::If(_, _, _, t, e) = &mut stmts[i] {
            if remove_nth(t, n) || remove_nth(e, n) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn insert_nth(stmts: &mut Vec<S>, n: &mut usize, s: &S) -> bool {
    let mut i = 0;
    loop {
        if *n == 0 {
            stmts.insert(i, s.clone());
            return true;
        }
        if i == stmts.len() {
            return false;
        }
        *n -= 1;
        if let S::If(_, _, _, t, e) = &mut stmts[i] {
            if insert_nth(t, n, s) || insert_nth(e, n, s) {
                return true;
            }
        }
        i += 1;
    }
}

pub(crate) fn with_nth(stmts: &mut [S], n: &mut usize, f: &mut impl FnMut(&mut S)) -> bool {
    for s in stmts.iter_mut() {
        if *n == 0 {
            f(s);
            return true;
        }
        *n -= 1;
        if let S::If(_, _, _, t, e) = s {
            if with_nth(t, n, f) || with_nth(e, n, f) {
                return true;
            }
        }
    }
    false
}

fn nth_stmt(stmts: &[S], n: &mut usize) -> Option<S> {
    for s in stmts {
        if *n == 0 {
            return Some(s.clone());
        }
        *n -= 1;
        if let S::If(_, _, _, t, e) = s {
            if let Some(found) = nth_stmt(t, n).or_else(|| nth_stmt(e, n)) {
                return Some(found);
            }
        }
    }
    None
}

/// Drop `if`s whose then-arm went empty (splicing the else arm in place)
/// so every surviving `if` prints and re-lowers cleanly.
pub fn normalize(stmts: &mut Vec<S>) {
    let mut i = 0;
    while i < stmts.len() {
        if let S::If(_, _, _, t, e) = &mut stmts[i] {
            normalize(t);
            normalize(e);
            if t.is_empty() {
                let tail = std::mem::take(e);
                stmts.splice(i..=i, tail);
                continue;
            }
        }
        i += 1;
    }
}

/// One mutation step: insert, delete, duplicate, code-flip, wrap in a new
/// condition, unwrap a condition, or swap a condition's arms.
pub fn mutate(stmts: &[S], rng: &mut SplitMix64) -> Vec<S> {
    let mut out = stmts.to_vec();
    let total = stmt_count(&out).max(1);
    match rng.below(7) {
        0 => {
            let s = random_stmt(rng, 1);
            let mut n = rng.below(total + 1);
            insert_nth(&mut out, &mut n, &s);
        }
        1 => {
            let mut n = rng.below(total);
            remove_nth(&mut out, &mut n);
        }
        2 => {
            let mut n = rng.below(total);
            if let Some(s) = nth_stmt(&out, &mut n.clone()) {
                insert_nth(&mut out, &mut n, &s);
            }
        }
        3 => {
            let mut n = rng.below(total);
            let b = rng.byte();
            let which = rng.below(4);
            with_nth(&mut out, &mut n, &mut |s| match s {
                S::Alu(op, d, a, b2) => {
                    *[op, d, a, b2][which] = b;
                }
                S::LoadX(d) | S::LoadY(d) | S::AccAdd(d) | S::StoreY(d) => *d = b,
                S::If(c, a, b2, _, _) => {
                    *[c, a, b2][which % 3] = b;
                }
            });
        }
        4 => {
            let mut n = rng.below(total);
            let (c, a, b) = (rng.byte(), rng.byte(), rng.byte());
            with_nth(&mut out, &mut n, &mut |s| {
                let inner = s.clone();
                *s = S::If(c, a, b, vec![inner], Vec::new());
            });
        }
        5 => {
            let mut n = rng.below(total);
            with_nth(&mut out, &mut n, &mut |s| {
                if let S::If(_, _, _, t, _) = s {
                    if let Some(first) = t.first().cloned() {
                        *s = first;
                    }
                }
            });
        }
        _ => {
            let mut n = rng.below(total);
            with_nth(&mut out, &mut n, &mut |s| {
                if let S::If(_, _, _, t, e) = s {
                    std::mem::swap(t, e);
                }
            });
        }
    }
    normalize(&mut out);
    if out.is_empty() {
        out.push(random_leaf(rng));
    }
    out
}

// --- source rendering --------------------------------------------------

fn operand_src(code: u8) -> String {
    match operand(code) {
        Operand::Reg(K) => "k".into(),
        Operand::Reg(ACC) => "acc".into(),
        Operand::Reg(r) => format!("s{}", r.0 - SCRATCH),
        // The lexer only reads `-N` as a literal after `(`, `[`, `,`, `=`,
        // or an operator — `min`/`max` are keywords, so parenthesize.
        Operand::Imm(v) if v < 0 => format!("({v})"),
        Operand::Imm(v) => v.to_string(),
    }
}

fn stmt_src(out: &mut String, s: &S, depth: usize) {
    let pad = "    ".repeat(depth);
    match s {
        S::Alu(op, d, a, b) => {
            out.push_str(&format!(
                "{pad}s{} = {} {} {};\n",
                *d as u32 % N_SCRATCH,
                operand_src(*a),
                psp_lang::print::alu_spelling(alu(*op)),
                operand_src(*b)
            ));
        }
        S::LoadX(d) => out.push_str(&format!("{pad}s{} = x[k];\n", *d as u32 % N_SCRATCH)),
        S::LoadY(d) => out.push_str(&format!("{pad}s{} = y[k];\n", *d as u32 % N_SCRATCH)),
        S::AccAdd(src) => out.push_str(&format!("{pad}acc = acc + {};\n", operand_src(*src))),
        S::StoreY(src) => out.push_str(&format!("{pad}y[k] = {};\n", operand_src(*src))),
        S::If(c, a, b, t, e) => {
            out.push_str(&format!(
                "{pad}if ({} {} {}) {{\n",
                operand_src(*a),
                psp_lang::print::cmp_spelling(cmp(*c)),
                operand_src(*b)
            ));
            for s in t {
                stmt_src(out, s, depth + 1);
            }
            out.push_str(&pad);
            out.push('}');
            if e.is_empty() {
                out.push('\n');
            } else {
                out.push_str(" else {\n");
                for s in e {
                    stmt_src(out, s, depth + 1);
                }
                out.push_str(&pad);
                out.push_str("}\n");
            }
        }
    }
}

/// Render a statement list as `psp-lang` source. `psp_lang::compile` of the
/// result lowers to exactly [`build_spec`] of the same statements — the
/// round-trip property `tests/lang_roundtrip.rs` pins.
pub fn to_source(stmts: &[S]) -> String {
    let mut out = String::from("kernel fuzz(n, k, acc, s0, s1, s2; x[], y[]) -> acc {\n");
    for s in stmts {
        stmt_src(&mut out, s, 1);
    }
    out.push_str("    k = k + 1;\n    break if (k >= n);\n}\n");
    out
}
