//! `psp-verify` — drive the independent validators from the command line.
//!
//! ```text
//! psp-verify validate --all            # validate every kernel (PSP + EMS + certifier)
//! psp-verify validate vecmin           # one kernel, verbose
//! psp-verify fuzz --smoke --json       # the CI smoke campaign
//! psp-verify fuzz --seed 7 --iters 200 # a custom campaign
//! psp-verify replay tests/repros/x.psp # re-run the oracle on a reproducer
//! ```
//!
//! Exits nonzero iff a violation or fuzz finding surfaced, so CI can gate
//! on the raw exit code.

use psp_core::{pipeline_loop, PspConfig};
use psp_machine::MachineConfig;
use psp_opt::{certify, ExactConfig};
use psp_verify::{
    fuzz, run_oracle_with, validate_modulo, validate_schedule, validate_vliw, FuzzConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"validate", rest)) => cmd_validate(rest),
        Some((&"fuzz", rest)) => cmd_fuzz(rest),
        Some((&"replay", [file])) => cmd_replay(file),
        _ => {
            eprintln!(
                "usage: psp-verify validate (--all | <kernel>)\n       \
                 psp-verify fuzz [--smoke] [--seed N] [--iters N] [--json]\n       \
                 psp-verify replay <file.psp>"
            );
            ExitCode::from(2)
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Validate one kernel's PSP schedule, generated code, EMS modulo schedule,
/// and certifier witness. Returns the number of violations found.
fn validate_kernel(name: &str, spec: &psp_ir::LoopSpec, verbose: bool) -> usize {
    let bad = std::cell::Cell::new(0usize);
    let wide = MachineConfig::paper_default();
    let report = |label: &str, vs: Vec<psp_verify::Violation>| {
        if vs.is_empty() {
            if verbose {
                println!("  {label}: ok");
            }
        } else {
            for v in &vs {
                println!("  {label}: VIOLATION: {v}");
            }
            bad.set(bad.get() + vs.len());
        }
    };

    match pipeline_loop(spec, &PspConfig::with_machine(wide.clone())) {
        Ok(res) => {
            report(
                "psp schedule",
                validate_schedule(spec, &wide, &res.schedule),
            );
            report("psp vliw", validate_vliw(spec, &wide, &res.program));
        }
        Err(e) => {
            println!("  psp: pipeline failed: {e}");
            bad.set(bad.get() + 1);
        }
    }

    let mut ic = psp_baselines::if_convert(spec);
    psp_baselines::rename::rename_inductions(&mut ic.ops, &mut ic.spec);
    let ems = psp_baselines::modulo_schedule(spec, &wide);
    report(
        &format!("ems (II {})", ems.ii),
        validate_modulo(&ic.spec.live_out, &wide, &ems),
    );

    let cfg = ExactConfig {
        max_nodes: 50_000,
        ..ExactConfig::default()
    };
    let exact = certify(spec, &wide, &cfg, Some(ems.ii));
    if let Some(w) = &exact.schedule {
        report(
            &format!("certifier witness (II {})", w.ii),
            validate_modulo(&ic.spec.live_out, &wide, w),
        );
    } else if verbose {
        println!("  certifier: no witness (bounded search), skipped");
    }
    let _ = name;
    bad.get()
}

fn cmd_validate(rest: &[&str]) -> ExitCode {
    let mut total = 0usize;
    match rest {
        ["--all"] => {
            for k in psp_kernels::all_kernels() {
                println!("{}:", k.name);
                total += validate_kernel(k.name, &k.spec, false);
            }
        }
        [name] => match psp_kernels::by_name(name) {
            Some(k) => {
                println!("{}:", k.name);
                total += validate_kernel(k.name, &k.spec, true);
            }
            None => {
                eprintln!("unknown kernel `{name}`");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: psp-verify validate (--all | <kernel>)");
            return ExitCode::from(2);
        }
    }
    if total == 0 {
        println!("all clean");
        ExitCode::SUCCESS
    } else {
        println!("{total} violation(s)");
        ExitCode::FAILURE
    }
}

fn cmd_fuzz(rest: &[&str]) -> ExitCode {
    let mut cfg = FuzzConfig::smoke(0x5eed_cafe);
    let mut json = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match *a {
            "--smoke" => {} // the default config is the smoke config
            "--json" => json = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage_fuzz(),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.iters = v,
                None => return usage_fuzz(),
            },
            "--repro-dir" => match it.next() {
                Some(v) => cfg.repro_dir = Some(v.into()),
                None => return usage_fuzz(),
            },
            _ => return usage_fuzz(),
        }
    }
    let sim_before = psp_sim::stats::snapshot();
    let outcome = fuzz(&cfg);
    let sim = psp_sim::stats::snapshot().delta(&sim_before);
    if json {
        let findings: Vec<String> = outcome
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"stage\":\"{}\",\"detail\":\"{}\",\"reduced_stmts\":{},\"repro\":\"{}\"}}",
                    json_escape(&f.failure.stage),
                    json_escape(&f.failure.detail),
                    psp_verify::grammar::stmt_count(&f.reduced),
                    json_escape(
                        &f.path
                            .as_ref()
                            .map(|p| p.display().to_string())
                            .unwrap_or_default()
                    ),
                )
            })
            .collect();
        println!(
            "{{\"seed\":{},\"executed\":{},\"corpus\":{},\"elapsed_ms\":{},\"sim\":{},\"findings\":[{}]}}",
            cfg.seed,
            outcome.executed,
            outcome.corpus,
            outcome.elapsed.as_millis(),
            sim.to_json(),
            findings.join(",")
        );
    } else {
        println!(
            "seed {}: {} runs, corpus {}, {} finding(s) in {:.1}s",
            cfg.seed,
            outcome.executed,
            outcome.corpus,
            outcome.findings.len(),
            outcome.elapsed.as_secs_f64()
        );
        for f in &outcome.findings {
            println!("  [{}] {}", f.failure.stage, f.failure.detail);
            if let Some(p) = &f.path {
                println!("    reproducer: {}", p.display());
            }
        }
    }
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_fuzz() -> ExitCode {
    eprintln!("usage: psp-verify fuzz [--smoke] [--seed N] [--iters N] [--json] [--repro-dir DIR]");
    ExitCode::from(2)
}

fn cmd_replay(file: &str) -> ExitCode {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = match psp_lang::compile(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot compile {file}: {e}");
            return ExitCode::from(2);
        }
    };
    // Replay always re-judges against the trusted interpreter, whatever
    // engine the finding campaign ran.
    match run_oracle_with(&spec, psp_sim::EngineKind::Interpreter) {
        Ok(_) => {
            println!("{file}: oracle clean");
            ExitCode::SUCCESS
        }
        Err(f) => {
            println!("{file}: FAILS at stage {}: {}", f.stage, f.detail);
            ExitCode::FAILURE
        }
    }
}
