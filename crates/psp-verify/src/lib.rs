//! Independent verification for the PSP pipeline: a from-scratch schedule
//! validator, a coverage-guided fuzzer, and a minimizing reducer.
//!
//! Everything the repo's other crates *produce* — PSP schedules and their
//! tree-VLIW code, baseline compilations, fixed-II modulo schedules, exact
//! certificates — this crate *re-checks* with deliberately naive code that
//! shares no logic with the producers:
//!
//! * [`validate_vliw`] — structural, resource, and dispatch checks on any
//!   generated [`psp_machine::VliwLoop`];
//! * [`validate_schedule`] — dependence preservation, path coverage,
//!   speculation legality, and issue width on a [`psp_core::Schedule`];
//! * [`validate_modulo`] — the full re-derived constraint system of a
//!   [`psp_opt::ModuloSchedule`];
//! * [`fuzz`] — a corpus-driven mutation fuzzer whose oracle runs every
//!   technique through every validator and the differential simulator;
//! * [`reduce`] — delta-debugging any failing loop down to a locally
//!   minimal, replayable `.psp` reproducer.
//!
//! Calling [`install`] registers the validators with the producer-side
//! hook registries (`psp_machine::hook`, `psp_core::hook`,
//! `psp_opt::hook`), after which every debug-build (or `PSP_VALIDATE=1`)
//! compilation anywhere in the workspace is checked automatically.

pub mod features;
pub mod fuzz;
pub mod grammar;
pub mod modulo;
pub mod reduce;
pub mod schedule;
pub mod violation;
pub mod vliw;

pub use features::Features;
pub use fuzz::{fuzz, run_oracle, run_oracle_with, Failure, Finding, FuzzConfig, FuzzOutcome};
pub use modulo::validate_modulo;
pub use reduce::{reduce_failure, reduce_with};
pub use schedule::validate_schedule;
pub use violation::{CycleSite, Violation};
pub use vliw::validate_vliw;

fn vliw_hook(
    spec: &psp_ir::LoopSpec,
    machine: &psp_machine::MachineConfig,
    prog: &psp_machine::VliwLoop,
) -> Vec<String> {
    violation::to_strings(&validate_vliw(spec, machine, prog))
}

fn schedule_hook(
    spec: &psp_ir::LoopSpec,
    machine: &psp_machine::MachineConfig,
    sched: &psp_core::Schedule,
    prog: &psp_machine::VliwLoop,
) -> Vec<String> {
    let mut v = validate_schedule(spec, machine, sched);
    v.extend(validate_vliw(spec, machine, prog));
    violation::to_strings(&v)
}

fn modulo_hook(
    live_out: &[psp_ir::RegRef],
    machine: &psp_machine::MachineConfig,
    sched: &psp_opt::ModuloSchedule,
) -> Vec<String> {
    violation::to_strings(&validate_modulo(live_out, machine, sched))
}

/// Register all three validators with the producer-side hook registries.
/// Idempotent; call once at the start of a test or binary. Hooks only fire
/// in debug builds or when `PSP_VALIDATE` is set.
pub fn install() {
    psp_machine::hook::install(vliw_hook);
    psp_core::hook::install(schedule_hook);
    psp_opt::hook::install(modulo_hook);
}
