//! Independent validation of a fixed-II [`ModuloSchedule`].
//!
//! `ModuloSchedule::verify` checks the schedule against the edge list the
//! *scheduler* built — if the edge builder is wrong, both agree and the bug
//! passes. This module re-derives the complete dependence system from the
//! operation list alone (first-principles loops, its own induction-stride
//! scan, sparse predicate matrices) and re-checks every constraint
//! `t[to] + II·dist ≥ t[from] + lat`, the modulo resource table, and the
//! container invariants.
//!
//! The re-derived system deliberately mirrors the documented semantics of
//! [`psp_opt::all_edges`] — no stronger, no weaker — so a schedule that
//! validates here is executable and a rejection is a real defect, not a
//! modeling mismatch.

use crate::violation::{CycleSite, Violation};
use psp_ir::{
    analysis::{mem_access, AccessKind},
    AluOp, OpKind, Operand, Operation, Reg, RegRef, ResClass,
};
use psp_machine::MachineConfig;
use psp_opt::ModuloSchedule;
use psp_predicate::{backend::with_backend, PredicateMatrix};
use std::collections::BTreeMap;

/// A re-derived dependence edge.
struct Edge {
    from: usize,
    to: usize,
    lat: u32,
    dist: u32,
    kind: &'static str,
}

/// Validate a modulo schedule against the machine.
///
/// `live_out` must be the live-out set of the if-converted spec the
/// schedule was built from (the `ModuloSchedule` itself does not carry it).
pub fn validate_modulo(
    live_out: &[RegRef],
    machine: &MachineConfig,
    sched: &ModuloSchedule,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = sched.ops.len();
    if sched.ii == 0 {
        out.push(Violation::Contract {
            detail: "II is zero".into(),
        });
        return out;
    }
    if sched.time.len() != n {
        out.push(Violation::Contract {
            detail: format!("{} ops but {} issue times", n, sched.time.len()),
        });
        return out;
    }
    let want_stages = sched
        .time
        .iter()
        .map(|&t| t as u32 / sched.ii)
        .max()
        .unwrap_or(0)
        + 1;
    if sched.stages != want_stages {
        out.push(Violation::Contract {
            detail: format!(
                "stage count {} inconsistent with times (expect {want_stages})",
                sched.stages
            ),
        });
    }

    for e in derive_edges(&sched.ops, live_out, machine) {
        let lhs = sched.time[e.to] as i64 + (sched.ii as i64) * e.dist as i64;
        let rhs = sched.time[e.from] as i64 + e.lat as i64;
        if lhs < rhs {
            out.push(Violation::ModuloEdge {
                kind: e.kind,
                dist: e.dist,
                detail: format!(
                    "{} (t={}) -> {} (t={}), lat {}: {} < {}",
                    sched.ops[e.from].0,
                    sched.time[e.from],
                    sched.ops[e.to].0,
                    sched.time[e.to],
                    e.lat,
                    lhs,
                    rhs
                ),
            });
        }
    }

    // Modulo resource table: all stages overlap, so every op occupies its
    // `time mod II` slot each initiation.
    for class in [ResClass::Alu, ResClass::Mem, ResClass::Branch] {
        let limit = machine.limit(class) as usize;
        let mut counts = vec![0usize; sched.ii as usize];
        for (i, &t) in sched.time.iter().enumerate() {
            if sched.ops[i].0.res_class() == class {
                counts[t % sched.ii as usize] += 1;
            }
        }
        for (slot, &used) in counts.iter().enumerate() {
            if used > limit {
                out.push(Violation::Resource {
                    site: CycleSite::Slot(slot),
                    class: match class {
                        ResClass::Alu => "ALU",
                        ResClass::Mem => "MEM",
                        ResClass::Branch => "BRANCH",
                    },
                    used,
                    limit: limit as u32,
                });
            }
        }
    }
    out
}

/// Unit-induction strides: registers with exactly one (unguarded,
/// universe-path) definition of the form `r = r ± imm`.
fn strides(ops: &[(Operation, PredicateMatrix)]) -> BTreeMap<Reg, i64> {
    let mut def_count: BTreeMap<Reg, usize> = BTreeMap::new();
    for (op, _) in ops {
        for d in op.defs() {
            if let RegRef::Gpr(r) = d {
                *def_count.entry(r).or_insert(0) += 1;
            }
        }
    }
    let mut out = BTreeMap::new();
    for (op, ctrl) in ops {
        if op.guard.is_some() || !ctrl.is_universe() {
            continue;
        }
        if let OpKind::Alu { op: alu, dst, a, b } = op.kind {
            if def_count.get(&dst) != Some(&1) {
                continue;
            }
            let s = match (alu, a, b) {
                (AluOp::Add, Operand::Reg(x), Operand::Imm(c)) if x == dst => Some(c),
                (AluOp::Add, Operand::Imm(c), Operand::Reg(x)) if x == dst => Some(c),
                (AluOp::Sub, Operand::Reg(x), Operand::Imm(c)) if x == dst => Some(-c),
                _ => None,
            };
            if let Some(s) = s {
                out.insert(dst, s);
            }
        }
    }
    out
}

fn is_observable(op: &Operation, live_out: &[RegRef]) -> bool {
    op.is_store() || op.defs().iter().any(|d| live_out.contains(d))
}

fn mem_lat(a: AccessKind, b: AccessKind) -> Option<u32> {
    match (a, b) {
        (AccessKind::Write, AccessKind::Read) => Some(1),
        (AccessKind::Read, AccessKind::Write) => Some(0),
        (AccessKind::Write, AccessKind::Write) => Some(1),
        (AccessKind::Read, AccessKind::Read) => None,
    }
}

/// Re-derive the full modulo constraint system.
///
/// Intra-iteration (program order `i < j`, skipped entirely for
/// disjoint-path pairs): flow at producer latency, anti at 0, output at 1,
/// memory by kind with stride-pruned aliasing, BREAK protocol
/// (observable→break 0, break→observable 1, break→break 0). Cross-iteration
/// (distance 1, *no* path pruning — different iterations re-roll their
/// predicates): flow only into uses at positions `j ≤ i`, anti/output over
/// all pairs, memory at iteration distance 1, break→(observable|break) at
/// latency 1, observable→break at latency 0.
fn derive_edges(
    ops: &[(Operation, PredicateMatrix)],
    live_out: &[RegRef],
    machine: &MachineConfig,
) -> Vec<Edge> {
    let sparse: Vec<PredicateMatrix> = ops
        .iter()
        .map(|(_, m)| {
            let entries: Vec<(u32, i32, bool)> = m.constrained().collect();
            with_backend(false, || PredicateMatrix::from_entries(entries))
        })
        .collect();
    let st = strides(ops);
    let stride_of = |r: Reg| st.get(&r).copied();
    let mut edges = Vec::new();
    let mut push = |from: usize, to: usize, lat: u32, dist: u32, kind: &'static str| {
        edges.push(Edge {
            from,
            to,
            lat,
            dist,
            kind,
        })
    };

    for j in 0..ops.len() {
        let (opj, _) = &ops[j];
        for i in 0..j {
            let (opi, _) = &ops[i];
            if sparse[i].is_disjoint(&sparse[j]) {
                continue;
            }
            if opi.defs().iter().any(|d| opj.uses().contains(d)) {
                push(i, j, machine.latency(opi), 0, "flow");
            }
            if opi.uses().iter().any(|u| opj.defs().contains(u)) {
                push(i, j, 0, 0, "anti");
            }
            if opi.defs().iter().any(|d| opj.defs().contains(d)) {
                push(i, j, 1, 0, "output");
            }
            if let (Some(ai), Some(aj)) = (mem_access(opi), mem_access(opj)) {
                if ai.interferes(&aj) && ai.may_alias(&aj, 0, stride_of) {
                    if let Some(lat) = mem_lat(ai.kind, aj.kind) {
                        push(i, j, lat, 0, "memory");
                    }
                }
            }
            match (opi.is_break(), opj.is_break()) {
                (false, true) if is_observable(opi, live_out) => push(i, j, 0, 0, "break"),
                (true, false) if is_observable(opj, live_out) => push(i, j, 1, 0, "break"),
                (true, true) => push(i, j, 0, 0, "break"),
                _ => {}
            }
        }
    }

    for i in 0..ops.len() {
        for j in 0..ops.len() {
            let (a, _) = &ops[i];
            let (b, _) = &ops[j];
            if j <= i && a.defs().iter().any(|d| b.uses().contains(d)) {
                push(i, j, machine.latency(a), 1, "flow");
            }
            if a.uses().iter().any(|u| b.defs().contains(u)) {
                push(i, j, 0, 1, "anti");
            }
            if a.defs().iter().any(|d| b.defs().contains(d)) {
                push(i, j, 1, 1, "output");
            }
            if let (Some(ma), Some(mb)) = (mem_access(a), mem_access(b)) {
                if ma.interferes(&mb) && ma.may_alias(&mb, 1, stride_of) {
                    if let Some(lat) = mem_lat(ma.kind, mb.kind) {
                        push(i, j, lat, 1, "memory");
                    }
                }
            }
            if a.is_break() && (is_observable(b, live_out) || b.is_break()) {
                push(i, j, 1, 1, "break");
            }
            if is_observable(a, live_out) && b.is_break() {
                push(i, j, 0, 1, "break");
            }
        }
    }
    edges
}
