//! Minimizing reducer: shrink a failing loop to a locally-minimal
//! reproducer while preserving the failure.
//!
//! Delta-debugging in three alternating moves, iterated to a fixpoint:
//!
//! 1. **statement deletion** — try removing every statement (outermost
//!    first, so whole `if` subtrees go in one step);
//! 2. **condition flattening** — replace an `if` by its then-arm or its
//!    else-arm, shedding a nesting level without losing the arm's effects;
//! 3. **code canonicalization** — rewrite operand/opcode bytes toward the
//!    canonical smallest codes (`+` for ALU, `<` for compares, `k` and `0`
//!    for operands), which turns "some byte soup" into readable source.
//!
//! The interestingness predicate is a plain closure, so the same engine
//! serves real oracle failures ([`crate::fuzz::fails_at_stage`]) and
//! synthetic predicates in tests.

use crate::fuzz::Failure;
use crate::grammar::{self, stmt_count, S};

/// Reduce `stmts` while `is_failing` stays true. `is_failing(stmts)` must
/// hold on entry; the result is locally minimal: no single deletion,
/// flattening, or canonicalization step preserves the failure.
pub fn reduce_with(stmts: &[S], is_failing: &dyn Fn(&[S]) -> bool) -> Vec<S> {
    debug_assert!(is_failing(stmts), "reducer needs a failing input");
    let mut cur = stmts.to_vec();
    loop {
        let before = cur.clone();
        shrink_statements(&mut cur, is_failing);
        flatten_ifs(&mut cur, is_failing);
        canonicalize(&mut cur, is_failing);
        if cur == before {
            return cur;
        }
    }
}

/// Reduce an oracle failure: keep any input failing at the *same stage*
/// (the detail may legitimately change while shrinking).
pub fn reduce_failure(stmts: &[S], failure: &Failure) -> Vec<S> {
    let stage = failure.stage.clone();
    let pred = move |s: &[S]| crate::fuzz::fails_at_stage(s, &stage);
    if !pred(stmts) {
        // Flaky or environment-dependent: return the original untouched.
        return stmts.to_vec();
    }
    reduce_with(stmts, &pred)
}

fn accept(cur: &mut Vec<S>, cand: Vec<S>, is_failing: &dyn Fn(&[S]) -> bool) -> bool {
    let mut cand = cand;
    grammar::normalize(&mut cand);
    if cand != *cur && !cand.is_empty() && is_failing(&cand) {
        *cur = cand;
        true
    } else {
        false
    }
}

fn shrink_statements(cur: &mut Vec<S>, is_failing: &dyn Fn(&[S]) -> bool) {
    let mut n = 0;
    while n < stmt_count(cur) {
        let mut cand = cur.clone();
        let mut idx = n;
        grammar::remove_nth(&mut cand, &mut idx);
        if !accept(cur, cand, is_failing) {
            n += 1; // kept: move past it (deleting shifts indices left)
        }
    }
}

/// Count `if` statements (their own index space for flattening).
fn if_count(stmts: &[S]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            S::If(_, _, _, t, e) => 1 + if_count(t) + if_count(e),
            _ => 0,
        })
        .sum()
}

fn flatten_nth_if(stmts: &mut Vec<S>, n: &mut usize, keep_then: bool) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if let S::If(_, _, _, t, e) = &mut stmts[i] {
            if *n == 0 {
                let arm = std::mem::take(if keep_then { t } else { e });
                stmts.splice(i..=i, arm);
                return true;
            }
            *n -= 1;
            if flatten_nth_if(t, n, keep_then) || flatten_nth_if(e, n, keep_then) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn flatten_ifs(cur: &mut Vec<S>, is_failing: &dyn Fn(&[S]) -> bool) {
    let mut n = 0;
    while n < if_count(cur) {
        let mut progressed = false;
        for keep_then in [true, false] {
            let mut cand = cur.clone();
            let mut idx = n;
            flatten_nth_if(&mut cand, &mut idx, keep_then);
            if accept(cur, cand, is_failing) {
                progressed = true;
                break;
            }
        }
        if !progressed {
            n += 1;
        }
    }
}

/// Canonical byte codes: ALU `+`, compare `<`, operands `k` (code 0) then
/// the literal `0` (code 17: `17 % 6 = 5`, `17 % 7 - 3 = 0`).
const CANON_OPERANDS: [u8; 2] = [0, 17];

fn canonicalize(cur: &mut Vec<S>, is_failing: &dyn Fn(&[S]) -> bool) {
    for n in 0..stmt_count(cur) {
        // Try, per field, the canonical codes in order; keep the first
        // simplification that still fails.
        // Per field, the literal-`0` fallback is tried first and the
        // preferred code `k` last, so the last accepted candidate wins.
        for (field, code) in [
            (0u8, 0u8), // opcode / cmp -> Add / Lt
            (1, CANON_OPERANDS[1]),
            (1, CANON_OPERANDS[0]),
            (2, CANON_OPERANDS[1]),
            (2, CANON_OPERANDS[0]),
            (3, 0), // Alu dst -> s0
        ] {
            let mut cand = cur.clone();
            let mut idx = n;
            grammar::with_nth(&mut cand, &mut idx, &mut |s| match s {
                S::Alu(op, d, a, b) => match field {
                    0 => *op = code,
                    1 => *a = code,
                    2 => *b = code,
                    _ => *d = code,
                },
                S::LoadX(d) | S::LoadY(d) => {
                    if field == 3 {
                        *d = code;
                    }
                }
                S::AccAdd(src) | S::StoreY(src) => {
                    if field == 1 {
                        *src = code;
                    }
                }
                S::If(c, a, b, _, _) => match field {
                    0 => *c = code,
                    1 => *a = code,
                    2 => *b = code,
                    _ => {}
                },
            });
            accept(cur, cand, is_failing);
        }
    }
}
