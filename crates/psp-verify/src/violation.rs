//! Structured validator findings.
//!
//! Every check in this crate reports a [`Violation`] rather than panicking,
//! so callers (the fuzz oracle, the CLI, the debug-assert hooks) can decide
//! what a finding means in context. The `Display` form is the canonical
//! message surfaced in hook panics and CI logs; it names the concrete
//! schedule coordinates involved so a failure is actionable without
//! re-running the validator.

use psp_ir::RegRef;
use std::fmt;

/// Where inside a compiled artifact a resource overflow happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleSite {
    /// `prologue[i]`.
    Prologue(usize),
    /// `blocks[b].cycles[i]`.
    Block(usize, usize),
    /// `epilogue[i]`.
    Epilogue(usize),
    /// Schedule row `i` (pre-codegen).
    Row(usize),
    /// Modulo slot `t mod II`.
    Slot(usize),
}

impl fmt::Display for CycleSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleSite::Prologue(i) => write!(f, "prologue cycle {i}"),
            CycleSite::Block(b, i) => write!(f, "block B{b} cycle {i}"),
            CycleSite::Epilogue(i) => write!(f, "epilogue cycle {i}"),
            CycleSite::Row(i) => write!(f, "schedule row {i}"),
            CycleSite::Slot(t) => write!(f, "modulo slot {t}"),
        }
    }
}

/// One defect found by an independent validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A cycle needs more issue slots of one class than the machine has.
    Resource {
        /// Where the overflowing cycle lives.
        site: CycleSite,
        /// Resource class name (`ALU`/`MEM`/`BRANCH`).
        class: &'static str,
        /// Co-issuable operations of that class in the cycle.
        used: usize,
        /// The machine's per-cycle limit.
        limit: u32,
    },
    /// A same-iteration register dependence is not honored by placement.
    RegisterOrder {
        /// `flow`, `anti`, or `output`.
        kind: &'static str,
        /// The register carrying the dependence.
        reg: RegRef,
        /// Iteration index of the offending frame.
        index: i32,
        /// Row of the program-earlier endpoint.
        early_row: usize,
        /// Row of the program-later endpoint.
        late_row: usize,
        /// Human-readable rendering of the two operations.
        detail: String,
    },
    /// A memory dependence (same-iteration, possibly cross-frame) is
    /// reordered or co-issued against the naive ordering rules.
    MemoryOrder {
        /// `W->R`, `R->W`, or `W->W`.
        kind: &'static str,
        /// Rendering of the two operations with their frames and rows.
        detail: String,
    },
    /// The BREAK protocol is broken: an observable effect of a later
    /// iteration can execute before an earlier iteration's BREAK resolves,
    /// or two BREAKs / a BREAK and a program-earlier observable swapped.
    BreakProtocol {
        /// Which of the three rules failed.
        rule: &'static str,
        /// Rendering of the two instances.
        detail: String,
    },
    /// A non-speculable instance sits above the IF that computes one of
    /// its formal predicates (or a load does while the machine forbids
    /// speculative loads).
    Speculation {
        /// Predicate row and column the instance is constrained on.
        pred: (u32, i32),
        /// Row of the instance.
        row: usize,
        /// Rendering of the instance.
        detail: String,
    },
    /// A constrained predicate is computed by no IF instance in the
    /// schedule.
    UnresolvedPredicate {
        /// Predicate row and column.
        pred: (u32, i32),
        /// Rendering of the instance needing it.
        detail: String,
    },
    /// An original operation has no remaining instance in the schedule.
    DroppedOp {
        /// Flattened source position.
        origin: usize,
        /// Rendering of the original operation.
        detail: String,
    },
    /// Two instances of the same origin can execute on a shared path in
    /// the same iteration (double execution).
    DoubleExecution {
        /// Flattened source position.
        origin: usize,
        /// Rendering of the two instances.
        detail: String,
    },
    /// The union of an origin's instances misses a path the original
    /// operation executes on.
    Coverage {
        /// Flattened source position.
        origin: usize,
        /// A concrete uncovered outcome assignment.
        detail: String,
    },
    /// An IF instance is inconsistent with the source loop (missing
    /// `computes_if`, or condition register mismatch).
    IfLogMismatch {
        /// Explanation.
        detail: String,
    },
    /// A structural defect of the generated CFG (dangling successor,
    /// id mismatch, forward cycle, unreachable block, missing back edge,
    /// branch without a same-cycle IF).
    Structure {
        /// Explanation.
        detail: String,
    },
    /// A startup/steady-state contract defect (overlapping entry block
    /// matrices, schedule/program mismatch).
    Contract {
        /// Explanation.
        detail: String,
    },
    /// A modulo-schedule constraint `t[to] + II*dist >= t[from] + lat`
    /// does not hold for a re-derived dependence edge.
    ModuloEdge {
        /// `flow`/`anti`/`output`/`memory`/`break`.
        kind: &'static str,
        /// Cross-iteration distance of the edge.
        dist: u32,
        /// Rendering of both endpoints with their times.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Resource {
                site,
                class,
                used,
                limit,
            } => write!(
                f,
                "resource oversubscription: {site} issues {used} {class} ops (limit {limit})"
            ),
            Violation::RegisterOrder {
                kind,
                reg,
                index,
                early_row,
                late_row,
                detail,
            } => write!(
                f,
                "{kind} dependence on {reg:?} broken in frame {index:+}: \
                 producer row {early_row} vs consumer row {late_row}: {detail}"
            ),
            Violation::MemoryOrder { kind, detail } => {
                write!(f, "memory {kind} dependence broken: {detail}")
            }
            Violation::BreakProtocol { rule, detail } => {
                write!(f, "BREAK protocol ({rule}): {detail}")
            }
            Violation::Speculation { pred, row, detail } => write!(
                f,
                "illegal speculation above IF ({},{}) at row {row}: {detail}",
                pred.0, pred.1
            ),
            Violation::UnresolvedPredicate { pred, detail } => write!(
                f,
                "predicate ({},{}) computed by no IF instance, needed by {detail}",
                pred.0, pred.1
            ),
            Violation::DroppedOp { origin, detail } => {
                write!(f, "origin {origin} has no instance left: {detail}")
            }
            Violation::DoubleExecution { origin, detail } => {
                write!(
                    f,
                    "origin {origin} executes twice on a shared path: {detail}"
                )
            }
            Violation::Coverage { origin, detail } => {
                write!(f, "origin {origin} not covered on path {detail}")
            }
            Violation::IfLogMismatch { detail } => write!(f, "IF log mismatch: {detail}"),
            Violation::Structure { detail } => write!(f, "structure: {detail}"),
            Violation::Contract { detail } => write!(f, "contract: {detail}"),
            Violation::ModuloEdge { kind, dist, detail } => {
                write!(f, "modulo {kind} edge (dist {dist}) violated: {detail}")
            }
        }
    }
}

/// Render a violation list as the strings the cross-crate hooks expect.
pub fn to_strings(violations: &[Violation]) -> Vec<String> {
    violations.iter().map(|v| v.to_string()).collect()
}
