//! Independent validation of generated tree-VLIW loop code.
//!
//! Deliberately naive: every check below re-derives its facts from the
//! [`VliwLoop`] alone with first-principles code — per-cycle slot counting,
//! an explicit DFS for forward-acyclicity and reachability — and shares
//! nothing with the scheduler or `VliwLoop::validate` (which the code
//! generator itself calls and therefore cannot be trusted to catch the
//! generator's own bugs).

use crate::violation::{CycleSite, Violation};
use psp_ir::{LoopSpec, OpKind, Operation, ResClass};
use psp_machine::{MachineConfig, VliwLoop, VliwTerm};

/// Validate a compiled loop against the machine and its source spec.
///
/// Checks, in order: structural well-formedness of the block graph,
/// per-cycle resource budgets (prologue, every block, epilogue), branch
/// terminators backed by a same-cycle IF, and the steady-state entry
/// contract (pairwise-disjoint entry matrices).
pub fn validate_vliw(_spec: &LoopSpec, machine: &MachineConfig, prog: &VliwLoop) -> Vec<Violation> {
    let mut out = Vec::new();
    structure(prog, &mut out);
    // Structural damage makes the remaining passes index out of bounds;
    // report it alone.
    if !out.is_empty() {
        return out;
    }
    resources(machine, prog, &mut out);
    branches(prog, &mut out);
    entry_contract(prog, &mut out);
    out
}

/// Count the operations of `class` in one cycle.
fn class_count(cycle: &[Operation], class: ResClass) -> usize {
    cycle.iter().filter(|op| op.res_class() == class).count()
}

fn class_name(class: ResClass) -> &'static str {
    match class {
        ResClass::Alu => "ALU",
        ResClass::Mem => "MEM",
        ResClass::Branch => "BRANCH",
    }
}

fn check_cycle(
    machine: &MachineConfig,
    cycle: &[Operation],
    site: impl Fn() -> CycleSite,
    out: &mut Vec<Violation>,
) {
    for class in [ResClass::Alu, ResClass::Mem, ResClass::Branch] {
        let used = class_count(cycle, class);
        let limit = machine.limit(class);
        if used > limit as usize {
            out.push(Violation::Resource {
                site: site(),
                class: class_name(class),
                used,
                limit,
            });
        }
    }
}

fn resources(machine: &MachineConfig, prog: &VliwLoop, out: &mut Vec<Violation>) {
    for (i, cycle) in prog.prologue.iter().enumerate() {
        check_cycle(machine, cycle, || CycleSite::Prologue(i), out);
    }
    for block in &prog.blocks {
        for (i, cycle) in block.cycles.iter().enumerate() {
            check_cycle(machine, cycle, || CycleSite::Block(block.id, i), out);
        }
    }
    for (i, cycle) in prog.epilogue.iter().enumerate() {
        check_cycle(machine, cycle, || CycleSite::Epilogue(i), out);
    }
}

fn structure(prog: &VliwLoop, out: &mut Vec<Violation>) {
    let n = prog.blocks.len();
    if n == 0 {
        out.push(Violation::Structure {
            detail: "loop has no blocks".into(),
        });
        return;
    }
    if prog.entry >= n {
        out.push(Violation::Structure {
            detail: format!("entry block {} out of range (0..{n})", prog.entry),
        });
        return;
    }
    for (i, b) in prog.blocks.iter().enumerate() {
        if b.id != i {
            out.push(Violation::Structure {
                detail: format!("block at position {i} carries id {}", b.id),
            });
        }
        for s in b.term.succs() {
            if s.block >= n {
                out.push(Violation::Structure {
                    detail: format!("block B{i} jumps to missing block {}", s.block),
                });
            }
        }
    }
    if !out.is_empty() {
        return;
    }

    // Forward edges (back edges removed) must form a DAG; every block must
    // be reachable from the entry; some back edge must exist so the loop
    // actually loops.
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = on stack, 2 = done
    fn dfs(b: usize, prog: &VliwLoop, state: &mut [u8], out: &mut Vec<Violation>) {
        state[b] = 1;
        for s in prog.blocks[b].term.succs() {
            if s.back_edge {
                continue;
            }
            match state[s.block] {
                0 => dfs(s.block, prog, state, out),
                1 => out.push(Violation::Structure {
                    detail: format!("forward cycle through B{} -> B{}", b, s.block),
                }),
                _ => {}
            }
        }
        state[b] = 2;
    }
    dfs(prog.entry, prog, &mut state, out);

    let mut reach = vec![false; n];
    let mut stack = vec![prog.entry];
    while let Some(b) = stack.pop() {
        if reach[b] {
            continue;
        }
        reach[b] = true;
        for s in prog.blocks[b].term.succs() {
            stack.push(s.block);
        }
    }
    for (i, r) in reach.iter().enumerate() {
        if !r {
            out.push(Violation::Structure {
                detail: format!("block B{i} unreachable from the entry"),
            });
        }
    }
    let has_back = prog
        .blocks
        .iter()
        .flat_map(|b| b.term.succs())
        .any(|s| s.back_edge);
    if !has_back {
        out.push(Violation::Structure {
            detail: "no back edge: the loop never loops".into(),
        });
    }
}

fn branches(prog: &VliwLoop, out: &mut Vec<Violation>) {
    for b in &prog.blocks {
        if let VliwTerm::Branch { cc, .. } = b.term {
            // A branch dispatches on a condition an IF in the final cycle
            // computes; empty blocks are zero-cycle dispatch nodes reusing
            // a condition register an earlier block's IF wrote.
            if let Some(last) = b.cycles.last() {
                let has_if = last
                    .iter()
                    .any(|op| matches!(op.kind, OpKind::If { cc: c } if c == cc));
                if !has_if {
                    out.push(Violation::Structure {
                        detail: format!(
                            "block B{} branches on {cc:?} without an IF in its final cycle",
                            b.id
                        ),
                    });
                }
            }
        }
    }
}

fn entry_contract(prog: &VliwLoop, out: &mut Vec<Violation>) {
    // Back edges land on steady-state entry blocks; their path matrices
    // must be pairwise disjoint, otherwise two entries claim the same
    // incoming-predicate outcome and the dispatch is ambiguous.
    let entries = prog.steady_entries();
    for (i, &a) in entries.iter().enumerate() {
        for &b in entries.iter().skip(i + 1) {
            let (ma, mb) = (&prog.blocks[a].matrix, &prog.blocks[b].matrix);
            if !ma.is_disjoint(mb) {
                out.push(Violation::Contract {
                    detail: format!("steady entries B{a} [{ma}] and B{b} [{mb}] overlap"),
                });
            }
        }
    }
}
